//! The `ju` scenario: a deep ministry portal (mean target depth ~87 at full
//! scale) where targets hide behind long navigation chains, with early
//! stopping cutting the crawl once discovery dries up (Sec 4.8).
//!
//! ```sh
//! cargo run --release --example ministry_portal
//! ```

use sbcrawl::crawler::engine::{crawl, CrawlConfig};
use sbcrawl::crawler::strategies::{QueueStrategy, SbStrategy};
use sbcrawl::crawler::EarlyStopConfig;
use sbcrawl::httpsim::SiteServer;
use sbcrawl::webgraph::{build_site, profile};

fn main() {
    // The real `ju` profile (French Ministry of Justice), scaled 1:50.
    let spec = profile("ju").expect("ju is a Table 1 profile").scaled(0.02);
    let site = build_site(&spec, 2026);
    let census = site.census();
    println!(
        "justice.gouv.fr (scaled): {} pages, {} targets, mean target depth {:.0} (±{:.0})\n",
        census.available, census.targets, census.target_depth.0, census.target_depth.1
    );

    let root = site.page(site.root()).url.clone();

    // Early stopping scaled to the site (ν=1000 at paper scale).
    let es = EarlyStopConfig::default().scaled(0.02);
    let cfg = CrawlConfig { early_stop: Some(es), seed: 1, ..Default::default() };

    let server = SiteServer::new(site.clone());
    let mut sb = SbStrategy::classifier_default();
    let out = crawl(&server, None, &root, &mut sb, &cfg);
    println!(
        "SB-CLASSIFIER: {} targets in {} requests{}",
        out.targets_found(),
        out.traffic.requests(),
        match out.early_stop_at {
            Some(t) => format!(", early-stopped at iteration {t}"),
            None => String::new(),
        }
    );

    let server = SiteServer::new(site.clone());
    let mut bfs = QueueStrategy::bfs();
    let out_bfs = crawl(&server, None, &root, &mut bfs, &cfg);
    println!(
        "BFS:           {} targets in {} requests{}",
        out_bfs.targets_found(),
        out_bfs.traffic.requests(),
        match out_bfs.early_stop_at {
            Some(t) => format!(", early-stopped at iteration {t}"),
            None => String::new(),
        }
    );

    // The paper's Sec 4.4 illustration: estimated wall-clock at 1 req/s.
    println!(
        "\nsimulated wall-clock (1 s politeness): SB {:.1} h vs BFS {:.1} h",
        out.traffic.elapsed_secs / 3600.0,
        out_bfs.traffic.elapsed_secs / 3600.0
    );
}
