//! A production-shaped crawl: robots.txt compliance, crawl-delay
//! politeness, failure tolerance, and a durable archive of everything
//! fetched (the paper's Sec 4.4 replication database, persisted).
//!
//! Pipeline: fetch robots.txt → respect Disallow + Crawl-delay → crawl a
//! flaky origin through a recording ReplayStore → export the archive →
//! rebuild a fresh store from the bytes and replay the crawl offline with
//! zero upstream traffic.
//!
//! ```sh
//! cargo run --release --example polite_archiving_crawl
//! ```

use sbcrawl::crawler::engine::{crawl, robots_filter, Budget, CrawlConfig};
use sbcrawl::crawler::strategies::SbStrategy;
use sbcrawl::httpsim::{
    FlakyServer, Mode, Politeness, ReplayStore, RobotsTxt, SiteServer, WithRobots,
};
use sbcrawl::webgraph::{build_site, SiteSpec};

fn main() {
    let site = build_site(&SiteSpec::demo(800), 9);
    let root = site.page(site.root()).url.clone();
    let n_targets = site.census().targets;

    // The origin: a site that publishes a robots.txt with an excluded
    // area and a 2-second crawl delay, and whose CDN occasionally 503s.
    let robots_body = "User-agent: *\nDisallow: /search\nDisallow: /*.json$\nCrawl-delay: 2\n";
    let origin = WithRobots::new(
        FlakyServer::new(SiteServer::new(site), 0.05, 3).recoverable().protecting(&root),
        &root,
        robots_body,
    );

    // Everything fetched goes through a recording replay store.
    let store = ReplayStore::new(origin, Mode::OnlineToLocal);

    // Compliance: parse robots.txt, honour Disallow via the engine's URL
    // filter and Crawl-delay via the politeness model.
    let robots = RobotsTxt::fetch(&store, &root);
    let delay = robots.crawl_delay("sbcrawl").unwrap_or(1.0);
    println!("robots.txt: {} group(s), crawl-delay {delay}s", robots.n_groups());

    let mut strategy = SbStrategy::classifier_default();
    let cfg = CrawlConfig {
        budget: Budget::Requests(600),
        politeness: Politeness { delay_secs: delay, ..Default::default() },
        url_filter: Some(robots_filter(robots, "sbcrawl")),
        seed: 1,
        ..Default::default()
    };
    let outcome = crawl(&store, None, &root, &mut strategy, &cfg);
    println!(
        "online crawl: {}/{} targets, {} requests, ~{:.1} h simulated at {delay}s delay",
        outcome.targets_found(),
        n_targets,
        outcome.traffic.requests(),
        outcome.traffic.elapsed_secs / 3600.0
    );

    // Persist the replication database (WARC-lite with per-record CRCs).
    let mut archive = Vec::new();
    let records = store.export_archive(&mut archive).expect("export archive");
    println!(
        "archive: {records} records, {:.2} MB, CRC-protected",
        archive.len() as f64 / 1e6
    );

    // A colleague replays the crawl fully offline from the bytes alone.
    let offline_site = build_site(&SiteSpec::demo(800), 9);
    let offline = ReplayStore::new(SiteServer::new(offline_site), Mode::Local);
    let loaded = offline.import_archive(&archive[..]).expect("import archive");
    let mut strategy2 = SbStrategy::classifier_default();
    let replayed = crawl(&offline, None, &root, &mut strategy2, &cfg_for_replay());
    println!(
        "offline replay: {loaded} records loaded, {} targets re-derived, {} upstream fetches",
        replayed.targets_found(),
        offline.upstream_gets()
    );
}

/// The offline replay can only touch archived URLs, so it reuses the same
/// budget and robots filter as the online crawl.
fn cfg_for_replay() -> CrawlConfig {
    let robots = RobotsTxt::parse("User-agent: *\nDisallow: /search\nDisallow: /*.json$\n");
    CrawlConfig {
        budget: Budget::Requests(600),
        url_filter: Some(robots_filter(robots, "sbcrawl")),
        seed: 1,
        ..Default::default()
    }
}
