//! The value-driven batch frontier (PR 10): Crawl4LLM-style top-k
//! selection with composable scorers.
//!
//! Queue strategies pop one URL at a time in insertion order; the
//! `ValueStrategy` instead *ranks its whole frontier* with a weighted mix
//! of scorers — a depth/link-length prior, the online URL classifier's
//! confidence, a near-duplicate URL-shape penalty and a per-directory
//! bandit — and hands the session the top-k in one pass. With
//! `max_in_flight > 1` the session asks for exactly enough selections to
//! fill the in-flight window, so one ranking pass feeds one window-fill.
//!
//! This example pits BFS against the value frontier under a request
//! budget far too small to exhaust the site (ordering is the whole game),
//! then shows the `rating_methods`-style spec string that configures the
//! scorer mix.
//!
//! Run with: `cargo run --release --example value_crawl`

use sb_crawler::strategies::{QueueStrategy, ValueSpec, ValueStrategy};
use sb_crawler::strategy::Strategy;
use sb_crawler::{Budget, CrawlConfig, CrawlSession};
use sb_httpsim::SiteServer;
use sb_webgraph::{build_site, SiteSpec};
use std::sync::Arc;

fn main() {
    // A 2000-page site, 400 GETs: ~1 request per 5 pages. Every wasted
    // fetch is a target not found.
    let site = Arc::new(build_site(&SiteSpec::demo(2000), 42));
    let root = site.page(site.root()).url.clone();
    let budget = Budget::Requests(400);

    let run = |strategy: &mut dyn Strategy, window: usize| {
        let server = SiteServer::shared(Arc::clone(&site));
        let cfg = CrawlConfig::builder()
            .budget(budget)
            .max_in_flight(window)
            .build()
            .expect("valid config");
        CrawlSession::new(&server, None, &root, strategy, &cfg)
            .expect("valid root")
            .run()
    };

    println!("== 2000-page site, 400-request budget: targets per GET ==");
    let mut bfs = QueueStrategy::bfs();
    let out = run(&mut bfs, 1);
    let bfs_quality = out.targets_found() as f64 / out.traffic.requests().max(1) as f64;
    println!(
        "  {:<40} {:>3} targets  {:.4}/GET",
        "BFS (frontier order)",
        out.targets_found(),
        bfs_quality
    );

    // The default mix: depth prior + classifier confidence (heaviest) +
    // near-dup penalty + directory bandit. Batch = in-flight window.
    for window in [1usize, 4, 16] {
        let mut value = ValueStrategy::default_mix();
        let out = run(&mut value, window);
        let quality = out.targets_found() as f64 / out.traffic.requests().max(1) as f64;
        println!(
            "  {:<40} {:>3} targets  {:.4}/GET  ({:.2}x BFS)",
            format!("VALUE default mix, batch={window}"),
            out.targets_found(),
            quality,
            quality / bfs_quality.max(1e-12),
        );
    }

    // The mix is configured `rating_methods`-style: `name[:weight]`
    // entries, unknown names rejected at parse time. Here: classifier
    // only, no exploration terms — a pure exploitation frontier.
    println!("\n== Custom scorer mix: classifier-only ==");
    let spec = ValueSpec::parse("classifier:1.0").expect("known scorer name");
    let mut value = ValueStrategy::from_spec(&spec);
    println!("  strategy name: {}", value.name());
    let out = run(&mut value, 8);
    println!(
        "  {} targets in {} GETs ({:.4}/GET)",
        out.targets_found(),
        out.traffic.requests(),
        out.targets_found() as f64 / out.traffic.requests().max(1) as f64,
    );
}
