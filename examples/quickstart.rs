//! Quickstart: generate a small statistics portal, crawl it with
//! SB-CLASSIFIER under a request budget, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sbcrawl::crawler::engine::{crawl, Budget, CrawlConfig};
use sbcrawl::crawler::strategies::SbStrategy;
use sbcrawl::httpsim::SiteServer;
use sbcrawl::webgraph::{build_site, SiteSpec};

fn main() {
    // A ~1 000-page synthetic site: hubs, catalogs, articles, dead links,
    // redirects, and 250-odd data files to find.
    let spec = SiteSpec::demo(1000);
    let site = build_site(&spec, 42);
    let census = site.census();
    println!(
        "site: {} pages ({} HTML, {} targets), {:.1}% of HTML pages link to targets",
        census.available, census.html, census.targets, census.html_to_target_pct
    );

    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);

    // The paper's crawler with default hyper-parameters:
    // LR/URL_ONLY classifier (b=10), θ=0.75, n=2, α=2√2.
    let mut strategy = SbStrategy::classifier_default();
    let cfg = CrawlConfig {
        budget: Budget::Requests(400), // crawl ≤ 400 requests of a ~1k-page site
        seed: 7,
        ..Default::default()
    };
    let outcome = crawl(&server, None, &root, &mut strategy, &cfg);

    let tr = outcome.traffic;
    println!(
        "crawl:  {} GET + {} HEAD requests, {:.1} MB down, ~{:.0} min simulated wall-clock",
        tr.get_requests,
        tr.head_requests,
        tr.total_bytes() as f64 / 1e6,
        tr.elapsed_secs / 60.0
    );
    println!(
        "found:  {} / {} targets ({:.0}%) using {:.0}% of the requests a full crawl needs",
        outcome.targets_found(),
        census.targets,
        100.0 * outcome.targets_found() as f64 / census.targets as f64,
        100.0 * tr.requests() as f64 / census.available as f64,
    );
    println!("learned {} tag-path actions; top rewarding groups:", outcome.report.n_actions);
    let mut arms = outcome.report.arms;
    arms.sort_by(|a, b| b.mean_reward.total_cmp(&a.mean_reward));
    for arm in arms.iter().take(5) {
        println!(
            "  reward {:>6.2} (pulled {:>3}×, {:>3} paths)  {}",
            arm.mean_reward, arm.pulls, arm.members, arm.exemplar
        );
    }
}
