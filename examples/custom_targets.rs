//! Custom target definitions: the paper's target set is "data files", but
//! Sec 2.2 notes *any* MIME list works. Here we hunt PDFs only, with a
//! custom blocklist, and compare against the default 38-type policy.
//!
//! ```sh
//! cargo run --release --example custom_targets
//! ```

use sbcrawl::crawler::engine::{crawl, CrawlConfig};
use sbcrawl::crawler::strategies::SbStrategy;
use sbcrawl::httpsim::SiteServer;
use sbcrawl::webgraph::{build_site, MimePolicy, PageKind, SiteSpec};

fn main() {
    let spec = SiteSpec::demo(800);
    let site = build_site(&spec, 5);
    let pdf_ground_truth = site
        .pages()
        .iter()
        .filter(|p| matches!(&p.kind, PageKind::Target { mime, .. } if *mime == "application/pdf"))
        .count();
    let all_targets = site.n_targets();
    println!("site has {all_targets} data files, of which {pdf_ground_truth} PDFs\n");

    let root = site.page(site.root()).url.clone();

    // Default policy: all 38 target MIME types of the paper's appendix.
    let server = SiteServer::new(site.clone());
    let mut sb = SbStrategy::classifier_default();
    let out = crawl(&server, None, &root, &mut sb, &CrawlConfig::default());
    println!("default policy:  {} targets retrieved", out.targets_found());

    // PDF-only policy, and don't even download spreadsheets by blocking
    // their extensions outright (saves requests before classification).
    let pdf_policy = MimePolicy::with_targets(["application/pdf", "application/x-pdf"])
        .with_blocked_extensions([
            // multimedia as usual…
            "png", "jpg", "jpeg", "gif", "svg", "mp3", "mp4",
            // …plus everything tabular we don't want today:
            "csv", "tsv", "xls", "xlsx", "ods", "zip", "gz", "json", "yaml",
        ]);
    let server = SiteServer::new(site.clone());
    let mut sb = SbStrategy::classifier_default();
    let cfg = CrawlConfig { policy: pdf_policy, ..Default::default() };
    let out_pdf = crawl(&server, None, &root, &mut sb, &cfg);
    println!(
        "pdf-only policy: {} targets retrieved ({} exist), {:.0}% of the default policy's volume",
        out_pdf.targets_found(),
        pdf_ground_truth,
        100.0 * out_pdf.traffic.target_bytes as f64 / out.traffic.target_bytes.max(1) as f64
    );
}
