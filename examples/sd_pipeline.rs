//! End-to-end statistics-data acquisition: crawl a statistics office site,
//! keep the target bodies, and mine them for statistic tables — the paper's
//! full motivation (Sec 1) in one program, with the Table 7 measurement at
//! the end.
//!
//! ```sh
//! cargo run --release --example sd_pipeline
//! ```

use sbcrawl::crawler::engine::{crawl, CrawlConfig};
use sbcrawl::crawler::strategies::SbStrategy;
use sbcrawl::httpsim::SiteServer;
use sbcrawl::sdetect::detect_tables;
use sbcrawl::webgraph::{build_site, profile};
use std::collections::BTreeMap;

fn main() {
    // INSEE-like profile: 41 % of HTML pages link to targets, CSV-heavy.
    let spec = profile("is").expect("is is a Table 1 profile").scaled(0.01);
    let site = build_site(&spec, 9);
    println!("crawling {} (scaled: {} pages)…", spec.name, site.census().available);

    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    let mut sb = SbStrategy::classifier_default();
    let cfg = CrawlConfig { keep_target_bodies: true, seed: 4, ..Default::default() };
    let out = crawl(&server, None, &root, &mut sb, &cfg);
    println!("retrieved {} targets in {} requests\n", out.targets_found(), out.traffic.requests());

    // Mine every retrieved file for statistic tables.
    let mut by_format: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    let mut with_sd = 0usize;
    let mut total_tables = 0usize;
    for t in &out.targets {
        let body = t.body.as_deref().unwrap_or(&[]);
        let d = detect_tables(body, &t.mime);
        let e = by_format.entry(format!("{:?}", d.format)).or_default();
        e.0 += 1;
        if d.has_sd() {
            e.1 += 1;
            e.2 += d.n_tables();
            with_sd += 1;
            total_tables += d.n_tables();
        }
    }
    println!("{:<14} {:>7} {:>9} {:>8}", "format", "files", "with SDs", "tables");
    for (fmt, (files, sd, tables)) in &by_format {
        println!("{fmt:<14} {files:>7} {sd:>9} {tables:>8}");
    }
    println!(
        "\nSD yield: {:.0}% of retrieved targets contain ≥1 statistic table; {:.1} tables per SD-bearing file",
        100.0 * with_sd as f64 / out.targets.len().max(1) as f64,
        total_tables as f64 / with_sd.max(1) as f64
    );
}
