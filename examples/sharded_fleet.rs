//! The sharded parallel fleet driver (PR 8): real multi-core wall-clock
//! speedup with whole-site work stealing.
//!
//! The shared pool (PR 5) multiplexes the fleet through one window on one
//! driver thread — a deliberate determinism trade that leaves every other
//! core idle. `FleetMode::Sharded` hashes sites onto P shards, gives each
//! shard its own pool and driver thread, and lets a drained shard steal
//! whole *pending* sites (no session, nothing in flight) from the
//! most-loaded shard's backlog. Because every site is still driven start
//! to finish by exactly one pool under the deterministic single-pool
//! schedule, per-site results are **shard-count invariant** — the ladder
//! below asserts coverage identical to P=1 at every rung while the shard
//! count buys wall-clock.
//!
//! Run with: `cargo run --release --example sharded_fleet`

use sb_crawler::fleet::{Fleet, FleetJob, FleetMode, FleetOutcome, SharedServer};
use sb_crawler::strategies::QueueStrategy;
use sb_httpsim::SiteServer;
use sb_webgraph::{build_site, SiteSpec, Website};
use std::sync::Arc;

fn build_fleet(sites: &[Arc<Website>], mode: FleetMode) -> Fleet {
    let mut fleet = Fleet::new(1).mode(mode);
    for (i, site) in sites.iter().enumerate() {
        let root = site.page(site.root()).url.clone();
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        fleet.push(FleetJob::new(format!("site-{i}"), server, root, || {
            Box::new(QueueStrategy::bfs())
        }));
    }
    fleet
}

fn coverage(out: &FleetOutcome) -> Vec<(u64, u64)> {
    out.sites
        .iter()
        .map(|r| {
            let o = r.expect_outcome();
            (o.targets_found(), o.traffic.requests())
        })
        .collect()
}

fn main() {
    let sites: Vec<Arc<Website>> =
        (0..8u64).map(|i| Arc::new(build_site(&SiteSpec::demo(400), i))).collect();

    // Warm the per-site render caches (shared through the `Arc<Website>`s)
    // so the first rung doesn't absorb one-time rendering cost and the
    // wall-clock ratios below compare scheduling, not cache misses.
    build_fleet(&sites, FleetMode::Sharded { shards: 1, max_in_flight: 1 }).run();

    println!("== 8 sites through the sharded driver, P = 1 / 2 / 4 ==");
    let mut baseline: Option<(f64, Vec<(u64, u64)>)> = None;
    for shards in [1usize, 2, 4] {
        let out = build_fleet(&sites, FleetMode::Sharded { shards, max_in_flight: 1 }).run();
        let cov = coverage(&out);
        let (base_wall, base_cov) = baseline.get_or_insert((out.wall_secs, cov.clone()));

        // The load-bearing property: shards may only buy wall-clock —
        // per-site coverage is identical to the single-shard run.
        assert_eq!(&cov, base_cov, "shard count changed a per-site result");

        println!(
            "  P={shards}: {} targets, {} requests, {} sites stolen, \
             {:.3}s wall ({:.2}x vs P=1)",
            out.targets,
            out.traffic.requests(),
            out.stolen_sites(),
            out.wall_secs,
            *base_wall / out.wall_secs.max(1e-9),
        );
        for (s, report) in out.shards.iter().enumerate() {
            println!(
                "      shard {s}: {} sites ({} stolen), pool clock {:.1} simulated min",
                report.sites,
                report.stolen,
                report.sim_makespan_secs / 60.0
            );
        }
    }

    // Work stealing on display: pin every site to shard 0 of a two-shard
    // fleet — shard 1 can only ever drive sites it stole, and results
    // still cannot move.
    println!("\n== all sites pinned to shard 0; shard 1 must steal to help ==");
    let out = build_fleet(&sites, FleetMode::Sharded { shards: 2, max_in_flight: 1 })
        .shard_assignment(vec![0; 8])
        .run();
    assert_eq!(&coverage(&out), &baseline.unwrap().1, "stealing changed a per-site result");
    for (s, report) in out.shards.iter().enumerate() {
        println!("  shard {s}: drove {} sites, stole {}", report.sites, report.stolen);
    }
    println!("coverage: identical to the unpinned ladder (asserted)");
}
