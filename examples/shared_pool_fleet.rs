//! The shared fleet transport pool (PR 5): one bounded in-flight window
//! multiplexed across every site of a fleet.
//!
//! Per-site transports give every site its own window — a site stalled
//! behind its politeness gate cannot lend its idle connection slots to
//! anyone else, and N sites never share in-flight capacity. The shared
//! pool models one crawler machine with `max_in_flight` connections
//! serving the whole fleet: politeness is still enforced per host (each
//! site's gate ticks independently), but capacity is global, so the
//! fleet's simulated makespan collapses from "serial sum of sites" at
//! window 1 toward "slowest single host" once the window covers the
//! fleet.
//!
//! The walkthrough crawls the same 6 sites three ways and prints the
//! ladder:
//!
//! 1. per-site transports (the PR 4 fleet),
//! 2. shared pool at global window 1 — byte-identical per-site results,
//!    serial makespan,
//! 3. shared pool at global window 16 — identical coverage, concurrent
//!    politeness waits.
//!
//! Run with: `cargo run --release --example shared_pool_fleet`

use sb_crawler::fleet::{Fleet, FleetJob, FleetMode, FleetOutcome, SharedServer};
use sb_crawler::strategies::QueueStrategy;
use sb_webgraph::{build_site, SiteSpec, Website};
use sb_httpsim::SiteServer;
use std::sync::Arc;

fn build_fleet(sites: &[Arc<Website>], mode: FleetMode) -> Fleet {
    let mut fleet = Fleet::new(3).mode(mode);
    for (i, site) in sites.iter().enumerate() {
        let root = site.page(site.root()).url.clone();
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        fleet.push(FleetJob::new(format!("site-{i}"), server, root, || {
            Box::new(QueueStrategy::bfs())
        }));
    }
    fleet
}

fn targets_per_site(out: &FleetOutcome) -> Vec<u64> {
    out.sites.iter().map(|r| r.expect_outcome().targets_found()).collect()
}

fn main() {
    let sites: Vec<Arc<Website>> =
        (0..6u64).map(|i| Arc::new(build_site(&SiteSpec::demo(250), i))).collect();

    println!("== 6 sites, three transport layouts ==");
    let per_site = build_fleet(&sites, FleetMode::PerSite).run();
    let pool_1 = build_fleet(&sites, FleetMode::SharedPool { max_in_flight: 1 }).run();
    let pool_16 = build_fleet(&sites, FleetMode::SharedPool { max_in_flight: 16 }).run();

    // Coverage is transport-invariant: the pool reorders *when* fetches
    // happen across the fleet, never what an exhaustive crawl finds.
    assert_eq!(targets_per_site(&per_site), targets_per_site(&pool_1));
    assert_eq!(targets_per_site(&per_site), targets_per_site(&pool_16));

    for (name, out) in [
        ("per-site transports  ", &per_site),
        ("shared pool, window 1", &pool_1),
        ("shared pool, window 16", &pool_16),
    ] {
        println!(
            "  {}: {} targets, {} requests, simulated makespan {:.1} min",
            name,
            out.targets,
            out.traffic.requests(),
            out.sim_makespan_secs() / 60.0
        );
    }
    println!(
        "\nwindow 16 vs window 1: {:.2}x makespan improvement, identical coverage",
        pool_1.sim_makespan_secs() / pool_16.sim_makespan_secs()
    );

    // Per-site detail under the wide window: every handle reads its own
    // cost counters off the shared clock.
    println!("\n== per-site outcomes through the shared pool (window 16) ==");
    for report in &pool_16.sites {
        let o = report.expect_outcome();
        println!(
            "  {}: {} targets in {} requests, last delivery at {:.1} simulated min",
            report.name,
            o.targets_found(),
            o.traffic.requests(),
            o.traffic.elapsed_secs / 60.0
        );
    }
}
