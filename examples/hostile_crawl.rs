//! The hostile-web scenario pack (PR 6): hazard-laced sites, transport
//! retries, the circuit breaker, and the automatic robots flow.
//!
//! Real crawl targets are not clean demo graphs: they hide calendar traps
//! behind innocuous links, answer errors with 200-status bodies, 503 at
//! random, and stall on heavy-tailed latency. This example walks the PR 6
//! toolkit end to end:
//!
//! 1. `apply_hazards` weaves a trap, a redirect farm, soft-404s and
//!    near-duplicate clusters into a generated site — only repurposing
//!    already-dead URLs, so the clean subspace is untouched;
//! 2. a budgeted BFS crawl shows the waste those hazards extract, measured
//!    against the `HazardReport` ground truth;
//! 3. a flaky origin behind `RetryPolicy` (capped exponential backoff,
//!    seeded jitter) shows transient failures recovered and hard failures
//!    classified into the per-reason abandon counters;
//! 4. a blackout origin trips the per-host circuit breaker: the host is
//!    quarantined and the rest of the frontier drains at zero cost;
//! 5. `CrawlConfig::robots_agent` makes the session fetch robots.txt on
//!    its own and route `Crawl-delay` into the transport gate.
//!
//! Run with: `cargo run --release --example hostile_crawl`

use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{Budget, CrawlConfig, CrawlSession, EventLog, OwnedEvent};
use sb_httpsim::{
    FlakyServer, HazardPolicy, HttpServer, PipelinedTransport, Politeness, RetryPolicy,
    SiteServer, TailLatency, WithRobots,
};
use sb_webgraph::gen::hazard::{apply_hazards, HazardSpec};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::{build_site, SiteSpec};
use std::sync::Arc;

fn politeness() -> Politeness {
    Politeness { delay_secs: 0.25, bytes_per_sec: 256_000.0 }
}

fn main() {
    // -- 1. Lace a generated site with every hazard profile. ------------
    let mut site = build_site(&SiteSpec::demo(600), 42);
    let report = apply_hazards(&mut site, &HazardSpec::scaled(600), 7);
    println!("== Hazard overlay on a 600-page site ==");
    println!(
        "  {} trap pages, {} farm redirects, {} loop URLs, {} soft-404s, {} duplicate clones",
        report.trap_ids.len(),
        report.farm_ids.len(),
        report.loop_ids.len(),
        report.soft404_ids.len(),
        report.dup_ids.len(),
    );
    let site = Arc::new(site);
    let root = site.page(site.root()).url.clone();

    // -- 2. What do the hazards cost a budgeted BFS crawl? ---------------
    let server = SiteServer::shared(Arc::clone(&site));
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(500), ..Default::default() };
    let mut log = EventLog::new();
    let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .observe(&mut log)
        .run();
    let wasted = log
        .events()
        .iter()
        .filter(|e| matches!(e, OwnedEvent::Fetched { url, .. } if report.is_hazard_url(url)))
        .count();
    println!("\n== Budgeted BFS on the laced site ==");
    println!(
        "  {} requests, {} targets; {wasted} requests ({:.1} %) answered inside the hazard subspace",
        out.traffic.requests(),
        out.targets_found(),
        100.0 * wasted as f64 / out.traffic.requests() as f64,
    );

    // -- 3. Retries over a flaky origin, abandon reasons counted. --------
    // 30 % of URLs fail on first contact but recover on the retry; the
    // heavy latency tail occasionally blows the 10 s timeout three times
    // in a row and is abandoned as a timeout.
    let flaky = FlakyServer::new(SiteServer::shared(Arc::clone(&site)), 0.3, 11)
        .recoverable()
        .protecting(&root);
    let retry = RetryPolicy::retries(2).with_backoff(0.5, 8.0).with_jitter(0.2, 9);
    let hazards = HazardPolicy::seeded(17)
        .with_tail(TailLatency { prob: 0.2, scale_secs: 4.0, alpha: 1.3 })
        .with_timeout(10.0);
    let transport = PipelinedTransport::new(
        &flaky as &dyn HttpServer,
        MimePolicy::default(),
        politeness(),
    )
    .with_window(8)
    .with_retry_policy(retry)
    .with_hazards(hazards);
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(500), max_in_flight: 8, ..Default::default() };
    let out = CrawlSession::with_transport(Box::new(transport), None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    println!("\n== Flaky origin + heavy tail, 2 retries with jittered backoff ==");
    println!(
        "  {} requests (retries included), {} targets, {} transient failures injected",
        out.traffic.requests(),
        out.targets_found(),
        flaky.injected(),
    );
    println!(
        "  abandons by reason: {} http, {} timeout, {} retries-exhausted ({} total)",
        out.abandoned.http_error,
        out.abandoned.timeout,
        out.abandoned.retries_exhausted,
        out.abandoned.total(),
    );

    // -- 4. The circuit breaker against a blackout host. -----------------
    let blackout = FlakyServer::new(SiteServer::shared(Arc::clone(&site)), 1.0, 3).protecting(&root);
    let transport = PipelinedTransport::new(
        &blackout as &dyn HttpServer,
        MimePolicy::default(),
        politeness(),
    )
    .with_window(4)
    .with_retry_policy(RetryPolicy::retries(1).with_quarantine_after(3));
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(500), max_in_flight: 4, ..Default::default() };
    let out = CrawlSession::with_transport(Box::new(transport), None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    println!("\n== Blackout host, circuit breaker after 3 consecutive failures ==");
    println!(
        "  crawl ended after only {} requests; {} URLs quarantine-abandoned at zero cost",
        out.traffic.requests(),
        out.abandoned.quarantined,
    );

    // -- 5. robots.txt honoured automatically. ---------------------------
    let robots = WithRobots::new(
        SiteServer::shared(Arc::clone(&site)),
        &root,
        "User-agent: *\nCrawl-delay: 5",
    );
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig {
        budget: Budget::Requests(60),
        robots_agent: Some("sbcrawl".to_owned()),
        ..Default::default()
    };
    let out = CrawlSession::new(&robots, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    println!("\n== robots_agent: Crawl-delay 5 flows straight into the gate ==");
    println!(
        "  {} requests took {:.0} s simulated ({:.1} s/request — the configured politeness was {} s)",
        out.traffic.requests(),
        out.traffic.elapsed_secs,
        out.traffic.elapsed_secs / out.traffic.requests() as f64,
        CrawlConfig::default().politeness.delay_secs,
    );
}
