//! Step-driven sessions, event observers and the multi-site fleet.
//!
//! Three things the one-shot `crawl()` call cannot do:
//!
//! 1. **observe** a crawl while it runs (typed `CrawlEvent`s),
//! 2. **hold and step** a crawl — pause, inspect, resume, cancel,
//! 3. **interleave many sites** concurrently on worker threads.
//!
//! Run with: `cargo run --release --example fleet_crawl`

use sb_crawler::events::{CrawlEvent, CrawlObserver, CrawlSnapshot};
use sb_crawler::fleet::{Fleet, FleetJob, SharedServer};
use sb_crawler::strategies::{QueueStrategy, SbStrategy};
use sb_crawler::{Budget, CrawlConfig, CrawlSession};
use sb_httpsim::SiteServer;
use sb_webgraph::{build_site, SiteSpec};
use std::sync::Arc;

/// A tiny progress reporter: counts events, prints one line per target.
#[derive(Default)]
struct Progress {
    fetches: u64,
    links: u64,
}

impl CrawlObserver for Progress {
    fn on_event(&mut self, event: &CrawlEvent<'_>, snap: &CrawlSnapshot) {
        match event {
            CrawlEvent::Fetched { .. } => self.fetches += 1,
            CrawlEvent::LinkDiscovered { .. } => self.links += 1,
            CrawlEvent::TargetRetrieved { url, ordinal, .. } => {
                println!(
                    "  target #{ordinal}: {url} (after {} requests)",
                    snap.traffic.requests()
                );
            }
            CrawlEvent::SessionFinished { reason } => {
                println!("  finished: {reason:?} ({} fetches, {} links)", self.fetches, self.links);
            }
            _ => {}
        }
    }
}

fn main() {
    // ---- 1. One observed, step-driven session --------------------------
    println!("== step-driven session with an observer ==");
    let site = build_site(&SiteSpec::demo(400), 42);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    let cfg = CrawlConfig::builder()
        .budget(Budget::Requests(60))
        .build()
        .expect("valid config");
    let mut sb = SbStrategy::classifier_default();
    let mut progress = Progress::default();
    let mut session = CrawlSession::new(&server, None, &root, &mut sb, &cfg)
        .expect("valid root")
        .observe(&mut progress);

    // Step by hand: stop the moment five targets are in, budget unspent.
    while !session.is_finished() && session.targets_found() < 5 {
        let report = session.step();
        if report.new_targets > 0 {
            println!("  step {} landed {} target(s)", report.steps, report.new_targets);
        }
    }
    let outcome = session.finish();
    println!(
        "stepped crawl: {} targets, {} requests, reason {:?}\n",
        outcome.targets_found(),
        outcome.traffic.requests(),
        outcome.finish_reason
    );

    // ---- 2. A fleet of sites crawled concurrently ----------------------
    println!("== fleet: 6 sites on 3 workers ==");
    let mut fleet = Fleet::new(3);
    for i in 0..6u64 {
        let site = Arc::new(build_site(&SiteSpec::demo(300), i));
        let root = site.page(site.root()).url.clone();
        let server: SharedServer = Arc::new(SiteServer::shared(site));
        fleet.push(FleetJob::new(format!("site-{i}"), server, root, || {
            Box::new(QueueStrategy::bfs())
        }));
    }
    let out = fleet.run();
    for report in &out.sites {
        let o = report.expect_outcome();
        println!(
            "  {}: {} targets in {} requests ({:.1} simulated minutes)",
            report.name,
            o.targets_found(),
            o.traffic.requests(),
            o.traffic.elapsed_secs / 60.0
        );
    }
    println!(
        "fleet total: {} targets, {} requests in {:.2}s wall ({:.0} req/s)",
        out.targets,
        out.traffic.requests(),
        out.wall_secs,
        out.requests_per_sec()
    );
}
