//! Incremental recrawl: keep a statistics-portal mirror fresh.
//!
//! A newsroom mirrored a ministry site once; the ministry keeps publishing
//! new datasets in its data catalogs. This example evolves the site over
//! six months (epochs), gives each revisit policy the same small monthly
//! refresh budget, and compares how well each keeps the served mirror
//! fresh — the paper's Sec 6 "incremental revisits" future work.
//!
//! Since PR 9 this runs on the **continuous crawl-and-serve subsystem**
//! (`sbcrawl::serve`): one long-lived crawl session discovers the site,
//! a snapshot store serves it, and the policy schedules refreshes through
//! the same politeness/budget window. The older one-shot
//! `sbcrawl::revisit::recrawl` harness is deprecated for this use — it
//! rebuilds a fresh client per epoch and never serves what it fetched;
//! prefer `serve::serve_site` (see also `examples/crawl_and_serve.rs`).
//!
//! ```sh
//! cargo run --release --example incremental_recrawl
//! ```

use sbcrawl::crawler::Budget;
use sbcrawl::revisit::{
    ChangeModel, EvolvingSite, ProportionalRevisit, RevisitPolicy, RoundRobinRevisit,
    SleepingBanditRevisit, ThompsonGroupsRevisit,
};
use sbcrawl::serve::{serve_site, ServeConfig};
use sbcrawl::webgraph::{build_site, SiteSpec};

fn main() {
    // A ~1 500-page ministry-style site...
    let base = build_site(&SiteSpec::demo(1500), 2026);
    println!(
        "base site: {} pages, {} targets",
        base.census().available,
        base.census().targets
    );

    // ...that publishes ~12 new datasets and 2 release notes per month,
    // concentrated in two live sections, refreshes 2 % of its files and
    // retires a few old articles.
    let model = ChangeModel {
        epochs: 7, // base + 6 months
        new_targets_per_epoch: 12.0,
        new_articles_per_epoch: 2.0,
        target_update_frac: 0.02,
        death_frac: 0.003,
        hot_sections: 2,
    };
    let site = EvolvingSite::evolve(base, &model, 2026);
    let published: usize = (1..site.epochs())
        .map(|e| site.events(e).new_target_urls.len())
        .sum();
    println!(
        "evolution: {} epochs, {} new targets published, hot sections {:?}\n",
        site.epochs() - 1,
        published,
        site.hot_sections()
    );

    // Each policy gets the same monthly refresh budget: 8 % of the site,
    // riding one continuous session (readers off → deterministic runs).
    let monthly = (site.snapshot(0).len() as f64 * 0.08) as usize;
    println!("monthly refresh budget: {monthly} refetches\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "policy", "refreshes", "changed", "failed", "stale p50", "stale p99"
    );

    let policies: Vec<Box<dyn RevisitPolicy>> = vec![
        Box::new(RoundRobinRevisit::default()),
        Box::new(ProportionalRevisit::default()),
        Box::new(ThompsonGroupsRevisit::default()),
        Box::new(SleepingBanditRevisit::default()),
    ];
    for mut policy in policies {
        let cfg = ServeConfig {
            change: model.clone(),
            seed: 7,
            window: 2,
            discovery_requests: 2_000,
            refresh_per_epoch: monthly,
            retain: 1,
            budget: Budget::Unlimited,
            read: None,
        };
        let out = serve_site(&site, policy.as_mut(), &cfg);
        let r = out.outcome.refresh;
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>10.1} {:>10.1}",
            policy.name(),
            r.completed,
            r.changed,
            r.failed,
            out.staleness_p50,
            out.staleness_p99,
        );
    }

    // Show what the paper-native scheduler learned: the tag-path groups it
    // considers worth refreshing.
    let mut sb = SleepingBanditRevisit::default();
    let cfg = ServeConfig {
        change: model.clone(),
        seed: 7,
        refresh_per_epoch: monthly,
        discovery_requests: 2_000,
        ..ServeConfig::default()
    };
    serve_site(&site, &mut sb, &cfg);
    let mut arms = sb.arm_summary();
    arms.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\ntop refresh groups by mean reward (sleeping bandit):");
    for (path, pulls, mean) in arms.iter().take(3) {
        let tail: String = path
            .chars()
            .rev()
            .take(48)
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        println!("  {mean:>6.2} mean reward, {pulls:>4} pulls  …{tail}");
    }
}
