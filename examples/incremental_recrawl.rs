//! Incremental recrawl: keep a statistics-portal mirror fresh.
//!
//! A newsroom mirrored a ministry site once; the ministry keeps publishing
//! new datasets in its data catalogs. This example evolves the site over
//! six months (epochs), gives each revisit policy the same small monthly
//! request budget, and compares how much of the newly published data each
//! one retrieves — the paper's Sec 6 "incremental revisits" future work.
//!
//! ```sh
//! cargo run --release --example incremental_recrawl
//! ```

use sbcrawl::revisit::{
    recrawl, ChangeModel, EvolvingSite, ProportionalRevisit, RecrawlConfig, RevisitPolicy,
    RoundRobinRevisit, SleepingBanditRevisit, ThompsonGroupsRevisit,
};
use sbcrawl::webgraph::{build_site, SiteSpec};

fn main() {
    // A ~1 500-page ministry-style site...
    let base = build_site(&SiteSpec::demo(1500), 2026);
    println!(
        "base site: {} pages, {} targets",
        base.census().available,
        base.census().targets
    );

    // ...that publishes ~12 new datasets and 2 release notes per month,
    // concentrated in two live sections, refreshes 2 % of its files and
    // retires a few old articles.
    let model = ChangeModel {
        epochs: 7, // base + 6 months
        new_targets_per_epoch: 12.0,
        new_articles_per_epoch: 2.0,
        target_update_frac: 0.02,
        death_frac: 0.003,
        hot_sections: 2,
    };
    let site = EvolvingSite::evolve(base, &model, 2026);
    let published: usize = (1..site.epochs()).map(|e| site.events(e).new_target_urls.len()).sum();
    println!(
        "evolution: {} epochs, {} new targets published, hot sections {:?}\n",
        site.epochs() - 1,
        published,
        site.hot_sections()
    );

    // Each policy gets the same monthly budget: 8 % of the site.
    let budget = (site.snapshot(0).len() as f64 * 0.08) as u64;
    println!("monthly revisit budget: {budget} requests\n");
    println!(
        "{:<16} {:>9} {:>12} {:>11} {:>13}",
        "policy", "requests", "new targets", "recall (%)", "HTML fresh (%)"
    );

    let policies: Vec<Box<dyn RevisitPolicy>> = vec![
        Box::new(RoundRobinRevisit::default()),
        Box::new(ProportionalRevisit::default()),
        Box::new(ThompsonGroupsRevisit::default()),
        Box::new(SleepingBanditRevisit::default()),
    ];
    for mut policy in policies {
        let cfg = RecrawlConfig { per_epoch_requests: budget, seed: 7, ..Default::default() };
        let out = recrawl(&site, policy.as_mut(), &cfg);
        let last = out.epochs.last().expect("epochs ran");
        println!(
            "{:<16} {:>9} {:>12} {:>11.1} {:>13.1}",
            out.policy_name,
            out.revisit_requests(),
            out.new_targets_found(),
            100.0 * out.final_recall(),
            100.0 * last.html_freshness,
        );
    }

    // Show what the paper-native scheduler learned: the tag-path groups it
    // considers worth revisiting.
    let mut sb = SleepingBanditRevisit::default();
    let cfg = RecrawlConfig { per_epoch_requests: budget, seed: 7, ..Default::default() };
    recrawl(&site, &mut sb, &cfg);
    let mut arms = sb.arm_summary();
    arms.sort_by(|a, b| b.2.total_cmp(&a.2));
    println!("\ntop revisit groups by mean reward (sleeping bandit):");
    for (path, pulls, mean) in arms.iter().take(3) {
        let tail: String = path.chars().rev().take(48).collect::<String>().chars().rev().collect();
        println!("  {mean:>6.2} mean reward, {pulls:>4} pulls  …{tail}");
    }
}
