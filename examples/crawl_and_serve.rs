//! Continuous crawl-and-serve: a mirror that stays fresh *while being read*.
//!
//! The paper's pipeline ends with acquired data being consumed at scale.
//! This walkthrough runs the PR 9 subsystem end to end: one crawl session
//! discovers a statistics portal into a lock-free snapshot store, the
//! origin keeps publishing, a Thompson-sampling revisit policy schedules
//! refreshes by estimated-change × read-popularity, and two Zipf reader
//! threads hammer the store the whole time — measuring read throughput
//! and the age of what they were served.
//!
//! ```sh
//! cargo run --release --example crawl_and_serve
//! ```

use sbcrawl::crawler::Budget;
use sbcrawl::revisit::{ChangeModel, ThompsonGroupsRevisit};
use sbcrawl::serve::{crawl_and_serve, ReadLoadConfig, ServeConfig};
use sbcrawl::webgraph::{build_site, SiteSpec};

fn main() {
    let base = build_site(&SiteSpec::demo(900), 1848);
    println!(
        "origin: {} pages, {} targets",
        base.census().available,
        base.census().targets
    );

    let cfg = ServeConfig {
        change: ChangeModel {
            epochs: 6,
            new_targets_per_epoch: 10.0,
            target_update_frac: 0.03,
            ..ChangeModel::default()
        },
        seed: 42,
        window: 4,
        discovery_requests: 1_200,
        refresh_per_epoch: 60,
        retain: 2,
        budget: Budget::Unlimited,
        read: Some(ReadLoadConfig {
            readers: 2,
            reads_per_reader: 20_000,
            zipf_s: 1.1,
            seed: 42,
        }),
    };

    let mut policy = ThompsonGroupsRevisit::default();
    let out = crawl_and_serve(base, &mut policy, &cfg);

    let r = out.outcome.refresh;
    println!("\nserved corpus: {} pages", out.store.len());
    println!(
        "refresh traffic: {} scheduled, {} completed ({} changed, {} unchanged), {} failed",
        r.scheduled, r.completed, r.changed, r.unchanged, r.failed
    );
    println!(
        "read workload:  {} reads at {:.0} QPS across {} refresh epochs",
        out.read.reads,
        out.read.qps,
        cfg.change.epochs - 1
    );
    println!(
        "staleness SLA:  p50 = {:.1} epochs, p99 = {:.1} epochs",
        out.staleness_p50, out.staleness_p99
    );

    // The popularity signal at work: the most-read pages and how fresh
    // their served copies ended up.
    let mut by_reads: Vec<_> = out
        .store
        .urls()
        .into_iter()
        .map(|u| (out.store.reads(&u), out.store.generation(&u), u))
        .collect();
    by_reads.sort_by(|a, b| b.0.cmp(&a.0));
    println!("\nhottest pages (reads → served generation):");
    for (reads, generation, url) in by_reads.iter().take(5) {
        println!("  {reads:>7} reads  gen {generation:>2}  {url}");
    }

    // Popularity feeds the refresh priority, so the read-hot pages should
    // dominate the schedule (generations only advance when a refetch
    // actually changed — unchanged refreshes keep serving the same
    // version).
    let scheduled_hot = by_reads
        .iter()
        .take(20)
        .filter(|(_, _, url)| out.schedule.iter().any(|s| s.as_str() == &**url))
        .count();
    println!("\n{scheduled_hot}/20 hottest pages were scheduled for refresh");
}
