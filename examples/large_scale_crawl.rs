//! Memory-bounded crawling at scale (PR 7).
//!
//! The paper's experiments crawl ~4k-page sites, where keeping everything
//! in memory — every rendered body, every frontier id, a fully parsed URL
//! per visited entry — is free. At the 10⁵–10⁶ pages of a pretraining-data
//! acquisition crawl it is not. This example crawls a **100 000-page**
//! generated site with every unbounded structure swapped for its
//! `sb_scale` counterpart:
//!
//! * the server is backed by a [`StreamingSite`] — same deterministic
//!   graph as the eager `Website` (byte-identical pages, pinned by
//!   proptest), but packed into dense arenas + CSR adjacency, rendering
//!   bodies on demand through a bounded FIFO cache;
//! * the BFS frontier is a spill-backed [`SpillQueue`]: at most ~4096 ids
//!   in memory, the middle of the queue parked in an arena, pop order
//!   *exactly* FIFO;
//! * the visited set keeps full interner entries for the first 8192 URLs
//!   and 64-bit fingerprints past that, with collision accounting.
//!
//! The session's `MemGauges` (on every `StepReport`) prove the bounds
//! hold while the crawl runs — this is the same wiring the `xp scale`
//! ladder uses to record its RSS/throughput table.
//!
//! Run with: `cargo run --release --example large_scale_crawl`

use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{CrawlConfig, CrawlSession};
use sb_httpsim::SiteServer;
use sb_scale::{stream_site, SpillBacking};
use sb_webgraph::gen::{SiteSource, SiteSpec};
use std::sync::Arc;

const PAGES: usize = 100_000;
const FRONTIER_CAP: usize = 4096;
const VISITED_THRESHOLD: usize = 8192;

fn main() {
    println!("== building a {PAGES}-page streaming site (packed arenas, no SitePage structs) ==");
    let t0 = std::time::Instant::now();
    let site = Arc::new(
        stream_site(&SiteSpec::demo(PAGES), 42)
            // Bounded body caches: ~16 MiB of rendered HTML, whatever the
            // site size. (Budgets of u64::MAX would cache everything.)
            .with_render_cache_budget(16 << 20)
            .with_target_cache_budget(32 << 20),
    );
    println!(
        "   built in {:.2?}; static footprint ≈{:.1} MB for {} pages",
        t0.elapsed(),
        site.static_bytes() as f64 / (1024.0 * 1024.0),
        site.n_pages(),
    );

    let root = site.url(site.root()).to_owned();
    let server = SiteServer::from_source(Arc::clone(&site) as Arc<dyn SiteSource>);

    // BFS whose frontier spills to an in-memory arena past FRONTIER_CAP
    // ids (SpillBacking::Disk writes fixed-size chunks to an unlinked
    // temp file instead — same pop order either way).
    let mut bfs = QueueStrategy::bfs_spilling(FRONTIER_CAP, SpillBacking::Memory);
    let cfg = CrawlConfig {
        compact_visited_threshold: VISITED_THRESHOLD,
        ..Default::default()
    };
    let mut session = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .expect("generated root URL is valid");

    println!("== BFS to exhaustion, memory-bounded ==");
    let t1 = std::time::Instant::now();
    let mut peak_in_mem = 0usize;
    let mut peak_spilled = 0usize;
    let mut peak_visited_mb = 0.0f64;
    let mut steps = 0u64;
    while !session.is_finished() {
        let report = session.step();
        let m = report.mem;
        peak_in_mem = peak_in_mem.max(m.frontier_len - m.frontier_spilled);
        peak_spilled = peak_spilled.max(m.frontier_spilled);
        peak_visited_mb = peak_visited_mb.max(m.visited_bytes as f64 / (1024.0 * 1024.0));
        steps += 1;
        if steps % 20_000 == 0 {
            println!(
                "   step {:>7}: {:>6} targets, frontier {:>6} ({} spilled), visited {:>7} URLs ≈{:.1} MB",
                steps,
                session.targets_found(),
                m.frontier_len,
                m.frontier_spilled,
                m.visited_urls,
                m.visited_bytes as f64 / (1024.0 * 1024.0),
            );
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    let out = session.finish();

    println!("\n== done ==");
    println!(
        "   {} pages crawled, {} targets, in {:.1}s ({:.0} pages/s)",
        out.pages_crawled,
        out.targets_found(),
        elapsed,
        out.pages_crawled as f64 / elapsed,
    );
    println!(
        "   peak in-memory frontier: {peak_in_mem} ids (cap {FRONTIER_CAP}); \
         peak spilled: {peak_spilled} ids"
    );
    println!(
        "   visited set peak ≈{peak_visited_mb:.1} MB for {} URLs \
         (exact entries capped at {VISITED_THRESHOLD})",
        out.pages_crawled,
    );
    assert!(
        peak_in_mem <= FRONTIER_CAP + FRONTIER_CAP / 4,
        "frontier cap violated: {peak_in_mem} ids in memory"
    );
    assert!(peak_spilled > 0, "a {PAGES}-page BFS must spill at cap {FRONTIER_CAP}");
}
