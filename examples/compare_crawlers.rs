//! Race all crawlers of the paper on the same site under the same budget
//! (a miniature of Figure 4 / Table 2).
//!
//! ```sh
//! cargo run --release --example compare_crawlers
//! ```

use sbcrawl::crawler::engine::{crawl, Budget, CrawlConfig, Oracle};
use sbcrawl::crawler::strategies::{
    FocusedStrategy, OmniscientStrategy, QueueStrategy, SbConfig, SbStrategy, TpOffStrategy,
};
use sbcrawl::crawler::strategy::Strategy;
use sbcrawl::httpsim::SiteServer;
use sbcrawl::webgraph::{build_site, SiteSpec, Website};

fn run_one(site: &Website, name: &str, strategy: &mut dyn Strategy, budget: u64) -> (String, u64, u64) {
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site.clone());
    let oracle: Option<&dyn Oracle> = Some(site);
    let cfg = CrawlConfig { budget: Budget::Requests(budget), seed: 3, ..Default::default() };
    let out = crawl(&server, oracle, &root, strategy, &cfg);
    (name.to_owned(), out.targets_found(), out.traffic.requests())
}

fn main() {
    let spec = SiteSpec::demo(1500);
    let site = build_site(&spec, 11);
    let census = site.census();
    let budget = (census.available / 3) as u64;
    println!(
        "site: {} pages, {} targets | budget: {} requests (~1/3 of the site)\n",
        census.available, census.targets, budget
    );

    let targets: Vec<String> =
        site.target_ids().iter().map(|&id| site.page(id).url.clone()).collect();
    let mut rows = vec![
        run_one(&site, "OMNISCIENT (bound)", &mut OmniscientStrategy::new(targets), budget),
        run_one(&site, "SB-ORACLE", &mut SbStrategy::oracle(SbConfig::default()), budget),
    ];
    rows.push(run_one(&site, "SB-CLASSIFIER", &mut SbStrategy::classifier_default(), budget));
    rows.push(run_one(&site, "FOCUSED", &mut FocusedStrategy::new(), budget));
    rows.push(run_one(&site, "TP-OFF", &mut TpOffStrategy::new(45), budget));
    rows.push(run_one(&site, "BFS", &mut QueueStrategy::bfs(), budget));
    rows.push(run_one(&site, "DFS", &mut QueueStrategy::dfs(), budget));
    rows.push(run_one(&site, "RANDOM", &mut QueueStrategy::random(), budget));

    println!("{:<20} {:>8} {:>10} {:>8}", "crawler", "targets", "requests", "recall");
    for (name, found, requests) in rows {
        println!(
            "{name:<20} {found:>8} {requests:>10} {:>7.1}%",
            100.0 * found as f64 / census.targets as f64
        );
    }
    println!("\n(Expected shape: OMNISCIENT ≥ SB-ORACLE ≥ SB-CLASSIFIER > FOCUSED/TP-OFF > BFS/DFS/RANDOM.)");
}
