//! The pipelined transport: intra-site parallel fetching (PR 4).
//!
//! One `CrawlSession` used to serialise on simulated latency — every GET
//! waited out the politeness delay *and* its transfer before the next URL
//! could even be requested. The nonblocking `Transport` keeps a bounded
//! window of requests in flight instead: transfers overlap, while the
//! per-host politeness gate still spaces dispatches a full delay apart.
//!
//! This example crawls one latency-simulated site three times (in-flight
//! window 1, 4, 16) and prints the simulated makespan of each run —
//! identical coverage, shrinking clock. It then shows the transport used
//! directly: submit/poll, a robots `Crawl-delay` raising the gate, and
//! retry-through-the-pipeline over a flaky origin.
//!
//! Run with: `cargo run --release --example pipelined_crawl`

use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{CrawlConfig, CrawlSession};
use sb_httpsim::transport::{PipelinedTransport, Request, Transport};
use sb_httpsim::{FlakyServer, Politeness, SiteServer};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::{build_site, SiteSpec};
use std::sync::Arc;

fn main() {
    // A slow simulated wire: 1 s politeness delay, 600 B/s link — each
    // page costs several seconds of transfer, the regime where pipelining
    // pays (a fast link is gate-bound and windows cannot help).
    let politeness = Politeness { delay_secs: 1.0, bytes_per_sec: 600.0 };
    let site = Arc::new(build_site(&SiteSpec::demo(800), 42));
    let root = site.page(site.root()).url.clone();

    println!("== BFS exhaustion of an 800-page latency-simulated site ==");
    let mut serial = None;
    for window in [1usize, 4, 16] {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut bfs = QueueStrategy::bfs();
        let cfg = CrawlConfig::builder()
            .politeness(politeness)
            .max_in_flight(window)
            .build()
            .expect("valid config");
        let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
            .expect("valid root")
            .run();
        let makespan = out.traffic.elapsed_secs;
        let serial_makespan = *serial.get_or_insert(makespan);
        println!(
            "  in-flight {window:>2}: {} requests, {} targets, {:>7.1}h simulated ({:.2}x)",
            out.traffic.requests(),
            out.targets_found(),
            makespan / 3600.0,
            serial_makespan / makespan,
        );
    }

    // The transport stands alone too: submit GETs, poll completions in
    // deterministic (arrival, id) order.
    println!("\n== Raw transport: 6 submits, polled in arrival order ==");
    let server = SiteServer::shared(Arc::clone(&site));
    let mut t = PipelinedTransport::new(&server, MimePolicy::default(), politeness).with_window(6);
    let urls: Vec<String> = site.pages().iter().map(|p| p.url.clone()).take(6).collect();
    for u in &urls {
        t.submit(Request::get(u));
    }
    while t.in_flight() > 0 {
        for (id, f) in t.poll() {
            println!(
                "  #{id} -> {} ({} wire bytes) at t={:.1}s",
                f.status,
                f.wire_bytes,
                t.traffic().elapsed_secs
            );
        }
    }

    // A robots Crawl-delay raises the per-host gate above the global
    // politeness delay; retries ride the same pipeline over flaky origins.
    println!("\n== Retry-through-pipeline over a flaky origin ==");
    let flaky = FlakyServer::new(SiteServer::shared(Arc::clone(&site)), 0.3, 7).recoverable();
    let mut t = PipelinedTransport::new(&flaky, MimePolicy::default(), politeness)
        .with_window(4)
        .with_retries(1);
    let robots = sb_httpsim::RobotsTxt::parse("User-agent: *\nCrawl-delay: 2");
    t.apply_crawl_delay(&robots, "sbcrawl", "www.stats.example.org");
    let mut ok = 0;
    for chunk in urls.chunks(4) {
        for u in chunk {
            t.submit(Request::get(u));
        }
        while t.in_flight() > 0 {
            ok += t.poll().iter().filter(|(_, f)| f.status == 200).count();
        }
    }
    println!(
        "  {} of {} URLs answered 200 despite 503 injection ({} GETs charged, incl. retries)",
        ok,
        urls.len(),
        t.traffic().get_requests
    );
}
