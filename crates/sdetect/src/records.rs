//! Table detection in record-oriented formats (JSON / YAML).
//!
//! Statistic content in JSON/YAML appears as arrays of homogeneous records
//! with numeric fields. Full parsers are unnecessary for the decision: a
//! run of ≥ 3 consecutive record-shaped lines (`{…}` with at least two
//! numeric values) counts as one table.

use crate::detect::DetectedTable;

/// Counts numeric values in a record-ish line.
fn numeric_values(line: &str) -> usize {
    let mut count = 0;
    let mut in_number = false;
    let mut prev: Option<char> = None;
    for c in line.chars() {
        let starts_value = matches!(prev, Some(':' | ' ' | ',' | '{' | '['));
        if c.is_ascii_digit() && !in_number && starts_value {
            in_number = true;
            count += 1;
        } else if !c.is_ascii_digit() && c != '.' {
            in_number = false;
        }
        prev = Some(c);
    }
    count
}

/// Is this line one record of a data array?
fn is_record_line(line: &str) -> bool {
    let t = line.trim().trim_start_matches("- ").trim_end_matches(',');
    t.starts_with('{') && t.ends_with('}') && numeric_values(t) >= 2
}

/// Detects record-array tables in JSON/YAML text.
pub fn detect(text: &str) -> Vec<DetectedTable> {
    let mut out = Vec::new();
    let mut run = 0usize;
    let mut cols = 0usize;
    for line in text.lines() {
        if is_record_line(line) {
            run += 1;
            cols = cols.max(line.matches(':').count());
        } else {
            if run >= 3 {
                out.push(DetectedTable { rows: run, cols });
            }
            run = 0;
            cols = 0;
        }
    }
    if run >= 3 {
        out.push(DetectedTable { rows: run, cols });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_json_record_array() {
        let json = r#"{
  "table1": [
    {"year": 2001, "region": "R01", "count": 500},
    {"year": 2002, "region": "R02", "count": 700},
    {"year": 2003, "region": "R03", "count": 900},
  ],
}"#;
        let found = detect(json);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rows, 3);
    }

    #[test]
    fn detects_yaml_records() {
        let yaml = "table1:\n  - {year: 2001, region: R01, count: 500}\n  - {year: 2002, region: R02, count: 700}\n  - {year: 2003, region: R03, count: 900}\n";
        assert_eq!(detect(yaml).len(), 1);
    }

    #[test]
    fn two_arrays_two_tables() {
        let json = "\n  \"t1\": [\n    {\"year\": 2001, \"count\": 5},\n    {\"year\": 2002, \"count\": 6},\n    {\"year\": 2003, \"count\": 7},\n  ],\n  \"t2\": [\n    {\"year\": 2001, \"count\": 5},\n    {\"year\": 2002, \"count\": 6},\n    {\"year\": 2003, \"count\": 7},\n  ],\n";
        assert_eq!(detect(json).len(), 2);
    }

    #[test]
    fn metadata_objects_rejected() {
        let json = "{\n  \"description\": \"site metadata\",\n  \"links\": [\"a\", \"b\"]\n}";
        assert!(detect(json).is_empty());
    }

    #[test]
    fn records_need_two_numbers() {
        let json = "    {\"name\": \"a\", \"id\": 1},\n    {\"name\": \"b\", \"id\": 2},\n    {\"name\": \"c\", \"id\": 3},\n";
        assert!(detect(json).is_empty(), "one numeric field is not a stat table");
    }
}
