//! Top-level detection: format sniffing + dispatch.

use crate::{delimited, records, textual};

/// Recognised container formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    Csv,
    Tsv,
    SemicolonSv,
    Pdf,
    Sheet,
    Doc,
    Json,
    Yaml,
    /// Archives and unknown binaries: tables inside are invisible.
    Opaque,
}

impl Format {
    /// Can this format carry tables that the detector can see?
    pub fn detectable(self) -> bool {
        self != Format::Opaque
    }
}

/// One detected statistic table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedTable {
    pub rows: usize,
    pub cols: usize,
}

/// Detection result for one target file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    pub format: Format,
    pub tables: Vec<DetectedTable>,
}

impl Detection {
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    pub fn has_sd(&self) -> bool {
        !self.tables.is_empty()
    }
}

/// Sniffs the container format from magic bytes, falling back to MIME type.
pub fn sniff(body: &[u8], mime: &str) -> Format {
    if body.starts_with(b"%PDF") {
        return Format::Pdf;
    }
    if body.starts_with(b"#SHEETFILE") {
        return Format::Sheet;
    }
    if body.starts_with(b"#DOCFILE") {
        return Format::Doc;
    }
    if body.starts_with(b"PK\x03\x04")
        || body.starts_with(b"\x1f\x8b")
        || body.starts_with(b"7z\xbc\xaf")
        || body.starts_with(b"Rar!")
        || body.starts_with(b"ustar")
        || body.starts_with(b"BIN\x00")
    {
        return Format::Opaque;
    }
    let m = mime.split(';').next().unwrap_or("").trim().to_ascii_lowercase();
    match m.as_str() {
        "text/csv" | "application/csv" | "application/x-csv" | "text/x-csv"
        | "text/comma-separated-values" | "text/x-comma-separated-values" => Format::Csv,
        "text/tab-separated-values" => Format::Tsv,
        "application/json" | "text/json" => Format::Json,
        "application/yaml" | "application/x-yaml" | "text/yaml" | "text/x-yaml" => Format::Yaml,
        "application/pdf" | "application/x-pdf" => Format::Pdf,
        "application/msword"
        | "application/vnd.openxmlformats-officedocument.wordprocessingml.document" => Format::Doc,
        "application/vnd.ms-excel"
        | "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet"
        | "application/vnd.oasis.opendocument.spreadsheet" => Format::Sheet,
        "text/plain" => sniff_plain(body),
        _ => Format::Opaque,
    }
}

/// text/plain carries CSV-ish exports with various separators.
fn sniff_plain(body: &[u8]) -> Format {
    let text = String::from_utf8_lossy(&body[..body.len().min(4096)]);
    let first_lines: Vec<&str> = text.lines().take(5).collect();
    let count = |c: char| first_lines.iter().map(|l| l.matches(c).count()).sum::<usize>();
    let (tabs, commas, semis) = (count('\t'), count(','), count(';'));
    if tabs >= commas && tabs >= semis && tabs > 0 {
        Format::Tsv
    } else if semis > commas && semis > 0 {
        Format::SemicolonSv
    } else if commas > 0 {
        Format::Csv
    } else {
        Format::Doc // free text: try aligned-column detection
    }
}

/// Detects statistic tables in a target file.
pub fn detect_tables(body: &[u8], mime: &str) -> Detection {
    let format = sniff(body, mime);
    if format == Format::Opaque {
        return Detection { format, tables: Vec::new() };
    }
    // One decode for every textual branch: borrowed when the body is valid
    // UTF-8, so a well-formed target pays no copy (and never the one
    // validation scan per branch this used to cost).
    let text = String::from_utf8_lossy(body);
    let tables = match format {
        Format::Opaque => unreachable!("handled above"),
        Format::Csv => delimited::detect(&text, ','),
        Format::Tsv => delimited::detect(&text, '\t'),
        Format::SemicolonSv => delimited::detect(&text, ';'),
        Format::Json | Format::Yaml => records::detect(&text),
        Format::Pdf | Format::Doc => textual::detect(&text),
        Format::Sheet => {
            // Sheets: each "== Sheet: … ==" section is a TSV block.
            let mut tables = Vec::new();
            for section in text.split("== Sheet:").skip(1) {
                let content: String =
                    section.lines().skip(1).collect::<Vec<_>>().join("\n");
                tables.extend(delimited::detect(&content, '\t'));
            }
            tables
        }
    };
    Detection { format, tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffs_magic_over_mime() {
        assert_eq!(sniff(b"%PDF-1.4 junk", "text/csv"), Format::Pdf);
        assert_eq!(sniff(b"PK\x03\x04zipzip", "text/csv"), Format::Opaque);
        assert_eq!(sniff(b"#SHEETFILE v1\n", "application/pdf"), Format::Sheet);
    }

    #[test]
    fn sniffs_mime_when_no_magic() {
        assert_eq!(sniff(b"year,count\n", "text/csv"), Format::Csv);
        assert_eq!(sniff(b"{}", "application/json"), Format::Json);
        assert_eq!(sniff(b"x", "application/octet-stream"), Format::Opaque);
    }

    #[test]
    fn plain_text_separator_sniffing() {
        assert_eq!(sniff(b"a\tb\n1\t2\n", "text/plain"), Format::Tsv);
        assert_eq!(sniff(b"a;b\n1;2\n", "text/plain"), Format::SemicolonSv);
        assert_eq!(sniff(b"a,b\n1,2\n", "text/plain"), Format::Csv);
        assert_eq!(sniff(b"just prose here\n", "text/plain"), Format::Doc);
    }

    #[test]
    fn end_to_end_on_generated_bodies() {
        use sb_webgraph::content::target_body;
        use sb_webgraph::gen::Lang;
        // The detector must recover the planted table counts on every
        // detectable format.
        for (ext, mime) in [
            ("csv", "text/csv"),
            ("tsv", "text/plain"),
            ("pdf", "application/pdf"),
            ("xlsx", "application/vnd.openxmlformats-officedocument.spreadsheetml.sheet"),
            ("json", "application/json"),
            ("yaml", "application/yaml"),
        ] {
            for planted in [0u16, 1, 3] {
                let body = target_body(42, ext, planted, 16384, Lang::En);
                let d = detect_tables(&body, mime);
                assert_eq!(
                    d.n_tables(),
                    planted as usize,
                    "format {ext}, planted {planted}, got {:?}",
                    d
                );
            }
        }
    }

    #[test]
    fn archives_detect_nothing() {
        use sb_webgraph::content::target_body;
        use sb_webgraph::gen::Lang;
        let body = target_body(1, "zip", 5, 8192, Lang::En);
        let d = detect_tables(&body, "application/zip");
        assert_eq!(d.format, Format::Opaque);
        assert_eq!(d.n_tables(), 0);
    }
}
