//! Candidate-table extraction from delimited text (CSV/TSV/…).
//!
//! Multi-region files (blank-line-separated blocks, the layout-template
//! problem of \[54\]) are split first; each block becomes a candidate table
//! whose cells are then checked by the numeric-column heuristic.

use crate::detect::DetectedTable;

/// Is a cell numeric-ish? Integers, decimals, thousands separators and
/// percentage/negative decorations all count.
pub fn is_numeric_cell(cell: &str) -> bool {
    let s = cell.trim().trim_start_matches('-').trim_end_matches('%');
    if s.is_empty() {
        return false;
    }
    let cleaned: String = s.chars().filter(|&c| c != ',' && c != ' ' && c != '\u{a0}').collect();
    !cleaned.is_empty()
        && cleaned.chars().all(|c| c.is_ascii_digit() || c == '.')
        && cleaned.chars().any(|c| c.is_ascii_digit())
}

/// Splits `text` into blank-line-separated blocks of rows, each row split
/// by `sep`.
fn blocks(text: &str, sep: char) -> Vec<Vec<Vec<String>>> {
    let mut out = Vec::new();
    let mut current: Vec<Vec<String>> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
            continue;
        }
        current.push(line.split(sep).map(|c| c.trim().to_owned()).collect());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Decides whether a block of rows is a statistic table: at least
/// `MIN_ROWS` data rows, at least 2 columns, and at least 2 columns that
/// are ≥ 70 % numeric (ignoring the first row, a presumed header).
pub fn classify_block(rows: &[Vec<String>]) -> Option<DetectedTable> {
    const MIN_ROWS: usize = 4; // header + 3 data rows
    if rows.len() < MIN_ROWS {
        return None;
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    if cols < 2 {
        return None;
    }
    let data = &rows[1..];
    let mut numeric_cols = 0;
    for c in 0..cols {
        let (mut numeric, mut filled) = (0usize, 0usize);
        for row in data {
            if let Some(cell) = row.get(c) {
                if !cell.is_empty() {
                    filled += 1;
                    if is_numeric_cell(cell) {
                        numeric += 1;
                    }
                }
            }
        }
        if filled >= 3 && numeric * 10 >= filled * 7 {
            numeric_cols += 1;
        }
    }
    if numeric_cols >= 2 {
        Some(DetectedTable { rows: rows.len(), cols })
    } else {
        None
    }
}

/// Detects statistic tables in delimited text.
pub fn detect(text: &str, sep: char) -> Vec<DetectedTable> {
    blocks(text, sep).iter().filter_map(|b| classify_block(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cells() {
        for ok in ["42", "3.14", "-7", "1,234,567", "12%", "1 234"] {
            assert!(is_numeric_cell(ok), "{ok}");
        }
        for bad in ["", "R01", "3.1.4.x", "-", "%", "year"] {
            assert!(!is_numeric_cell(bad), "{bad}");
        }
    }

    #[test]
    fn detects_a_simple_stat_table() {
        let csv = "year,region,count\n2001,R01,500\n2002,R02,700\n2003,R01,900\n2004,R03,1100\n";
        let found = detect(csv, ',');
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].cols, 3);
        assert_eq!(found[0].rows, 5);
    }

    #[test]
    fn rejects_textual_listings() {
        let csv = "name,address,contact,notes\nAlice,1 Main st,office,hello\nBob,2 Oak av,office,there\nCarol,3 Elm rd,office,again\n";
        assert!(detect(csv, ',').is_empty());
    }

    #[test]
    fn one_numeric_column_is_not_enough() {
        let csv = "id,label\n1,apples\n2,pears\n3,plums\n4,figs\n";
        assert!(detect(csv, ',').is_empty());
    }

    #[test]
    fn splits_multi_region_files() {
        let one = "year,count\n2001,5\n2002,6\n2003,7\n";
        let csv = format!("{one}\n{one}\n{one}");
        assert_eq!(detect(&csv, ',').len(), 3);
    }

    #[test]
    fn short_blocks_ignored() {
        let csv = "year,count\n2001,5\n2002,6\n";
        assert!(detect(csv, ',').is_empty());
    }

    #[test]
    fn tsv_and_semicolon() {
        let tsv = "year\tcount\n2001\t5\n2002\t6\n2003\t7\n";
        assert_eq!(detect(tsv, '\t').len(), 1);
        let semi = "year;count\n2001;5\n2002;6\n2003;7\n";
        assert_eq!(detect(semi, ';').len(), 1);
    }
}
