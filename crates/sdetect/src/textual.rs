//! Table detection in extracted *text* (PDF and word-processor documents).
//!
//! Text extracted from PDFs loses cell structure; what remains are runs of
//! lines whose whitespace-separated fields align into columns. A run of at
//! least four such lines with a consistent field count and ≥ 2 numeric
//! columns is counted as one statistic table — the "roughly one second per
//! PDF page" pipeline of \[51\], reduced to its structural core.

use crate::detect::DetectedTable;

/// Splits a line into column fields on runs of ≥ 2 spaces or tabs.
fn fields(line: &str) -> Vec<String> {
    let normalized = line.replace('\t', "  ");
    normalized
        .split("  ")
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Detects aligned-column tables in document text.
pub fn detect(text: &str) -> Vec<DetectedTable> {
    let mut out = Vec::new();
    let mut run: Vec<Vec<String>> = Vec::new();
    let mut run_cols = 0usize;
    let flush = |run: &mut Vec<Vec<String>>, run_cols: &mut usize, out: &mut Vec<DetectedTable>| {
        if run.len() >= 4 {
            if let Some(t) = crate::delimited::classify_block(run) {
                out.push(t);
            }
        }
        run.clear();
        *run_cols = 0;
    };
    for line in text.lines() {
        let f = fields(line);
        // A table line has ≥ 2 aligned fields; consistency of field count
        // (± 1, headers can be ragged) keeps prose out.
        let is_tably = f.len() >= 2;
        let consistent = run_cols == 0 || f.len() + 1 >= run_cols && f.len() <= run_cols + 1;
        if is_tably && consistent {
            run_cols = run_cols.max(f.len());
            run.push(f);
        } else {
            flush(&mut run, &mut run_cols, &mut out);
        }
    }
    flush(&mut run, &mut run_cols, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_aligned_table_between_prose() {
        let text = "\
This report presents the annual figures.\n\
\n\
year        region          count\n\
2001        R01               500\n\
2002        R02               700\n\
2003        R01               900\n\
\n\
The methodology follows international standards.\n";
        let found = detect(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].cols, 3);
    }

    #[test]
    fn prose_alone_detects_nothing() {
        let text = "One sentence here.\nAnother sentence follows.\nAnd a third one.\nAnd more.\n";
        assert!(detect(text).is_empty());
    }

    #[test]
    fn two_tables_separated_by_prose() {
        let table = "year      count\n2001       10\n2002       20\n2003       30\n";
        let text = format!("{table}\nSome separating prose only here.\n\n{table}");
        assert_eq!(detect(&text).len(), 2);
    }

    #[test]
    fn short_runs_rejected() {
        let text = "year      count\n2001       10\n2002       20\n";
        assert!(detect(text).is_empty());
    }

    #[test]
    fn textual_columns_rejected() {
        let text = "\
name          city\n\
Alice         Paris\n\
Bob           Lyon\n\
Carol         Lille\n\
Dave          Nice\n";
        assert!(detect(text).is_empty());
    }
}
