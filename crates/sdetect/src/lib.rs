//! Statistics-dataset detection in retrieved target files (Table 7).
//!
//! The paper manually annotated 280 sampled targets, counting the statistic
//! tables (SDs) each contains. This crate is the machine judge that replaces
//! the human: given a target's bytes and MIME type it recognises the
//! container format, extracts candidate tables and keeps those that look
//! like *statistics* — several rows, several columns, with at least two
//! predominantly numeric columns (SDs are "mostly numeric …
//! multidimensional aggregates", Sec 1).
//!
//! Formats handled: delimited text (CSV/TSV/semicolon), PDF-extracted text
//! (whitespace-aligned columns), sheet containers, JSON/YAML record arrays
//! and word-processor text. Archives are opaque without extraction and
//! detect as zero tables — the same blind spot a human has before unzipping.

pub mod delimited;
pub mod detect;
pub mod records;
pub mod textual;

pub use detect::{detect_tables, DetectedTable, Detection, Format};
