//! The experiment harness: regenerates **every table and figure** of the
//! paper's evaluation (Sec 4) on the synthetic site profiles.
//!
//! Entry point: the `xp` binary (`cargo run --release -p sb-eval --bin xp --
//! all`). Each experiment module renders a markdown report and writes CSV
//! series under `results/`. `EXPERIMENTS.md` records paper-vs-measured.

pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod setup;
pub mod tables;

pub use runner::{par_map, RunOpts};
pub use setup::{build_site_for, reference, CrawlerKind, EvalConfig, SiteRef};
