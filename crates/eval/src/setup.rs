//! Experiment setup: site construction (cached), crawler factory and
//! reference statistics.

use parking_lot::Mutex;
use sb_crawler::engine::{Budget, CrawlConfig, CrawlOutcome, CrawlSession};
use sb_crawler::strategies::{
    FocusedStrategy, OmniscientStrategy, QueueStrategy, SbConfig, SbStrategy, TpOffStrategy,
    TresStrategy,
};
use sb_crawler::strategy::Strategy;
use sb_crawler::ActionSpaceConfig;
use sb_httpsim::SiteServer;
use sb_ml::{FeatureSet, ModelKind, UrlClassifier};
use sb_webgraph::gen::profiles;
use sb_webgraph::{SiteSpec, Website};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Harness-wide configuration (CLI flags of `xp`).
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Site size scale versus Table 1 (1.0 = the paper's 22.2 M pages).
    pub scale: f64,
    /// Seeds per stochastic crawler (the paper uses 15).
    pub seeds: u64,
    /// Output directory for CSV/markdown artifacts.
    pub out_dir: PathBuf,
    /// Optional site-code filter.
    pub sites: Option<Vec<String>>,
    /// Worker threads.
    pub jobs: usize,
    /// `xp fleet` only: additionally run the fleet through one
    /// `SharedTransportPool` at global windows 1/4/16 and report the
    /// ladder next to the per-site-transport arm (PR 5).
    pub shared_pool: bool,
    /// `xp fleet` only: shard counts for the sharded-driver ladder
    /// (`--shards 1,2,4`, PR 8). Empty = the sharded arm is off. Every
    /// rung runs at per-shard window 1 and is asserted byte-identical per
    /// site to the first rung.
    pub shards: Vec<usize>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            scale: 0.01,
            seeds: 3,
            out_dir: PathBuf::from("results"),
            sites: None,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            shared_pool: false,
            shards: Vec::new(),
        }
    }
}

impl EvalConfig {
    /// Profiles selected by the `--sites` filter, in Table 1 order.
    pub fn selected_profiles(&self) -> Vec<SiteSpec> {
        profiles::paper_profiles()
            .into_iter()
            .filter(|p| match &self.sites {
                Some(codes) => codes.iter().any(|c| c == p.code),
                None => true,
            })
            .collect()
    }

    /// The generation seed for a site (fixed: all crawlers see the same
    /// site, as in the paper's replay methodology).
    pub fn site_seed(&self, code: &str) -> u64 {
        let mut h = 0x811c_9dc5u64;
        for b in code.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

/// The crawlers of Sec 4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrawlerKind {
    SbOracle,
    SbClassifier,
    Focused,
    TpOff,
    Bfs,
    Dfs,
    Random,
    Tres,
    Omniscient,
}

impl CrawlerKind {
    /// Table 2/3 row order.
    pub const TABLE_ROWS: [CrawlerKind; 7] = [
        CrawlerKind::SbOracle,
        CrawlerKind::SbClassifier,
        CrawlerKind::Focused,
        CrawlerKind::TpOff,
        CrawlerKind::Bfs,
        CrawlerKind::Dfs,
        CrawlerKind::Random,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CrawlerKind::SbOracle => "SB-ORACLE",
            CrawlerKind::SbClassifier => "SB-CLASSIFIER",
            CrawlerKind::Focused => "FOCUSED",
            CrawlerKind::TpOff => "TP-OFF",
            CrawlerKind::Bfs => "BFS",
            CrawlerKind::Dfs => "DFS",
            CrawlerKind::Random => "RANDOM",
            CrawlerKind::Tres => "TRES",
            CrawlerKind::Omniscient => "OMNISCIENT",
        }
    }

    /// Stochastic crawlers are averaged over seeds; deterministic ones run
    /// once (Sec 4.5).
    pub fn stochastic(self) -> bool {
        matches!(self, CrawlerKind::SbOracle | CrawlerKind::SbClassifier | CrawlerKind::Random)
    }

    /// Does this crawler need the ground-truth oracle?
    pub fn needs_oracle(self) -> bool {
        matches!(
            self,
            CrawlerKind::SbOracle | CrawlerKind::TpOff | CrawlerKind::Tres | CrawlerKind::Omniscient
        )
    }
}

/// SB tuning knobs for the hyper-parameter studies.
#[derive(Debug, Clone)]
pub struct SbTuning {
    pub alpha: f64,
    pub theta: f32,
    pub ngram: usize,
    pub model: ModelKind,
    pub features: FeatureSet,
    pub batch: usize,
    pub max_actions: Option<usize>,
    /// Bandit policy family override (`None` = the paper's AUER).
    pub bandit: Option<sb_crawler::strategies::BanditChoice>,
}

impl Default for SbTuning {
    fn default() -> Self {
        SbTuning {
            alpha: sb_bandit::ALPHA_DEFAULT,
            theta: 0.75,
            ngram: 2,
            model: ModelKind::LogisticRegression,
            features: FeatureSet::UrlOnly,
            batch: 10,
            max_actions: None,
            bandit: None,
        }
    }
}

impl SbTuning {
    pub fn sb_config(&self) -> SbConfig {
        SbConfig {
            alpha: self.alpha,
            actions: ActionSpaceConfig {
                ngram: self.ngram,
                theta: self.theta,
                max_actions: self.max_actions,
                ..Default::default()
            },
            bandit: self.bandit,
        }
    }
}

// ----------------------------------------------------------------------
// Site cache
// ----------------------------------------------------------------------

type SiteKey = (String, u64 /* scale in ppm */);

static SITE_CACHE: Mutex<Option<HashMap<SiteKey, Arc<Website>>>> = Mutex::new(None);

/// Builds (or fetches from cache) the scaled site for a profile code.
pub fn build_site_for(cfg: &EvalConfig, code: &str) -> Arc<Website> {
    let key = (code.to_owned(), (cfg.scale * 1e6) as u64);
    {
        let cache = SITE_CACHE.lock();
        if let Some(map) = cache.as_ref() {
            if let Some(site) = map.get(&key) {
                return site.clone();
            }
        }
    }
    let spec = profiles::profile(code)
        .unwrap_or_else(|| panic!("unknown site code {code}"))
        .scaled(cfg.scale);
    let site = Arc::new(sb_webgraph::build_site(&spec, cfg.site_seed(code)));
    let mut cache = SITE_CACHE.lock();
    cache.get_or_insert_with(HashMap::new).insert(key, site.clone());
    site
}

/// Reference statistics a site's metrics are normalised by (Sec 4.5):
/// census counts plus the cost of one exhaustive BFS crawl.
#[derive(Debug, Clone, Copy)]
pub struct SiteRef {
    pub available: usize,
    pub targets: u64,
    pub target_volume: u64,
    /// Requests of an exhaustive BFS crawl (the "crawl everything" cost).
    pub full_requests: u64,
    /// Non-target volume of that exhaustive crawl.
    pub full_non_target_bytes: u64,
}

static REF_CACHE: Mutex<Option<HashMap<SiteKey, SiteRef>>> = Mutex::new(None);

/// Computes (cached) the reference stats for a site.
pub fn reference(cfg: &EvalConfig, code: &str) -> SiteRef {
    let key = (code.to_owned(), (cfg.scale * 1e6) as u64);
    {
        let cache = REF_CACHE.lock();
        if let Some(map) = cache.as_ref() {
            if let Some(r) = map.get(&key) {
                return *r;
            }
        }
    }
    let site = build_site_for(cfg, code);
    let census = site.census();
    let out = run_crawler(&site, CrawlerKind::Bfs, 0, &RunOpts::default());
    let r = SiteRef {
        available: census.available,
        targets: out.targets_found(),
        target_volume: out.traffic.target_bytes,
        full_requests: out.traffic.requests(),
        full_non_target_bytes: out.traffic.non_target_bytes,
    };
    let mut cache = REF_CACHE.lock();
    cache.get_or_insert_with(HashMap::new).insert(key, r);
    r
}

// ----------------------------------------------------------------------
// Crawler factory and single-run executor
// ----------------------------------------------------------------------

pub use crate::runner::RunOpts;

/// Builds a strategy. `scale` sizes TP-OFF's offline phase (3 000 pages at
/// paper scale).
pub fn build_strategy(kind: CrawlerKind, site: &Website, scale: f64, sb: &SbTuning) -> Box<dyn Strategy> {
    match kind {
        CrawlerKind::Bfs => Box::new(QueueStrategy::bfs()),
        CrawlerKind::Dfs => Box::new(QueueStrategy::dfs()),
        CrawlerKind::Random => Box::new(QueueStrategy::random()),
        CrawlerKind::Focused => Box::new(FocusedStrategy::new()),
        CrawlerKind::Tres => Box::new(TresStrategy::new()),
        CrawlerKind::TpOff => {
            let phase1 = ((3000.0 * scale).round() as usize).max(30);
            Box::new(TpOffStrategy::new(phase1))
        }
        CrawlerKind::Omniscient => {
            // Trait-based enumeration: the same list a streaming source
            // would hand out, in the same (id) order.
            use sb_webgraph::gen::SiteSource;
            Box::new(OmniscientStrategy::new(SiteSource::target_urls(site)))
        }
        CrawlerKind::SbOracle => Box::new(SbStrategy::oracle(sb.sb_config())),
        CrawlerKind::SbClassifier => Box::new(SbStrategy::with_classifier(
            sb.sb_config(),
            UrlClassifier::new(sb.model, sb.features, sb.batch),
        )),
    }
}

/// Runs one crawler once on a site.
pub fn run_crawler(site: &Arc<Website>, kind: CrawlerKind, seed: u64, opts: &RunOpts) -> CrawlOutcome {
    let mut strategy = build_strategy(kind, site, opts.scale, &opts.sb);
    run_with_strategy(site, strategy.as_mut(), kind.needs_oracle(), seed, opts)
}

/// Runs an explicitly constructed strategy (hyper-parameter studies need
/// concrete access to the strategy afterwards) through the validated
/// session API.
pub fn run_with_strategy(
    site: &Arc<Website>,
    strategy: &mut dyn Strategy,
    needs_oracle: bool,
    seed: u64,
    opts: &RunOpts,
) -> CrawlOutcome {
    let server = SiteServer::shared(site.clone());
    let root = site.page(site.root()).url.clone();
    let mut builder = CrawlConfig::builder()
        .budget(opts.budget)
        .rng_seed(seed)
        .max_in_flight(opts.max_in_flight)
        .keep_target_bodies(opts.keep_bodies);
    if let Some(es) = opts.early_stop {
        builder = builder.early_stop(es);
    }
    if let Some(max) = opts.max_steps {
        builder = builder.max_steps(max);
    }
    let cfg = builder.build().expect("harness run options are valid");
    let oracle: Option<&dyn sb_crawler::Oracle> = needs_oracle.then_some(site.as_ref() as _);
    CrawlSession::new(&server, oracle, &root, strategy, &cfg)
        .expect("generated site roots are valid")
        .run()
}

/// Sanity guard used by experiments that print `+∞`.
pub fn budget_unlimited() -> Budget {
    Budget::Unlimited
}
