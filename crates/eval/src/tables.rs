//! Output formatting: markdown tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Renders an aligned markdown table.
pub fn markdown(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        let _ = write!(out, "|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            let _ = write!(out, " {cell:<w$} |");
        }
        let _ = writeln!(out);
    };
    line(&mut out, headers);
    let _ = write!(&mut out, "|");
    for w in &widths {
        let _ = write!(&mut out, "{}|", "-".repeat(w + 2));
    }
    let _ = writeln!(&mut out);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Writes a CSV file (creating parent directories).
pub fn write_csv(path: &Path, headers: &[String], rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", headers.iter().map(|h| csv_escape(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(f, "{}", row.iter().map(|c| csv_escape(c)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Writes a text/markdown report file.
pub fn write_text(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, content)
}

/// Formats an optional percentage, `+∞` for `None` (the paper's notation).
pub fn fmt_pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.1}"),
        None => "+∞".to_owned(),
    }
}

/// Formats a `value (± std)` cell, Table 1 style.
pub fn fmt_pm((mean, std): (f64, f64)) -> String {
    format!("{mean:.2} (±{std:.2})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_aligns() {
        let md = markdown(
            &["a".into(), "header".into()],
            &[vec!["long-cell".into(), "x".into()], vec!["y".into(), "z".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{md}");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(Some(31.24)), "31.2");
        assert_eq!(fmt_pct(None), "+∞");
    }
}
