//! Table 7 — SD retrieval precision: crawl with bodies kept, sample targets
//! and run the statistics-table detector over them. The paper's human
//! annotation of 7 × 40 targets becomes a machine judgment; since the
//! generator plants the ground truth, detector precision/recall are also
//! reported (a column the paper could not have).

use crate::runner::RunOpts;
use crate::setup::{build_site_for, run_crawler, CrawlerKind, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use sb_sdetect::detect_tables;
use sb_webgraph::PageKind;

/// The seven sites sampled in the paper's Table 7.
pub const TABLE7_CODES: [&str; 7] = ["be", "ed", "is", "in", "nc", "oe", "wh"];

pub fn run(cfg: &EvalConfig) -> String {
    let codes: Vec<&str> = TABLE7_CODES
        .iter()
        .copied()
        .filter(|c| match &cfg.sites {
            Some(sel) => sel.iter().any(|s| s == c),
            None => true,
        })
        .collect();
    let mut headers = vec!["".to_owned()];
    let mut yield_row = vec!["SD Yield (%)".to_owned()];
    let mut mean_row = vec!["Mean # SDs / Target".to_owned()];
    let mut planted_row = vec!["Planted yield (%)".to_owned()];
    let mut agree_row = vec!["Detector agreement (%)".to_owned()];
    let mut csv_rows = Vec::new();

    for code in &codes {
        headers.push((*code).to_owned());
        let site = build_site_for(cfg, code);
        let opts = RunOpts { keep_bodies: true, scale: cfg.scale, ..Default::default() };
        let out = run_crawler(&site, CrawlerKind::SbClassifier, 0, &opts);

        // Sample 40 detectable-format targets (the paper's annotators
        // opened each file; archives stay out of the sample).
        let mut rng = StdRng::seed_from_u64(7 * 40);
        let mut sample: Vec<&sb_crawler::RetrievedTarget> = out
            .targets
            .iter()
            .filter(|t| {
                let body = t.body.as_deref().unwrap_or(&[]);
                sb_sdetect::detect::sniff(body, &t.mime).detectable()
            })
            .collect();
        sample.shuffle(&mut rng);
        sample.truncate(40);

        let mut with_sd = 0usize;
        let mut total_tables = 0usize;
        let mut agree = 0usize;
        for t in &sample {
            let body = t.body.as_deref().unwrap_or(&[]);
            let d = detect_tables(body, &t.mime);
            if d.has_sd() {
                with_sd += 1;
                total_tables += d.n_tables();
            }
            // Ground truth: the planted table count of this target page.
            let planted = site
                .lookup(&t.url)
                .and_then(|id| match site.page(id).kind {
                    PageKind::Target { planted_tables, .. } => Some(planted_tables),
                    _ => None,
                })
                .unwrap_or(0);
            if (planted > 0) == d.has_sd() {
                agree += 1;
            }
        }
        let n = sample.len().max(1);
        let yield_pct = 100.0 * with_sd as f64 / n as f64;
        let mean_sds = if with_sd > 0 { total_tables as f64 / with_sd as f64 } else { 0.0 };
        let agree_pct = 100.0 * agree as f64 / n as f64;
        let spec = sb_webgraph::gen::profiles::profile(code).expect("known code");
        yield_row.push(format!("{yield_pct:.0}"));
        mean_row.push(format!("{mean_sds:.1}"));
        planted_row.push(format!("{:.0}", spec.sd_yield * 100.0));
        agree_row.push(format!("{agree_pct:.0}"));
        csv_rows.push(vec![
            (*code).to_owned(),
            format!("{yield_pct:.2}"),
            format!("{mean_sds:.3}"),
            format!("{:.2}", spec.sd_yield * 100.0),
            format!("{agree_pct:.2}"),
        ]);
    }
    write_csv(
        &cfg.out_dir.join("table7.csv"),
        &["site", "sd_yield_pct", "mean_sds_per_target", "planted_yield_pct", "detector_agreement_pct"]
            .map(String::from),
        &csv_rows,
    )
    .expect("write table7 csv");
    let md = format!(
        "## Table 7 — SDs retrieved across sampled targets (40 detectable-format targets per site)\n\n{}",
        markdown(&headers, &[yield_row, mean_row, planted_row, agree_row])
    );
    write_text(&cfg.out_dir.join("table7.md"), &md).expect("write table7.md");
    md
}
