//! Pipeline — the intra-site parallelism workload (PR 4): one BFS crawl of
//! a latency-simulated site (1 s politeness delay, slow simulated link, so
//! transfer time dominates) repeated with in-flight windows of 1, 4 and
//! 16. Reports per-window requests, targets and the **simulated makespan**
//! (`Traffic::elapsed_secs`, which under the pipelined transport is the
//! clock at the last completion, not the serial sum) plus the speedup over
//! the sequential window. Coverage is window-invariant — the table proves
//! it by reporting identical request/target counts per row — so the
//! speedup is pure transfer overlap inside the politeness gate's spacing.

use crate::setup::EvalConfig;
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{CrawlConfig, CrawlSession};
use sb_httpsim::{Politeness, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use std::sync::Arc;

/// In-flight windows compared (the bench suite uses the same ladder).
pub const WINDOWS: [usize; 3] = [1, 4, 16];

/// The latency-simulated wire: the 1 s politeness wait of Sec 1 plus a
/// link slow enough that a typical generated page costs several seconds of
/// transfer — the regime where pipelining pays.
pub fn latency_politeness() -> Politeness {
    Politeness { delay_secs: 1.0, bytes_per_sec: 600.0 }
}

pub fn run(cfg: &EvalConfig) -> String {
    // `--scale 0.01` (the default) crawls a 4 000-page site, matching the
    // bench suite; the verify smoke run shrinks it via `--scale`.
    let n_pages = ((cfg.scale * 400_000.0) as usize).clamp(200, 40_000);
    let site = Arc::new(build_site(&SiteSpec::demo(n_pages), 42));
    let root = site.page(site.root()).url.clone();

    struct Row {
        window: usize,
        requests: u64,
        targets: u64,
        makespan_secs: f64,
    }
    let rows: Vec<Row> = crate::runner::par_map(&WINDOWS, cfg.jobs, |&window| {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut bfs = QueueStrategy::bfs();
        let crawl_cfg = CrawlConfig::builder()
            .politeness(latency_politeness())
            .max_in_flight(window)
            .rng_seed(7)
            .build()
            .expect("pipeline experiment config is valid");
        let out = CrawlSession::new(&server, None, &root, &mut bfs, &crawl_cfg)
            .expect("generated roots are valid")
            .run();
        Row {
            window,
            requests: out.traffic.requests(),
            targets: out.targets_found(),
            makespan_secs: out.traffic.elapsed_secs,
        }
    });

    let serial = rows[0].makespan_secs;
    let headers: Vec<String> =
        ["In-flight", "Requests", "Targets", "Sim. makespan (h)", "Speedup"]
            .map(String::from)
            .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for r in &rows {
        md_rows.push(vec![
            r.window.to_string(),
            r.requests.to_string(),
            r.targets.to_string(),
            format!("{:.2}", r.makespan_secs / 3600.0),
            format!("{:.2}×", serial / r.makespan_secs),
        ]);
        csv_rows.push(vec![
            r.window.to_string(),
            r.requests.to_string(),
            r.targets.to_string(),
            format!("{:.4}", r.makespan_secs),
            format!("{:.4}", serial / r.makespan_secs),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("pipeline.csv"),
        &["in_flight", "requests", "targets", "sim_makespan_secs", "speedup"].map(String::from),
        &csv_rows,
    );

    let widest = rows.last().expect("windows is non-empty");
    let summary = format!(
        "{n_pages}-page latency-simulated site, BFS to exhaustion: window 1 takes {:.1}h \
         simulated; window {} takes {:.1}h ({:.2}× makespan improvement, identical coverage: \
         {} requests / {} targets per row)",
        serial / 3600.0,
        widest.window,
        widest.makespan_secs / 3600.0,
        serial / widest.makespan_secs,
        widest.requests,
        widest.targets,
    );
    let report = format!(
        "## Pipeline — intra-site parallel fetch (nonblocking transport, politeness-gated)\n\n{}\n\n{}\n",
        markdown(&headers, &md_rows),
        summary,
    );
    let _ = write_text(&cfg.out_dir.join("pipeline.md"), &report);
    report
}
