//! Fleet — the first multi-site workload: every selected Table 1 profile
//! crawled **concurrently** by the paper's SB-CLASSIFIER (early stopping
//! on), scheduled by `sb_crawler::fleet::Fleet` over `--jobs` worker
//! threads. Reports per-site outcomes plus aggregate traffic and the
//! fleet's real-time throughput — numbers the one-site-at-a-time harness
//! could never produce.
//!
//! This is a *throughput/workload* experiment, not a seed-averaged metric
//! table: each site is crawled once (`--seeds` is not averaged here), with
//! its RNG seeded per site so no two sessions share a stream.

use crate::experiments::scaled_early_stop;
use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::fleet::{Fleet, FleetJob, SharedServer};
use sb_crawler::strategies::SbStrategy;
use sb_crawler::CrawlConfig;
use sb_httpsim::SiteServer;
use std::sync::Arc;

pub fn run(cfg: &EvalConfig) -> String {
    let profiles = cfg.selected_profiles();
    let mut fleet = Fleet::new(cfg.jobs);
    for p in &profiles {
        let site = build_site_for(cfg, p.code);
        let root = site.page(site.root()).url.clone();
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(&site)));
        let crawl_cfg = CrawlConfig::builder()
            .early_stop(scaled_early_stop(cfg.scale))
            .rng_seed(cfg.site_seed(p.code))
            .build()
            .expect("fleet experiment config is valid");
        fleet.push(
            FleetJob::new(p.code, server, root, || {
                Box::new(SbStrategy::classifier_default())
            })
            .config(crawl_cfg),
        );
    }

    let out = fleet.run();

    let headers: Vec<String> =
        ["Site", "Targets", "Requests", "Early stop", "Sim. hours"].map(String::from).to_vec();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for report in &out.sites {
        let o = report.expect_outcome();
        rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            if o.stopped_early { "✓" } else { "✗" }.to_owned(),
            format!("{:.2}", o.traffic.elapsed_secs / 3600.0),
        ]);
        csv_rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            o.stopped_early.to_string(),
            format!("{:.4}", o.traffic.elapsed_secs),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("fleet.csv"),
        &["site", "targets", "requests", "stopped_early", "sim_secs"].map(String::from),
        &csv_rows,
    );

    let summary = format!(
        "{} sites on {} workers: {} targets, {} requests in {:.2}s wall \
         ({:.0} req/s; simulated: {:.1}h serial vs {:.1}h concurrent makespan)",
        out.sites.len(),
        cfg.jobs,
        out.targets,
        out.traffic.requests(),
        out.wall_secs,
        out.requests_per_sec(),
        out.traffic.elapsed_secs / 3600.0,
        out.sim_makespan_secs() / 3600.0,
    );
    let report = format!(
        "## Fleet — concurrent multi-site crawl (SB-CLASSIFIER, early stopping)\n\n{}\n\n{}\n",
        markdown(&headers, &rows),
        summary,
    );
    let _ = write_text(&cfg.out_dir.join("fleet.md"), &report);
    report
}
