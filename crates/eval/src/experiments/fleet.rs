//! Fleet — the first multi-site workload: every selected Table 1 profile
//! crawled **concurrently** by the paper's SB-CLASSIFIER (early stopping
//! on), scheduled by `sb_crawler::fleet::Fleet` over `--jobs` worker
//! threads. Reports per-site outcomes plus aggregate traffic and the
//! fleet's real-time throughput — numbers the one-site-at-a-time harness
//! could never produce.
//!
//! With `--shared-pool` (PR 5) the same fleet additionally runs through
//! one `SharedTransportPool` at global in-flight windows 1/4/16
//! (`fleet_pool.csv`): at window 1 the pool serialises the fleet, so
//! per-site results must be **byte-identical** to the per-site-transport
//! arm (asserted — this is the `verify.sh` smoke's parity check); wider
//! windows overlap the sites' politeness waits and shrink the simulated
//! makespan while the learning crawler's coverage may legitimately
//! reorder within a site.
//!
//! With `--shards 1,2,4` (PR 8) the fleet additionally runs under the
//! **sharded parallel driver** (`fleet_shards.csv`): one driver thread
//! per shard, each owning its own transport pool at per-shard window 1,
//! with whole-site work stealing between backlogs. At window 1 every site
//! replays the sequential engine no matter which shard drives it, so each
//! rung's per-site results are asserted byte-identical to the first
//! rung's — the shard count may only buy wall-clock, never change a
//! result.
//!
//! This is a *throughput/workload* experiment, not a seed-averaged metric
//! table: each site is crawled once (`--seeds` is not averaged here), with
//! its RNG seeded per site so no two sessions share a stream.

use crate::experiments::scaled_early_stop;
use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::fleet::{Fleet, FleetJob, FleetMode, SharedServer};
use sb_crawler::strategies::SbStrategy;
use sb_crawler::CrawlConfig;
use sb_httpsim::SiteServer;
use std::sync::Arc;

/// Global shared-pool windows swept by `--shared-pool` (the bench suite
/// records the same ladder).
pub const POOL_WINDOWS: [usize; 3] = [1, 4, 16];

pub fn run(cfg: &EvalConfig) -> String {
    let profiles = cfg.selected_profiles();
    let build_fleet = |mode: FleetMode| {
        let mut fleet = Fleet::new(cfg.jobs).mode(mode);
        for p in &profiles {
            let site = build_site_for(cfg, p.code);
            let root = site.page(site.root()).url.clone();
            let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(&site)));
            let crawl_cfg = CrawlConfig::builder()
                .early_stop(scaled_early_stop(cfg.scale))
                .rng_seed(cfg.site_seed(p.code))
                .build()
                .expect("fleet experiment config is valid");
            fleet.push(
                FleetJob::new(p.code, server, root, || {
                    Box::new(SbStrategy::classifier_default())
                })
                .config(crawl_cfg),
            );
        }
        fleet
    };

    let out = build_fleet(FleetMode::PerSite).run();

    let headers: Vec<String> =
        ["Site", "Targets", "Requests", "Early stop", "Sim. hours"].map(String::from).to_vec();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for report in &out.sites {
        let o = report.expect_outcome();
        rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            if o.stopped_early { "✓" } else { "✗" }.to_owned(),
            format!("{:.2}", o.traffic.elapsed_secs / 3600.0),
        ]);
        csv_rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            o.stopped_early.to_string(),
            format!("{:.4}", o.traffic.elapsed_secs),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("fleet.csv"),
        &["site", "targets", "requests", "stopped_early", "sim_secs"].map(String::from),
        &csv_rows,
    );

    let summary = format!(
        "{} sites on {} workers: {} targets, {} requests in {:.2}s wall \
         ({:.0} req/s; simulated: {:.1}h serial vs {:.1}h concurrent makespan)",
        out.sites.len(),
        cfg.jobs,
        out.targets,
        out.traffic.requests(),
        out.wall_secs,
        out.requests_per_sec(),
        out.traffic.elapsed_secs / 3600.0,
        out.sim_makespan_secs() / 3600.0,
    );
    let mut report = format!(
        "## Fleet — concurrent multi-site crawl (SB-CLASSIFIER, early stopping)\n\n{}\n\n{}\n",
        markdown(&headers, &rows),
        summary,
    );

    if cfg.shared_pool {
        report.push_str(&shared_pool_arm(cfg, &out, &build_fleet));
    }
    if !cfg.shards.is_empty() {
        report.push_str(&sharded_arm(cfg, &build_fleet));
    }

    let _ = write_text(&cfg.out_dir.join("fleet.md"), &report);
    report
}

/// The `--shared-pool` arm: the 1/4/16 global-window ladder, with the
/// window-1 run asserted byte-identical per site to the per-site arm.
fn shared_pool_arm(
    cfg: &EvalConfig,
    per_site: &sb_crawler::FleetOutcome,
    build_fleet: impl Fn(FleetMode) -> Fleet,
) -> String {
    let headers: Vec<String> =
        ["Mode", "Targets", "Requests", "Sim. makespan (h)", "Speedup"].map(String::from).to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut push = |mode: &str, targets: u64, requests: u64, makespan: f64, baseline: f64| {
        md_rows.push(vec![
            mode.to_owned(),
            targets.to_string(),
            requests.to_string(),
            format!("{:.2}", makespan / 3600.0),
            format!("{:.2}×", baseline / makespan),
        ]);
        csv_rows.push(vec![
            mode.to_owned(),
            targets.to_string(),
            requests.to_string(),
            format!("{:.4}", makespan),
            format!("{:.4}", baseline / makespan),
        ]);
    };

    let mut serial = 0.0;
    for &window in &POOL_WINDOWS {
        let out = build_fleet(FleetMode::SharedPool { max_in_flight: window }).run();
        let makespan = out.sim_makespan_secs();
        if window == POOL_WINDOWS[0] {
            serial = makespan;
            // Window 1 serialises the fleet: per-site results must replay
            // the per-site-transport arm exactly (coverage parity is the
            // smoke-tested acceptance of the shared pool).
            for (p, s) in per_site.sites.iter().zip(&out.sites) {
                let (po, so) = (p.expect_outcome(), s.expect_outcome());
                assert_eq!(
                    (po.targets_found(), po.traffic.requests(), po.pages_crawled),
                    (so.targets_found(), so.traffic.requests(), so.pages_crawled),
                    "shared-pool window 1 diverged from per-site transports on {}",
                    p.name,
                );
            }
        }
        push(
            &format!("shared pool, window {window}"),
            out.targets,
            out.traffic.requests(),
            makespan,
            serial,
        );
    }
    push(
        "per-site transports",
        per_site.targets,
        per_site.traffic.requests(),
        per_site.sim_makespan_secs(),
        serial,
    );

    let _ = write_csv(
        &cfg.out_dir.join("fleet_pool.csv"),
        &["mode", "targets", "requests", "sim_makespan_secs", "speedup_vs_pool_w1"]
            .map(String::from),
        &csv_rows,
    );
    format!(
        "\n### Shared transport pool (global window ladder)\n\n{}\n\n\
         One pool, one clock: window 1 is a single crawler visiting every site in turn \
         (per-site results byte-identical to per-site transports — asserted); wider windows \
         let every site's politeness gate tick concurrently.\n",
        markdown(&headers, &md_rows),
    )
}

/// The `--shards` arm (PR 8): the sharded parallel driver at per-shard
/// window 1, one rung per shard count, each rung asserted byte-identical
/// per site to the first.
fn sharded_arm(cfg: &EvalConfig, build_fleet: impl Fn(FleetMode) -> Fleet) -> String {
    let headers: Vec<String> = ["Shards", "Targets", "Requests", "Stolen sites", "Wall (s)", "Speedup"]
        .map(String::from)
        .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut baseline: Option<(f64, Vec<(u64, u64, u64)>)> = None;

    for &shards in &cfg.shards {
        let out = build_fleet(FleetMode::Sharded { shards, max_in_flight: 1 }).run();
        let per_site: Vec<(u64, u64, u64)> = out
            .sites
            .iter()
            .map(|r| {
                let o = r.expect_outcome();
                (o.targets_found(), o.traffic.requests(), o.pages_crawled)
            })
            .collect();
        let (base_wall, base_sites) = baseline.get_or_insert((out.wall_secs, per_site.clone()));
        // Byte-parity across the ladder: at per-shard window 1 every site
        // replays the sequential engine regardless of shard count or
        // stealing, so any divergence is a driver bug.
        assert_eq!(
            &per_site, base_sites,
            "sharded driver at {shards} shards diverged from the first rung"
        );
        let speedup = *base_wall / out.wall_secs.max(1e-9);
        md_rows.push(vec![
            shards.to_string(),
            out.targets.to_string(),
            out.traffic.requests().to_string(),
            out.stolen_sites().to_string(),
            format!("{:.3}", out.wall_secs),
            format!("{speedup:.2}×"),
        ]);
        csv_rows.push(vec![
            shards.to_string(),
            out.targets.to_string(),
            out.traffic.requests().to_string(),
            out.stolen_sites().to_string(),
            format!("{:.6}", out.wall_secs),
            format!("{speedup:.4}"),
        ]);
    }

    let _ = write_csv(
        &cfg.out_dir.join("fleet_shards.csv"),
        &["shards", "targets", "requests", "stolen_sites", "wall_secs", "speedup_vs_first"]
            .map(String::from),
        &csv_rows,
    );
    format!(
        "\n### Sharded parallel driver (shard ladder)\n\n{}\n\n\
         One driver thread per shard, per-shard window 1, whole-site work stealing: \
         per-site results are byte-identical across the ladder (asserted) — shards buy \
         wall-clock only. Wall-clock speedup depends on available cores.\n",
        markdown(&headers, &md_rows),
    )
}
