//! Fleet — the first multi-site workload: every selected Table 1 profile
//! crawled **concurrently** by the paper's SB-CLASSIFIER (early stopping
//! on), scheduled by `sb_crawler::fleet::Fleet` over `--jobs` worker
//! threads. Reports per-site outcomes plus aggregate traffic and the
//! fleet's real-time throughput — numbers the one-site-at-a-time harness
//! could never produce.
//!
//! With `--shared-pool` (PR 5) the same fleet additionally runs through
//! one `SharedTransportPool` at global in-flight windows 1/4/16
//! (`fleet_pool.csv`): at window 1 the pool serialises the fleet, so
//! per-site results must be **byte-identical** to the per-site-transport
//! arm (asserted — this is the `verify.sh` smoke's parity check); wider
//! windows overlap the sites' politeness waits and shrink the simulated
//! makespan while the learning crawler's coverage may legitimately
//! reorder within a site.
//!
//! This is a *throughput/workload* experiment, not a seed-averaged metric
//! table: each site is crawled once (`--seeds` is not averaged here), with
//! its RNG seeded per site so no two sessions share a stream.

use crate::experiments::scaled_early_stop;
use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::fleet::{Fleet, FleetJob, FleetMode, SharedServer};
use sb_crawler::strategies::SbStrategy;
use sb_crawler::CrawlConfig;
use sb_httpsim::SiteServer;
use std::sync::Arc;

/// Global shared-pool windows swept by `--shared-pool` (the bench suite
/// records the same ladder).
pub const POOL_WINDOWS: [usize; 3] = [1, 4, 16];

pub fn run(cfg: &EvalConfig) -> String {
    let profiles = cfg.selected_profiles();
    let build_fleet = |mode: FleetMode| {
        let mut fleet = Fleet::new(cfg.jobs).mode(mode);
        for p in &profiles {
            let site = build_site_for(cfg, p.code);
            let root = site.page(site.root()).url.clone();
            let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(&site)));
            let crawl_cfg = CrawlConfig::builder()
                .early_stop(scaled_early_stop(cfg.scale))
                .rng_seed(cfg.site_seed(p.code))
                .build()
                .expect("fleet experiment config is valid");
            fleet.push(
                FleetJob::new(p.code, server, root, || {
                    Box::new(SbStrategy::classifier_default())
                })
                .config(crawl_cfg),
            );
        }
        fleet
    };

    let out = build_fleet(FleetMode::PerSite).run();

    let headers: Vec<String> =
        ["Site", "Targets", "Requests", "Early stop", "Sim. hours"].map(String::from).to_vec();
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for report in &out.sites {
        let o = report.expect_outcome();
        rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            if o.stopped_early { "✓" } else { "✗" }.to_owned(),
            format!("{:.2}", o.traffic.elapsed_secs / 3600.0),
        ]);
        csv_rows.push(vec![
            report.name.clone(),
            o.targets_found().to_string(),
            o.traffic.requests().to_string(),
            o.stopped_early.to_string(),
            format!("{:.4}", o.traffic.elapsed_secs),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("fleet.csv"),
        &["site", "targets", "requests", "stopped_early", "sim_secs"].map(String::from),
        &csv_rows,
    );

    let summary = format!(
        "{} sites on {} workers: {} targets, {} requests in {:.2}s wall \
         ({:.0} req/s; simulated: {:.1}h serial vs {:.1}h concurrent makespan)",
        out.sites.len(),
        cfg.jobs,
        out.targets,
        out.traffic.requests(),
        out.wall_secs,
        out.requests_per_sec(),
        out.traffic.elapsed_secs / 3600.0,
        out.sim_makespan_secs() / 3600.0,
    );
    let mut report = format!(
        "## Fleet — concurrent multi-site crawl (SB-CLASSIFIER, early stopping)\n\n{}\n\n{}\n",
        markdown(&headers, &rows),
        summary,
    );

    if cfg.shared_pool {
        report.push_str(&shared_pool_arm(cfg, &out, build_fleet));
    }

    let _ = write_text(&cfg.out_dir.join("fleet.md"), &report);
    report
}

/// The `--shared-pool` arm: the 1/4/16 global-window ladder, with the
/// window-1 run asserted byte-identical per site to the per-site arm.
fn shared_pool_arm(
    cfg: &EvalConfig,
    per_site: &sb_crawler::FleetOutcome,
    build_fleet: impl Fn(FleetMode) -> Fleet,
) -> String {
    let headers: Vec<String> =
        ["Mode", "Targets", "Requests", "Sim. makespan (h)", "Speedup"].map(String::from).to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut push = |mode: &str, targets: u64, requests: u64, makespan: f64, baseline: f64| {
        md_rows.push(vec![
            mode.to_owned(),
            targets.to_string(),
            requests.to_string(),
            format!("{:.2}", makespan / 3600.0),
            format!("{:.2}×", baseline / makespan),
        ]);
        csv_rows.push(vec![
            mode.to_owned(),
            targets.to_string(),
            requests.to_string(),
            format!("{:.4}", makespan),
            format!("{:.4}", baseline / makespan),
        ]);
    };

    let mut serial = 0.0;
    for &window in &POOL_WINDOWS {
        let out = build_fleet(FleetMode::SharedPool { max_in_flight: window }).run();
        let makespan = out.sim_makespan_secs();
        if window == POOL_WINDOWS[0] {
            serial = makespan;
            // Window 1 serialises the fleet: per-site results must replay
            // the per-site-transport arm exactly (coverage parity is the
            // smoke-tested acceptance of the shared pool).
            for (p, s) in per_site.sites.iter().zip(&out.sites) {
                let (po, so) = (p.expect_outcome(), s.expect_outcome());
                assert_eq!(
                    (po.targets_found(), po.traffic.requests(), po.pages_crawled),
                    (so.targets_found(), so.traffic.requests(), so.pages_crawled),
                    "shared-pool window 1 diverged from per-site transports on {}",
                    p.name,
                );
            }
        }
        push(
            &format!("shared pool, window {window}"),
            out.targets,
            out.traffic.requests(),
            makespan,
            serial,
        );
    }
    push(
        "per-site transports",
        per_site.targets,
        per_site.traffic.requests(),
        per_site.sim_makespan_secs(),
        serial,
    );

    let _ = write_csv(
        &cfg.out_dir.join("fleet_pool.csv"),
        &["mode", "targets", "requests", "sim_makespan_secs", "speedup_vs_pool_w1"]
            .map(String::from),
        &csv_rows,
    );
    format!(
        "\n### Shared transport pool (global window ladder)\n\n{}\n\n\
         One pool, one clock: window 1 is a single crawler visiting every site in turn \
         (per-site results byte-identical to per-site transports — asserted); wider windows \
         let every site's politeness gate tick concurrently.\n",
        markdown(&headers, &md_rows),
    )
}
