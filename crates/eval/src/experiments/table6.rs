//! Table 6 and Figure 5 — effectiveness of the SB learning (Sec 4.7):
//! per-site mean/STD of the non-zero action rewards, the top-10 group
//! rewards, and example tag paths of the best groups.

use super::campaign;
use crate::setup::{CrawlerKind, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};

pub fn run(cfg: &EvalConfig) -> String {
    let c = campaign(cfg);
    let profiles = cfg.selected_profiles();

    // Table 6: mean/STD over actions with non-zero mean reward.
    let mut headers = vec!["".to_owned()];
    let mut means = vec!["Mean".to_owned()];
    let mut stds = vec!["Std".to_owned()];
    let mut fig5_rows: Vec<Vec<String>> = Vec::new();
    let mut exemplar_md = String::from("\n### Example top tag paths (Sec 4.7 interpretability)\n\n");
    for p in &profiles {
        headers.push(p.code.to_owned());
        let runs = c.of(p.code, CrawlerKind::SbClassifier);
        let Some(run) = runs.first() else {
            means.push("-".into());
            stds.push("-".into());
            continue;
        };
        let rewards: Vec<f64> = run
            .arms
            .iter()
            .filter(|a| a.mean_reward > 0.0)
            .map(|a| a.mean_reward)
            .collect();
        let (m, s) = mean_std(&rewards);
        means.push(format!("{m:.1}"));
        stds.push(format!("{s:.1}"));

        // Figure 5: top-10 groups by mean reward.
        let mut sorted = run.arms.clone();
        sorted.sort_by(|a, b| b.mean_reward.total_cmp(&a.mean_reward));
        for (k, arm) in sorted.iter().take(10).enumerate() {
            fig5_rows.push(vec![
                p.code.to_owned(),
                (k + 1).to_string(),
                format!("{:.3}", arm.mean_reward),
                arm.pulls.to_string(),
                arm.members.to_string(),
            ]);
        }
        if let Some(best) = sorted.first() {
            exemplar_md.push_str(&format!("* **{}**: `{}` (mean reward {:.1})\n", p.code, best.exemplar, best.mean_reward));
        }
    }
    write_csv(
        &cfg.out_dir.join("fig5.csv"),
        &["site", "rank", "mean_reward", "pulls", "members"].map(String::from),
        &fig5_rows,
    )
    .expect("write fig5 csv");
    let mut md = format!(
        "## Table 6 — mean and STD of non-zero action rewards per site\n\n{}",
        markdown(&headers, &[means, stds])
    );
    md.push_str(&exemplar_md);
    md.push_str("\nFigure 5 series written to fig5.csv (top-10 group rewards per site; plot with log y).\n");
    write_text(&cfg.out_dir.join("table6.md"), &md).expect("write table6.md");
    md
}

fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let m = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    (m, var.sqrt())
}
