//! Quality — the value-driven batch frontier workload (PR 10): targets
//! found **per GET** under a request budget too small to exhaust the
//! site, where frontier *ordering* is the whole game. One classifier-
//! target bench site, crawled by BFS / TRES / SB-CLASSIFIER at the
//! sequential window, and by the Crawl4LLM-style `ValueStrategy` (scorer
//! mix configured `rating_methods`-style) across the batch ladder 1/4/16
//! — batch = in-flight window, one ranking pass per window-fill.
//!
//! The acceptance gate of ISSUE 10 is asserted here: ValueStrategy with
//! batch = in-flight window must achieve **strictly better**
//! quality-per-fetch than BFS on this site.

use crate::runner::RunOpts;
use crate::setup::{build_strategy, run_with_strategy, CrawlerKind, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::strategies::{ValueSpec, ValueStrategy};
use sb_crawler::Budget;
use sb_webgraph::gen::{build_site, SiteSpec};
use std::sync::Arc;

/// Batch ladder: batch size = in-flight window per rung (the pipeline
/// bench's ladder, reused so the two tables compare directly).
pub const BATCHES: [usize; 3] = [1, 4, 16];

/// The scorer mix `xp` configures the value frontier with —
/// `rating_methods`-style `name:weight` entries (see
/// [`sb_crawler::strategies::ValueSpec::parse`]).
pub const RATING_METHODS: &str = "depth:1.0,classifier:2.0,neardup:0.5,bandit:1.0";

pub fn run(cfg: &EvalConfig) -> String {
    // Same sizing as the pipeline bench; targets carry learnable URL
    // shape (extensions, directories), which is what the classifier and
    // bandit scorers exploit.
    let n_pages = ((cfg.scale * 400_000.0) as usize).clamp(200, 40_000);
    let site = Arc::new(build_site(&SiteSpec::demo(n_pages), 42));
    let census_targets = site.census().targets;

    // A budget deep enough to learn from, far too shallow to exhaust:
    // ~1 GET per 5 pages. Ordering decides what the GETs buy.
    let budget_requests = (n_pages as u64 / 5).max(60);

    #[derive(Clone)]
    struct Arm {
        label: &'static str,
        kind: Option<CrawlerKind>,
        window: usize,
    }
    let arms = [
        Arm { label: "BFS", kind: Some(CrawlerKind::Bfs), window: 1 },
        Arm { label: "TRES", kind: Some(CrawlerKind::Tres), window: 1 },
        Arm { label: "SB-CLASSIFIER", kind: Some(CrawlerKind::SbClassifier), window: 1 },
        Arm { label: "VALUE", kind: None, window: 1 },
        Arm { label: "VALUE", kind: None, window: 4 },
        Arm { label: "VALUE", kind: None, window: 16 },
    ];

    struct Row {
        label: &'static str,
        window: usize,
        requests: u64,
        targets: u64,
        quality: f64,
    }
    let rows: Vec<Row> = crate::runner::par_map(&arms, cfg.jobs, |arm| {
        let opts = RunOpts {
            budget: Budget::Requests(budget_requests),
            scale: cfg.scale,
            max_in_flight: arm.window,
            ..Default::default()
        };
        let out = match arm.kind {
            Some(kind) => {
                let mut s = build_strategy(kind, &site, cfg.scale, &opts.sb);
                run_with_strategy(&site, s.as_mut(), kind.needs_oracle(), 0, &opts)
            }
            None => {
                let spec = ValueSpec::parse(RATING_METHODS)
                    .expect("the shipped rating_methods spec parses");
                let mut s = ValueStrategy::from_spec(&spec);
                run_with_strategy(&site, &mut s, false, 0, &opts)
            }
        };
        let requests = out.traffic.requests();
        let targets = out.targets_found();
        Row {
            label: arm.label,
            window: arm.window,
            requests,
            targets,
            quality: targets as f64 / requests.max(1) as f64,
        }
    });

    let headers: Vec<String> =
        ["Strategy", "Batch=window", "Requests", "Targets", "Targets/GET"]
            .map(String::from)
            .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for r in &rows {
        md_rows.push(vec![
            r.label.to_string(),
            r.window.to_string(),
            r.requests.to_string(),
            r.targets.to_string(),
            format!("{:.4}", r.quality),
        ]);
        csv_rows.push(vec![
            r.label.to_string(),
            r.window.to_string(),
            r.requests.to_string(),
            r.targets.to_string(),
            format!("{:.6}", r.quality),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("quality.csv"),
        &["strategy", "batch_window", "requests", "targets", "quality_per_fetch"]
            .map(String::from),
        &csv_rows,
    );

    // The ISSUE 10 acceptance gate, asserted at every run of this
    // experiment: the value frontier (any batch rung — batch defaults to
    // the in-flight window) must buy strictly more targets per GET than
    // frontier-order BFS.
    let bfs_quality = rows
        .iter()
        .find(|r| r.label == "BFS")
        .expect("BFS arm always runs")
        .quality;
    for r in rows.iter().filter(|r| r.label == "VALUE") {
        assert!(
            r.quality > bfs_quality,
            "VALUE batch={} quality-per-fetch {:.4} must strictly beat BFS {:.4}",
            r.window,
            r.quality,
            bfs_quality
        );
    }

    let best = rows
        .iter()
        .filter(|r| r.label == "VALUE")
        .max_by(|a, b| a.quality.total_cmp(&b.quality))
        .expect("VALUE arms always run");
    let summary = format!(
        "{n_pages}-page bench site ({census_targets} targets), {budget_requests}-request \
         budget: VALUE[{RATING_METHODS}] batch={} finds {} targets ({:.4}/GET) vs BFS \
         {:.4}/GET — {:.2}× quality-per-fetch",
        best.window,
        best.targets,
        best.quality,
        bfs_quality,
        best.quality / bfs_quality.max(1e-12),
    );
    let report = format!(
        "## Quality — value-driven batch frontier (targets per GET under a shallow budget)\n\n{}\n\n{}\n",
        markdown(&headers, &md_rows),
        summary,
    );
    let _ = write_text(&cfg.out_dir.join("quality.md"), &report);
    report
}
