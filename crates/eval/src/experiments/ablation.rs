//! Bandit-family ablation (the extended version's Appendix C discussion):
//! the paper keeps AUER and rejects ε-greedy and Thompson sampling for
//! *stability* (same output across runs on a static site) and missing
//! priors. This experiment runs the real SB-ORACLE crawler with each arm-
//! selection family on the fully-crawled profiles and reports both the
//! Table 2 metric and a run-to-run stability measure (the STD of req90
//! across seeds — AUER's selections are deterministic, so its spread
//! reflects only tie-breaking and link sampling).

use crate::metrics::req90_pct;
use crate::runner::{mean_or_inf, par_map, RunOpts};
use crate::setup::{build_site_for, reference, run_crawler, CrawlerKind, EvalConfig, SbTuning};
use crate::tables::{fmt_pct, markdown, write_csv, write_text};
use sb_crawler::strategies::BanditChoice;

/// The four policy families of the appendix discussion.
pub fn bandit_variants() -> Vec<(String, BanditChoice)> {
    vec![
        ("AUER (paper)".to_owned(), BanditChoice::Auer { alpha: sb_bandit::ALPHA_DEFAULT }),
        ("UCB1".to_owned(), BanditChoice::Ucb1 { alpha: sb_bandit::ALPHA_DEFAULT }),
        ("ε-greedy (0.1)".to_owned(), BanditChoice::EpsilonGreedy { epsilon: 0.1 }),
        ("Thompson".to_owned(), BanditChoice::Thompson { sigma: 1.0 }),
    ]
}

/// Sites used: small, medium and sectioned profiles keep this quick while
/// exercising different reward landscapes.
pub const ABLATION_SITES: [&str; 3] = ["cl", "ju", "nc"];

pub fn run(cfg: &EvalConfig) -> String {
    let mut md = String::from(
        "## Ablation — bandit family inside SB-ORACLE (extended version, Appendix C)\n\n\
         req90 = % of requests to reach 90 % of targets (mean over seeds; lower is\n\
         better); ± is the across-seed STD, the stability the paper selects AUER for.\n\n",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for code in ABLATION_SITES {
        if cfg.sites.as_ref().is_some_and(|s| !s.iter().any(|x| x == code)) {
            continue;
        }
        let site = build_site_for(cfg, code);
        let site_ref = reference(cfg, code);
        for (label, choice) in bandit_variants() {
            let tuning = SbTuning { bandit: Some(choice), ..SbTuning::default() };
            let seeds: Vec<u64> = (0..cfg.seeds.max(2)).collect();
            let metrics = par_map(&seeds, cfg.jobs, |&seed| {
                let opts = RunOpts { scale: cfg.scale, sb: tuning.clone(), ..Default::default() };
                let out = run_crawler(&site, CrawlerKind::SbOracle, seed, &opts);
                req90_pct(&out, &site_ref)
            });
            let mean = mean_or_inf(&metrics);
            let finite: Vec<f64> = metrics.iter().flatten().copied().collect();
            let std = if finite.len() > 1 {
                let m = finite.iter().sum::<f64>() / finite.len() as f64;
                (finite.iter().map(|x| (x - m).powi(2)).sum::<f64>() / finite.len() as f64).sqrt()
            } else {
                0.0
            };
            rows.push(vec![
                code.to_owned(),
                label.clone(),
                fmt_pct(mean),
                format!("±{std:.1}"),
            ]);
            csv.push(vec![
                code.to_owned(),
                label,
                mean.map_or(String::new(), |m| format!("{m:.3}")),
                format!("{std:.4}"),
            ]);
        }
    }
    let headers: Vec<String> = ["site", "bandit", "req90 (%)", "spread"].map(String::from).to_vec();
    md.push_str(&markdown(&headers, &rows));
    write_csv(
        &cfg.out_dir.join("ablation_bandit.csv"),
        &["site", "bandit", "req90", "std"].map(String::from),
        &csv,
    )
    .expect("write ablation csv");
    write_text(&cfg.out_dir.join("ablation_bandit.md"), &md).expect("write ablation md");
    md
}
