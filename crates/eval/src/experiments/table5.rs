//! Table 5, Figure 14 and Tables 8–16 — the URL-classifier study:
//! {LR, SVM, NB, PA} × {URL_ONLY, URL_CONT} on the fully-crawled sites,
//! with the intra-site crawl metric, the inter-site MR column, per-variant
//! confusion matrices and the aggregate matrix of Appendix B.5.

use crate::metrics::req90_pct;
use crate::runner::{mean_or_inf, par_map, RunOpts};
use crate::setup::{build_site_for, reference, run_with_strategy, EvalConfig, SbTuning};
use crate::tables::{fmt_pct, markdown, write_csv, write_text};
use sb_crawler::strategies::SbStrategy;
use sb_ml::{Class2, Class3, Confusion, FeatureSet, ModelKind};
use sb_webgraph::gen::profiles::fully_crawled_codes;
use sb_webgraph::UrlClass;

/// The eight studied variants, in Table 5 row order.
pub fn variants() -> Vec<(String, ModelKind, FeatureSet)> {
    let mut out = Vec::new();
    for features in [FeatureSet::UrlOnly, FeatureSet::UrlContent] {
        for model in ModelKind::ALL {
            let fname = match features {
                FeatureSet::UrlOnly => "URL_ONLY",
                FeatureSet::UrlContent => "URL_CONT",
            };
            out.push((format!("{fname}-{}", model.short_name()), model, features));
        }
    }
    out
}

struct VariantResult {
    req90_by_site: Vec<Option<f64>>,
    confusion: Confusion,
    /// One representative trace per site for Figure 14.
    traces: Vec<(String, Vec<sb_crawler::TracePoint>)>,
}

fn run_variant(
    cfg: &EvalConfig,
    codes: &[&str],
    model: ModelKind,
    features: FeatureSet,
) -> VariantResult {
    let mut req90_by_site = Vec::new();
    let mut confusion = Confusion::new();
    let mut traces = Vec::new();
    for code in codes {
        let site = build_site_for(cfg, code);
        let site_ref = reference(cfg, code);
        let seeds: Vec<u64> = (0..cfg.seeds).collect();
        let results = par_map(&seeds, cfg.jobs, |&seed| {
            let tuning = SbTuning { model, features, ..Default::default() };
            let mut strategy = SbStrategy::with_classifier(
                tuning.sb_config(),
                sb_ml::UrlClassifier::new(model, features, tuning.batch),
            )
            .record_predictions();
            let opts = RunOpts { scale: cfg.scale, ..Default::default() };
            let out = run_with_strategy(&site, &mut strategy, false, seed, &opts);
            // Score predictions against ground truth.
            let mut conf = Confusion::new();
            for (url, predicted) in strategy.predictions() {
                let truth = match site.lookup(url).map(|id| site.true_class(id)) {
                    Some(UrlClass::Html) => Class3::Html,
                    Some(UrlClass::Target) => Class3::Target,
                    _ => Class3::Neither,
                };
                let pred = match predicted {
                    Class2::Html => Class3::Html,
                    Class2::Target => Class3::Target,
                };
                conf.record(truth, pred);
            }
            (req90_pct(&out, &site_ref), conf, out.trace.resampled(300))
        });
        let metrics: Vec<Option<f64>> = results.iter().map(|(m, _, _)| *m).collect();
        req90_by_site.push(mean_or_inf(&metrics));
        for (_, conf, _) in &results {
            confusion.merge(conf);
        }
        if let Some((_, _, trace)) = results.into_iter().next() {
            traces.push(((*code).to_owned(), trace));
        }
    }
    VariantResult { req90_by_site, confusion, traces }
}

fn confusion_markdown(c: &Confusion) -> String {
    let p = c.percentages();
    let headers: Vec<String> =
        ["True \\ Predicted", "HTML (%)", "Target (%)", "Neither (%)"].map(String::from).to_vec();
    let rows: Vec<Vec<String>> = Class3::ALL
        .iter()
        .map(|t| {
            let mut row = vec![t.name().to_owned()];
            row.extend(p[t.index()].iter().map(|v| format!("{v:.2}")));
            row
        })
        .collect();
    markdown(&headers, &rows)
}

pub fn run(cfg: &EvalConfig) -> String {
    let codes: Vec<&str> = fully_crawled_codes()
        .into_iter()
        .filter(|c| match &cfg.sites {
            Some(sel) => sel.iter().any(|s| s == c),
            None => true,
        })
        .collect();
    let mut headers = vec!["Variant".to_owned()];
    headers.extend(codes.iter().map(|c| (*c).to_owned()));
    headers.push("MR".to_owned());

    let mut rows = Vec::new();
    let mut confusion_md = String::from("\n## Tables 8–15 — confusion matrices per variant\n");
    let mut aggregate = Confusion::new();
    for (label, model, features) in variants() {
        let r = run_variant(cfg, &codes, model, features);
        let mut row = vec![label.clone()];
        row.extend(r.req90_by_site.iter().map(|m| fmt_pct(*m)));
        row.push(format!("{:.2}", r.confusion.misclassification_rate()));
        rows.push(row);
        confusion_md.push_str(&format!("\n### {label}\n\n{}", confusion_markdown(&r.confusion)));
        aggregate.merge(&r.confusion);
        // Figure 14 CSVs.
        for (code, trace) in &r.traces {
            let fig_rows: Vec<Vec<String>> = trace
                .iter()
                .map(|p| vec![p.requests.to_string(), p.targets.to_string()])
                .collect();
            write_csv(
                &cfg.out_dir.join(format!("fig14/{code}_{}.csv", label.replace('-', "_"))),
                &["requests", "targets"].map(String::from),
                &fig_rows,
            )
            .expect("write fig14 csv");
        }
    }
    let mut md = format!(
        "## Table 5 — classifier variants: intra-site crawl metric (req90 %) and inter-site MR\n\n{}",
        markdown(&headers, &rows)
    );
    md.push_str(&confusion_md);
    md.push_str(&format!(
        "\n### Table 16 — aggregate confusion matrix (all variants pooled)\n\n{}",
        confusion_markdown(&aggregate)
    ));
    write_csv(
        &cfg.out_dir.join("table5.csv"),
        &headers,
        &rows,
    )
    .expect("write table5 csv");
    write_text(&cfg.out_dir.join("table5.md"), &md).expect("write table5.md");
    md
}
