//! Sec 4.2 — "Search Engines and Dataset Search": a simulated search engine
//! with partial indexing, result caps and filetype blind spots, compared
//! against a full crawl. Reproduces the *phenomenon* (SEs surface a small,
//! opaque fraction of a site's SDs), not Google's absolute numbers.

use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_webgraph::{PageKind, Website};

/// A simulated search engine's coverage profile.
pub struct SimEngine {
    pub name: &'static str,
    /// Fraction of the site the engine happened to index.
    pub index_fraction: f64,
    /// Hard cap on returned results per query (GS caps at 1 000).
    pub result_cap: usize,
    /// Extensions the `filetype:` filter does not recognise at all
    /// (the paper: "TSV is not recognized at all despite 11 097 files").
    pub blind_filetypes: &'static [&'static str],
}

pub fn engines() -> Vec<SimEngine> {
    vec![
        SimEngine { name: "SIM-GS", index_fraction: 0.35, result_cap: 1000, blind_filetypes: &["tsv", "yaml"] },
        SimEngine { name: "SIM-GDS", index_fraction: 0.06, result_cap: 500, blind_filetypes: &["tsv", "yaml", "zip", "gz"] },
    ]
}

/// Counts what `site:X filetype:ext` returns under an engine's limits.
pub fn query_filetype(site: &Website, engine: &SimEngine, ext: &str, seed: u64) -> usize {
    if engine.blind_filetypes.contains(&ext) {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e);
    let mut hits = 0usize;
    for p in site.pages() {
        if let PageKind::Target { ext: e, .. } = &p.kind {
            if *e == ext && rng.gen_bool(engine.index_fraction) {
                hits += 1;
            }
        }
    }
    hits.min(engine.result_cap)
}

pub fn run(cfg: &EvalConfig) -> String {
    let profiles = cfg.selected_profiles();
    let exts = ["pdf", "csv", "xlsx", "zip", "tsv"];
    let mut md = String::from(
        "## Sec 4.2 — simulated search-engine coverage vs. exhaustive crawl\n\n\
        A crawler retrieves *all* targets; the engines return capped, partial,\n\
        filetype-blind slices (SIM-GS ≈ classic search, SIM-GDS ≈ dataset search).\n\n",
    );
    let mut csv_rows = Vec::new();
    for p in profiles.iter().filter(|p| p.fully_crawled) {
        let site = build_site_for(cfg, p.code);
        let mut headers = vec!["source".to_owned()];
        headers.extend(exts.iter().map(|e| (*e).to_owned()));
        let mut rows = Vec::new();
        // Ground truth row.
        let mut truth = vec!["crawler (all)".to_owned()];
        for ext in exts {
            let n = site
                .pages()
                .iter()
                .filter(|pg| matches!(&pg.kind, PageKind::Target { ext: e, .. } if *e == ext))
                .count();
            truth.push(n.to_string());
            csv_rows.push(vec![p.code.into(), "crawler".into(), ext.into(), n.to_string()]);
        }
        rows.push(truth);
        for engine in engines() {
            let mut row = vec![engine.name.to_owned()];
            for ext in exts {
                let n = query_filetype(&site, &engine, ext, cfg.site_seed(p.code));
                row.push(n.to_string());
                csv_rows.push(vec![p.code.into(), engine.name.into(), ext.into(), n.to_string()]);
            }
            rows.push(row);
        }
        md.push_str(&format!("### {}\n\n{}\n", p.code, markdown(&headers, &rows)));
    }
    write_csv(
        &cfg.out_dir.join("se.csv"),
        &["site", "source", "filetype", "results"].map(String::from),
        &csv_rows,
    )
    .expect("write se csv");
    write_text(&cfg.out_dir.join("se.md"), &md).expect("write se.md");
    md
}
