//! The incremental-recrawl extension (paper Sec 6 future work): four
//! revisit policies on evolving versions of two Table 1 profiles.
//!
//! Expected shape (mirroring the single-shot result transplanted to
//! recrawling, and \[46\]'s finding that bandit schedulers beat uniform
//! revisiting): under a tight per-epoch budget on sites whose change
//! concentrates in hot sections, the tag-path group learners
//! (`thompson-groups`, `sleeping-bandit`) reach higher new-target recall
//! than `uniform` cycling, with `proportional` in between.

use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_revisit::{
    recrawl, ChangeModel, EvolvingSite, ProportionalRevisit, RecrawlConfig, RecrawlOutcome,
    RevisitPolicy, RoundRobinRevisit, SleepingBanditRevisit, ThompsonGroupsRevisit,
};

/// Profiles used: one small data portal, one medium ministry site.
pub const REVISIT_SITES: [&str; 2] = ["cl", "ed"];

fn policies() -> Vec<Box<dyn RevisitPolicy>> {
    vec![
        Box::new(RoundRobinRevisit::default()),
        Box::new(ProportionalRevisit::default()),
        Box::new(ThompsonGroupsRevisit::default()),
        Box::new(SleepingBanditRevisit::default()),
    ]
}

/// One policy's run on one evolved site.
pub struct RevisitRun {
    pub site: String,
    pub outcome: RecrawlOutcome,
}

/// Evolves `code`'s site and runs all four policies under the same budget.
pub fn run_site(cfg: &EvalConfig, code: &str) -> Vec<RevisitRun> {
    let base = (*build_site_for(cfg, code)).clone();
    let model = ChangeModel {
        epochs: 6,
        new_targets_per_epoch: 10.0,
        new_articles_per_epoch: 2.0,
        target_update_frac: 0.02,
        death_frac: 0.004,
        hot_sections: 2,
    };
    let seed = 0x5eed ^ code.bytes().fold(0u64, |a, b| a.wrapping_mul(31) + u64::from(b));
    let site = EvolvingSite::evolve(base, &model, seed);
    // Tight budget: a tenth of the site per epoch, floored for tiny sites.
    let budget = ((site.snapshot(0).len() as f64) * 0.1).round().max(30.0) as u64;
    policies()
        .into_iter()
        .map(|mut p| {
            let rc = RecrawlConfig {
                per_epoch_requests: budget,
                seed: 11,
                ..RecrawlConfig::default()
            };
            RevisitRun { site: code.to_owned(), outcome: recrawl(&site, p.as_mut(), &rc) }
        })
        .collect()
}

pub fn run(cfg: &EvalConfig) -> String {
    let mut md = String::from(
        "## Incremental recrawl (Sec 6 future work) — new-target recall per policy\n\n\
         Change model: 6 epochs, ~10 new targets + 2 articles per epoch in 2 hot\n\
         sections, 2 % target refresh, 0.4 % page deaths; per-epoch budget = 10 %\n\
         of the site.\n\n",
    );
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for code in REVISIT_SITES {
        if cfg.sites.as_ref().is_some_and(|s| !s.iter().any(|x| x == code)) {
            continue;
        }
        for run in run_site(cfg, code) {
            let o = &run.outcome;
            let last = o.epochs.last();
            rows.push(vec![
                run.site.clone(),
                o.policy_name.clone(),
                o.revisit_requests().to_string(),
                o.new_targets_found().to_string(),
                format!("{:.1}", 100.0 * o.final_recall()),
                last.map_or("—".into(), |e| format!("{:.1}", 100.0 * e.html_freshness)),
                last.map_or("—".into(), |e| format!("{:.1}", 100.0 * e.target_freshness)),
            ]);
            for e in &o.epochs {
                csv.push(vec![
                    run.site.clone(),
                    o.policy_name.clone(),
                    e.epoch.to_string(),
                    e.requests.to_string(),
                    e.changes_detected.to_string(),
                    e.new_targets_found.to_string(),
                    format!("{:.4}", e.recall()),
                    format!("{:.4}", e.html_freshness),
                    format!("{:.4}", e.target_freshness),
                ]);
            }
        }
    }
    let headers: Vec<String> = [
        "site",
        "policy",
        "revisit req.",
        "new targets",
        "recall (%)",
        "HTML fresh (%)",
        "target fresh (%)",
    ]
    .map(String::from)
    .to_vec();
    md.push_str(&markdown(&headers, &rows));
    write_csv(
        &cfg.out_dir.join("revisit.csv"),
        &[
            "site", "policy", "epoch", "requests", "changes", "new_targets", "recall",
            "html_freshness", "target_freshness",
        ]
        .map(String::from),
        &csv,
    )
    .expect("write revisit csv");
    write_text(&cfg.out_dir.join("revisit.md"), &md).expect("write revisit.md");
    md
}
