//! One module per paper experiment. Everything funnels through
//! [`campaign`], the shared site × crawler × seed run matrix, so `xp all`
//! never runs the same crawl twice.

pub mod ablation;
pub mod fig15;
pub mod fig4;
pub mod fleet;
pub mod pipeline;
pub mod quality;
pub mod revisit;
pub mod hardness;
pub mod hostile;
pub mod scale;
pub mod se;
pub mod serve;
pub mod table1;
pub mod table23;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod time;

use crate::metrics::{req90_pct, vol90_pct};
use crate::runner::{par_map, RunOpts};
use crate::setup::{build_site_for, reference, run_crawler, CrawlerKind, EvalConfig, SiteRef};
use parking_lot::Mutex;
use sb_crawler::strategy::ArmReport;
use sb_crawler::{EarlyStopConfig, TracePoint};
use std::collections::HashMap;
use std::sync::Arc;

/// Summary of one crawl run (traces resampled to keep memory flat).
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub crawler: CrawlerKind,
    pub site: String,
    pub seed: u64,
    pub req90: Option<f64>,
    pub vol90: Option<f64>,
    pub targets: u64,
    pub requests: u64,
    pub trace: Vec<TracePoint>,
    pub arms: Vec<ArmReport>,
    pub n_actions: usize,
    pub stopped_early: bool,
    pub early_stop_at: Option<u64>,
}

/// The shared baseline run matrix: Table 2/3 rows plus the early-stopping
/// re-runs of Sec 4.8.
pub struct Campaign {
    pub refs: HashMap<String, SiteRef>,
    pub runs: Vec<RunSummary>,
    /// SB-CLASSIFIER re-run with early stopping enabled, one per site.
    pub early_stop_runs: Vec<RunSummary>,
}

impl Campaign {
    /// All runs of one crawler on one site.
    pub fn of(&self, site: &str, crawler: CrawlerKind) -> Vec<&RunSummary> {
        self.runs.iter().filter(|r| r.site == site && r.crawler == crawler).collect()
    }

    /// Seed-averaged Table 2 metric.
    pub fn req90(&self, site: &str, crawler: CrawlerKind) -> Option<f64> {
        let metrics: Vec<Option<f64>> = self.of(site, crawler).iter().map(|r| r.req90).collect();
        crate::runner::mean_or_inf(&metrics)
    }

    /// Seed-averaged Table 3 metric.
    pub fn vol90(&self, site: &str, crawler: CrawlerKind) -> Option<f64> {
        let metrics: Vec<Option<f64>> = self.of(site, crawler).iter().map(|r| r.vol90).collect();
        crate::runner::mean_or_inf(&metrics)
    }
}

static CAMPAIGN_CACHE: Mutex<Option<HashMap<String, Arc<Campaign>>>> = Mutex::new(None);

fn campaign_key(cfg: &EvalConfig) -> String {
    format!(
        "{}:{}:{}",
        (cfg.scale * 1e6) as u64,
        cfg.seeds,
        cfg.sites.as_ref().map(|s| s.join(",")).unwrap_or_default()
    )
}

/// Scaled early-stopping parameters (ν scales with the site, Sec 4.8).
///
/// ν is floored at 30: the classifier's constant-size warm-up (HEAD
/// bootstrap + first SGD batches) does not shrink with the site, so a
/// proportionally scaled ν would sample slopes during warm-up and stop
/// crawls before learning starts.
pub fn scaled_early_stop(scale: f64) -> EarlyStopConfig {
    let mut cfg = EarlyStopConfig::default().scaled(scale);
    cfg.nu = cfg.nu.max(30);
    cfg
}

/// Runs (or fetches) the shared campaign.
pub fn campaign(cfg: &EvalConfig) -> Arc<Campaign> {
    let key = campaign_key(cfg);
    {
        let cache = CAMPAIGN_CACHE.lock();
        if let Some(map) = cache.as_ref() {
            if let Some(c) = map.get(&key) {
                return c.clone();
            }
        }
    }
    let c = Arc::new(run_campaign(cfg));
    CAMPAIGN_CACHE.lock().get_or_insert_with(HashMap::new).insert(key, c.clone());
    c
}

/// Public summariser for experiments that run outside the shared campaign.
pub fn summarize_public(
    site: &str,
    crawler: CrawlerKind,
    seed: u64,
    outcome: sb_crawler::CrawlOutcome,
    site_ref: &SiteRef,
) -> RunSummary {
    summarize(site, crawler, seed, outcome, site_ref)
}

fn summarize(
    site: &str,
    crawler: CrawlerKind,
    seed: u64,
    outcome: sb_crawler::CrawlOutcome,
    site_ref: &SiteRef,
) -> RunSummary {
    RunSummary {
        crawler,
        site: site.to_owned(),
        seed,
        req90: req90_pct(&outcome, site_ref),
        vol90: vol90_pct(&outcome, site_ref),
        targets: outcome.targets_found(),
        requests: outcome.traffic.requests(),
        trace: outcome.trace.resampled(300),
        arms: outcome.report.arms,
        n_actions: outcome.report.n_actions,
        stopped_early: outcome.stopped_early,
        early_stop_at: outcome.early_stop_at,
    }
}

fn run_campaign(cfg: &EvalConfig) -> Campaign {
    let profiles = cfg.selected_profiles();
    // Pre-build all sites and references serially (cache-backed) so the
    // parallel phase is pure crawling.
    let mut refs = HashMap::new();
    for p in &profiles {
        build_site_for(cfg, p.code);
        refs.insert(p.code.to_owned(), reference(cfg, p.code));
    }

    // The run matrix.
    struct Job {
        site: &'static str,
        crawler: CrawlerKind,
        seed: u64,
        early_stop: bool,
    }
    let mut jobs: Vec<Job> = Vec::new();
    for p in &profiles {
        for crawler in CrawlerKind::TABLE_ROWS {
            if crawler == CrawlerKind::SbOracle && !p.fully_crawled {
                continue; // paper: NA on partially-crawled sites
            }
            let seeds = if crawler.stochastic() { cfg.seeds } else { 1 };
            for seed in 0..seeds {
                jobs.push(Job { site: p.code, crawler, seed, early_stop: false });
            }
        }
        // Sec 4.8 re-run.
        jobs.push(Job { site: p.code, crawler: CrawlerKind::SbClassifier, seed: 0, early_stop: true });
    }

    let results = par_map(&jobs, cfg.jobs, |job| {
        let site = build_site_for(cfg, job.site);
        let site_ref = refs[job.site];
        let opts = RunOpts {
            scale: cfg.scale,
            early_stop: job.early_stop.then(|| scaled_early_stop(cfg.scale)),
            ..Default::default()
        };
        let outcome = run_crawler(&site, job.crawler, job.seed, &opts);
        (job.early_stop, summarize(job.site, job.crawler, job.seed, outcome, &site_ref))
    });

    let mut runs = Vec::new();
    let mut early_stop_runs = Vec::new();
    for (is_es, summary) in results {
        if is_es {
            early_stop_runs.push(summary);
        } else {
            runs.push(summary);
        }
    }
    Campaign { refs, runs, early_stop_runs }
}
