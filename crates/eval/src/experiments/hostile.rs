//! Hostile — the hostile-web workload (PR 6): BFS over a trap-laced,
//! flaky, heavy-tailed site at in-flight windows 1, 4 and 16, with the
//! transport-level retry/backoff policy turned on. The site carries the
//! full [`HazardSpec::scaled`] overlay (calendar trap, redirect farm and
//! loops, soft-404s, near-duplicate clusters) woven into repurposed error
//! URLs, an 8 % hard-503 outage recovered-or-abandoned by retries, and a
//! heavy-tailed latency hazard behind a transport timeout.
//!
//! Per window the table reports the **waste share** (requests spent inside
//! the hazard subspace, against the `HazardReport` ground truth), the
//! **clean-subset coverage** (distinct clean URLs fetched, relative to an
//! exhaustive hazard-free crawl of the same site), the per-reason abandon
//! counters (`timeout`, `retries_exhausted`) and the simulated makespan.
//! A separate blackout drill crawls the same site behind a 100 %-failure
//! origin to exercise the per-host circuit breaker and report how many
//! frontier URLs the quarantine abandoned at zero simulated cost.

use crate::experiments::pipeline::{latency_politeness, WINDOWS};
use crate::setup::EvalConfig;
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{Budget, CrawlConfig, CrawlOutcome, CrawlSession, EventLog, OwnedEvent};
use sb_httpsim::{
    FlakyServer, HazardPolicy, HttpServer, PipelinedTransport, RetryPolicy, SiteServer,
    TailLatency,
};
use sb_webgraph::gen::hazard::{apply_hazards, HazardReport, HazardSpec};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::Website;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Share of URLs taken out by the hard 503 outage.
const OUTAGE: f64 = 0.08;

/// The retry policy under test: two retries behind a jittered capped
/// exponential backoff — enough to ride out heavy-tail timeouts, never
/// enough for the hard outage (which must land in `retries_exhausted`).
fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy::retries(2).with_backoff(0.5, 8.0).with_jitter(0.2, seed)
}

/// Heavy-tailed latency behind a transport timeout: most requests are
/// unaffected, the Pareto tail occasionally blows past the deadline and
/// only repeated bad draws exhaust the retries.
fn tail_hazard() -> HazardPolicy {
    HazardPolicy::seeded(17)
        .with_tail(TailLatency { prob: 0.25, scale_secs: 6.0, alpha: 1.2 })
        .with_timeout(8.0)
}

struct HostileRun {
    outcome: CrawlOutcome,
    /// Distinct clean (non-hazard) URLs fetched.
    clean_urls: usize,
    /// Requests answered inside the hazard subspace.
    waste: u64,
}

fn crawl_hostile(
    site: &Arc<Website>,
    report: &HazardReport,
    window: usize,
    budget: Budget,
    outage: f64,
    tail: bool,
) -> HostileRun {
    let root = site.page(site.root()).url.clone();
    let flaky = FlakyServer::new(SiteServer::shared(Arc::clone(site)), outage, 29)
        .protecting(&root);
    let server: &dyn HttpServer = &flaky;
    let transport = PipelinedTransport::new(server, MimePolicy::default(), latency_politeness())
        .with_window(window)
        .with_retry_policy(retry_policy(window as u64))
        .with_hazards(if tail { tail_hazard() } else { HazardPolicy::default() });
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget, max_in_flight: window, seed: 7, ..Default::default() };
    let mut log = EventLog::new();
    let outcome =
        CrawlSession::with_transport(Box::new(transport), None, &root, &mut bfs, &cfg)
            .expect("generated roots are valid")
            .observe(&mut log)
            .run();
    let mut clean = BTreeSet::new();
    let mut waste = 0u64;
    for e in log.events() {
        if let OwnedEvent::Fetched { url, .. } = e {
            if report.is_hazard_url(url) {
                waste += 1;
            } else {
                clean.insert(url.clone());
            }
        }
    }
    HostileRun { outcome, clean_urls: clean.len(), waste }
}

pub fn run(cfg: &EvalConfig) -> String {
    // Same scale ladder as the pipeline experiment: `--scale 0.01` is the
    // 4 000-page bench site, verify smokes shrink it via `--scale`.
    let n_pages = ((cfg.scale * 400_000.0) as usize).clamp(200, 40_000);
    let mut hazy = build_site(&SiteSpec::demo(n_pages), 42);
    let report = apply_hazards(&mut hazy, &HazardSpec::scaled(n_pages), 7);
    let site = Arc::new(hazy);

    // Hazard-free coverage baseline: an exhaustive crawl of the same site
    // with no outage and no trap bait ever followed (clean URLs only).
    let clean_total = {
        let mut clean_site = build_site(&SiteSpec::demo(n_pages), 42);
        let _ = apply_hazards(&mut clean_site, &HazardSpec::none(), 7);
        let clean_site = Arc::new(clean_site);
        let r = crawl_hostile(&clean_site, &report, 16, Budget::Unlimited, 0.0, false);
        r.clean_urls.max(1)
    };

    struct Row {
        window: usize,
        requests: u64,
        waste_pct: f64,
        coverage_pct: f64,
        timeouts: u64,
        retries_exhausted: u64,
        makespan_secs: f64,
    }
    let budget = Budget::Requests(n_pages as u64);
    let rows: Vec<Row> = crate::runner::par_map(&WINDOWS, cfg.jobs, |&window| {
        let r = crawl_hostile(&site, &report, window, budget, OUTAGE, true);
        let requests = r.outcome.traffic.requests();
        Row {
            window,
            requests,
            waste_pct: 100.0 * r.waste as f64 / requests.max(1) as f64,
            coverage_pct: 100.0 * r.clean_urls as f64 / clean_total as f64,
            timeouts: r.outcome.abandoned.timeout,
            retries_exhausted: r.outcome.abandoned.retries_exhausted,
            makespan_secs: r.outcome.traffic.elapsed_secs,
        }
    });

    // Blackout drill: every first contact fails hard; the circuit breaker
    // must quarantine the host and drain the frontier at zero cost.
    let drill = {
        let root = site.page(site.root()).url.clone();
        let flaky = FlakyServer::new(SiteServer::shared(Arc::clone(&site)), 1.0, 3)
            .protecting(&root);
        let server: &dyn HttpServer = &flaky;
        let transport =
            PipelinedTransport::new(server, MimePolicy::default(), latency_politeness())
                .with_window(4)
                .with_retry_policy(RetryPolicy::retries(1).with_quarantine_after(3));
        let mut bfs = QueueStrategy::bfs();
        let dcfg = CrawlConfig { budget, max_in_flight: 4, seed: 7, ..Default::default() };
        CrawlSession::with_transport(Box::new(transport), None, &root, &mut bfs, &dcfg)
            .expect("generated roots are valid")
            .run()
    };

    let headers: Vec<String> = [
        "In-flight",
        "Requests",
        "Waste %",
        "Clean coverage %",
        "Timeouts",
        "Retries exhausted",
        "Sim. makespan (h)",
    ]
    .map(String::from)
    .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for r in &rows {
        md_rows.push(vec![
            r.window.to_string(),
            r.requests.to_string(),
            format!("{:.1}", r.waste_pct),
            format!("{:.1}", r.coverage_pct),
            r.timeouts.to_string(),
            r.retries_exhausted.to_string(),
            format!("{:.2}", r.makespan_secs / 3600.0),
        ]);
        csv_rows.push(vec![
            r.window.to_string(),
            r.requests.to_string(),
            format!("{:.4}", r.waste_pct),
            format!("{:.4}", r.coverage_pct),
            r.timeouts.to_string(),
            r.retries_exhausted.to_string(),
            format!("{:.4}", r.makespan_secs),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("hostile.csv"),
        &[
            "in_flight",
            "requests",
            "waste_pct",
            "clean_coverage_pct",
            "timeouts",
            "retries_exhausted",
            "sim_makespan_secs",
        ]
        .map(String::from),
        &csv_rows,
    );

    let worst_waste = rows.iter().map(|r| r.waste_pct).fold(0.0f64, f64::max);
    let summary = format!(
        "{n_pages}-page site with the full hazard overlay ({} hazard URLs), {:.0} % hard outage, \
         heavy-tail latency behind an 8 s timeout: waste stays ≤ {worst_waste:.1} % of the budget \
         across windows. Blackout drill: the circuit breaker quarantined the host after \
         {} requests and drained {} frontier URLs at zero simulated cost.",
        report.len(),
        OUTAGE * 100.0,
        drill.traffic.requests(),
        drill.abandoned.quarantined,
    );
    let report_md = format!(
        "## Hostile — trap-laced site, retry/backoff transport (bounded waste)\n\n{}\n\n{}\n",
        markdown(&headers, &md_rows),
        summary,
    );
    let _ = write_text(&cfg.out_dir.join("hostile.md"), &report_md);
    report_md
}
