//! Figure 15 — early-stopping visualisation on `in` and `ju`: the target
//! curve plus the iteration where the stopping rule cut the crawl.

use super::{campaign, scaled_early_stop};
use crate::setup::EvalConfig;
use crate::tables::{write_csv, write_text};

pub const FIG15_CODES: [&str; 2] = ["in", "ju"];

pub fn run(cfg: &EvalConfig) -> String {
    let c = campaign(cfg);
    let mut md = String::from("## Figure 15 — early-stopping cut points (Sec 4.8)\n\n");
    let es_cfg = scaled_early_stop(cfg.scale);
    md.push_str(&format!(
        "Parameters: ν={}, ε={}, γ={}, κ={}\n\n",
        es_cfg.nu, es_cfg.epsilon, es_cfg.gamma, es_cfg.kappa
    ));
    for code in FIG15_CODES {
        if let Some(sel) = &cfg.sites {
            if !sel.iter().any(|s| s == code) {
                continue;
            }
        }
        let Some(run) = c.early_stop_runs.iter().find(|r| r.site == code) else { continue };
        let rows: Vec<Vec<String>> = run
            .trace
            .iter()
            .map(|p| vec![p.requests.to_string(), p.targets.to_string()])
            .collect();
        write_csv(
            &cfg.out_dir.join(format!("fig15/{code}.csv")),
            &["requests", "targets"].map(String::from),
            &rows,
        )
        .expect("write fig15 csv");
        match run.early_stop_at {
            Some(t) => md.push_str(&format!(
                "* `{code}`: stopped at iteration {t} with {} targets after {} requests\n",
                run.targets, run.requests
            )),
            None => md.push_str(&format!(
                "* `{code}`: crawl ended before the stopping rule could fire ({} targets)\n",
                run.targets
            )),
        }
    }
    write_text(&cfg.out_dir.join("fig15.md"), &md).expect("write fig15.md");
    md
}
