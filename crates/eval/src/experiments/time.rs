//! Sec 4.4's retrieval-time illustration: on the medium-sized `ed`,
//! SB-CLASSIFIER needs 3 h 16 min to collect 5 k targets and 10 h 52 min
//! for 10 k, where BFS needs 5 h 13 min and 48 h 45 min (1.6× and 4.5×
//! more). Requests and volume are converted to wall-clock with the
//! politeness model (1 s inter-request wait + transfer time), exactly as
//! the paper suggests ("crawl time can be estimated from these, knowing
//! the bandwidth and the ethics waiting time").
//!
//! The paper's milestones (5 k and 10 k of `ed`'s 10.47 k targets) are
//! carried over as *fractions* of the scaled site's target count, so the
//! shape — the BFS/SB ratio growing sharply between the two milestones —
//! is scale-invariant.

use super::{campaign, RunSummary};
use crate::runner::mean_or_inf;
use crate::setup::{reference, CrawlerKind, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};

/// The paper's milestones as fractions of `ed`'s 10.47 k targets.
pub const MILESTONES: [(f64, &str, f64); 2] =
    [(5.0 / 10.47, "5k-equivalent", 1.6), (10.0 / 10.47, "10k-equivalent", 4.5)];

/// The site of the paper's illustration.
pub const TIME_SITE: &str = "ed";

/// Simulated hours at which `run` first holds `k` targets.
fn hours_to(run: &RunSummary, k: u64) -> Option<f64> {
    run.trace.iter().find(|p| p.targets >= k).map(|p| p.elapsed_secs / 3600.0)
}

fn fmt_hours(h: Option<f64>) -> String {
    match h {
        Some(h) => {
            let whole = h.floor() as u64;
            let mins = ((h - h.floor()) * 60.0).round() as u64;
            format!("{whole}h{mins:02}")
        }
        None => "+∞".to_owned(),
    }
}

pub fn run(cfg: &EvalConfig) -> String {
    let mut md = String::from("## Sec 4.4 — estimated retrieval times on `ed`\n\n");
    if cfg.sites.as_ref().is_some_and(|s| !s.iter().any(|x| x == TIME_SITE)) {
        md.push_str("(skipped: `ed` not in --sites)\n");
        return md;
    }
    let c = campaign(cfg);
    let site_ref = reference(cfg, TIME_SITE);
    md.push_str(&format!(
        "Politeness: 1 s between requests; scaled `ed` has {} targets. \
         Paper: SB 3h16/10h52 vs BFS 5h13/48h45 (ratios 1.6× / 4.5×).\n\n",
        site_ref.targets
    ));

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (frac, label, paper_ratio) in MILESTONES {
        let k = ((site_ref.targets as f64) * frac).round().max(1.0) as u64;
        let mean_hours = |kind: CrawlerKind| -> Option<f64> {
            let per_seed: Vec<Option<f64>> =
                c.of(TIME_SITE, kind).iter().map(|r| hours_to(r, k)).collect();
            if per_seed.is_empty() {
                return None;
            }
            mean_or_inf(&per_seed)
        };
        let sb = mean_hours(CrawlerKind::SbClassifier);
        let bfs = mean_hours(CrawlerKind::Bfs);
        let ratio = match (sb, bfs) {
            (Some(s), Some(b)) if s > 0.0 => Some(b / s),
            _ => None,
        };
        rows.push(vec![
            label.to_owned(),
            k.to_string(),
            fmt_hours(sb),
            fmt_hours(bfs),
            ratio.map_or("+∞".to_owned(), |r| format!("{r:.1}×")),
            format!("{paper_ratio:.1}×"),
        ]);
        csv_rows.push(vec![
            label.to_owned(),
            k.to_string(),
            sb.map_or(String::new(), |h| format!("{h:.3}")),
            bfs.map_or(String::new(), |h| format!("{h:.3}")),
            ratio.map_or(String::new(), |r| format!("{r:.3}")),
        ]);
    }
    let headers: Vec<String> = ["milestone", "targets", "SB-CLASS.", "BFS", "ratio", "paper ratio"]
        .map(String::from)
        .to_vec();
    md.push_str(&markdown(&headers, &rows));
    write_csv(
        &cfg.out_dir.join("time_ed.csv"),
        &["milestone", "targets", "sb_hours", "bfs_hours", "ratio"].map(String::from),
        &csv_rows,
    )
    .expect("write time csv");
    write_text(&cfg.out_dir.join("time.md"), &md).expect("write time.md");
    md
}
