//! Table 4 and Figures 8–13 — the hyper-parameter study on the
//! fully-crawled sites: α ∈ {0.1, 2√2, 30}, n ∈ {1, 2, 3},
//! θ ∈ {0.55, 0.75, 0.95}, run with SB-ORACLE exactly as in the paper.
//! The θ = 0.95 action-space explosion (the paper's OOM on `ed`) is caught
//! by the `max_actions` guard and printed as `OOM`.

use super::RunSummary;
use crate::metrics::{req90_pct, vol90_pct};
use crate::runner::{mean_or_inf, par_map, RunOpts};
use crate::setup::{build_site_for, reference, run_crawler, CrawlerKind, EvalConfig, SbTuning};
use crate::tables::{fmt_pct, markdown, write_csv, write_text};
use sb_bandit::ALPHA_DEFAULT;
use sb_webgraph::gen::profiles::fully_crawled_codes;

/// One studied variant.
#[derive(Debug, Clone)]
pub struct Variant {
    pub label: String,
    pub tuning: SbTuning,
}

/// The paper's three sweeps.
pub fn variants() -> Vec<(String, Vec<Variant>)> {
    let base = SbTuning::default;
    let mk = |label: &str, f: &dyn Fn(&mut SbTuning)| {
        let mut t = base();
        f(&mut t);
        Variant { label: label.to_owned(), tuning: t }
    };
    vec![
        (
            "alpha".to_owned(),
            vec![
                mk("α=0.1", &|t| t.alpha = 0.1),
                mk("α=2√2", &|t| t.alpha = ALPHA_DEFAULT),
                mk("α=30", &|t| t.alpha = 30.0),
            ],
        ),
        (
            "ngram".to_owned(),
            vec![
                mk("n=1", &|t| t.ngram = 1),
                mk("n=2", &|t| t.ngram = 2),
                mk("n=3", &|t| t.ngram = 3),
            ],
        ),
        (
            "theta".to_owned(),
            vec![
                mk("θ=0.55", &|t| t.theta = 0.55),
                mk("θ=0.75", &|t| t.theta = 0.75),
                mk("θ=0.95", &|t| t.theta = 0.95),
            ],
        ),
    ]
}

struct Cell {
    req90: Option<f64>,
    vol90: Option<f64>,
    oom: bool,
}

fn run_variant(cfg: &EvalConfig, code: &str, tuning: &SbTuning) -> (Cell, Vec<RunSummary>) {
    let site = build_site_for(cfg, code);
    let site_ref = reference(cfg, code);
    // The memory guard: the paper's θ = 0.95 OOM on `ed` came from "creating
    // as many actions as HTML pages". A healthy clustering stays within a few
    // dozen actions regardless of site size (one per tag-path template), so
    // an action count growing like the page count — more than ~1/8 of the
    // site at our scales — is the OOM regime.
    let mut tuning = tuning.clone();
    tuning.max_actions = Some((site_ref.available / 8).max(64));
    let seeds: Vec<u64> = (0..cfg.seeds).collect();
    let outs = par_map(&seeds, cfg.jobs, |&seed| {
        let opts = RunOpts { scale: cfg.scale, sb: tuning.clone(), ..Default::default() };
        let out = run_crawler(&site, CrawlerKind::SbOracle, seed, &opts);
        (
            req90_pct(&out, &site_ref),
            vol90_pct(&out, &site_ref),
            out.aborted_oom,
            super::summarize_public(code, CrawlerKind::SbOracle, seed, out, &site_ref),
        )
    });
    let oom = outs.iter().any(|(_, _, o, _)| *o);
    let cell = Cell {
        req90: mean_or_inf(&outs.iter().map(|(r, _, _, _)| *r).collect::<Vec<_>>()),
        vol90: mean_or_inf(&outs.iter().map(|(_, v, _, _)| *v).collect::<Vec<_>>()),
        oom,
    };
    (cell, outs.into_iter().map(|(_, _, _, s)| s).collect())
}

pub fn run(cfg: &EvalConfig) -> String {
    let codes: Vec<&str> = fully_crawled_codes()
        .into_iter()
        .filter(|c| match &cfg.sites {
            Some(sel) => sel.iter().any(|s| s == c),
            None => true,
        })
        .collect();
    let mut md = String::from("## Table 4 — hyper-parameter study (SB-ORACLE, fully-crawled sites)\n");
    md.push_str("Cells are `req90 | vol90` percentages; `OOM` marks an action-space explosion.\n\n");
    let mut headers = vec!["Variant".to_owned()];
    headers.extend(codes.iter().map(|c| (*c).to_owned()));

    for (sweep, vs) in variants() {
        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        for v in &vs {
            let mut row = vec![v.label.clone()];
            let mut csv_row = vec![v.label.clone()];
            for code in &codes {
                let (cell, summaries) = run_variant(cfg, code, &v.tuning);
                let text = if cell.oom {
                    "OOM | OOM".to_owned()
                } else {
                    format!("{} | {}", fmt_pct(cell.req90), fmt_pct(cell.vol90))
                };
                csv_row.push(text.clone());
                row.push(text);
                // Figures 8–13: per-variant curves.
                let fig_rows: Vec<Vec<String>> = summaries
                    .first()
                    .map(|s| {
                        s.trace
                            .iter()
                            .map(|p| {
                                vec![
                                    p.requests.to_string(),
                                    p.targets.to_string(),
                                    format!("{:.6}", p.target_bytes as f64 / 1e9),
                                    format!("{:.6}", p.non_target_bytes as f64 / 1e9),
                                ]
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                write_csv(
                    &cfg.out_dir.join(format!("fig_hyper_{sweep}/{code}_{}.csv", v.label.replace(['√', '='], "_"))),
                    &["requests", "targets", "target_gb", "non_target_gb"].map(String::from),
                    &fig_rows,
                )
                .expect("write hyper fig csv");
            }
            rows.push(row);
            csv_rows.push(csv_row);
        }
        md.push_str(&format!("\n### Sweep: {sweep}\n\n{}", markdown(&headers, &rows)));
        write_csv(&cfg.out_dir.join(format!("table4_{sweep}.csv")), &headers, &csv_rows)
            .expect("write table4 csv");
    }
    write_text(&cfg.out_dir.join("table4.md"), &md).expect("write table4.md");
    md
}
