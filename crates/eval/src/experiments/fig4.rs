//! Figures 4 and 7 — the crawler-comparison curves: targets vs requests and
//! target volume vs non-target volume, per site and crawler. Emitted as one
//! CSV per site; TRES and OMNISCIENT join the Table 2 crawlers here,
//! with TRES restricted to small fully-crawled sites exactly as in Sec 4.5.

use super::campaign;
use crate::runner::RunOpts;
use crate::setup::{build_site_for, reference, run_crawler, CrawlerKind, EvalConfig};
use crate::tables::{write_csv, write_text};
use sb_crawler::TracePoint;

/// TRES runs only where its quadratic frontier re-scoring stays feasible
/// (the paper stops it beyond small sites).
pub const TRES_MAX_PAGES: usize = 1200;

fn trace_rows(crawler: &str, pts: &[TracePoint]) -> Vec<Vec<String>> {
    pts.iter()
        .map(|p| {
            vec![
                crawler.to_owned(),
                p.requests.to_string(),
                p.head_requests.to_string(),
                p.targets.to_string(),
                format!("{:.6}", p.target_bytes as f64 / 1e9),
                format!("{:.6}", p.non_target_bytes as f64 / 1e9),
                format!("{:.1}", p.elapsed_secs),
            ]
        })
        .collect()
}

pub fn run(cfg: &EvalConfig) -> String {
    let c = campaign(cfg);
    let profiles = cfg.selected_profiles();
    let headers =
        ["crawler", "requests", "head_requests", "targets", "target_gb", "non_target_gb", "elapsed_secs"]
            .map(String::from)
            .to_vec();
    let mut md = String::from("## Figures 4 & 7 — crawler-comparison curves\n\n");
    for p in &profiles {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for crawler in CrawlerKind::TABLE_ROWS {
            if let Some(run) = c.of(p.code, crawler).first() {
                rows.extend(trace_rows(crawler.name(), &run.trace));
            }
        }
        // OMNISCIENT: cheap, run here.
        let site = build_site_for(cfg, p.code);
        let opts = RunOpts { scale: cfg.scale, ..Default::default() };
        let omni = run_crawler(&site, CrawlerKind::Omniscient, 0, &opts);
        rows.extend(trace_rows("OMNISCIENT", &omni.trace.resampled(300)));
        // TRES where feasible.
        let site_ref = reference(cfg, p.code);
        if p.fully_crawled && site_ref.available <= TRES_MAX_PAGES {
            let tres = run_crawler(&site, CrawlerKind::Tres, 0, &opts);
            rows.extend(trace_rows("TRES", &tres.trace.resampled(300)));
        }
        let path = cfg.out_dir.join(format!("fig4/{}.csv", p.code));
        write_csv(&path, &headers, &rows).expect("write fig4 csv");
        md.push_str(&format!("* `{}` → {}\n", p.code, path.display()));
    }
    md.push_str("\nPlot targets-vs-requests (left panels) and target_gb-vs-non_target_gb (right panels); higher curves are better.\n");
    write_text(&cfg.out_dir.join("fig4.md"), &md).expect("write fig4.md");
    md
}
