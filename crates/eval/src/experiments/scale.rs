//! Scale — the memory-bounded crawl ladder (PR 7): BFS to exhaustion over
//! 10k / 100k (and optionally 1M) page streaming sites, with every
//! unbounded structure swapped for its `sb_scale` counterpart — streaming
//! site behind the server, spill-backed frontier, fingerprint-compacted
//! visited set. Records wall-clock throughput (pages/sec), process peak
//! RSS, and the session's own memory gauges at their peaks, proving the
//! in-memory footprint stays bounded while coverage stays *byte-identical*
//! to the all-unbounded engine (checked outright on the 10k rung).
//!
//! Rungs: `[10k]` under `--scale < 0.01` (the verify smoke), `[10k, 100k]`
//! otherwise; set `SB_SCALE_XL=1` to append the 1M rung.

use crate::setup::EvalConfig;
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{CrawlConfig, CrawlSession, MemGauges};
use sb_httpsim::SiteServer;
use sb_scale::{stream_site, SpillBacking};
use sb_webgraph::gen::{build_site, SiteSource, SiteSpec};
use std::sync::Arc;

/// In-memory frontier cap: ids beyond this spill to the arena. Sized well
/// under the ~4k peak BFS frontier of the 10k-page rung so every rung
/// actually exercises the spill path.
pub const FRONTIER_CAP: usize = 1024;
/// Visited-set compaction threshold: URLs past this are fingerprints.
pub const VISITED_THRESHOLD: usize = 4096;

struct Rung {
    pages: usize,
    crawled: u64,
    targets: u64,
    elapsed_secs: f64,
    pages_per_sec: f64,
    peak_rss_kb: u64,
    peak: MemGauges,
    spill_observed: bool,
    site_static_kb: u64,
}

/// `VmHWM` (peak resident set) and `VmRSS` from `/proc/self/status`, in kB.
/// Returns 0 on non-Linux platforms rather than failing the ladder.
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

fn proc_status_kb(key: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find(|l| l.starts_with(key))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn crawl_rung(pages: usize) -> Rung {
    let spec = SiteSpec::demo(pages);
    let site = Arc::new(stream_site(&spec, 42));
    let site_static_kb = site.static_bytes() / 1024;
    let root = site.url(site.root()).to_owned();
    let server = SiteServer::from_source(Arc::clone(&site) as Arc<dyn SiteSource>);
    let mut bfs = QueueStrategy::bfs_spilling(FRONTIER_CAP, SpillBacking::Memory);
    let cfg = CrawlConfig {
        compact_visited_threshold: VISITED_THRESHOLD,
        ..Default::default()
    };
    let mut session =
        CrawlSession::new(&server, None, &root, &mut bfs, &cfg).expect("generated root is valid");

    let t0 = std::time::Instant::now();
    let mut peak = MemGauges::default();
    let mut spill_observed = false;
    while !session.is_finished() {
        let report = session.step();
        let m = report.mem;
        peak.visited_urls = peak.visited_urls.max(m.visited_urls);
        peak.visited_bytes = peak.visited_bytes.max(m.visited_bytes);
        peak.visited_collisions = peak.visited_collisions.max(m.visited_collisions);
        peak.frontier_len = peak.frontier_len.max(m.frontier_len);
        peak.frontier_spilled = peak.frontier_spilled.max(m.frontier_spilled);
        spill_observed |= m.frontier_spilled > 0;
    }
    let elapsed_secs = t0.elapsed().as_secs_f64();
    let out = session.finish();
    Rung {
        pages,
        crawled: out.pages_crawled,
        targets: out.targets_found(),
        elapsed_secs,
        pages_per_sec: out.pages_crawled as f64 / elapsed_secs.max(1e-9),
        peak_rss_kb: peak_rss_kb(),
        peak,
        spill_observed,
        site_static_kb,
    }
}

/// Byte-identity pin for the smallest rung: the bounded engine (streaming
/// site + spilling frontier + compact visited) must produce exactly the
/// trace, targets and traffic of the all-unbounded engine.
fn verify_identical(pages: usize) -> String {
    let spec = SiteSpec::demo(pages);
    let eager = build_site(&spec, 42);
    let root = eager.page(eager.root()).url.clone();

    let server = SiteServer::new(eager);
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig::default();
    let reference = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();

    let site = Arc::new(stream_site(&spec, 42));
    let lazy_server = SiteServer::from_source(Arc::clone(&site) as Arc<dyn SiteSource>);
    let mut bounded_bfs = QueueStrategy::bfs_spilling(FRONTIER_CAP, SpillBacking::Memory);
    let bounded_cfg = CrawlConfig {
        compact_visited_threshold: VISITED_THRESHOLD,
        ..Default::default()
    };
    let bounded = CrawlSession::new(&lazy_server, None, &root, &mut bounded_bfs, &bounded_cfg)
        .expect("valid root")
        .run();

    assert_eq!(
        reference.trace.points(),
        bounded.trace.points(),
        "bounded engine diverged from the unbounded reference at {pages} pages"
    );
    assert_eq!(reference.traffic, bounded.traffic, "traffic diverged");
    let urls = |o: &sb_crawler::engine::CrawlOutcome| {
        o.targets.iter().map(|t| t.url.clone()).collect::<Vec<_>>()
    };
    assert_eq!(urls(&reference), urls(&bounded), "target sets diverged");
    format!(
        "coverage verified byte-identical to the unbounded engine at {pages} pages \
         ({} requests, {} targets)",
        reference.traffic.requests(),
        reference.targets_found()
    )
}

pub fn run(cfg: &EvalConfig) -> String {
    let mut rung_sizes = if cfg.scale < 0.01 { vec![10_000] } else { vec![10_000, 100_000] };
    if std::env::var_os("SB_SCALE_XL").is_some() {
        rung_sizes.push(1_000_000);
    }

    // Rungs run first: `VmHWM` is a process-wide high-water mark, so the
    // RSS column must be captured before the eager reference site of the
    // identity check inflates it.
    let rungs: Vec<Rung> = rung_sizes.iter().map(|&n| crawl_rung(n)).collect();
    let identity = verify_identical(rung_sizes[0]);

    for r in &rungs {
        // The ladder's contract: the in-memory frontier stays near its cap
        // (cap + one spill chunk of slack) no matter the site size, and the
        // exact portion of the visited set stays at its threshold.
        let in_mem = r.peak.frontier_len - r.peak.frontier_spilled;
        assert!(
            in_mem <= FRONTIER_CAP + FRONTIER_CAP / 2,
            "{} pages: {} frontier ids in memory exceeds cap {}",
            r.pages,
            in_mem,
            FRONTIER_CAP
        );
        if r.pages > FRONTIER_CAP {
            assert!(r.spill_observed, "{} pages crawled without ever spilling", r.pages);
        }
    }

    let headers: Vec<String> = [
        "Pages", "Crawled", "Targets", "Wall (s)", "Pages/s", "Peak RSS (MB)",
        "Site static (MB)", "Peak frontier", "…spilled", "Visited (MB est.)",
    ]
    .map(String::from)
    .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for r in &rungs {
        md_rows.push(vec![
            r.pages.to_string(),
            r.crawled.to_string(),
            r.targets.to_string(),
            format!("{:.2}", r.elapsed_secs),
            format!("{:.0}", r.pages_per_sec),
            format!("{:.1}", r.peak_rss_kb as f64 / 1024.0),
            format!("{:.1}", r.site_static_kb as f64 / 1024.0),
            r.peak.frontier_len.to_string(),
            r.peak.frontier_spilled.to_string(),
            format!("{:.2}", r.peak.visited_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        csv_rows.push(vec![
            r.pages.to_string(),
            r.crawled.to_string(),
            r.targets.to_string(),
            format!("{:.4}", r.elapsed_secs),
            format!("{:.2}", r.pages_per_sec),
            r.peak_rss_kb.to_string(),
            r.site_static_kb.to_string(),
            r.peak.frontier_len.to_string(),
            r.peak.frontier_spilled.to_string(),
            r.peak.visited_bytes.to_string(),
            r.peak.visited_urls.to_string(),
            r.peak.visited_collisions.to_string(),
        ]);
    }
    let _ = write_csv(
        &cfg.out_dir.join("scale.csv"),
        &[
            "pages", "crawled", "targets", "wall_secs", "pages_per_sec", "peak_rss_kb",
            "site_static_kb", "peak_frontier_len", "peak_frontier_spilled",
            "peak_visited_bytes", "visited_urls", "visited_collisions",
        ]
        .map(String::from),
        &csv_rows,
    );

    let last = rungs.last().expect("at least one rung");
    let summary = format!(
        "memory-bounded BFS ladder (frontier cap {FRONTIER_CAP}, visited threshold \
         {VISITED_THRESHOLD}): {} pages at {:.0} pages/s, peak in-memory frontier {} ids \
         ({} spilled), visited ≈{:.1} MB; {}",
        last.pages,
        last.pages_per_sec,
        last.peak.frontier_len - last.peak.frontier_spilled,
        last.peak.frontier_spilled,
        last.peak.visited_bytes as f64 / (1024.0 * 1024.0),
        identity,
    );
    let report = format!(
        "## Scale — memory-bounded crawl ladder (streaming site, spillable frontier, \
         fingerprint visited set)\n\n{}\n\n{}\n",
        markdown(&headers, &md_rows),
        summary,
    );
    let _ = write_text(&cfg.out_dir.join("scale.md"), &report);
    report
}
