//! Proposition 4 made tangible: the set-cover reduction, the exact solver's
//! exponential wall, and how the heuristics compare on instances the exact
//! solver can still chew.

use crate::setup::EvalConfig;
use crate::tables::{markdown, write_text};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_webgraph::complexity::{
    crawl_budget_for_cover_budget, greedy_set_cover, min_crawl_cost, min_set_cover,
    reduce_set_cover, SetCoverInstance,
};
use std::time::Instant;

fn random_instance(rng: &mut StdRng, universe: usize, sets: usize) -> SetCoverInstance {
    let mut s: Vec<Vec<usize>> = (0..sets)
        .map(|_| {
            let mut v: Vec<usize> = (0..universe).filter(|_| rng.gen_bool(0.3)).collect();
            if v.is_empty() {
                v.push(rng.gen_range(0..universe));
            }
            v
        })
        .collect();
    // Guarantee coverage without a universal set (which would trivialise
    // the instance to B* = 1): every uncovered element joins a random set.
    for e in 0..universe {
        if !s.iter().any(|set| set.contains(&e)) {
            let k = rng.gen_range(0..s.len());
            s[k].push(e);
        }
    }
    SetCoverInstance::new(universe, s)
}

pub fn run(cfg: &EvalConfig) -> String {
    let mut rng = StdRng::seed_from_u64(4);
    let headers = ["universe |U|", "sets |S|", "B* (exact cover)", "crawl* (exact)", "|U|+B*+1", "greedy cover", "exact solver time"]
        .map(String::from)
        .to_vec();
    let mut rows = Vec::new();
    // Sizes stay small: the exact solver is exponential (that is the point),
    // and these instances must stay feasible even in debug builds.
    for (u, s) in [(4, 4), (6, 6), (8, 8), (10, 10), (14, 14), (18, 18)] {
        let inst = random_instance(&mut rng, u, s);
        let b_star = min_set_cover(&inst);
        let red = reduce_set_cover(&inst);
        let t0 = Instant::now();
        let crawl_star = min_crawl_cost(&red.graph, &red.targets).expect("covered ⇒ reachable");
        let dt = t0.elapsed();
        let predicted = crawl_budget_for_cover_budget(&inst, b_star);
        assert_eq!(crawl_star, predicted, "Prop 4 equivalence violated");
        let greedy = greedy_set_cover(&inst).len();
        rows.push(vec![
            u.to_string(),
            s.to_string(),
            b_star.to_string(),
            format!("{crawl_star}"),
            format!("{predicted}"),
            greedy.to_string(),
            format!("{:.2?}", dt),
        ]);
    }
    let md = format!(
        "## Proposition 4 — set-cover ⇔ graph-crawling equivalence (exact solvers)\n\n\
        Every row checks `min-crawl = |U| + B* + 1` on a random instance; the\n\
        solver time column is the exponential wall that motivates the paper's\n\
        heuristic approach.\n\n{}",
        markdown(&headers, &rows)
    );
    write_text(&cfg.out_dir.join("hardness.md"), &md).expect("write hardness.md");
    md
}
