//! Tables 2 and 3 — the headline efficiency comparison, plus the
//! early-stopping rows of Sec 4.8 (bottom of Table 2).

use super::{campaign, Campaign};
use crate::setup::{CrawlerKind, EvalConfig};
use crate::tables::{fmt_pct, markdown, write_csv, write_text};

fn metric_table(
    cfg: &EvalConfig,
    c: &Campaign,
    metric: impl Fn(&Campaign, &str, CrawlerKind) -> Option<f64>,
    title: &str,
    file: &str,
) -> String {
    let profiles = cfg.selected_profiles();
    let mut headers = vec!["Crawler".to_owned()];
    headers.extend(profiles.iter().map(|p| p.code.to_owned()));
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for crawler in CrawlerKind::TABLE_ROWS {
        let mut row = vec![crawler.name().to_owned()];
        let mut csv_row = vec![crawler.name().to_owned()];
        for p in &profiles {
            let cell = if crawler == CrawlerKind::SbOracle && !p.fully_crawled {
                "NA".to_owned()
            } else {
                fmt_pct(metric(c, p.code, crawler))
            };
            csv_row.push(cell.clone());
            row.push(cell);
        }
        rows.push(row);
        csv_rows.push(csv_row);
    }
    write_csv(&cfg.out_dir.join(file), &headers, &csv_rows).expect("write csv");
    format!("## {title}\n\n{}", markdown(&headers, &rows))
}

/// Table 2 (top): % of requests to retrieve 90 % of targets.
pub fn run_table2(cfg: &EvalConfig) -> String {
    let c = campaign(cfg);
    let mut md = metric_table(
        cfg,
        &c,
        |c, s, k| c.req90(s, k),
        "Table 2 — % of requests to retrieve 90 % of targets (+∞ = never)",
        "table2.csv",
    );
    // Bottom rows: early stopping.
    md.push_str(&early_stop_rows(cfg, &c));
    write_text(&cfg.out_dir.join("table2.md"), &md).expect("write table2.md");
    md
}

fn early_stop_rows(cfg: &EvalConfig, c: &Campaign) -> String {
    let profiles = cfg.selected_profiles();
    let mut headers = vec!["Early stopping".to_owned()];
    headers.extend(profiles.iter().map(|p| p.code.to_owned()));
    let mut saved = vec!["Saved req. (%)".to_owned()];
    let mut lost = vec!["Lost targets (%)".to_owned()];
    for p in &profiles {
        let full = c
            .of(p.code, CrawlerKind::SbClassifier)
            .into_iter()
            .find(|r| r.seed == 0);
        let es = c.early_stop_runs.iter().find(|r| r.site == p.code);
        match (full, es) {
            (Some(full), Some(es)) if es.stopped_early => {
                let saved_pct =
                    100.0 * (full.requests.saturating_sub(es.requests)) as f64 / full.requests.max(1) as f64;
                let lost_pct =
                    100.0 * (full.targets.saturating_sub(es.targets)) as f64 / full.targets.max(1) as f64;
                saved.push(format!("{saved_pct:.1}"));
                lost.push(format!("{lost_pct:.1}"));
            }
            _ => {
                // Crawl ended before the κ·ν horizon (small sites) or the
                // stop never triggered (continuous discovery): 0.0 / 0.0.
                saved.push("0.0".to_owned());
                lost.push("0.0".to_owned());
            }
        }
    }
    format!(
        "\n### Table 2 (bottom) — early-stopping savings (Sec 4.8)\n\n{}",
        markdown(&headers, &[saved, lost])
    )
}

/// Table 3: % of non-target volume before 90 % of target volume.
pub fn run_table3(cfg: &EvalConfig) -> String {
    let c = campaign(cfg);
    let md = metric_table(
        cfg,
        &c,
        |c, s, k| c.vol90(s, k),
        "Table 3 — % of non-target volume retrieved before 90 % of target volume",
        "table3.csv",
    );
    write_text(&cfg.out_dir.join("table3.md"), &md).expect("write table3.md");
    md
}
