//! Continuous crawl-and-serve (PR 9): read QPS vs. crawl write pressure
//! and the freshness SLA.
//!
//! One small Table 1 profile is evolved for six epochs and driven through
//! `sb_serve::serve_site` under a read-pressure ladder: the zero-reader
//! rung (transport window 1) is the deterministic scheduling baseline —
//! run twice and asserted byte-identical — and the reader rungs hammer
//! the snapshot store from 2/4 Zipf reader threads while the same session
//! refreshes it, reporting achieved read throughput and the age-at-read
//! percentiles.
//!
//! SLA assertion (smoked by `verify.sh`): with a per-epoch refresh budget
//! of ~12 % of the corpus, the *median* age-at-read stays within 2 origin
//! epochs and the p99 within the epoch horizon — the store never serves
//! mostly-rotten data while readers are on it.

use crate::setup::{build_site_for, EvalConfig};
use crate::tables::{markdown, write_csv, write_text};
use sb_crawler::Budget;
use sb_revisit::{ChangeModel, EvolvingSite, ThompsonGroupsRevisit};
use sb_serve::{serve_site, ReadLoadConfig, ServeConfig, ServeOutcome};

/// Profile used: the small data portal (fully crawled in Table 1).
pub const SERVE_SITE: &str = "cl";

/// Reader-thread rungs of the pressure ladder.
pub const READER_RUNGS: [usize; 3] = [0, 2, 4];

/// Origin epochs (base + 5 refresh rounds).
const EPOCHS: usize = 6;

fn serve_once(site: &EvolvingSite, readers: usize, seed: u64) -> ServeOutcome {
    let corpus = site.snapshot(0).len();
    let cfg = ServeConfig {
        change: ChangeModel {
            epochs: EPOCHS,
            ..ChangeModel::default()
        },
        seed,
        // Window 1 on the deterministic rung, wider once readers are on.
        window: if readers == 0 { 1 } else { 4 },
        discovery_requests: (corpus as u64) * 2,
        refresh_per_epoch: ((corpus as f64) * 0.12).round().max(8.0) as usize,
        retain: 1,
        budget: Budget::Unlimited,
        read: (readers > 0).then(|| ReadLoadConfig {
            readers,
            reads_per_reader: 5_000,
            zipf_s: 1.1,
            seed,
        }),
    };
    let mut policy = ThompsonGroupsRevisit::default();
    serve_site(site, &mut policy, &cfg)
}

pub fn run(cfg: &EvalConfig) -> String {
    if cfg
        .sites
        .as_ref()
        .is_some_and(|s| !s.iter().any(|x| x == SERVE_SITE))
    {
        return format!("## Crawl-and-serve\n\nskipped: site {SERVE_SITE} filtered out\n");
    }
    let base = (*build_site_for(cfg, SERVE_SITE)).clone();
    let model = ChangeModel {
        epochs: EPOCHS,
        ..ChangeModel::default()
    };
    let seed = cfg.site_seed(SERVE_SITE);
    let site = EvolvingSite::evolve(base, &model, seed);

    // Determinism pin on the zero-reader rung: the refresh schedule is a
    // pure function of the seed at window 1 with nobody reading.
    let out0 = serve_once(&site, 0, seed);
    let out0_again = serve_once(&site, 0, seed);
    assert_eq!(
        out0.schedule, out0_again.schedule,
        "zero-reader window-1 refresh schedule must be byte-reproducible"
    );

    let headers: Vec<String> = [
        "Readers",
        "Reads",
        "Read QPS",
        "Refreshes",
        "Changed",
        "Stale p50",
        "Stale p99",
    ]
    .map(String::from)
    .to_vec();
    let mut md_rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &readers in &READER_RUNGS {
        let owned;
        let out = if readers == 0 {
            &out0
        } else {
            owned = serve_once(&site, readers, seed);
            &owned
        };
        let r = out.outcome.refresh;
        // The freshness SLA, on every rung: the served corpus's median age
        // stays within 2 epochs, the tail within the horizon.
        assert!(
            out.staleness_p50 <= 2.0,
            "SLA violated at {readers} readers: median age-at-read {} epochs",
            out.staleness_p50
        );
        assert!(
            out.staleness_p99 <= (EPOCHS - 1) as f64,
            "SLA violated at {readers} readers: p99 age-at-read {} epochs",
            out.staleness_p99
        );
        md_rows.push(vec![
            readers.to_string(),
            out.read.reads.to_string(),
            if readers == 0 {
                "—".into()
            } else {
                format!("{:.0}", out.read.qps)
            },
            format!("{}/{}", r.completed, r.scheduled),
            r.changed.to_string(),
            format!("{:.1}", out.staleness_p50),
            format!("{:.1}", out.staleness_p99),
        ]);
        csv_rows.push(vec![
            readers.to_string(),
            out.read.reads.to_string(),
            format!("{:.2}", out.read.qps),
            r.scheduled.to_string(),
            r.completed.to_string(),
            r.changed.to_string(),
            r.failed.to_string(),
            format!("{:.4}", out.staleness_p50),
            format!("{:.4}", out.staleness_p99),
            out.store.len().to_string(),
        ]);
    }

    write_csv(
        &cfg.out_dir.join("serve.csv"),
        &[
            "readers",
            "reads",
            "read_qps",
            "scheduled",
            "completed",
            "changed",
            "failed",
            "stale_p50",
            "stale_p99",
            "store_pages",
        ]
        .map(String::from),
        &csv_rows,
    )
    .expect("write serve csv");

    let md = format!(
        "## Continuous crawl-and-serve — freshness SLA under read load (PR 9)\n\n\
         Site `{}` evolved for {} epochs (~12 % refresh budget per epoch,\n\
         thompson-groups scheduling by estimated-change × read-popularity);\n\
         Zipf(1.1) readers on a lock-free snapshot store. Zero-reader rung:\n\
         window 1, byte-reproducible schedule (asserted). SLA asserted on\n\
         every rung: median age-at-read ≤ 2 epochs, p99 within the horizon.\n\n{}\n",
        SERVE_SITE,
        EPOCHS,
        markdown(&headers, &md_rows),
    );
    write_text(&cfg.out_dir.join("serve.md"), &md).expect("write serve.md");
    md
}
