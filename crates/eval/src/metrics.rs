//! The paper's two efficiency metrics (Tables 2 and 3).

use crate::setup::SiteRef;
use sb_crawler::engine::CrawlOutcome;

/// Table 2: percentage of requests (relative to an exhaustive crawl's
/// request count) needed to retrieve 90 % of the site's targets.
/// `None` = never reached (`+∞`).
pub fn req90_pct(outcome: &CrawlOutcome, site: &SiteRef) -> Option<f64> {
    let at = outcome.trace.requests_to_target_fraction(site.targets, 0.9)?;
    Some(100.0 * at as f64 / site.full_requests.max(1) as f64)
}

/// Table 3: fraction of the site's non-target volume retrieved before
/// reaching 90 % of the total target volume.
pub fn vol90_pct(outcome: &CrawlOutcome, site: &SiteRef) -> Option<f64> {
    let bytes =
        outcome.trace.non_target_volume_to_target_volume_fraction(site.target_volume, 0.9)?;
    Some(100.0 * bytes as f64 / site.full_non_target_bytes.max(1) as f64)
}

/// Fraction of targets retrieved.
pub fn target_recall(outcome: &CrawlOutcome, site: &SiteRef) -> f64 {
    if site.targets == 0 {
        return 1.0;
    }
    outcome.targets_found() as f64 / site.targets as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{build_site_for, reference, run_crawler, CrawlerKind, EvalConfig};
    use crate::RunOpts;

    fn tiny_cfg() -> EvalConfig {
        EvalConfig { scale: 0.004, seeds: 1, ..Default::default() }
    }

    #[test]
    fn bfs_req90_is_high_sb_oracle_lower() {
        let cfg = tiny_cfg();
        let site = build_site_for(&cfg, "cl");
        let r = reference(&cfg, "cl");
        let opts = RunOpts { scale: cfg.scale, ..Default::default() };
        let bfs = run_crawler(&site, CrawlerKind::Bfs, 0, &opts);
        let sb = run_crawler(&site, CrawlerKind::SbOracle, 0, &opts);
        let bfs_m = req90_pct(&bfs, &r).expect("BFS exhausts the site");
        let sb_m = req90_pct(&sb, &r).expect("SB exhausts the site");
        assert!(bfs_m <= 100.5, "BFS republishing the full crawl: {bfs_m}");
        assert!(sb_m > 0.0);
        assert_eq!(target_recall(&bfs, &r), 1.0);
    }

    #[test]
    fn unreached_metric_is_none() {
        let cfg = tiny_cfg();
        let site = build_site_for(&cfg, "cl");
        let r = reference(&cfg, "cl");
        // A 5-request budget can't reach 90% of targets.
        let opts = RunOpts {
            budget: sb_crawler::Budget::Requests(5),
            scale: cfg.scale,
            ..Default::default()
        };
        let out = run_crawler(&site, CrawlerKind::Bfs, 0, &opts);
        assert_eq!(req90_pct(&out, &r), None);
    }
}
