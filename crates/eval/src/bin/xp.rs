//! `xp` — regenerates every table and figure of the paper.
//!
//! ```text
//! xp <experiment> [--scale F] [--seeds N] [--sites a,b,c] [--out DIR] [--jobs N]
//!
//! experiments:
//!   table1      site census (Table 1)
//!   table2      % requests to 90 % targets + early stopping (Table 2)
//!   table3      non-target volume metric (Table 3)
//!   table4      hyper-parameter study + Figures 8–13 (Table 4)
//!   table5      classifier variants + MR + Figures 14 + Tables 8–16
//!   table6      SB learning effectiveness + Figure 5 (Table 6)
//!   table7      SD yield (Table 7)
//!   fig4        comparison curves for all sites (Figures 4 & 7)
//!   fig15       early-stopping visualisation (Figure 15)
//!   se          simulated search-engine coverage (Sec 4.2)
//!   time        estimated retrieval times on `ed` (Sec 4.4)
//!   revisit     incremental-recrawl policies (Sec 6 future work)
//!   ablation    bandit-family ablation inside SB-ORACLE (Appendix C)
//!   hardness    Prop 4 reduction + exact solvers
//!   fleet       concurrent multi-site crawl (sessions + fleet scheduler)
//!   pipeline    intra-site parallel fetch (in-flight window 1/4/16)
//!   hostile     hostile-web workload: trap-laced site, retry/backoff (PR 6)
//!   scale       memory-bounded crawl ladder: RSS + pages/sec at 10k/100k (PR 7)
//!   serve       continuous crawl-and-serve: read QPS + freshness SLA (PR 9)
//!   quality     value-driven batch frontier: targets/GET, batch ladder (PR 10)
//!   all         everything above
//! ```
//!
//! `fleet` accepts `--shared-pool`: the same fleet additionally runs
//! through one shared transport pool at global windows 1/4/16
//! (`fleet_pool.csv`), with the window-1 arm checked byte-identical to
//! the per-site-transport arm.
//!
//! `fleet` also accepts `--shards 1,2,4` (PR 8): the sharded parallel
//! driver ladder (`fleet_shards.csv`) — one driver thread per shard,
//! whole-site work stealing, wall-clock speedup and steal counts
//! reported, every rung asserted byte-identical per site to the first.
//!
//! Defaults: `--scale 0.01 --seeds 3 --out results/`. The paper-fidelity run
//! is `--scale 0.02 --seeds 15` (slower; see EXPERIMENTS.md).

use sb_eval::experiments as xp;
use sb_eval::EvalConfig;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: xp <table1|table2|table3|table4|table5|table6|table7|fig4|fig15|se|time|revisit|ablation|hardness|fleet|pipeline|hostile|scale|serve|quality|all>\n\
         \x20      [--scale F] [--seeds N] [--sites a,b,c] [--out DIR] [--jobs N] [--shared-pool]\n\
         \x20      [--shards 1,2,4]"
    );
    std::process::exit(2);
}

fn parse_args() -> (String, EvalConfig) {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    let mut cfg = EvalConfig::default();
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => cfg.scale = value().parse().unwrap_or_else(|_| usage()),
            "--seeds" => cfg.seeds = value().parse().unwrap_or_else(|_| usage()),
            "--jobs" => cfg.jobs = value().parse().unwrap_or_else(|_| usage()),
            "--out" => cfg.out_dir = PathBuf::from(value()),
            "--sites" => {
                cfg.sites = Some(value().split(',').map(|s| s.trim().to_owned()).collect())
            }
            "--shared-pool" => cfg.shared_pool = true,
            "--shards" => {
                cfg.shards = value()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            _ => usage(),
        }
    }
    (cmd, cfg)
}

fn main() {
    let (cmd, cfg) = parse_args();
    let t0 = std::time::Instant::now();
    let run_one = |name: &str, cfg: &EvalConfig| -> String {
        let t = std::time::Instant::now();
        let out = match name {
            "table1" => xp::table1::run(cfg),
            "table2" => xp::table23::run_table2(cfg),
            "table3" => xp::table23::run_table3(cfg),
            "table4" => xp::table4::run(cfg),
            "table5" => xp::table5::run(cfg),
            "table6" => xp::table6::run(cfg),
            "table7" => xp::table7::run(cfg),
            "fig4" => xp::fig4::run(cfg),
            "fig15" => xp::fig15::run(cfg),
            "se" => xp::se::run(cfg),
            "time" => xp::time::run(cfg),
            "revisit" => xp::revisit::run(cfg),
            "ablation" => xp::ablation::run(cfg),
            "hardness" => xp::hardness::run(cfg),
            "fleet" => xp::fleet::run(cfg),
            "pipeline" => xp::pipeline::run(cfg),
            "hostile" => xp::hostile::run(cfg),
            "scale" => xp::scale::run(cfg),
            "serve" => xp::serve::run(cfg),
            "quality" => xp::quality::run(cfg),
            _ => usage(),
        };
        eprintln!("[xp] {name} done in {:.1?}", t.elapsed());
        out
    };
    match cmd.as_str() {
        "all" => {
            let all = [
                "table1", "table2", "table3", "table6", "fig4", "fig15", "table4", "table5",
                "table7", "se", "time", "revisit", "ablation", "hardness", "fleet",
                "pipeline", "hostile", "scale", "serve", "quality",
            ];
            for name in all {
                println!("{}", run_one(name, &cfg));
            }
        }
        name => println!("{}", run_one(name, &cfg)),
    }
    eprintln!(
        "[xp] finished in {:.1?}; artifacts under {}",
        t0.elapsed(),
        cfg.out_dir.display()
    );
}
