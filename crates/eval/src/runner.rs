//! Parallel execution of experiment run matrices.

use sb_crawler::engine::Budget;
use sb_crawler::EarlyStopConfig;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::setup::SbTuning;

/// Per-run options shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub budget: Budget,
    pub early_stop: Option<EarlyStopConfig>,
    pub keep_bodies: bool,
    pub max_steps: Option<u64>,
    /// Scale, for phase sizing (TP-OFF) — not site sizing.
    pub scale: f64,
    pub sb: SbTuning,
    /// In-flight window (PR 10): `1` is the exact sequential engine; a
    /// batching strategy ranks its frontier once per window-fill at
    /// wider settings (`xp quality`'s batch ladder).
    pub max_in_flight: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            budget: Budget::Unlimited,
            early_stop: None,
            keep_bodies: false,
            max_steps: None,
            scale: 0.01,
            sb: SbTuning::default(),
            max_in_flight: 1,
        }
    }
}

/// Maps `f` over `items` on `jobs` worker threads, preserving order.
///
/// Work is handed out through a single atomic cursor (dynamic load
/// balancing) and every worker writes into its own local buffer, so there
/// is **no shared-state contention** on the results: buffers are merged by
/// original index after the workers join.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, items.len());
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            buckets.push(h.join().expect("worker panicked"));
        }
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("every item processed")).collect()
}

/// Mean of an iterator of f64 (None on empty).
pub fn mean(xs: impl IntoIterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        sum += x;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Averages `Option<f64>` run metrics: any `None` (never reached 90 %)
/// makes the aggregate `None`, matching the paper's `+∞` convention.
pub fn mean_or_inf(xs: &[Option<f64>]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(Option::is_none) {
        return None;
    }
    mean(xs.iter().map(|x| x.expect("checked")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_job() {
        let out = par_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<i32> = par_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn mean_or_inf_propagates_none() {
        assert_eq!(mean_or_inf(&[Some(1.0), None]), None);
        assert_eq!(mean_or_inf(&[Some(1.0), Some(3.0)]), Some(2.0));
        assert_eq!(mean_or_inf(&[]), None);
    }
}
