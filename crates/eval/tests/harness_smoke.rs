//! Harness smoke tests: every experiment runs end-to-end at miniature scale
//! and produces shape-correct output. These are the cheapest full-pipeline
//! guards in the repo.

use sb_eval::experiments as xp;
use sb_eval::EvalConfig;
use std::path::PathBuf;

fn cfg(tag: &str, sites: &[&str]) -> EvalConfig {
    EvalConfig {
        scale: 0.003,
        seeds: 1,
        out_dir: PathBuf::from(format!("target/test-results/{tag}")),
        sites: Some(sites.iter().map(|s| (*s).to_owned()).collect()),
        jobs: 4,
        shared_pool: false,
        shards: Vec::new(),
    }
}

#[test]
fn fleet_shared_pool_arm_renders_and_holds_parity() {
    // `shared_pool: true` makes the experiment itself assert window-1
    // byte-parity with per-site transports; the smoke checks the ladder
    // rendered alongside the per-site table.
    let mut c = cfg("fleet-pool", &["cl", "nc"]);
    c.shared_pool = true;
    let md = xp::fleet::run(&c);
    assert!(md.contains("Shared transport pool"));
    assert!(md.contains("shared pool, window 16"));
    assert!(md.contains("per-site transports"));
    assert!(c.out_dir.join("fleet_pool.csv").exists());
}

#[test]
fn fleet_sharded_arm_renders_and_holds_parity() {
    // Non-empty `shards` makes the experiment assert per-site byte-parity
    // across the shard ladder internally; the smoke checks the rendered
    // ladder and the CSV artifact.
    let mut c = cfg("fleet-shards", &["cl", "nc"]);
    c.shards = vec![1, 2, 4];
    let md = xp::fleet::run(&c);
    assert!(md.contains("Sharded parallel driver"));
    assert!(md.contains("byte-identical across the ladder"));
    let csv = std::fs::read_to_string(c.out_dir.join("fleet_shards.csv"))
        .expect("fleet_shards.csv exists");
    assert_eq!(csv.lines().count(), 4, "header + one row per rung:\n{csv}");
    assert!(csv.starts_with("shards,targets,requests,stolen_sites,wall_secs,speedup_vs_first"));
}

#[test]
fn table1_census_renders() {
    let md = xp::table1::run(&cfg("t1", &["cl", "nc"]));
    assert!(md.contains("| cl"));
    assert!(md.contains("| nc"));
}

#[test]
fn table2_and_3_share_campaign_and_render() {
    let c = cfg("t23", &["cl", "nc"]);
    let t2 = xp::table23::run_table2(&c);
    assert!(t2.contains("SB-CLASSIFIER"));
    assert!(t2.contains("Early"));
    let t3 = xp::table23::run_table3(&c);
    assert!(t3.contains("BFS"));
    // Shared campaign: table3 must not redo the crawls (same cache key); we
    // can only assert it completes quickly and consistently here.
    assert!(t3.contains("non-target volume"));
}

#[test]
fn table6_reports_nonzero_rewards() {
    let md = xp::table6::run(&cfg("t6", &["nc"]));
    assert!(md.contains("Mean"));
    assert!(md.contains("Std"));
}

#[test]
fn fig4_writes_curves() {
    let c = cfg("f4", &["cl"]);
    let md = xp::fig4::run(&c);
    assert!(md.contains("cl"));
    let csv = std::fs::read_to_string(c.out_dir.join("fig4/cl.csv")).expect("fig4 csv exists");
    assert!(csv.lines().count() > 10);
    assert!(csv.contains("SB-CLASSIFIER"));
    assert!(csv.contains("OMNISCIENT"));
    assert!(csv.contains("TRES"), "cl is small: TRES must be included");
}

#[test]
fn table7_detects_sds() {
    let md = xp::table7::run(&cfg("t7", &["nc"]));
    assert!(md.contains("SD Yield"));
}

#[test]
fn se_shows_coverage_gap() {
    let c = cfg("se", &["cl"]);
    let md = xp::se::run(&c);
    assert!(md.contains("SIM-GS"));
    assert!(md.contains("crawler (all)"));
}

#[test]
fn hardness_validates_reduction() {
    // Panics internally if the Prop 4 equivalence breaks.
    let md = xp::hardness::run(&cfg("hard", &[]));
    assert!(md.contains("|U|+B*+1"));
}

#[test]
fn fig15_runs() {
    let md = xp::fig15::run(&cfg("f15", &["in", "ju"]));
    assert!(md.contains("Figure 15"));
}

#[test]
fn time_estimate_renders_hours_and_ratios() {
    let md = xp::time::run(&cfg("time", &["ed"]));
    assert!(md.contains("retrieval times"));
    assert!(md.contains("5k-equivalent"));
    assert!(md.contains("10k-equivalent"));
    // The headline shape: SB-CLASSIFIER reaches the milestones, so the
    // table carries finite hour entries (h-formatted), not only +∞.
    assert!(md.contains('h'), "hour-formatted cells expected:\n{md}");
}

#[test]
fn time_estimate_skips_when_ed_filtered_out() {
    let md = xp::time::run(&cfg("time-skip", &["cl"]));
    assert!(md.contains("skipped"));
}

#[test]
fn revisit_compares_four_policies() {
    let md = xp::revisit::run(&cfg("revisit", &["cl"]));
    for policy in ["uniform", "proportional", "thompson-groups", "sleeping-bandit"] {
        assert!(md.contains(policy), "{policy} missing from:\n{md}");
    }
    assert!(md.contains("recall"));
}

#[test]
fn ablation_covers_four_bandit_families() {
    let md = xp::ablation::run(&cfg("ablation", &["cl"]));
    for bandit in ["AUER", "UCB1", "greedy", "Thompson"] {
        assert!(md.contains(bandit), "{bandit} missing from:\n{md}");
    }
}
