//! Allocation-regression guard for the replay reader hot path (PR 9).
//!
//! The crawl-and-serve subsystem serves concurrent readers from the
//! replay database while a crawler refreshes it. A read must therefore
//! be an `Arc` pointer clone: `ReplayStore::get_shared` is pinned to
//! **zero** heap allocations per hit, and every served body — on both
//! the shared and the `HttpServer::get` compatibility path — must alias
//! the stored `Arc<[u8]>` buffer, never a copy. Before PR 9 the store
//! held plain `Response` values and every cache hit cloned the headers
//! (two `String` allocations per read, per reader thread).
//!
//! The counting allocator is process-global, so this file holds exactly
//! one `#[test]` — a second concurrent test would corrupt the counts.

use sb_httpsim::{HttpServer, Mode, ReplayStore, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn replay_reads_are_pointer_clones() {
    let server = SiteServer::new(build_site(&SiteSpec::demo(150), 9));
    let urls: Vec<String> = server
        .site()
        .pages()
        .iter()
        .map(|p| p.url.clone())
        .collect();
    let store = ReplayStore::new(server, Mode::Local);
    store.preload(urls.iter().map(String::as_str));

    // Warm both paths once outside the counted regions.
    let warm = store.get_shared(&urls[0]).expect("preloaded");
    assert!(!warm.body.as_slice().is_empty());

    // Hot path: a get_shared hit is one Arc clone — zero allocations.
    const READS: usize = 1_000;
    let shared_allocs = count_allocs(|| {
        for i in 0..READS {
            let r = store.get_shared(&urls[i % urls.len()]).expect("preloaded");
            assert!(r.status == 200 || r.status >= 300);
            std::mem::forget(r); // keep refcount drops out of the counted region
        }
    });
    assert_eq!(
        shared_allocs, 0,
        "get_shared allocated {shared_allocs} times over {READS} reads: \
         the reader hot path must be a pure Arc pointer clone"
    );

    // Compatibility path: HttpServer::get clones a Response out of the
    // Arc. The body must still alias the stored buffer (no copy); only
    // the two optional header strings may allocate.
    let shared = store.get_shared(&urls[0]).expect("preloaded");
    let get_allocs = count_allocs(|| {
        for i in 0..READS {
            let r = store.get(&urls[i % urls.len()]);
            std::mem::forget(r);
        }
    });
    assert!(
        get_allocs <= 2 * READS,
        "HttpServer::get allocated {get_allocs} times over {READS} reads \
         (budget {}): a body copy has crept into the read path",
        2 * READS
    );
    let owned = store.get(&urls[0]);
    assert!(
        std::ptr::eq(
            owned.body.as_slice().as_ptr(),
            shared.body.as_slice().as_ptr()
        ),
        "served body must be an Arc<[u8]> pointer clone of the stored body"
    );
}
