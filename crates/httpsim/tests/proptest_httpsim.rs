//! Property tests for the httpsim substrates: the robots.txt parser and
//! matcher (never panic, spec invariants) and the archive format
//! (roundtrip fidelity, corruption detection).

use proptest::prelude::*;
use sb_httpsim::robots::pattern_matches;
use sb_httpsim::{ArchiveReader, ArchiveWriter, Headers, Response, RobotsTxt};

proptest! {
    /// The parser must accept anything without panicking — robots.txt in
    /// the wild is full of garbage — and always answer queries.
    #[test]
    fn robots_parse_never_panics(text in ".{0,400}", agent in "[a-zA-Z0-9]{0,12}", path in "/[ -~]{0,40}") {
        let r = RobotsTxt::parse(&text);
        let _ = r.allows(&agent, &path);
        let _ = r.crawl_delay(&agent);
    }

    /// A file with no groups allows everything for everyone.
    #[test]
    fn robots_empty_allows_all(agent in "[a-z]{1,8}", path in "/[ -~]{0,40}") {
        let r = RobotsTxt::parse("# only comments\n\n");
        prop_assert!(r.allows(&agent, &path));
        prop_assert_eq!(r.crawl_delay(&agent), None);
    }

    /// `Disallow: /` under `User-agent: *` blocks every path for every
    /// agent — the strongest rule dominates whatever else the path is.
    #[test]
    fn robots_disallow_root_blocks_everything(agent in "[a-z]{1,8}", path in "/[ -~]{0,40}") {
        let r = RobotsTxt::parse("User-agent: *\nDisallow: /");
        prop_assert!(!r.allows(&agent, &path));
    }

    /// A wildcard-free, unanchored pattern matches exactly the paths it
    /// prefixes — no more, no less.
    #[test]
    fn literal_patterns_are_prefix_matches(pat in "/[a-z0-9/]{0,16}", path in "/[a-z0-9/]{0,24}") {
        prop_assert_eq!(pattern_matches(&pat, &path), path.starts_with(&pat));
    }

    /// `pattern$` matches iff the unanchored pattern matches with its tail
    /// ending exactly at the path end; `$`-anchored never matches a strict
    /// extension of a match it rejects.
    #[test]
    fn anchored_literal_is_equality(pat in "/[a-z0-9]{0,16}") {
        let anchored = format!("{pat}$");
        let extended = format!("{pat}x");
        prop_assert!(pattern_matches(&anchored, &pat));
        prop_assert!(!pattern_matches(&anchored, &extended));
    }

    /// The glob matcher never panics on adversarial patterns.
    #[test]
    fn glob_never_panics(pat in "[*a-z$/]{0,24}", path in "[ -~]{0,48}") {
        let _ = pattern_matches(&pat, &path);
    }

    /// A lone `*` (plus the implicit prefix semantics) matches everything.
    #[test]
    fn star_matches_everything(path in "[ -~]{0,64}") {
        prop_assert!(pattern_matches("*", &path));
    }
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        100u16..600,
        proptest::option::of("[ -~]{0,40}"),
        proptest::option::of(any::<u64>()),
        proptest::option::of("[ -~]{0,60}"),
        proptest::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(status, content_type, content_length, location, body)| Response {
            status,
            headers: Headers { content_type, content_length, location },
            body: body.into(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever goes into an archive comes back, bit for bit, in order.
    #[test]
    fn archive_roundtrip(
        records in proptest::collection::vec(("https?://[a-z]{1,10}\\.example/[ -~]{0,30}", arb_response()), 0..12)
    ) {
        let mut w = ArchiveWriter::new(Vec::new()).unwrap();
        for (url, r) in &records {
            w.write(url, r).unwrap();
        }
        let bytes = w.finish().unwrap();
        let back: Vec<(String, Response)> =
            ArchiveReader::new(&bytes[..]).unwrap().map(|r| r.unwrap()).collect();
        prop_assert_eq!(back.len(), records.len());
        for ((u1, r1), (u2, r2)) in records.iter().zip(&back) {
            prop_assert_eq!(u1, u2);
            prop_assert_eq!(r1, r2);
        }
    }

    /// Flipping any single byte after the header either errors out or
    /// changes the decoded records — silent corruption is impossible.
    #[test]
    fn archive_detects_any_single_byte_flip(
        records in proptest::collection::vec(("https?://[a-z]{1,8}\\.example/[a-z]{0,16}", arb_response()), 1..6),
        flip_seed in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let mut w = ArchiveWriter::new(Vec::new()).unwrap();
        for (url, r) in &records {
            w.write(url, r).unwrap();
        }
        let bytes = w.finish().unwrap();
        prop_assume!(bytes.len() > 8);
        let victim = 8 + (flip_seed as usize) % (bytes.len() - 8);
        let mut evil = bytes.clone();
        evil[victim] ^= 1 << flip_bit;

        let originals: Vec<(String, Response)> =
            ArchiveReader::new(&bytes[..]).unwrap().map(|r| r.unwrap()).collect();
        match ArchiveReader::new(&evil[..]) {
            Err(_) => {} // header flip: rejected outright
            Ok(reader) => {
                let decoded: Result<Vec<(String, Response)>, _> = reader.collect();
                match decoded {
                    Err(_) => {} // CRC / framing violation: detected
                    Ok(items) => prop_assert_ne!(
                        items, originals,
                        "a byte flip at {} went completely unnoticed", victim
                    ),
                }
            }
        }
    }
}
