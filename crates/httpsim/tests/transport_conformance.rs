//! The `Transport` conformance suite (PR 5): every invariant the crawl
//! engine leans on, written once against the trait and macro-instantiated
//! per backend, so a new transport inherits the full pin set for free.
//!
//! Invariants checked (one `#[test]` each, per backend):
//!
//! * **window-1 ≡ blocking `Client`** — with one request in flight the
//!   transport's cost accounting telescopes to the serial client's exact
//!   `Traffic`;
//! * **gate spacing** — n dispatches to one host never complete in less
//!   than `n · delay_secs` of simulated time, no matter how wide the
//!   window, while a wide window still beats the serial makespan
//!   (transfers overlap, dispatches stay spaced);
//! * **deterministic completion order** — identical submissions produce
//!   identical `(id, answer)` streams run to run, ordered by ascending
//!   simulated arrival with ties by `RequestId`;
//! * **retry accounting** — with retries on, transient 5xx answers are
//!   recovered and *every* attempt is charged (`get_requests` counts
//!   injected failures too);
//! * **in-flight byte accounting** — `in_flight_bytes` reports the wire
//!   volume of undelivered work and exactly that volume lands in
//!   `Traffic` on delivery (the volume-budget refill guard builds on it);
//! * **robots `Crawl-delay`** — `set_host_min_delay` dominates the base
//!   politeness delay for the host's subsequent dispatches;
//! * **window bookkeeping** — `in_flight`/`has_capacity` track the pool
//!   through a fill/drain cycle, and `tag_target` moves volume between
//!   buckets without changing the total.
//!
//! Instantiated for [`PipelinedTransport`] (PR 4), for a single
//! [`SharedTransportPool`] handle (PR 5), for a pool handle contending
//! with a registered-but-idle sibling site — a handle's single-site
//! behaviour must not depend on being the pool's only tenant — and (PR 8)
//! for both pool-handle shapes round-tripped through a spawned thread
//! before use: the pool backend is `Send`, and crossing a real thread
//! boundary must not perturb a single invariant.

use sb_httpsim::transport::{Request, RequestId, Transport};
use sb_httpsim::{
    Client, Fetched, FlakyServer, HttpServer, PipelinedTransport, Politeness, SharedTransportPool,
    SiteServer,
};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::mime::MimePolicy;

/// Builds the transport under test over `server`: window + retry policy
/// applied, everything else default.
type Build = for<'a> fn(
    &'a (dyn HttpServer + 'a),
    MimePolicy,
    Politeness,
    usize,
    u32,
) -> Box<dyn Transport + 'a>;

fn build_pipelined<'a>(
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retries: u32,
) -> Box<dyn Transport + 'a> {
    Box::new(PipelinedTransport::new(server, policy, politeness).with_window(window).with_retries(retries))
}

fn build_pool_handle<'a>(
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retries: u32,
) -> Box<dyn Transport + 'a> {
    let pool = SharedTransportPool::new(window);
    Box::new(pool.handle(server, policy, politeness).with_retries(retries))
}

/// A registered second site that never submits anything: the handle under
/// test must behave identically with an idle tenant beside it.
struct DecoyServer;

impl HttpServer for DecoyServer {
    fn head(&self, _url: &str) -> sb_httpsim::HeadResponse {
        self.get("").head()
    }

    fn get(&self, _url: &str) -> sb_httpsim::Response {
        sb_httpsim::response::error_response(404)
    }
}

static DECOY: DecoyServer = DecoyServer;

fn build_pool_handle_contended<'a>(
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retries: u32,
) -> Box<dyn Transport + 'a> {
    let pool = SharedTransportPool::new(window);
    let _idle_sibling = pool.handle(&DECOY, MimePolicy::default(), Politeness::default());
    Box::new(pool.handle(server, policy, politeness).with_retries(retries))
}

/// Proves the `Send` bound the sharded fleet (PR 8) relies on by
/// construction: the handle is moved into a spawned thread and back before
/// the checks drive it. A backend that is not `Send` fails to compile
/// here; a backend whose state does not survive the move fails the pins.
fn roundtrip_through_thread<T: Send>(value: T) -> T {
    std::thread::scope(|s| s.spawn(move || value).join().expect("carrier thread"))
}

fn build_threaded_pool_handle<'a>(
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retries: u32,
) -> Box<dyn Transport + 'a> {
    let pool = SharedTransportPool::new(window);
    let handle = pool.handle(server, policy, politeness).with_retries(retries);
    Box::new(roundtrip_through_thread(handle))
}

fn build_threaded_pool_handle_contended<'a>(
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retries: u32,
) -> Box<dyn Transport + 'a> {
    let pool = SharedTransportPool::new(window);
    let _idle_sibling = pool.handle(&DECOY, MimePolicy::default(), Politeness::default());
    let handle = pool.handle(server, policy, politeness).with_retries(retries);
    Box::new(roundtrip_through_thread(handle))
}

// ----------------------------------------------------------------------
// Shared fixtures
// ----------------------------------------------------------------------

fn server(pages: usize, seed: u64) -> SiteServer {
    SiteServer::new(build_site(&SiteSpec::demo(pages), seed))
}

fn html_urls(s: &SiteServer, n: usize) -> Vec<String> {
    s.site()
        .pages()
        .iter()
        .filter(|p| matches!(p.kind, sb_webgraph::PageKind::Html(_)))
        .map(|p| p.url.clone())
        .take(n)
        .collect()
}

fn drain(t: &mut dyn Transport, sink: &mut Vec<(RequestId, Fetched)>) -> Vec<RequestId> {
    let mut order = Vec::new();
    while t.in_flight() > 0 {
        t.poll_into(sink);
        order.extend(sink.iter().map(|(id, _)| *id));
    }
    order
}

// ----------------------------------------------------------------------
// The invariant checks (generic over the builder)
// ----------------------------------------------------------------------

fn check_window_one_matches_blocking_client(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 24);
    let mut client = Client::new(&s, MimePolicy::default());
    for u in &urls {
        client.get(u);
    }
    client.head(&urls[0]);

    let mut t = build(&s, MimePolicy::default(), Politeness::default(), 1, 0);
    let mut out = Vec::new();
    for u in &urls {
        t.submit(Request::get(u));
        t.poll_into(&mut out);
        assert_eq!(out.len(), 1, "window 1 delivers one completion per submit");
    }
    t.head(&urls[0]);
    assert_eq!(t.traffic(), client.traffic(), "window 1 must replay the blocking client");
}

fn check_gate_spacing(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 8);
    let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1024.0 };

    let mut serial = build(&s, MimePolicy::default(), pol, 1, 0);
    let mut out = Vec::new();
    for u in &urls {
        serial.submit(Request::get(u));
        serial.poll_into(&mut out);
    }
    let serial_makespan = serial.traffic().elapsed_secs;

    let mut wide = build(&s, MimePolicy::default(), pol, urls.len(), 0);
    for u in &urls {
        wide.submit(Request::get(u));
    }
    let delivered = drain(wide.as_mut(), &mut out).len();
    assert_eq!(delivered, urls.len());
    let wide_makespan = wide.traffic().elapsed_secs;

    // The gate spaces dispatches one politeness delay apart, so the
    // makespan cannot drop below n·delay; overlapped transfers make it
    // strictly better than serial.
    assert!(wide_makespan >= urls.len() as f64 * pol.delay_secs - 1e-9, "gate floor violated");
    assert!(
        wide_makespan < serial_makespan,
        "pipelining must beat serial: {wide_makespan} vs {serial_makespan}"
    );
    // And both ends moved the same volume.
    assert_eq!(wide.traffic().requests(), serial.traffic().requests());
    assert_eq!(wide.traffic().total_bytes(), serial.traffic().total_bytes());
}

fn check_completion_order(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 6);
    let pol = Politeness { delay_secs: 0.5, bytes_per_sec: 2048.0 };
    let run = || {
        let mut t = build(&s, MimePolicy::default(), pol, urls.len(), 0);
        let ids: Vec<RequestId> = urls.iter().map(|u| t.submit(Request::get(u))).collect();
        let mut out = Vec::new();
        let order = drain(t.as_mut(), &mut out);
        (ids, order)
    };
    let (ids_a, order_a) = run();
    let (ids_b, order_b) = run();
    assert_eq!(ids_a, ids_b, "ids must be assigned deterministically");
    assert_eq!(order_a, order_b, "completion order must be deterministic");
    // With identical politeness per dispatch, arrivals are strictly
    // increasing in dispatch order here; ids come back ascending.
    let mut sorted = order_a.clone();
    sorted.sort_unstable();
    assert_eq!(order_a, sorted, "equal-delay dispatches complete in submission order");
}

fn check_retry_accounting(build: Build) {
    let site = build_site(&SiteSpec::demo(300), 5);
    let urls: Vec<String> = site.pages().iter().map(|p| p.url.clone()).take(40).collect();
    let flaky = FlakyServer::new(SiteServer::new(site), 0.4, 7).recoverable();
    let pol = Politeness { delay_secs: 0.1, bytes_per_sec: 1e6 };

    let mut t = build(&flaky, MimePolicy::default(), pol, 4, 1);
    let mut out = Vec::new();
    let mut failures = 0usize;
    let mut delivered = 0u64;
    for chunk in urls.chunks(4) {
        for u in chunk {
            t.submit(Request::get(u));
        }
        while t.in_flight() > 0 {
            t.poll_into(&mut out);
            delivered += out.len() as u64;
            failures += out.iter().filter(|(_, f)| f.status >= 500).count();
        }
    }
    assert_eq!(failures, 0, "one retry recovers every transient 503");
    assert!(flaky.injected() > 0, "failures were really injected");
    assert_eq!(
        t.traffic().get_requests,
        delivered + flaky.injected(),
        "every retried attempt must be charged"
    );
}

fn check_in_flight_bytes(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 5);
    let mut t = build(&s, MimePolicy::default(), Politeness::default(), urls.len(), 0);
    assert_eq!(t.in_flight_bytes(), 0);
    for u in &urls {
        t.submit(Request::get(u));
    }
    let pending = t.in_flight_bytes();
    assert!(pending > 0, "submitted wire volume must be visible before delivery");
    assert_eq!(t.traffic().total_bytes(), 0, "nothing is charged before delivery");
    let mut out = Vec::new();
    drain(t.as_mut(), &mut out);
    assert_eq!(t.in_flight_bytes(), 0);
    assert_eq!(
        t.traffic().total_bytes(),
        pending,
        "exactly the in-flight volume lands in Traffic at delivery"
    );
}

fn check_crawl_delay(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 5);
    let host = {
        let u = &urls[0];
        let rest = &u[u.find("://").unwrap() + 3..];
        rest[..rest.find('/').unwrap()].to_owned()
    };
    let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 };

    let makespan = |crawl_delay: Option<f64>| {
        let mut t = build(&s, MimePolicy::default(), pol, urls.len(), 0);
        if let Some(d) = crawl_delay {
            let robots =
                sb_httpsim::RobotsTxt::parse(&format!("User-agent: *\nCrawl-delay: {d}"));
            t.apply_crawl_delay(&robots, "sbcrawl", &host);
        }
        for u in &urls {
            t.submit(Request::get(u));
        }
        let mut out = Vec::new();
        drain(t.as_mut(), &mut out);
        t.traffic().elapsed_secs
    };

    let plain = makespan(None);
    let delayed = makespan(Some(4.0));
    assert!(
        delayed > plain * 3.0,
        "a 4 s Crawl-delay must dominate the 1 s default: {plain} vs {delayed}"
    );
}

fn check_window_bookkeeping(build: Build) {
    let s = server(300, 5);
    let urls = html_urls(&s, 3);
    let mut t = build(&s, MimePolicy::default(), Politeness::default(), 3, 0);
    assert_eq!(t.max_in_flight(), 3);
    assert_eq!(t.in_flight(), 0);
    assert!(t.has_capacity());
    t.submit(Request::get(&urls[0]));
    t.submit(Request::get(&urls[1]));
    assert_eq!(t.in_flight(), 2);
    assert!(t.has_capacity());
    t.submit(Request::get(&urls[2]));
    assert_eq!(t.in_flight(), 3);
    assert!(!t.has_capacity(), "a full window reports no capacity");
    let mut out = Vec::new();
    drain(t.as_mut(), &mut out);
    assert_eq!(t.in_flight(), 0);
    assert!(t.has_capacity());

    // tag_target re-attributes volume without changing the total, capped
    // at what the non-target bucket holds.
    let before = t.traffic();
    assert!(before.non_target_bytes > 0);
    t.tag_target(before.non_target_bytes + 10_000);
    let after = t.traffic();
    assert_eq!(after.total_bytes(), before.total_bytes());
    assert_eq!(after.target_bytes, before.total_bytes());
    assert_eq!(after.non_target_bytes, 0);
}

// ----------------------------------------------------------------------
// Instantiation: one module of pins per backend
// ----------------------------------------------------------------------

macro_rules! transport_conformance {
    ($backend:ident, $build:path) => {
        mod $backend {
            use super::*;

            #[test]
            fn window_one_matches_blocking_client() {
                check_window_one_matches_blocking_client($build);
            }

            #[test]
            fn gate_spacing_floors_the_makespan_and_transfers_overlap() {
                check_gate_spacing($build);
            }

            #[test]
            fn completion_order_is_deterministic_arrival_then_id() {
                check_completion_order($build);
            }

            #[test]
            fn retries_recover_transient_5xx_and_charge_every_attempt() {
                check_retry_accounting($build);
            }

            #[test]
            fn in_flight_bytes_are_charged_exactly_at_delivery() {
                check_in_flight_bytes($build);
            }

            #[test]
            fn robots_crawl_delay_raises_the_gate() {
                check_crawl_delay($build);
            }

            #[test]
            fn window_bookkeeping_and_target_tagging() {
                check_window_bookkeeping($build);
            }
        }
    };
}

transport_conformance!(pipelined_transport, super::build_pipelined);
transport_conformance!(shared_pool_handle, super::build_pool_handle);
transport_conformance!(shared_pool_handle_contended, super::build_pool_handle_contended);
transport_conformance!(threaded_pool_handle, super::build_threaded_pool_handle);
transport_conformance!(threaded_pool_handle_contended, super::build_threaded_pool_handle_contended);
