//! The nonblocking fetch boundary: a politeness-gated in-flight request
//! pool over the simulated wire (PR 4).
//!
//! The blocking [`crate::Client`] serialises a crawl on simulated latency:
//! every GET charges `delay + transfer` before the next one can even be
//! issued, so a site of `n` pages costs `n · (delay + transfer)` simulated
//! seconds no matter how many URLs the frontier holds. Production crawlers
//! (BUbiNG, and every multi-threaded design since) decouple fetch I/O from
//! page processing behind a bounded window of in-flight requests with a
//! per-host politeness gate. [`Transport`] reproduces that shape over the
//! offline simulation:
//!
//! * [`Transport::submit`] hands a [`Request`] to the pool and returns a
//!   [`RequestId`] immediately — the caller keeps at most
//!   [`Transport::max_in_flight`] requests outstanding;
//! * [`Transport::poll`] delivers finished requests in **deterministic
//!   completion order**: ascending simulated arrival time, ties broken by
//!   `RequestId` (submission order);
//! * the **politeness gate** enforces the minimum inter-request delay *at
//!   the transport*, per host: two dispatches to the same host are always
//!   at least `delay_secs` (or the host's robots `Crawl-delay` override,
//!   whichever is larger) of simulated time apart, no matter how wide the
//!   window is.
//!
//! ## Simulated-time model
//!
//! Each request occupies `delay + wire_bytes / bytes_per_sec` of connection
//! time starting at its gate-assigned dispatch instant, so
//!
//! ```text
//! start   = max(submit clock, host gate)     gate ← start + delay
//! arrival = start + delay + transfer
//! ```
//!
//! With a window of 1 this telescopes to exactly the blocking client's
//! accounting (`elapsed += delay + transfer` per request) — which is what
//! lets `CrawlSession` with `max_in_flight = 1` replay the frozen
//! `sb_bench::reference` traces byte-identically. With a wider window the
//! *transfers* overlap while the gate still spaces the *dispatches*, so the
//! crawl's simulated makespan approaches
//! `n · max(delay, (delay + transfer) / window)` instead of
//! `n · (delay + transfer)`.
//!
//! [`Traffic::elapsed_secs`] reported by the transport is the simulated
//! clock at the last delivered completion (the makespan so far), not the
//! serial sum — at window 1 the two coincide.
//!
//! ## Retries
//!
//! [`PipelinedTransport::with_retries`] re-dispatches 5xx answers through
//! the gate up to `n` extra attempts before delivering the final answer;
//! every attempt is charged (requests and wire bytes). Off by default so
//! the window-1 replay stays byte-identical; with a recoverable
//! [`crate::FlakyServer`] upstream, one retry turns transient 503 bursts
//! into ordinary (slower) successes.
//!
//! The full hazard-aware dispatch loop — capped exponential backoff with
//! seeded jitter ([`crate::hazard::RetryPolicy`]), timeouts, heavy-tailed
//! latency, bandwidth caps and 429 rate limiting
//! ([`crate::hazard::HazardPolicy`]), and the per-host circuit breaker —
//! lives in [`crate::hazard`] and is shared with the fleet pool, so the
//! two backends cannot drift (PR 6).

use crate::client::{settle_get, Fetched, Politeness, Traffic};
use crate::hazard::{dispatch_hazard_get, DispatchCtx, HazardPolicy, HazardState, RetryPolicy};
use crate::response::HeadResponse;
use crate::robots::RobotsTxt;
use crate::server::HttpServer;
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::FxHashMap;

/// Identifies one submitted request; ascending in submission order, unique
/// per transport instance.
pub type RequestId = u64;

/// A fetch to hand to [`Transport::submit`]. Borrowed: the transport reads
/// the URL during the call and never stores it.
#[derive(Debug, Clone, Copy)]
pub struct Request<'u> {
    pub url: &'u str,
}

impl<'u> Request<'u> {
    /// A GET of `url`.
    pub fn get(url: &'u str) -> Request<'u> {
        Request { url }
    }
}

/// The nonblocking fetch boundary. See the module docs; the simulated
/// single-site implementation is [`PipelinedTransport`] and the fleet-wide
/// one is [`crate::pool::SharedTransportPool`]. Every implementation must
/// uphold the invariants of the conformance suite
/// (`tests/transport_conformance.rs`): politeness gate spacing,
/// deterministic completion order, window-1 equivalence with the blocking
/// [`crate::Client`], and charged-every-attempt retry accounting.
pub trait Transport {
    /// Enqueues a GET into the in-flight pool and returns its id. Callers
    /// must keep [`Transport::in_flight`] within
    /// [`Transport::max_in_flight`] (checked in debug builds).
    fn submit(&mut self, req: Request<'_>) -> RequestId;

    /// Delivers every request that has finished by the next completion
    /// instant, appending `(id, answer)` pairs to `out` in deterministic
    /// order (arrival time, ties by id). `out` is cleared first. Empty
    /// output means nothing is in flight.
    fn poll_into(&mut self, out: &mut Vec<(RequestId, Fetched)>);

    /// Allocating convenience over [`Transport::poll_into`].
    fn poll(&mut self) -> Vec<(RequestId, Fetched)> {
        let mut out = Vec::new();
        self.poll_into(&mut out);
        out
    }

    /// A synchronous HEAD through the same gate and clock (the classifier
    /// bootstrap probes links mid-decision and needs the answer now).
    fn head(&mut self, url: &str) -> HeadResponse;

    /// A synchronous charged GET through the gate (the engine's
    /// unparseable-selection parity path). No retries.
    fn fetch_now(&mut self, url: &str) -> Fetched;

    /// Requests submitted and not yet delivered.
    fn in_flight(&self) -> usize;

    /// Wire bytes of the requests submitted and not yet delivered. The
    /// simulated origin answers at dispatch, so the exact figure is known
    /// the moment a request enters the pool (a live transport would use
    /// `Content-Length` plus running transfer counts). Budget-aware
    /// callers add this to the delivered volume before refilling, so a
    /// wide window cannot overshoot a volume budget by a whole window of
    /// undelivered transfers.
    fn in_flight_bytes(&self) -> u64;

    /// The in-flight window size the caller should respect.
    fn max_in_flight(&self) -> usize;

    /// `in_flight() < max_in_flight()`.
    fn has_capacity(&self) -> bool {
        self.in_flight() < self.max_in_flight()
    }

    /// Cost counters for everything *delivered* so far (in-flight requests
    /// are not yet charged). `elapsed_secs` is the simulated clock.
    fn traffic(&self) -> Traffic;

    /// Re-attributes `bytes` from the non-target to the target volume
    /// bucket (same contract as [`crate::Client::tag_target`]).
    fn tag_target(&mut self, bytes: u64);

    /// The MIME policy governing mid-flight interruption.
    fn policy(&self) -> &MimePolicy;

    /// Raises the politeness gate for one host (e.g. a robots
    /// `Crawl-delay`). The effective inter-dispatch delay for the host
    /// becomes `max(politeness.delay_secs, delay_secs)`; keys are
    /// case-folded, so any casing of the host shares the override.
    fn set_host_min_delay(&mut self, host: &str, delay_secs: f64);

    /// Applies the `Crawl-delay` of a parsed robots.txt (if declared for
    /// `agent`) as `host`'s gate delay.
    fn apply_crawl_delay(&mut self, robots: &RobotsTxt, agent: &str, host: &str) {
        if let Some(d) = robots.crawl_delay(agent) {
            self.set_host_min_delay(host, d);
        }
    }
}

/// One request in the pool: the answer is computed eagerly at dispatch
/// (the simulated origin is synchronous); only the *delivery* is deferred
/// to its simulated arrival instant.
struct InFlightReq {
    id: RequestId,
    arrival: f64,
    answer: Fetched,
    /// GET attempts this request consumed (retries included).
    gets: u64,
    /// Total wire bytes across all attempts.
    wire: u64,
}

/// Per-host politeness state.
#[derive(Default)]
struct HostGate {
    /// Earliest simulated instant the next dispatch to this host may start.
    next_start: f64,
    /// Host-specific minimum inter-dispatch delay (robots `Crawl-delay`);
    /// the effective delay is the max of this and the global politeness.
    min_delay: Option<f64>,
}

/// The per-host politeness gates, shared by [`PipelinedTransport`] and
/// [`crate::pool::SharedTransportPool`] so the two backends cannot drift:
/// same key folding, same `Crawl-delay` override rule, same
/// `start/gate/arrival` arithmetic.
#[derive(Default)]
pub(crate) struct GateTable {
    gates: FxHashMap<String, HostGate>,
}

impl GateTable {
    pub(crate) fn set_host_min_delay(&mut self, host: &str, delay_secs: f64) {
        self.gates.entry(host_key(host)).or_default().min_delay = Some(delay_secs.max(0.0));
    }

    /// Passes one dispatch through the host's politeness gate starting no
    /// earlier than `ready_at`, returning its `(start, arrival)` for a
    /// transfer of `wire` bytes. Gate keys are case-folded — canonical
    /// (interned) URLs carry lowercase hosts and hit the map borrowed; a
    /// mixed-case host folds once so it shares the gate (and any
    /// `Crawl-delay` override) of its lowercase form.
    pub(crate) fn dispatch(
        &mut self,
        politeness: &Politeness,
        url: &str,
        ready_at: f64,
        wire: u64,
    ) -> (f64, f64) {
        let host = host_of(url);
        let key: std::borrow::Cow<'_, str> = if host.bytes().any(|b| b.is_ascii_uppercase()) {
            std::borrow::Cow::Owned(host_key(host))
        } else {
            std::borrow::Cow::Borrowed(host)
        };
        let base = politeness.delay_secs;
        let delay = match self.gates.get(key.as_ref()).and_then(|g| g.min_delay) {
            Some(d) => d.max(base),
            None => base,
        };
        let gate = match self.gates.get_mut(key.as_ref()) {
            Some(g) => g,
            None => self.gates.entry(key.into_owned()).or_default(),
        };
        let start = ready_at.max(gate.next_start);
        gate.next_start = start + delay;
        let arrival = start + delay + wire as f64 / politeness.bytes_per_sec;
        (start, arrival)
    }
}

/// The simulated [`Transport`]: a bounded in-flight pool over any
/// [`HttpServer`] with per-host politeness gating and deterministic
/// completion ordering.
pub struct PipelinedTransport<'a> {
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    window: usize,
    retry: RetryPolicy,
    hazards: HazardPolicy,
    hazard_state: HazardState,
    /// Simulated now: the arrival of the last delivered completion (or the
    /// last synchronous request).
    clock: f64,
    traffic: Traffic,
    next_id: RequestId,
    inflight: Vec<InFlightReq>,
    gates: GateTable,
}

impl<'a> PipelinedTransport<'a> {
    /// A transport over `server` with a window of 1 and no retries — the
    /// drop-in equivalent of the blocking [`crate::Client`].
    pub fn new(
        server: &'a (dyn HttpServer + 'a),
        policy: MimePolicy,
        politeness: Politeness,
    ) -> Self {
        PipelinedTransport {
            server,
            policy,
            politeness,
            window: 1,
            retry: RetryPolicy::retries(0),
            hazards: HazardPolicy::default(),
            hazard_state: HazardState::default(),
            clock: 0.0,
            traffic: Traffic::default(),
            next_id: 0,
            inflight: Vec::new(),
            gates: GateTable::default(),
        }
    }

    /// Sets the in-flight window (clamped to ≥ 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Re-dispatches 5xx answers up to `retries` extra attempts. Every
    /// attempt is charged at delivery, so a `Budget::Requests` session
    /// over a retrying transport may finish up to one attempt per
    /// retried in-flight request past its budget (the check sees one
    /// request per submission; the sequential engine has the same
    /// one-request check-to-charge gap).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Installs a full [`RetryPolicy`] (backoff, jitter, circuit breaker).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a [`HazardPolicy`] (timeouts, tail latency, bandwidth
    /// caps, 429 rate limiting) on the GET path.
    pub fn with_hazards(mut self, hazards: HazardPolicy) -> Self {
        self.hazards = hazards;
        self
    }

    /// Hosts quarantined by the circuit breaker so far.
    pub fn quarantined_hosts(&self) -> usize {
        self.hazard_state.quarantined_hosts()
    }

    /// The simulated clock (arrival of the last delivered completion).
    pub fn clock_secs(&self) -> f64 {
        self.clock
    }

    /// One dispatch through the shared [`GateTable`].
    fn gate_dispatch(&mut self, url: &str, ready_at: f64, wire: u64) -> (f64, f64) {
        self.gates.dispatch(&self.politeness, url, ready_at, wire)
    }

    /// Executes a GET through the shared hazard-aware dispatch loop
    /// ([`crate::hazard::dispatch_hazard_get`]) and returns the final
    /// answer with its cumulative accounting and arrival instant.
    fn dispatch_get(&mut self, url: &str) -> (Fetched, u64, u64, f64) {
        let mut ctx = DispatchCtx {
            server: self.server,
            policy: &self.policy,
            politeness: &self.politeness,
            gates: &mut self.gates,
            hazards: &self.hazards,
            retry: &self.retry,
            state: &mut self.hazard_state,
        };
        let out = dispatch_hazard_get(&mut ctx, url, self.clock);
        (out.answer, out.gets, out.wire, out.arrival)
    }

    fn charge_delivery(&mut self, gets: u64, wire: u64, arrival: f64) {
        self.clock = self.clock.max(arrival);
        self.traffic.get_requests += gets;
        self.traffic.non_target_bytes += wire;
        self.traffic.elapsed_secs = self.clock;
    }
}

impl Transport for PipelinedTransport<'_> {
    fn submit(&mut self, req: Request<'_>) -> RequestId {
        debug_assert!(
            self.inflight.len() < self.window,
            "submit beyond the in-flight window (window {})",
            self.window
        );
        let id = self.next_id;
        self.next_id += 1;
        let (answer, gets, wire, arrival) = self.dispatch_get(req.url);
        self.inflight.push(InFlightReq { id, arrival, answer, gets, wire });
        id
    }

    fn poll_into(&mut self, out: &mut Vec<(RequestId, Fetched)>) {
        out.clear();
        if self.inflight.is_empty() {
            return;
        }
        // Deterministic completion order: arrival, ties by submission id.
        // Sorting the pool in place keeps the due requests a drainable
        // prefix — no temporary buffer, no shifting removals (this runs
        // once per engine pump; the caller already reuses `out`).
        self.inflight.sort_by(|a, b| a.arrival.total_cmp(&b.arrival).then(a.id.cmp(&b.id)));
        // Advance to the next completion instant (never backwards: a
        // synchronous HEAD may already have pushed the clock past several
        // arrivals) and deliver everything due by then.
        let horizon = self.clock.max(self.inflight[0].arrival);
        let due = self.inflight.partition_point(|r| r.arrival <= horizon);
        for r in &self.inflight[..due] {
            self.clock = self.clock.max(r.arrival);
            self.traffic.get_requests += r.gets;
            self.traffic.non_target_bytes += r.wire;
        }
        self.traffic.elapsed_secs = self.clock;
        out.extend(self.inflight.drain(..due).map(|r| (r.id, r.answer)));
    }

    fn head(&mut self, url: &str) -> HeadResponse {
        let r = self.server.head(url);
        let wire = r.wire_size();
        let (_, arrival) = self.gate_dispatch(url, self.clock, wire);
        self.clock = arrival;
        self.traffic.head_requests += 1;
        self.traffic.non_target_bytes += wire;
        self.traffic.elapsed_secs = self.clock;
        r
    }

    fn fetch_now(&mut self, url: &str) -> Fetched {
        let f = settle_get(self.server.get(url), &self.policy);
        let (_, arrival) = self.gate_dispatch(url, self.clock, f.wire_bytes);
        self.charge_delivery(1, f.wire_bytes, arrival);
        f
    }

    fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    fn in_flight_bytes(&self) -> u64 {
        self.inflight.iter().map(|r| r.wire).sum()
    }

    fn max_in_flight(&self) -> usize {
        self.window
    }

    fn traffic(&self) -> Traffic {
        self.traffic
    }

    fn tag_target(&mut self, bytes: u64) {
        let moved = bytes.min(self.traffic.non_target_bytes);
        self.traffic.non_target_bytes -= moved;
        self.traffic.target_bytes += moved;
    }

    fn policy(&self) -> &MimePolicy {
        &self.policy
    }

    fn set_host_min_delay(&mut self, host: &str, delay_secs: f64) {
        self.gates.set_host_min_delay(host, delay_secs);
    }
}

/// The host component of an absolute http(s) URL, without allocating.
/// Interned URLs are already canonical (lowercased host), so the slice is
/// usable as a gate key directly.
pub(crate) fn host_of(url: &str) -> &str {
    let rest = url.find("://").map(|i| &url[i + 3..]).unwrap_or(url);
    let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
    let authority = &rest[..end];
    // Strip userinfo if present (rare; robots fetching may see it).
    authority.rsplit('@').next().unwrap_or(authority)
}

/// Owned, case-folded gate key (allocated once per distinct host).
fn host_key(host: &str) -> String {
    host.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, SiteSpec};

    fn server() -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(300), 5))
    }

    fn html_urls(s: &SiteServer, n: usize) -> Vec<String> {
        s.site()
            .pages()
            .iter()
            .filter(|p| matches!(p.kind, sb_webgraph::PageKind::Html(_)))
            .map(|p| p.url.clone())
            .take(n)
            .collect()
    }

    #[test]
    fn window_one_matches_blocking_client() {
        let s = server();
        let urls = html_urls(&s, 24);
        let mut client = crate::Client::new(&s, MimePolicy::default());
        for u in &urls {
            client.get(u);
        }
        client.head(&urls[0]);

        let mut t = PipelinedTransport::new(&s, MimePolicy::default(), Politeness::default());
        let mut out = Vec::new();
        for u in &urls {
            t.submit(Request::get(u));
            t.poll_into(&mut out);
            assert_eq!(out.len(), 1);
        }
        t.head(&urls[0]);
        assert_eq!(t.traffic(), client.traffic(), "window 1 must replay the blocking client");
    }

    #[test]
    fn gate_spaces_dispatches_and_transfers_overlap() {
        let s = server();
        let urls = html_urls(&s, 8);
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1024.0 };

        let mut serial = PipelinedTransport::new(&s, MimePolicy::default(), pol);
        let mut out = Vec::new();
        for u in &urls {
            serial.submit(Request::get(u));
            serial.poll_into(&mut out);
        }
        let serial_makespan = serial.traffic().elapsed_secs;

        let mut wide =
            PipelinedTransport::new(&s, MimePolicy::default(), pol).with_window(urls.len());
        for u in &urls {
            wide.submit(Request::get(u));
        }
        let mut delivered = 0;
        while wide.in_flight() > 0 {
            wide.poll_into(&mut out);
            delivered += out.len();
        }
        assert_eq!(delivered, urls.len());
        let wide_makespan = wide.traffic().elapsed_secs;

        // The gate still spaces dispatches one politeness delay apart, so
        // the makespan cannot drop below n·delay; overlapped transfers make
        // it strictly better than serial.
        assert!(wide_makespan >= urls.len() as f64 * pol.delay_secs - 1e-9);
        assert!(
            wide_makespan < serial_makespan,
            "pipelining must beat serial: {wide_makespan} vs {serial_makespan}"
        );
        // And both ends moved the same volume.
        assert_eq!(wide.traffic().requests(), serial.traffic().requests());
        assert_eq!(wide.traffic().total_bytes(), serial.traffic().total_bytes());
    }

    #[test]
    fn completion_order_is_arrival_then_id() {
        let s = server();
        let urls = html_urls(&s, 6);
        let run = || {
            let mut t = PipelinedTransport::new(
                &s,
                MimePolicy::default(),
                Politeness { delay_secs: 0.5, bytes_per_sec: 2048.0 },
            )
            .with_window(6);
            let ids: Vec<RequestId> = urls.iter().map(|u| t.submit(Request::get(u))).collect();
            let mut order = Vec::new();
            let mut out = Vec::new();
            while t.in_flight() > 0 {
                t.poll_into(&mut out);
                order.extend(out.iter().map(|(id, _)| *id));
            }
            (ids, order)
        };
        let (ids_a, order_a) = run();
        let (ids_b, order_b) = run();
        assert_eq!(ids_a, ids_b);
        assert_eq!(order_a, order_b, "completion order must be deterministic");
        // With identical politeness per dispatch, arrivals are strictly
        // increasing in dispatch order here; ids come back ascending.
        let mut sorted = order_a.clone();
        sorted.sort_unstable();
        assert_eq!(order_a, sorted);
    }

    #[test]
    fn retries_recover_transient_503s_and_charge_every_attempt() {
        use crate::flaky::FlakyServer;
        let site = build_site(&SiteSpec::demo(300), 5);
        let urls: Vec<String> = site.pages().iter().map(|p| p.url.clone()).take(40).collect();
        let flaky = FlakyServer::new(SiteServer::new(site), 0.4, 7).recoverable();

        let mut t = PipelinedTransport::new(
            &flaky,
            MimePolicy::default(),
            Politeness { delay_secs: 0.1, bytes_per_sec: 1e6 },
        )
        .with_window(4)
        .with_retries(1);
        let mut out = Vec::new();
        let mut failures = 0;
        let mut delivered = 0u64;
        for chunk in urls.chunks(4) {
            for u in chunk {
                t.submit(Request::get(u));
            }
            while t.in_flight() > 0 {
                t.poll_into(&mut out);
                delivered += out.len() as u64;
                failures += out.iter().filter(|(_, f)| f.status >= 500).count();
            }
        }
        assert_eq!(failures, 0, "one retry recovers every transient 503");
        assert!(flaky.injected() > 0, "failures were really injected");
        assert_eq!(
            t.traffic().get_requests,
            delivered + flaky.injected(),
            "every retried attempt must be charged"
        );
    }

    #[test]
    fn robots_crawl_delay_raises_the_gate() {
        let s = server();
        let urls = html_urls(&s, 5);
        let host = super::host_of(&urls[0]).to_owned();
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 };

        let makespan = |crawl_delay: Option<f64>| {
            let mut t = PipelinedTransport::new(&s, MimePolicy::default(), pol).with_window(5);
            if let Some(d) = crawl_delay {
                let robots = RobotsTxt::parse(&format!("User-agent: *\nCrawl-delay: {d}"));
                t.apply_crawl_delay(&robots, "sbcrawl", &host);
            }
            for u in &urls {
                t.submit(Request::get(u));
            }
            let mut out = Vec::new();
            while t.in_flight() > 0 {
                t.poll_into(&mut out);
            }
            t.traffic().elapsed_secs
        };

        let plain = makespan(None);
        let delayed = makespan(Some(4.0));
        assert!(
            delayed > plain * 3.0,
            "a 4 s Crawl-delay must dominate the 1 s default: {plain} vs {delayed}"
        );
    }

    #[test]
    fn replay_store_serves_the_pipeline_from_cache() {
        use crate::replay::{Mode, ReplayStore};
        let s = server();
        let urls = html_urls(&s, 12);
        let store = ReplayStore::new(s, Mode::SemiOnline);

        let sweep = |store: &ReplayStore<SiteServer>| {
            let mut t = PipelinedTransport::new(store, MimePolicy::default(), Politeness::default())
                .with_window(4);
            let mut out = Vec::new();
            let mut bodies = Vec::new();
            for chunk in urls.chunks(4) {
                for u in chunk {
                    t.submit(Request::get(u));
                }
                while t.in_flight() > 0 {
                    t.poll_into(&mut out);
                    bodies.extend(out.drain(..).map(|(_, f)| f.body));
                }
            }
            bodies
        };

        let first = sweep(&store);
        let miss_gets = store.upstream_gets();
        assert_eq!(miss_gets, urls.len() as u64, "first sweep fills the store");
        let second = sweep(&store);
        assert_eq!(store.upstream_gets(), miss_gets, "second sweep is all cache hits");
        assert_eq!(first, second, "replayed bodies are identical");
    }

    #[test]
    fn crawl_delay_applies_to_mixed_case_hosts() {
        // A min-delay registered under any casing must govern dispatches
        // to every casing of the host — gates are case-folded.
        struct Tiny;
        impl crate::server::HttpServer for Tiny {
            fn head(&self, _url: &str) -> crate::response::HeadResponse {
                self.get("").head()
            }
            fn get(&self, _url: &str) -> crate::response::Response {
                crate::response::error_response(404)
            }
        }
        let s = Tiny;
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 };
        let mut t = PipelinedTransport::new(&s, MimePolicy::default(), pol);
        t.set_host_min_delay("Example.com", 5.0);
        t.fetch_now("http://EXAMPLE.com/a");
        t.fetch_now("http://example.com/b");
        // Two dispatches, both gated at 5 s: the second starts at t=5.
        assert!(
            t.traffic().elapsed_secs >= 10.0 - 1e-9,
            "override dropped: elapsed {}",
            t.traffic().elapsed_secs
        );
    }

    #[test]
    fn host_extraction() {
        assert_eq!(host_of("https://www.a.b.com/x/y?q=1"), "www.a.b.com");
        assert_eq!(host_of("http://a.com"), "a.com");
        assert_eq!(host_of("https://user@a.com/x"), "a.com");
        assert_eq!(host_of("not a url"), "not a url");
    }
}
