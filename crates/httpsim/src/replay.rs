//! The local replication database of Sec 4.4.
//!
//! To evaluate seven crawlers with many hyper-parameter settings without
//! re-crawling live sites, the paper stores each fetched resource (URL,
//! status, headers, body) in a local database and lets every crawler check it
//! first. The three execution modes are reproduced:
//!
//! * [`Mode::Local`] — the site is fully replicated; misses are errors,
//! * [`Mode::OnlineToLocal`] — always fetch upstream and store (the naive
//!   replicating crawler),
//! * [`Mode::SemiOnline`] — serve from the DB, fetch+store on miss.
//!
//! Responses are stored as `Arc<Response>`: the concurrent-reader hot
//! path, [`ReplayStore::get_shared`], hands out a pointer clone — zero
//! heap allocations and zero body copies per read (pinned by the
//! `alloc_guard_replay` regression test). The [`HttpServer::get`]
//! compatibility path still clones a `Response` out of the `Arc` at the
//! trait boundary (its `Body` remains a shared-pointer clone; only the
//! two optional header strings are duplicated).

use crate::response::{HeadResponse, Response};
use crate::server::HttpServer;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Replay execution mode (Sec 4.4 / "Artifacts" section of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Local,
    OnlineToLocal,
    SemiOnline,
}

/// A caching layer over an upstream [`HttpServer`].
pub struct ReplayStore<S> {
    upstream: S,
    mode: Mode,
    store: RwLock<HashMap<String, Arc<Response>>>,
    upstream_gets: AtomicU64,
    cache_hits: AtomicU64,
}

impl<S: HttpServer> ReplayStore<S> {
    pub fn new(upstream: S, mode: Mode) -> Self {
        ReplayStore {
            upstream,
            mode,
            store: RwLock::new(HashMap::new()),
            upstream_gets: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Fully replicates a list of URLs (used to prepare `Mode::Local` runs).
    pub fn preload<'a>(&self, urls: impl IntoIterator<Item = &'a str>) {
        let mut store = self.store.write();
        for url in urls {
            let r = self.upstream.get(url);
            self.upstream_gets.fetch_add(1, Ordering::Relaxed);
            store.insert(url.to_owned(), Arc::new(r));
        }
    }

    /// Number of GETs that actually reached the origin.
    pub fn upstream_gets(&self) -> u64 {
        self.upstream_gets.load(Ordering::Relaxed)
    }

    /// Number of GET/HEAD served from the local database.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.store.read().is_empty()
    }

    fn fetch_and_store(&self, url: &str) -> Arc<Response> {
        let r = Arc::new(self.upstream.get(url));
        self.upstream_gets.fetch_add(1, Ordering::Relaxed);
        self.store.write().insert(url.to_owned(), Arc::clone(&r));
        r
    }

    /// The concurrent-reader hot path: the stored response behind a shared
    /// pointer, or `None` if `url` is not in the database. A hit costs one
    /// `Arc` clone — no heap allocation, no body copy — so any number of
    /// reader threads can serve pages while a crawler refreshes the store.
    /// Never touches the upstream (reads must not generate crawl traffic).
    pub fn get_shared(&self, url: &str) -> Option<Arc<Response>> {
        let r = self.store.read().get(url).map(Arc::clone)?;
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(r)
    }

    /// Persists the whole database as an [`crate::archive`] stream, in
    /// sorted-URL order (deterministic bytes for identical contents).
    pub fn export_archive<W: std::io::Write>(
        &self,
        out: W,
    ) -> Result<usize, crate::archive::ArchiveError> {
        let store = self.store.read();
        let mut urls: Vec<&String> = store.keys().collect();
        urls.sort();
        let mut w = crate::archive::ArchiveWriter::new(out)?;
        for url in urls {
            w.write(url, &store[url])?;
        }
        let n = w.records();
        w.finish()?;
        Ok(n)
    }

    /// Loads records from an archive stream into the database (existing
    /// entries are overwritten). Returns the number of records loaded.
    pub fn import_archive<R: std::io::Read>(
        &self,
        input: R,
    ) -> Result<usize, crate::archive::ArchiveError> {
        let reader = crate::archive::ArchiveReader::new(input)?;
        let mut n = 0;
        let mut store = self.store.write();
        for item in reader {
            let (url, response) = item?;
            store.insert(url, Arc::new(response));
            n += 1;
        }
        Ok(n)
    }
}

impl<S: HttpServer> HttpServer for ReplayStore<S> {
    fn head(&self, url: &str) -> HeadResponse {
        // HEAD is derivable from a stored GET; in Local mode that is the
        // only source.
        if let Some(r) = self.store.read().get(url) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return r.head();
        }
        match self.mode {
            Mode::Local => {
                panic!("Local replay mode: HEAD miss for {url} — preload the site first")
            }
            Mode::OnlineToLocal | Mode::SemiOnline => self.fetch_and_store(url).head(),
        }
    }

    fn get(&self, url: &str) -> Response {
        match self.mode {
            Mode::Local => match self.get_shared(url) {
                Some(r) => (*r).clone(),
                None => panic!("Local replay mode: GET miss for {url} — preload the site first"),
            },
            Mode::OnlineToLocal => (*self.fetch_and_store(url)).clone(),
            Mode::SemiOnline => match self.get_shared(url) {
                Some(r) => (*r).clone(),
                None => (*self.fetch_and_store(url)).clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, SiteSpec};

    fn upstream() -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(120), 5))
    }

    #[test]
    fn semi_online_fetches_once() {
        let s = upstream();
        let url = s.site().page(s.site().root()).url.clone();
        let store = ReplayStore::new(s, Mode::SemiOnline);
        let a = store.get(&url);
        let b = store.get(&url);
        assert_eq!(a, b);
        assert_eq!(store.upstream_gets(), 1);
        assert_eq!(store.cache_hits(), 1);
    }

    #[test]
    fn online_to_local_always_fetches() {
        let s = upstream();
        let url = s.site().page(s.site().root()).url.clone();
        let store = ReplayStore::new(s, Mode::OnlineToLocal);
        store.get(&url);
        store.get(&url);
        assert_eq!(store.upstream_gets(), 2);
    }

    #[test]
    fn local_serves_preloaded() {
        let s = upstream();
        let urls: Vec<String> = s.site().pages().iter().map(|p| p.url.clone()).collect();
        let store = ReplayStore::new(s, Mode::Local);
        store.preload(urls.iter().map(String::as_str));
        let before = store.upstream_gets();
        let r = store.get(&urls[0]);
        assert_eq!(r.status, 200);
        assert_eq!(store.upstream_gets(), before, "no new upstream traffic in Local mode");
    }

    #[test]
    #[should_panic(expected = "Local replay mode")]
    fn local_miss_panics() {
        let s = upstream();
        let store = ReplayStore::new(s, Mode::Local);
        store.get("https://www.stats.example.org/never/stored");
    }

    #[test]
    fn archive_roundtrip_rebuilds_a_local_store() {
        let s = upstream();
        let urls: Vec<String> = s.site().pages().iter().map(|p| p.url.clone()).collect();
        let store = ReplayStore::new(s, Mode::OnlineToLocal);
        for u in &urls {
            store.get(u);
        }
        let mut bytes = Vec::new();
        let exported = store.export_archive(&mut bytes).expect("export");
        assert_eq!(exported, store.len());

        // A brand-new Local-mode store, fed only from the archive, must
        // answer every URL identically with zero upstream traffic.
        let fresh = ReplayStore::new(upstream(), Mode::Local);
        let imported = fresh.import_archive(&bytes[..]).expect("import");
        assert_eq!(imported, exported);
        for u in &urls {
            assert_eq!(fresh.get(u), store.get(u), "mismatch for {u}");
        }
        assert_eq!(fresh.upstream_gets(), 0);
    }

    #[test]
    fn export_is_deterministic() {
        let s = upstream();
        let urls: Vec<String> = s.site().pages().iter().map(|p| p.url.clone()).collect();
        let store = ReplayStore::new(s, Mode::SemiOnline);
        store.preload(urls.iter().map(String::as_str));
        let mut a = Vec::new();
        let mut b = Vec::new();
        store.export_archive(&mut a).unwrap();
        store.export_archive(&mut b).unwrap();
        assert_eq!(a, b, "sorted-URL export yields identical bytes");
    }

    #[test]
    fn get_shared_is_a_pointer_clone() {
        let s = upstream();
        let url = s.site().page(s.site().root()).url.clone();
        let store = ReplayStore::new(s, Mode::SemiOnline);
        assert!(
            store.get_shared(&url).is_none(),
            "get_shared never fetches upstream"
        );
        assert_eq!(store.upstream_gets(), 0);
        store.preload([url.as_str()]);
        let a = store.get_shared(&url).expect("preloaded");
        let b = store.get_shared(&url).expect("preloaded");
        assert!(Arc::ptr_eq(&a, &b), "readers share one stored response");
        // The trait-boundary clone still shares the stored body buffer.
        let owned = store.get(&url);
        assert!(
            std::ptr::eq(owned.body.as_slice().as_ptr(), a.body.as_slice().as_ptr()),
            "HttpServer::get must serve the stored body as a pointer clone"
        );
        assert_eq!(
            store.upstream_gets(),
            1,
            "only the preload touched the origin"
        );
    }

    #[test]
    fn head_served_from_stored_get() {
        let s = upstream();
        let url = s.site().page(s.site().root()).url.clone();
        let store = ReplayStore::new(s, Mode::SemiOnline);
        store.get(&url);
        let h = store.head(&url);
        assert_eq!(h.status, 200);
        assert_eq!(store.upstream_gets(), 1);
    }
}
