//! The origin server: serves a generated [`Website`] over the simulated
//! transport, exactly as the paper's crawlers would see it — HTML pages with
//! links, target files with their MIME types and sizes, 4xx/5xx dead URLs,
//! and 3xx redirects with `Location` headers.

use crate::response::{error_response, Body, HeadResponse, Headers, Response};
use sb_webgraph::gen::{PageKind, SiteSource, Website};
use sb_webgraph::PageId;
use std::sync::Arc;

/// Anything that answers HEAD and GET for absolute URLs.
pub trait HttpServer: Send + Sync {
    fn head(&self, url: &str) -> HeadResponse;
    fn get(&self, url: &str) -> Response;
}

/// Serves one synthetic website — any [`SiteSource`], eager or streaming.
/// The site is shared (`Arc`) so many concurrent experiment runs can serve
/// the same generated site cheaply.
pub struct SiteServer {
    source: Arc<dyn SiteSource>,
    /// Set when the source is a materialised [`Website`]; the omniscient
    /// accessor [`SiteServer::site`] needs the concrete type.
    eager: Option<Arc<Website>>,
}

impl SiteServer {
    pub fn new(site: Website) -> Self {
        Self::shared(Arc::new(site))
    }

    pub fn shared(site: Arc<Website>) -> Self {
        SiteServer { source: Arc::clone(&site) as Arc<dyn SiteSource>, eager: Some(site) }
    }

    /// Serves any [`SiteSource`] — e.g. a streaming `sb_scale` site whose
    /// pages are rendered on demand through a bounded cache. Servers built
    /// this way have no eager [`Website`]; use [`SiteServer::source`] for
    /// omniscient views.
    pub fn from_source(source: Arc<dyn SiteSource>) -> Self {
        SiteServer { source, eager: None }
    }

    /// The materialised site, for omniscient experiment setup. Panics on a
    /// server built with [`SiteServer::from_source`] — streaming-site
    /// callers go through [`SiteServer::source`] instead.
    pub fn site(&self) -> &Website {
        self.eager.as_deref().expect("server has no eager Website; use source()")
    }

    /// The site behind this server, eager or streaming.
    pub fn source(&self) -> &Arc<dyn SiteSource> {
        &self.source
    }

    /// The shared site handle (the render cache lives on the `Website`, so
    /// servers constructed from clones of this handle share rendered pages).
    /// Panics for streaming-backed servers, like [`SiteServer::site`].
    pub fn site_arc(&self) -> Arc<Website> {
        Arc::clone(self.eager.as_ref().expect("server has no eager Website; use source()"))
    }

    /// String-keyed boundary: resolves the URL (one FxHash lookup) and
    /// serves by page id.
    fn respond(&self, url: &str, with_body: bool) -> Response {
        let Some(id) = self.source.lookup(url) else {
            return error_response(404);
        };
        self.respond_id(id, with_body)
    }

    /// Id-keyed fast path. HTML bodies come from the source's shared render
    /// cache (eager: each page rendered at most once per site instance;
    /// streaming: bounded FIFO cache) and HEAD serves the precomputed
    /// Content-Length without touching a body.
    pub fn respond_id(&self, id: PageId, with_body: bool) -> Response {
        match self.source.kind(id) {
            PageKind::Html(_) => {
                let (body, content_length) = if with_body {
                    let cached = self.source.rendered(id);
                    let len = cached.len() as u64;
                    (Body::from(cached), len)
                } else {
                    // HEAD: precomputed length, zero renders.
                    (Body::empty(), self.source.content_length(id))
                };
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some("text/html; charset=utf-8".to_owned()),
                        content_length: Some(content_length),
                        location: None,
                    },
                    body,
                }
            }
            PageKind::Target { mime, declared_size, .. } => {
                let body = if with_body {
                    // Deterministic payloads come from the source's shared
                    // (budget-bounded) cache: generated once, served as an
                    // `Arc` clone afterwards.
                    Body::from(self.source.target_payload(id))
                } else {
                    Body::empty()
                };
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some((*mime).to_owned()),
                        content_length: Some(*declared_size),
                        location: None,
                    },
                    body,
                }
            }
            PageKind::Error { status } => error_response(*status),
            PageKind::Redirect { to } => Response {
                status: 301,
                headers: Headers {
                    content_type: None,
                    content_length: Some(0),
                    location: Some(self.source.url(*to).to_owned()),
                },
                body: Body::empty(),
            },
        }
    }
}

impl HttpServer for SiteServer {
    fn head(&self, url: &str) -> HeadResponse {
        self.respond(url, false).head()
    }

    fn get(&self, url: &str) -> Response {
        self.respond(url, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_webgraph::gen::{build_site, SiteSpec};
    use sb_webgraph::PageKind;

    fn server() -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(300), 5))
    }

    #[test]
    fn serves_root_html() {
        let s = server();
        let root_url = s.site().page(s.site().root()).url.clone();
        let r = s.get(&root_url);
        assert_eq!(r.status, 200);
        assert_eq!(r.headers.content_type.as_deref(), Some("text/html; charset=utf-8"));
        assert!(!r.body.is_empty());
        assert_eq!(r.headers.content_length, Some(r.body.len() as u64));
    }

    #[test]
    fn serves_targets_with_declared_size() {
        let s = server();
        let tid = s.site().target_ids()[0];
        let page = s.site().page(tid).clone();
        let PageKind::Target { mime, declared_size, .. } = page.kind else { unreachable!() };
        let r = s.get(&page.url);
        assert_eq!(r.status, 200);
        assert_eq!(r.headers.content_type.as_deref(), Some(mime));
        assert_eq!(r.headers.content_length, Some(declared_size));
    }

    /// The HEAD path must never render a body: Content-Length comes from
    /// the build-time precomputation.
    #[test]
    fn head_performs_zero_renders() {
        let s = server();
        assert_eq!(s.site().render_count(), 0, "build-time precompute is not cache traffic");
        let html_urls: Vec<String> = s
            .site()
            .pages()
            .iter()
            .filter(|p| matches!(p.kind, PageKind::Html(_)))
            .map(|p| p.url.clone())
            .collect();
        let mut heads = Vec::new();
        for url in &html_urls {
            heads.push(s.head(url));
        }
        assert_eq!(s.site().render_count(), 0, "HEAD rendered a body");
        // And the lengths it reported are the real rendered lengths.
        for (url, h) in html_urls.iter().zip(&heads) {
            let g = s.get(url);
            assert_eq!(h.headers.content_length, g.headers.content_length, "{url}");
        }
    }

    /// GETs hit the shared render cache: one render per page per site
    /// instance, across repeated fetches and across servers sharing the
    /// same `Arc<Website>`.
    #[test]
    fn render_cache_renders_each_page_once() {
        let site = std::sync::Arc::new(build_site(&SiteSpec::demo(300), 5));
        let s1 = SiteServer::shared(std::sync::Arc::clone(&site));
        let root_url = site.page(site.root()).url.clone();
        let before = site.render_count();
        let a = s1.get(&root_url);
        let b = s1.get(&root_url);
        assert_eq!(a, b);
        assert_eq!(site.render_count(), before + 1, "second GET must be served from cache");
        // A second server over the same site shares the cache.
        let s2 = SiteServer::shared(std::sync::Arc::clone(&site));
        let c = s2.get(&root_url);
        assert_eq!(a, c);
        assert_eq!(site.render_count(), before + 1, "sibling server re-rendered");
    }

    #[test]
    fn head_matches_get_headers() {
        let s = server();
        for id in [s.site().root(), s.site().target_ids()[0]] {
            let url = &s.site().page(id).url;
            let h = s.head(url);
            let g = s.get(url);
            assert_eq!(h.status, g.status);
            assert_eq!(h.headers.content_type, g.headers.content_type);
            assert_eq!(h.headers.content_length, g.headers.content_length);
        }
    }

    #[test]
    fn unknown_url_is_404() {
        let s = server();
        assert_eq!(s.get("https://www.stats.example.org/definitely/not/here").status, 404);
    }

    #[test]
    fn error_pages_serve_their_status() {
        let s = server();
        let err = s
            .site()
            .pages()
            .iter()
            .find(|p| matches!(p.kind, PageKind::Error { .. }))
            .expect("demo site has error pages");
        let PageKind::Error { status } = err.kind else { unreachable!() };
        assert_eq!(s.get(&err.url).status, status);
    }

    #[test]
    fn redirects_carry_location() {
        let s = server();
        let red = s
            .site()
            .pages()
            .iter()
            .find(|p| matches!(p.kind, PageKind::Redirect { .. }))
            .expect("demo site has redirects");
        let r = s.get(&red.url);
        assert_eq!(r.status, 301);
        let PageKind::Redirect { to } = red.kind else { unreachable!() };
        assert_eq!(r.headers.location.as_deref(), Some(s.site().page(to).url.as_str()));
    }
}
