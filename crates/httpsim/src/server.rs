//! The origin server: serves a generated [`Website`] over the simulated
//! transport, exactly as the paper's crawlers would see it — HTML pages with
//! links, target files with their MIME types and sizes, 4xx/5xx dead URLs,
//! and 3xx redirects with `Location` headers.

use crate::response::{error_response, HeadResponse, Headers, Response};
use sb_webgraph::content::target_body;
use sb_webgraph::gen::render::render_page;
use sb_webgraph::gen::{PageKind, Website};
use std::sync::Arc;

/// Anything that answers HEAD and GET for absolute URLs.
pub trait HttpServer: Send + Sync {
    fn head(&self, url: &str) -> HeadResponse;
    fn get(&self, url: &str) -> Response;
}

/// Serves one synthetic website. The site is shared (`Arc`) so many
/// concurrent experiment runs can serve the same generated site cheaply.
pub struct SiteServer {
    site: Arc<Website>,
}

impl SiteServer {
    pub fn new(site: Website) -> Self {
        SiteServer { site: Arc::new(site) }
    }

    pub fn shared(site: Arc<Website>) -> Self {
        SiteServer { site }
    }

    pub fn site(&self) -> &Website {
        &self.site
    }

    fn respond(&self, url: &str, with_body: bool) -> Response {
        let Some(id) = self.site.lookup(url) else {
            return error_response(404);
        };
        let page = self.site.page(id);
        match &page.kind {
            PageKind::Html(role) => {
                let body = if with_body {
                    render_page(&self.site, id).into_bytes()
                } else {
                    // HEAD still needs an accurate Content-Length.
                    render_page(&self.site, id).into_bytes()
                };
                let _ = role;
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some("text/html; charset=utf-8".to_owned()),
                        content_length: Some(body.len() as u64),
                        location: None,
                    },
                    body: if with_body { body } else { Vec::new() },
                }
            }
            PageKind::Target { ext, mime, declared_size, planted_tables } => {
                let style = self.site.section_style(0);
                let body = if with_body {
                    target_body(
                        self.site.seed() ^ u64::from(id),
                        ext,
                        *planted_tables,
                        *declared_size,
                        style.lang,
                    )
                } else {
                    Vec::new()
                };
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some((*mime).to_owned()),
                        content_length: Some(*declared_size),
                        location: None,
                    },
                    body,
                }
            }
            PageKind::Error { status } => error_response(*status),
            PageKind::Redirect { to } => Response {
                status: 301,
                headers: Headers {
                    content_type: None,
                    content_length: Some(0),
                    location: Some(self.site.page(*to).url.clone()),
                },
                body: Vec::new(),
            },
        }
    }
}

impl HttpServer for SiteServer {
    fn head(&self, url: &str) -> HeadResponse {
        self.respond(url, false).head()
    }

    fn get(&self, url: &str) -> Response {
        self.respond(url, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_webgraph::gen::{build_site, SiteSpec};
    use sb_webgraph::PageKind;

    fn server() -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(300), 5))
    }

    #[test]
    fn serves_root_html() {
        let s = server();
        let root_url = s.site().page(s.site().root()).url.clone();
        let r = s.get(&root_url);
        assert_eq!(r.status, 200);
        assert_eq!(r.headers.content_type.as_deref(), Some("text/html; charset=utf-8"));
        assert!(!r.body.is_empty());
        assert_eq!(r.headers.content_length, Some(r.body.len() as u64));
    }

    #[test]
    fn serves_targets_with_declared_size() {
        let s = server();
        let tid = s.site().target_ids()[0];
        let page = s.site().page(tid).clone();
        let PageKind::Target { mime, declared_size, .. } = page.kind else { unreachable!() };
        let r = s.get(&page.url);
        assert_eq!(r.status, 200);
        assert_eq!(r.headers.content_type.as_deref(), Some(mime));
        assert_eq!(r.headers.content_length, Some(declared_size));
    }

    #[test]
    fn head_matches_get_headers() {
        let s = server();
        for id in [s.site().root(), s.site().target_ids()[0]] {
            let url = &s.site().page(id).url;
            let h = s.head(url);
            let g = s.get(url);
            assert_eq!(h.status, g.status);
            assert_eq!(h.headers.content_type, g.headers.content_type);
            assert_eq!(h.headers.content_length, g.headers.content_length);
        }
    }

    #[test]
    fn unknown_url_is_404() {
        let s = server();
        assert_eq!(s.get("https://www.stats.example.org/definitely/not/here").status, 404);
    }

    #[test]
    fn error_pages_serve_their_status() {
        let s = server();
        let err = s
            .site()
            .pages()
            .iter()
            .find(|p| matches!(p.kind, PageKind::Error { .. }))
            .expect("demo site has error pages");
        let PageKind::Error { status } = err.kind else { unreachable!() };
        assert_eq!(s.get(&err.url).status, status);
    }

    #[test]
    fn redirects_carry_location() {
        let s = server();
        let red = s
            .site()
            .pages()
            .iter()
            .find(|p| matches!(p.kind, PageKind::Redirect { .. }))
            .expect("demo site has redirects");
        let r = s.get(&red.url);
        assert_eq!(r.status, 301);
        let PageKind::Redirect { to } = red.kind else { unreachable!() };
        assert_eq!(r.headers.location.as_deref(), Some(s.site().page(to).url.as_str()));
    }
}
