//! The crawler-side HTTP client: cost accounting and politeness.
//!
//! The paper's two cost functions (Sec 2.2) are both tracked on every
//! request: `ω ≡ 1` (request counting) and `ω(u) = page size` (volume).
//! A politeness model converts the traffic into estimated wall-clock time
//! (the paper's 1-second inter-request wait dominates: "for a site of
//! 1 million pages, such waits, alone, take 11 days"), and downloads whose
//! `Content-Type` is block-listed are interrupted mid-flight as in
//! Algorithm 3.

use crate::response::{Body, HeadResponse, Response};
use crate::server::HttpServer;
use sb_webgraph::mime::{normalize_mime, MimePolicy};

/// Running totals of everything the crawler spent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Traffic {
    pub get_requests: u64,
    pub head_requests: u64,
    /// Volume received, split by whether the caller tagged it as target.
    pub target_bytes: u64,
    pub non_target_bytes: u64,
    /// Simulated seconds: politeness waits + transfer time.
    pub elapsed_secs: f64,
}

impl Traffic {
    pub fn requests(&self) -> u64 {
        self.get_requests + self.head_requests
    }

    pub fn total_bytes(&self) -> u64 {
        self.target_bytes + self.non_target_bytes
    }

    /// Adds another crawl's totals into this one (fleet aggregation).
    /// Destructures so a new counter cannot be silently left out of sums.
    pub fn absorb(&mut self, other: &Traffic) {
        let Traffic { get_requests, head_requests, target_bytes, non_target_bytes, elapsed_secs } =
            *other;
        self.get_requests += get_requests;
        self.head_requests += head_requests;
        self.target_bytes += target_bytes;
        self.non_target_bytes += non_target_bytes;
        self.elapsed_secs += elapsed_secs;
    }
}

/// What a GET looked like from the crawler's side.
#[derive(Debug, Clone)]
pub struct Fetched {
    pub status: u16,
    /// Normalised MIME type, if the server sent one.
    pub mime: Option<String>,
    /// Redirect target, if any.
    pub location: Option<String>,
    /// The body; empty if the download was interrupted. Shared bytes —
    /// cloning a `Fetched` does not copy the buffer.
    pub body: Body,
    /// True when the transfer was aborted because of a block-listed MIME.
    pub interrupted: bool,
    /// Bytes this transfer cost on the wire.
    pub wire_bytes: u64,
    /// GET attempts behind this answer (1 unless a retrying transport
    /// re-dispatched; the failure reasons of `sb_crawler` use it to tell
    /// retries-exhausted from a first-contact error).
    pub attempts: u32,
}

impl Fetched {
    pub fn is_html(&self) -> bool {
        self.mime.as_deref().is_some_and(|m| m.starts_with("text/html") || m == "application/xhtml+xml")
    }
}

/// Politeness/bandwidth model for elapsed-time estimation.
#[derive(Debug, Clone, Copy)]
pub struct Politeness {
    /// Wait between successive requests (crawling ethics; default 1 s).
    pub delay_secs: f64,
    /// Simulated link bandwidth.
    pub bytes_per_sec: f64,
}

impl Default for Politeness {
    fn default() -> Self {
        Politeness { delay_secs: 1.0, bytes_per_sec: 4.0 * 1024.0 * 1024.0 }
    }
}

/// The crawl client: a server handle + a MIME policy + accounting.
pub struct Client<'a, S: HttpServer + ?Sized> {
    server: &'a S,
    policy: MimePolicy,
    politeness: Politeness,
    traffic: Traffic,
}

/// Bytes of a blocked download that still hit the wire before the abort.
const INTERRUPT_PREFIX: u64 = 16 * 1024;

/// Converts a raw GET answer into the crawler's view of it, applying the
/// block-listed-MIME interruption of Algorithm 3. Shared by [`Client::get`]
/// and the pipelined [`crate::transport`] so the two fetch paths cannot
/// drift: same MIME normalisation, same interrupt rule, same wire cost.
pub(crate) fn settle_get(r: Response, policy: &MimePolicy) -> Fetched {
    let mime = r.headers.content_type.as_deref().map(normalize_mime);
    let blocked = mime.as_deref().is_some_and(|m| policy.is_blocked_mime(m));
    let (body, interrupted, wire) = if blocked {
        (Body::empty(), true, r.headers.wire_size() + INTERRUPT_PREFIX.min(r.declared_len()))
    } else {
        let wire = r.wire_size();
        (r.body, false, wire)
    };
    Fetched {
        status: r.status,
        mime,
        location: r.headers.location,
        body,
        interrupted,
        wire_bytes: wire,
        attempts: 1,
    }
}

impl<'a, S: HttpServer + ?Sized> Client<'a, S> {
    pub fn new(server: &'a S, policy: MimePolicy) -> Self {
        Client { server, policy, politeness: Politeness::default(), traffic: Traffic::default() }
    }

    pub fn with_politeness(mut self, politeness: Politeness) -> Self {
        self.politeness = politeness;
        self
    }

    pub fn traffic(&self) -> Traffic {
        self.traffic
    }

    pub fn policy(&self) -> &MimePolicy {
        &self.policy
    }

    /// Issues a HEAD request. `is_target_volume` controls which volume
    /// bucket the header bytes land in (they are non-target by nature).
    pub fn head(&mut self, url: &str) -> HeadResponse {
        let r = self.server.head(url);
        let bytes = r.wire_size();
        self.traffic.head_requests += 1;
        self.traffic.non_target_bytes += bytes;
        self.charge_time(bytes);
        r
    }

    /// Issues a GET. The transfer is interrupted if the served MIME type is
    /// block-listed (Algorithm 3's multimedia guard). The caller later
    /// attributes the volume to target/non-target via [`Client::tag_target`].
    pub fn get(&mut self, url: &str) -> Fetched {
        let f = settle_get(self.server.get(url), &self.policy);
        self.traffic.get_requests += 1;
        self.traffic.non_target_bytes += f.wire_bytes;
        self.charge_time(f.wire_bytes);
        f
    }

    /// Re-attributes `bytes` of the latest transfers from the non-target to
    /// the target volume bucket (the crawler knows only after inspecting the
    /// MIME type whether a fetch was a target).
    pub fn tag_target(&mut self, bytes: u64) {
        let moved = bytes.min(self.traffic.non_target_bytes);
        self.traffic.non_target_bytes -= moved;
        self.traffic.target_bytes += moved;
    }

    fn charge_time(&mut self, bytes: u64) {
        self.traffic.elapsed_secs +=
            self.politeness.delay_secs + bytes as f64 / self.politeness.bytes_per_sec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, PageKind, SiteSpec};

    fn server() -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(200), 5))
    }

    #[test]
    fn counts_requests_and_volume() {
        let s = server();
        let root = s.site().page(s.site().root()).url.clone();
        let mut c = Client::new(&s, MimePolicy::default());
        let f = c.get(&root);
        assert_eq!(f.status, 200);
        assert!(f.is_html());
        assert_eq!(c.traffic().get_requests, 1);
        assert!(c.traffic().non_target_bytes > 0);
        c.head(&root);
        assert_eq!(c.traffic().head_requests, 1);
    }

    #[test]
    fn target_tagging_moves_volume() {
        let s = server();
        let t = s.site().target_ids()[0];
        let url = s.site().page(t).url.clone();
        let mut c = Client::new(&s, MimePolicy::default());
        let f = c.get(&url);
        c.tag_target(f.wire_bytes);
        assert_eq!(c.traffic().target_bytes, f.wire_bytes);
    }

    #[test]
    fn politeness_time_accumulates() {
        let s = server();
        let root = s.site().page(s.site().root()).url.clone();
        let mut c = Client::new(&s, MimePolicy::default())
            .with_politeness(Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 });
        c.get(&root);
        c.get(&root);
        assert!(c.traffic().elapsed_secs >= 2.0);
    }

    #[test]
    fn blocked_mime_interrupts_download() {
        // Build a policy that blocks everything "application/*" to force an
        // interruption on the first target.
        let s = server();
        let target = s
            .site()
            .pages()
            .iter()
            .find(|p| matches!(&p.kind, PageKind::Target { mime, .. } if mime.starts_with("application/")))
            .expect("demo site has application/* targets");
        let mut policy = MimePolicy::default();
        // MimePolicy blocks by prefix list; emulate via a custom list.
        policy = MimePolicy::with_targets(policy.target_types().to_vec());
        let mut c = Client::new(&s, policy);
        // Default policy does not block application/*; fetch normally first.
        let f = c.get(&target.url);
        assert!(!f.interrupted);
        assert!(!f.body.is_empty());
    }

    #[test]
    fn image_downloads_are_interrupted() {
        // Serve an image through a tiny custom server.
        struct ImgServer;
        impl HttpServer for ImgServer {
            fn head(&self, _url: &str) -> crate::response::HeadResponse {
                self.get("").head()
            }
            fn get(&self, _url: &str) -> Response {
                Response {
                    status: 200,
                    headers: crate::response::Headers {
                        content_type: Some("image/png".into()),
                        content_length: Some(5_000_000),
                        location: None,
                    },
                    body: vec![0; 1024].into(),
                }
            }
        }
        let s = ImgServer;
        let mut c = Client::new(&s, MimePolicy::default());
        let f = c.get("https://a.com/big.png");
        assert!(f.interrupted);
        assert!(f.body.is_empty());
        assert!(f.wire_bytes < 5_000_000, "interrupt must save volume");
    }
}
