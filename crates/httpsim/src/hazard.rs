//! Transport-level hazards and recovery (PR 6): a composable
//! [`HazardPolicy`] (timeouts, heavy-tailed latency, per-host bandwidth
//! caps, synthetic 429 rate limiting with `Retry-After`), a [`RetryPolicy`]
//! with capped exponential backoff and seed-deterministic jitter, and a
//! per-host circuit breaker that quarantines hosts after K consecutive
//! hard failures.
//!
//! Both transport backends — [`crate::PipelinedTransport`] and
//! [`crate::PoolHandle`] — execute every GET through the single
//! [`dispatch_hazard_get`] loop in this module, so hazard semantics,
//! retry/backoff arithmetic and breaker bookkeeping cannot drift between
//! them (the same reasoning that keeps the politeness
//! [`GateTable`](crate::transport) shared).
//!
//! ## Simulated-time semantics
//!
//! The simulated origin answers synchronously at dispatch, so hazards are
//! applied as *arrival arithmetic*:
//!
//! * a **bandwidth cap** lowers the effective `bytes_per_sec` for the
//!   host's transfers (politeness delay unchanged);
//! * **tail latency** adds Pareto-distributed extra service seconds to a
//!   deterministic subset of attempts (keyed by seed, URL and attempt);
//! * a **timeout** truncates an attempt whose service time (transfer +
//!   tail) exceeds the limit: the answer becomes a synthetic
//!   [`STATUS_TIMEOUT`] failure, only the bytes that fit the timeout
//!   window are charged, and the arrival is the abort instant;
//! * **rate limiting** turns every `period`-th attempt on a host into a
//!   synthetic 429 whose `Retry-After` the retry policy honours as a
//!   backoff floor;
//! * a **retry** re-enters the politeness gate no earlier than
//!   `arrival + backoff` — backoff can therefore only *add* spacing on
//!   top of the gate, never bypass it;
//! * once a host trips the **circuit breaker**, every later GET to it is
//!   answered [`STATUS_QUARANTINED`] immediately at zero wire cost
//!   (no origin contact, no gate time) so pending selections drain fast.
//!
//! All defaults are inert: `HazardPolicy::default()` plus
//! `RetryPolicy::retries(n)` reproduce the pre-hazard transport
//! byte-for-byte (zero backoff, retry-at-arrival), which is what keeps
//! the window-1 blocking-client replay and the frozen
//! `sb_bench::reference` traces intact.

use crate::client::{Fetched, Politeness};
use crate::response::Body;
use crate::transport::host_of;
use sb_webgraph::FxHashMap;

/// Synthetic status of an attempt aborted by the transport read timeout
/// (the de-facto "network read timeout" code).
pub const STATUS_TIMEOUT: u16 = 598;

/// Synthetic status of a request refused because its host is quarantined
/// by the circuit breaker (no origin contact was made).
pub const STATUS_QUARANTINED: u16 = 599;

/// Wire bytes charged for a synthetic 429 answer (status line + headers).
const RATE_LIMIT_WIRE: u64 = 256;

/// Heavy-tailed extra service latency: with probability `prob` an attempt
/// draws `scale_secs / u^(1/alpha)` extra seconds (`u` uniform in (0,1]),
/// i.e. a Pareto tail with minimum `scale_secs` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct TailLatency {
    /// Fraction of attempts that draw extra latency, in [0, 1].
    pub prob: f64,
    /// Tail minimum (seconds) when drawn.
    pub scale_secs: f64,
    /// Pareto shape; smaller is heavier. Clamped to ≥ 0.5 when sampling.
    pub alpha: f64,
}

/// Synthetic per-host rate limiting: every `period`-th attempt on a host
/// is answered `429 Too Many Requests` carrying
/// `Retry-After: retry_after_secs`.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Every how many attempts a 429 is injected (≥ 2 to be non-total).
    pub period: u64,
    /// The `Retry-After` the retry policy must honour as a backoff floor.
    pub retry_after_secs: f64,
}

/// Composable transport-level hazard model. Inert by default; every knob
/// is independent. Honored by both transport backends through
/// [`dispatch_hazard_get`].
#[derive(Debug, Clone, Default)]
pub struct HazardPolicy {
    /// Seed for the deterministic latency draws (xor-folded with URL and
    /// attempt number, so runs replay exactly).
    pub seed: u64,
    /// Abort attempts whose service time (transfer + tail latency,
    /// politeness delay excluded) exceeds this many seconds.
    pub timeout_secs: Option<f64>,
    /// Heavy-tailed extra service latency.
    pub tail: Option<TailLatency>,
    /// Synthetic 429 rate limiting.
    pub rate_limit: Option<RateLimit>,
    /// Per-host bandwidth caps (bytes/sec), case-folded host keys; the
    /// effective rate is `min(politeness.bytes_per_sec, cap)`.
    caps: FxHashMap<String, f64>,
}

impl HazardPolicy {
    /// An inert policy with the given jitter/latency seed.
    pub fn seeded(seed: u64) -> Self {
        HazardPolicy { seed, ..HazardPolicy::default() }
    }

    /// Aborts attempts whose service time exceeds `secs`.
    pub fn with_timeout(mut self, secs: f64) -> Self {
        self.timeout_secs = Some(secs.max(0.0));
        self
    }

    /// Adds heavy-tailed service latency.
    pub fn with_tail(mut self, tail: TailLatency) -> Self {
        self.tail = Some(tail);
        self
    }

    /// Adds synthetic 429 rate limiting.
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.rate_limit = Some(RateLimit { period: limit.period.max(2), ..limit });
        self
    }

    /// Caps `host`'s simulated bandwidth at `bytes_per_sec`.
    pub fn cap_host_bandwidth(mut self, host: &str, bytes_per_sec: f64) -> Self {
        self.caps.insert(host.to_ascii_lowercase(), bytes_per_sec.max(1.0));
        self
    }

    /// The politeness model effective for one host: the global delay with
    /// the host's capped bandwidth, if any.
    fn effective_politeness(&self, politeness: &Politeness, host: &str) -> Politeness {
        if self.caps.is_empty() {
            return *politeness;
        }
        let key: std::borrow::Cow<'_, str> = if host.bytes().any(|b| b.is_ascii_uppercase()) {
            std::borrow::Cow::Owned(host.to_ascii_lowercase())
        } else {
            std::borrow::Cow::Borrowed(host)
        };
        match self.caps.get(key.as_ref()) {
            Some(&cap) => Politeness {
                delay_secs: politeness.delay_secs,
                bytes_per_sec: politeness.bytes_per_sec.min(cap),
            },
            None => *politeness,
        }
    }

    /// Deterministic tail-latency draw for one attempt (0.0 when the
    /// attempt is not in the unlucky subset or no tail is configured).
    fn tail_latency(&self, url: &str, attempt: u64) -> f64 {
        let Some(tail) = self.tail else { return 0.0 };
        let h = mix(self.seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15), url);
        if unit(h) >= tail.prob {
            return 0.0;
        }
        // Pareto(scale, alpha) via inverse CDF on a second independent draw.
        let u = unit(mix(h, "tail")).max(1e-12);
        tail.scale_secs / u.powf(1.0 / tail.alpha.max(0.5))
    }
}

/// Retry/backoff/circuit-breaker policy for hazard-aware dispatch.
///
/// `RetryPolicy::retries(n)` (zero backoff, no breaker) reproduces the
/// legacy `with_retries(n)` contract exactly: a 5xx answer re-enters the
/// gate at its own arrival instant, every attempt is charged.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = deliver failures as-is).
    pub max_retries: u32,
    /// First backoff step (seconds); doubles per extra attempt. 0 keeps
    /// the legacy retry-at-arrival behaviour.
    pub base_backoff_secs: f64,
    /// Cap on the exponential backoff.
    pub max_backoff_secs: f64,
    /// Jitter fraction in [0, 1]: each backoff is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]` drawn from
    /// (seed, URL, attempt).
    pub jitter: f64,
    /// Seed for the jitter draws.
    pub seed: u64,
    /// Consecutive hard failures (after retries) before a host is
    /// quarantined; 0 disables the breaker.
    pub quarantine_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::retries(0)
    }
}

impl RetryPolicy {
    /// The legacy policy: `n` zero-backoff retries, no breaker.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            base_backoff_secs: 0.0,
            max_backoff_secs: 0.0,
            jitter: 0.0,
            seed: 0,
            quarantine_after: 0,
        }
    }

    /// Capped exponential backoff: `base · 2^(attempt-1)`, at most `max`.
    pub fn with_backoff(mut self, base_secs: f64, max_secs: f64) -> Self {
        self.base_backoff_secs = base_secs.max(0.0);
        self.max_backoff_secs = max_secs.max(self.base_backoff_secs);
        self
    }

    /// Seed-deterministic multiplicative jitter on every backoff.
    pub fn with_jitter(mut self, fraction: f64, seed: u64) -> Self {
        self.jitter = fraction.clamp(0.0, 1.0);
        self.seed = seed;
        self
    }

    /// Quarantines a host after `k` consecutive hard failures.
    pub fn with_quarantine_after(mut self, k: u32) -> Self {
        self.quarantine_after = k;
        self
    }

    /// The backoff before retry number `attempt` (1-based count of
    /// attempts already made) of `url`, honouring `retry_after` as a
    /// floor when the failed answer carried one.
    fn backoff(&self, url: &str, attempt: u64, retry_after: Option<f64>) -> f64 {
        let mut b = if self.base_backoff_secs > 0.0 {
            let exp = (attempt.saturating_sub(1)).min(32) as i32;
            (self.base_backoff_secs * f64::powi(2.0, exp)).min(self.max_backoff_secs)
        } else {
            0.0
        };
        if self.jitter > 0.0 && b > 0.0 {
            let u = unit(mix(self.seed ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d), url));
            b *= 1.0 + self.jitter * (2.0 * u - 1.0);
        }
        match retry_after {
            Some(ra) => b.max(ra),
            None => b,
        }
    }
}

/// Per-host circuit-breaker record.
#[derive(Debug, Default, Clone, Copy)]
struct HostHealth {
    /// Consecutive hard failures (reset on any delivered success).
    fails: u32,
    quarantined: bool,
}

/// Per-transport mutable hazard state: rate-limit attempt counters and the
/// circuit breaker. One per transport backend (per handle in the shared
/// pool — quarantine is an origin property, sharded like the gates).
#[derive(Debug, Default)]
pub struct HazardState {
    /// Attempts per host (rate-limit counter), case-folded keys.
    attempts: FxHashMap<String, u64>,
    health: FxHashMap<String, HostHealth>,
}

impl HazardState {
    /// Is `host` currently quarantined?
    pub fn is_quarantined(&self, host: &str) -> bool {
        match self.health.get(host) {
            Some(h) => h.quarantined,
            None => {
                host.bytes().any(|b| b.is_ascii_uppercase())
                    && self
                        .health
                        .get(host.to_ascii_lowercase().as_str())
                        .is_some_and(|h| h.quarantined)
            }
        }
    }

    /// Number of quarantined hosts.
    pub fn quarantined_hosts(&self) -> usize {
        self.health.values().filter(|h| h.quarantined).count()
    }

    fn folded(host: &str) -> String {
        host.to_ascii_lowercase()
    }

    /// Counts one attempt on `host`; true when the rate limiter fires.
    fn rate_limited(&mut self, limit: Option<RateLimit>, host: &str) -> bool {
        let Some(limit) = limit else { return false };
        let n = self.attempts.entry(Self::folded(host)).or_insert(0);
        *n += 1;
        *n % limit.period == 0
    }

    /// Records the delivered outcome for the breaker; returns true when
    /// this outcome newly quarantined the host.
    fn record(&mut self, host: &str, hard_failure: bool, threshold: u32) -> bool {
        if threshold == 0 {
            return false;
        }
        let h = self.health.entry(Self::folded(host)).or_default();
        if hard_failure {
            h.fails += 1;
            if !h.quarantined && h.fails >= threshold {
                h.quarantined = true;
                return true;
            }
        } else {
            h.fails = 0;
        }
        false
    }
}

/// The final answer of one hazard-aware GET with its cumulative cost.
pub(crate) struct DispatchOutcome {
    pub answer: Fetched,
    /// GET attempts charged (0 for a quarantine refusal — no origin
    /// contact happened).
    pub gets: u64,
    /// Wire bytes across all attempts (timeout-truncated attempts charge
    /// only what fit the window).
    pub wire: u64,
    /// Simulated delivery instant.
    pub arrival: f64,
}

/// Everything [`dispatch_hazard_get`] needs from a transport backend. Both
/// backends pass their own gate shard; the loop stays the single place
/// where retry, backoff, hazard and breaker semantics live.
pub(crate) struct DispatchCtx<'c, 'a> {
    pub server: &'a (dyn crate::server::HttpServer + 'a),
    pub policy: &'c sb_webgraph::mime::MimePolicy,
    pub politeness: &'c Politeness,
    pub gates: &'c mut crate::transport::GateTable,
    pub hazards: &'c HazardPolicy,
    pub retry: &'c RetryPolicy,
    pub state: &'c mut HazardState,
}

/// Executes one GET under the hazard and retry policies: dispatches
/// through the politeness gate starting no earlier than `ready_at`,
/// retries retryable answers (5xx, 429, timeout) with capped jittered
/// backoff *behind* the gate, and maintains the circuit breaker. See the
/// module docs for the simulated-time semantics.
pub(crate) fn dispatch_hazard_get(ctx: &mut DispatchCtx<'_, '_>, url: &str, ready_at: f64) -> DispatchOutcome {
    let host = host_of(url);
    if ctx.state.is_quarantined(host) {
        return DispatchOutcome {
            answer: synthetic(url, STATUS_QUARANTINED, 0),
            gets: 0,
            wire: 0,
            arrival: ready_at,
        };
    }
    let mut gets = 0u64;
    let mut wire = 0u64;
    let mut ready_at = ready_at;
    loop {
        gets += 1;
        let rate_limited = ctx.state.rate_limited(ctx.hazards.rate_limit, host);
        let mut f = if rate_limited {
            synthetic(url, 429, RATE_LIMIT_WIRE)
        } else {
            crate::client::settle_get(ctx.server.get(url), ctx.policy)
        };
        let eff = ctx.hazards.effective_politeness(ctx.politeness, host);
        let (start, base_arrival) = ctx.gates.dispatch(&eff, url, ready_at, f.wire_bytes);
        let tail = ctx.hazards.tail_latency(url, gets);
        let mut arrival = base_arrival + tail;
        // Timeout: service time is transfer + tail (the gate delay is
        // spacing, not connection time). Truncate the attempt at the
        // abort instant and charge only the bytes that fit.
        if let Some(to) = ctx.hazards.timeout_secs {
            let service = arrival - start - eff.delay_secs;
            if service > to {
                let got = ((to - tail).max(0.0) * eff.bytes_per_sec) as u64;
                let got = got.min(f.wire_bytes);
                f = synthetic(url, STATUS_TIMEOUT, got);
                arrival = start + eff.delay_secs + to;
            }
        }
        wire += f.wire_bytes;
        let retryable = (500..600).contains(&f.status) || f.status == 429;
        if retryable && gets <= u64::from(ctx.retry.max_retries) {
            // The failure is observed at its arrival; the retry queues
            // behind the gate no earlier than arrival + backoff.
            let retry_after = (f.status == 429)
                .then(|| ctx.hazards.rate_limit.map(|l| l.retry_after_secs))
                .flatten();
            ready_at = arrival + ctx.retry.backoff(url, gets, retry_after);
            continue;
        }
        ctx.state.record(host, retryable, ctx.retry.quarantine_after);
        f.attempts = gets as u32;
        return DispatchOutcome { answer: f, gets, wire, arrival };
    }
}

/// A transport-synthesised answer (429 / timeout / quarantine): no body,
/// no MIME, `wire` bytes charged.
fn synthetic(_url: &str, status: u16, wire: u64) -> Fetched {
    Fetched {
        status,
        mime: None,
        location: None,
        body: Body::empty(),
        interrupted: false,
        wire_bytes: wire,
        attempts: 1,
    }
}

/// FNV-1a over `text`, folded into `seed` and finished with splitmix64.
fn mix(seed: u64, text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in [0, 1) from a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inert() {
        let hz = HazardPolicy::default();
        let pol = Politeness::default();
        let eff = hz.effective_politeness(&pol, "a.example");
        assert_eq!(eff.bytes_per_sec, pol.bytes_per_sec);
        assert_eq!(hz.tail_latency("https://a.example/x", 1), 0.0);
        assert!(hz.timeout_secs.is_none() && hz.rate_limit.is_none());
    }

    #[test]
    fn legacy_retry_policy_has_zero_backoff() {
        let r = RetryPolicy::retries(3);
        for attempt in 1..=3 {
            assert_eq!(r.backoff("https://a.example/x", attempt, None), 0.0);
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryPolicy::retries(8).with_backoff(1.0, 5.0);
        let b: Vec<f64> = (1..=5).map(|a| r.backoff("u", a, None)).collect();
        assert_eq!(b, vec![1.0, 2.0, 4.0, 5.0, 5.0]);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let r = RetryPolicy::retries(4).with_backoff(2.0, 60.0).with_jitter(0.5, 99);
        let a = r.backoff("https://a.example/x", 2, None);
        let b = r.backoff("https://a.example/x", 2, None);
        assert_eq!(a, b, "jitter must replay");
        assert!(a >= 2.0 && a <= 6.0, "jittered 4 s step within ±50 %: {a}");
        let other = r.backoff("https://a.example/y", 2, None);
        assert_ne!(a, other, "distinct URLs draw distinct jitter");
    }

    #[test]
    fn retry_after_floors_the_backoff() {
        let r = RetryPolicy::retries(2).with_backoff(0.5, 4.0);
        assert_eq!(r.backoff("u", 1, Some(30.0)), 30.0);
        assert_eq!(r.backoff("u", 1, None), 0.5);
    }

    #[test]
    fn breaker_trips_after_threshold_and_resets_on_success() {
        let mut s = HazardState::default();
        assert!(!s.record("h.example", true, 3));
        assert!(!s.record("h.example", true, 3));
        s.record("h.example", false, 3); // success resets
        assert!(!s.record("h.example", true, 3));
        assert!(!s.record("h.example", true, 3));
        assert!(s.record("h.example", true, 3), "third consecutive failure trips");
        assert!(s.is_quarantined("h.example"));
        assert!(s.is_quarantined("H.Example"), "breaker keys are case-folded");
        assert_eq!(s.quarantined_hosts(), 1);
    }

    #[test]
    fn tail_latency_is_pareto_with_minimum_scale() {
        let hz = HazardPolicy::seeded(7)
            .with_tail(TailLatency { prob: 1.0, scale_secs: 2.0, alpha: 1.5 });
        for i in 1..50u64 {
            let t = hz.tail_latency(&format!("https://a.example/p{i}"), 1);
            assert!(t >= 2.0, "Pareto draws never undershoot the scale: {t}");
        }
        let a = hz.tail_latency("https://a.example/p1", 1);
        assert_eq!(a, hz.tail_latency("https://a.example/p1", 1), "draws replay");
    }

    #[test]
    fn bandwidth_caps_fold_host_case() {
        let hz = HazardPolicy::default().cap_host_bandwidth("Slow.Example", 100.0);
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e6 };
        assert_eq!(hz.effective_politeness(&pol, "slow.example").bytes_per_sec, 100.0);
        assert_eq!(hz.effective_politeness(&pol, "SLOW.example").bytes_per_sec, 100.0);
        assert_eq!(hz.effective_politeness(&pol, "fast.example").bytes_per_sec, 1e6);
    }
}
