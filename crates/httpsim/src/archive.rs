//! On-disk archive of fetched resources (a WARC-lite).
//!
//! The paper's reproducibility kit persists every fetched resource (URL,
//! status, headers, body) in a local database so crawls replay offline
//! (Sec 4.4 / Artifacts). This module gives the [`crate::ReplayStore`] a
//! durable form: a simple length-prefixed binary record format with
//! per-record CRC-32 integrity, stream-writable and stream-readable, so
//! multi-week crawls can checkpoint and resume.
//!
//! ```text
//! archive := magic "SBA1" ++ u32 version ++ record*
//! record  := u32 url_len ++ url
//!          ++ u16 status
//!          ++ u8 flags            (1 = content_type, 2 = content_length,
//!                                  4 = location)
//!          ++ [u32 len ++ bytes]  content_type, if flagged
//!          ++ [u64]               content_length, if flagged
//!          ++ [u32 len ++ bytes]  location, if flagged
//!          ++ u64 body_len ++ body
//!          ++ u32 crc32           (over everything above, per record)
//! ```
//!
//! All integers are little-endian.

use crate::response::{Headers, Response};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"SBA1";
const VERSION: u32 = 1;
/// Upper bound accepted for a single stored string (sanity check against
/// corrupt length prefixes).
const MAX_STRING: u32 = 1 << 20;
/// Upper bound accepted for one body (64 MiB, above the generator's cap).
const MAX_BODY: u64 = 64 << 20;

/// Errors reading or writing an archive.
#[derive(Debug)]
pub enum ArchiveError {
    Io(io::Error),
    /// Not an archive, or an unsupported version.
    BadHeader,
    /// A record's CRC did not match (record index reported).
    Corrupt { record: usize },
    /// The stream ended mid-record (record index reported).
    Truncated { record: usize },
    /// A length prefix exceeded the sanity bounds.
    Oversized { record: usize },
    /// Stored bytes were not valid UTF-8 where a string was expected.
    BadString { record: usize },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::BadHeader => f.write_str("not an sbcrawl archive (bad magic/version)"),
            ArchiveError::Corrupt { record } => write!(f, "CRC mismatch in record {record}"),
            ArchiveError::Truncated { record } => write!(f, "archive truncated in record {record}"),
            ArchiveError::Oversized { record } => {
                write!(f, "record {record} declares an implausible length")
            }
            ArchiveError::BadString { record } => {
                write!(f, "record {record} contains non-UTF-8 text")
            }
        }
    }
}

impl std::error::Error for ArchiveError {}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming archive writer.
pub struct ArchiveWriter<W: Write> {
    out: W,
    records: usize,
}

impl<W: Write> ArchiveWriter<W> {
    pub fn new(mut out: W) -> Result<Self, ArchiveError> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(ArchiveWriter { out, records: 0 })
    }

    /// Appends one (URL, response) record.
    pub fn write(&mut self, url: &str, response: &Response) -> Result<(), ArchiveError> {
        let mut buf: Vec<u8> = Vec::with_capacity(64 + url.len() + response.body.len());
        buf.extend_from_slice(&(url.len() as u32).to_le_bytes());
        buf.extend_from_slice(url.as_bytes());
        buf.extend_from_slice(&response.status.to_le_bytes());
        let h = &response.headers;
        let flags: u8 = u8::from(h.content_type.is_some())
            | (u8::from(h.content_length.is_some()) << 1)
            | (u8::from(h.location.is_some()) << 2);
        buf.push(flags);
        if let Some(ct) = &h.content_type {
            buf.extend_from_slice(&(ct.len() as u32).to_le_bytes());
            buf.extend_from_slice(ct.as_bytes());
        }
        if let Some(cl) = h.content_length {
            buf.extend_from_slice(&cl.to_le_bytes());
        }
        if let Some(loc) = &h.location {
            buf.extend_from_slice(&(loc.len() as u32).to_le_bytes());
            buf.extend_from_slice(loc.as_bytes());
        }
        buf.extend_from_slice(&(response.body.len() as u64).to_le_bytes());
        buf.extend_from_slice(&response.body);
        let crc = crc32(&buf);
        self.out.write_all(&buf)?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, ArchiveError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming archive reader: an iterator over `(url, Response)` records.
pub struct ArchiveReader<R: Read> {
    input: R,
    record: usize,
    done: bool,
}

impl<R: Read> ArchiveReader<R> {
    pub fn new(mut input: R) -> Result<Self, ArchiveError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic).map_err(|_| ArchiveError::BadHeader)?;
        let mut ver = [0u8; 4];
        input.read_exact(&mut ver).map_err(|_| ArchiveError::BadHeader)?;
        if &magic != MAGIC || u32::from_le_bytes(ver) != VERSION {
            return Err(ArchiveError::BadHeader);
        }
        Ok(ArchiveReader { input, record: 0, done: false })
    }

    fn read_record(&mut self) -> Result<Option<(String, Response)>, ArchiveError> {
        let rec = self.record;
        // Every read feeds `raw` so the CRC covers exactly what was stored.
        let mut raw: Vec<u8> = Vec::new();

        let mut first = [0u8; 4];
        match read_exact_or_eof(&mut self.input, &mut first) {
            ReadOutcome::Eof => return Ok(None),
            ReadOutcome::Partial => return Err(ArchiveError::Truncated { record: rec }),
            ReadOutcome::Full => {}
        }
        raw.extend_from_slice(&first);
        let url_len = u32::from_le_bytes(first);
        if url_len > MAX_STRING {
            return Err(ArchiveError::Oversized { record: rec });
        }
        let url = self.read_str(url_len as usize, &mut raw, rec)?;

        let status = u16::from_le_bytes(self.take::<2>(&mut raw, rec)?);
        let flags = self.take::<1>(&mut raw, rec)?[0];
        let content_type = if flags & 1 != 0 {
            let len = u32::from_le_bytes(self.take::<4>(&mut raw, rec)?);
            if len > MAX_STRING {
                return Err(ArchiveError::Oversized { record: rec });
            }
            Some(self.read_str(len as usize, &mut raw, rec)?)
        } else {
            None
        };
        let content_length = if flags & 2 != 0 {
            Some(u64::from_le_bytes(self.take::<8>(&mut raw, rec)?))
        } else {
            None
        };
        let location = if flags & 4 != 0 {
            let len = u32::from_le_bytes(self.take::<4>(&mut raw, rec)?);
            if len > MAX_STRING {
                return Err(ArchiveError::Oversized { record: rec });
            }
            Some(self.read_str(len as usize, &mut raw, rec)?)
        } else {
            None
        };
        let body_len = u64::from_le_bytes(self.take::<8>(&mut raw, rec)?);
        if body_len > MAX_BODY {
            return Err(ArchiveError::Oversized { record: rec });
        }
        let mut body = vec![0u8; body_len as usize];
        self.input
            .read_exact(&mut body)
            .map_err(|_| ArchiveError::Truncated { record: rec })?;
        raw.extend_from_slice(&body);

        let mut crc_bytes = [0u8; 4];
        self.input
            .read_exact(&mut crc_bytes)
            .map_err(|_| ArchiveError::Truncated { record: rec })?;
        if u32::from_le_bytes(crc_bytes) != crc32(&raw) {
            return Err(ArchiveError::Corrupt { record: rec });
        }

        self.record += 1;
        Ok(Some((
            url,
            Response {
                status,
                headers: Headers { content_type, content_length, location },
                body: body.into(),
            },
        )))
    }

    fn take<const N: usize>(&mut self, raw: &mut Vec<u8>, rec: usize) -> Result<[u8; N], ArchiveError> {
        let mut buf = [0u8; N];
        self.input
            .read_exact(&mut buf)
            .map_err(|_| ArchiveError::Truncated { record: rec })?;
        raw.extend_from_slice(&buf);
        Ok(buf)
    }

    fn read_str(&mut self, len: usize, raw: &mut Vec<u8>, rec: usize) -> Result<String, ArchiveError> {
        let mut buf = vec![0u8; len];
        self.input
            .read_exact(&mut buf)
            .map_err(|_| ArchiveError::Truncated { record: rec })?;
        raw.extend_from_slice(&buf);
        String::from_utf8(buf).map_err(|_| ArchiveError::BadString { record: rec })
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// Distinguishes a clean EOF (no bytes) from a mid-field truncation.
fn read_exact_or_eof<R: Read>(input: &mut R, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match input.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 { ReadOutcome::Eof } else { ReadOutcome::Partial };
            }
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Partial,
        }
    }
    ReadOutcome::Full
}

impl<R: Read> Iterator for ArchiveReader<R> {
    type Item = Result<(String, Response), ArchiveError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(item)) => Some(Ok(item)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::error_response;

    fn sample() -> Vec<(String, Response)> {
        vec![
            (
                "https://www.s.example/".to_owned(),
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some("text/html; charset=utf-8".to_owned()),
                        content_length: Some(12),
                        location: None,
                    },
                    body: b"<html></html>"[..12].to_vec().into(),
                },
            ),
            (
                "https://www.s.example/data.csv".to_owned(),
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some("text/csv".to_owned()),
                        content_length: Some(9),
                        location: None,
                    },
                    body: b"a,b\n1,2\n\n".to_vec().into(),
                },
            ),
            ("https://www.s.example/gone".to_owned(), error_response(404)),
            (
                "https://www.s.example/moved".to_owned(),
                Response {
                    status: 301,
                    headers: Headers {
                        content_type: None,
                        content_length: Some(0),
                        location: Some("https://www.s.example/new".to_owned()),
                    },
                    body: crate::response::Body::empty(),
                },
            ),
            (
                "https://www.s.example/empty".to_owned(),
                Response {
                    status: 204,
                    headers: Headers { content_type: None, content_length: None, location: None },
                    body: crate::response::Body::empty(),
                },
            ),
        ]
    }

    fn write_all(records: &[(String, Response)]) -> Vec<u8> {
        let mut w = ArchiveWriter::new(Vec::new()).unwrap();
        for (url, r) in records {
            w.write(url, r).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let records = sample();
        let bytes = write_all(&records);
        let back: Vec<(String, Response)> =
            ArchiveReader::new(&bytes[..]).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), records.len());
        for ((u1, r1), (u2, r2)) in records.iter().zip(&back) {
            assert_eq!(u1, u2);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn crc_detects_body_flip() {
        let bytes = write_all(&sample());
        for victim in [bytes.len() / 2, bytes.len() - 6] {
            let mut evil = bytes.clone();
            evil[victim] ^= 0x40;
            let result: Result<Vec<_>, _> = ArchiveReader::new(&evil[..]).unwrap().collect();
            assert!(result.is_err(), "flipping byte {victim} must be detected");
        }
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let bytes = write_all(&sample());
        // Cut in the middle of the last record.
        let cut = &bytes[..bytes.len() - 3];
        let items: Vec<_> = ArchiveReader::new(cut).unwrap().collect();
        let (ok, err): (Vec<_>, Vec<_>) = items.into_iter().partition(Result::is_ok);
        assert_eq!(err.len(), 1, "exactly one truncation error");
        assert!(ok.len() < sample().len());
        match err[0].as_ref().unwrap_err() {
            ArchiveError::Truncated { .. } | ArchiveError::Corrupt { .. } => {}
            other => panic!("expected truncation/corruption, got {other}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(ArchiveReader::new(&b"NOPE\x01\x00\x00\x00"[..]), Err(ArchiveError::BadHeader)));
        assert!(matches!(ArchiveReader::new(&b"SB"[..]), Err(ArchiveError::BadHeader)));
        let mut wrong_version = write_all(&[]);
        wrong_version[4] = 9;
        assert!(matches!(ArchiveReader::new(&wrong_version[..]), Err(ArchiveError::BadHeader)));
    }

    #[test]
    fn empty_archive_yields_nothing() {
        let bytes = write_all(&[]);
        assert_eq!(ArchiveReader::new(&bytes[..]).unwrap().count(), 0);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = write_all(&sample());
        // Overwrite the first record's url_len with something absurd.
        bytes[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        let first = ArchiveReader::new(&bytes[..]).unwrap().next().unwrap();
        assert!(matches!(first, Err(ArchiveError::Oversized { record: 0 })));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_counts_records() {
        let mut w = ArchiveWriter::new(Vec::new()).unwrap();
        assert_eq!(w.records(), 0);
        for (url, r) in sample() {
            w.write(&url, &r).unwrap();
        }
        assert_eq!(w.records(), 5);
    }
}
