//! Failure injection: flaky origins and robot traps.
//!
//! Real crawls meet transient 5xx bursts and infinitely deep URL spaces
//! (calendars, session ids — the "robot traps" the paper mentions when
//! dismissing DFS for exhaustive crawling, Sec 4.3). These wrappers
//! reproduce both, deterministically, so engine robustness is testable:
//! the crawler must terminate, never refetch, and degrade gracefully.

use crate::response::{error_response, HeadResponse, Headers, Response};
use crate::server::HttpServer;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Wraps a server so that a deterministic, URL-and-attempt-dependent subset
/// of requests fails with HTTP 503. With `recoverable` set, only the first
/// attempt on an unlucky URL fails (a transient blip); otherwise every
/// attempt fails (a hard outage of that URL).
pub struct FlakyServer<S> {
    inner: S,
    /// Probability that a URL is unlucky, in [0, 1].
    fail_prob: f64,
    seed: u64,
    recoverable: bool,
    protected: Option<String>,
    injected: AtomicU64,
    /// URLs already contacted, for `recoverable` mode (see
    /// [`FlakyServer::seen_before`]).
    seen: Mutex<HashSet<String>>,
}

impl<S: HttpServer> FlakyServer<S> {
    pub fn new(inner: S, fail_prob: f64, seed: u64) -> Self {
        FlakyServer {
            inner,
            fail_prob: fail_prob.clamp(0.0, 1.0),
            seed,
            recoverable: false,
            protected: None,
            injected: AtomicU64::new(0),
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// Makes failures transient: retrying the same URL succeeds.
    pub fn recoverable(mut self) -> Self {
        self.recoverable = true;
        self
    }

    /// Exempts one URL from injection (typically the crawl root — entry
    /// points are monitored and fixed fast in practice).
    pub fn protecting(mut self, url: &str) -> Self {
        self.protected = Some(url.to_owned());
        self
    }

    /// How many 503s were injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn unlucky(&self, url: &str) -> bool {
        // splitmix64 over the FNV of the URL: uniform in [0, 1), stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for &b in url.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.fail_prob
    }

    fn inject(&self, url: &str, first_attempt: bool) -> bool {
        if self.protected.as_deref() == Some(url) || !self.unlucky(url) {
            return false;
        }
        if self.recoverable && !first_attempt {
            return false;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl<S: HttpServer> HttpServer for FlakyServer<S> {
    fn head(&self, url: &str) -> HeadResponse {
        if self.inject(url, !self.seen_before(url)) {
            error_response(503).head()
        } else {
            self.inner.head(url)
        }
    }

    fn get(&self, url: &str) -> Response {
        if self.inject(url, !self.seen_before(url)) {
            error_response(503)
        } else {
            self.inner.get(url)
        }
    }
}

impl<S: HttpServer> FlakyServer<S> {
    /// Tracks first-contact per URL, exactly. This used to be a fixed
    /// 4096-slot fingerprint table whose slot evictions could misclassify
    /// a first contact as a retry (and vice versa) on crawls with more
    /// than 4096 distinct URLs — turning `recoverable` blips back into
    /// repeat 503s. Injection decisions must be collision-safe or the
    /// retry-accounting invariants pinned by the conformance suites
    /// (`get_requests == delivered + injected()`) silently break at
    /// scale, so the full URL set is stored.
    fn seen_before(&self, url: &str) -> bool {
        let mut seen = self.seen.lock().expect("seen set is never poisoned");
        !seen.insert(url.to_owned())
    }
}

/// An infinite "calendar" trap: every URL under `/trap/` is a valid HTML
/// page linking to two deeper trap pages — a URL space with no bottom, the
/// canonical DFS robot trap. The root serves one entry page linking into
/// the trap and to one real-looking target, so crawlers have something to
/// find before falling in.
pub struct TrapServer {
    origin: String,
}

impl TrapServer {
    /// `origin` like `https://trap.example.org` (no trailing slash).
    pub fn new(origin: impl Into<String>) -> Self {
        let mut origin = origin.into();
        while origin.ends_with('/') {
            origin.pop();
        }
        TrapServer { origin }
    }

    pub fn root_url(&self) -> String {
        format!("{}/", self.origin)
    }

    fn html(&self, body_inner: String) -> Response {
        let body = format!(
            "<!DOCTYPE html><html><head><title>calendar</title></head><body>{body_inner}</body></html>"
        )
        .into_bytes();
        Response {
            status: 200,
            headers: Headers {
                content_type: Some("text/html; charset=utf-8".to_owned()),
                content_length: Some(body.len() as u64),
                location: None,
            },
            body: body.into(),
        }
    }

    fn respond(&self, url: &str) -> Response {
        let Some(path) = url.strip_prefix(&self.origin) else {
            return error_response(404);
        };
        let path = path.split(['?', '#']).next().unwrap_or("");
        if path.is_empty() || path == "/" {
            return self.html(format!(
                "<div id=\"cal\"><a href=\"{o}/trap/1\">next month</a></div>\
                 <div class=\"downloads\"><a href=\"{o}/report.csv\">report</a></div>",
                o = self.origin
            ));
        }
        if path == "/report.csv" {
            let body = b"year,value\n2026,1\n".to_vec();
            return Response {
                status: 200,
                headers: Headers {
                    content_type: Some("text/csv".to_owned()),
                    content_length: Some(body.len() as u64),
                    location: None,
                },
                body: body.into(),
            };
        }
        if let Some(rest) = path.strip_prefix("/trap/") {
            // Any numeric-ish tail is a valid page pointing deeper.
            let n: u64 = rest
                .split('/')
                .next_back()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            return self.html(format!(
                "<ul class=\"cal\">\
                 <li><a href=\"{o}/trap/{a}\">next</a></li>\
                 <li><a href=\"{o}/trap/{b}\">skip ahead</a></li>\
                 </ul>",
                o = self.origin,
                a = n.wrapping_add(1),
                // Wrapping keeps the URL space effectively bottomless even
                // for crawlers that always take the doubling branch.
                b = n.wrapping_mul(2).wrapping_add(3),
            ));
        }
        error_response(404)
    }
}

impl HttpServer for TrapServer {
    fn head(&self, url: &str) -> HeadResponse {
        self.respond(url).head()
    }

    fn get(&self, url: &str) -> Response {
        self.respond(url)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, SiteSpec};

    #[test]
    fn flaky_is_deterministic_per_url() {
        let site = build_site(&SiteSpec::demo(100), 3);
        let urls: Vec<String> = site.pages().iter().map(|p| p.url.clone()).take(50).collect();
        let flaky = FlakyServer::new(SiteServer::new(site), 0.3, 7);
        let first: Vec<u16> = urls.iter().map(|u| flaky.get(u).status).collect();
        let second: Vec<u16> = urls.iter().map(|u| flaky.get(u).status).collect();
        assert_eq!(first, second, "hard failures are stable per URL");
        assert!(flaky.injected() > 0, "30 % of 50 URLs should include failures");
        assert!(first.contains(&200), "and some successes");
    }

    #[test]
    fn fail_prob_zero_is_transparent() {
        let site = build_site(&SiteSpec::demo(60), 3);
        let url = site.page(site.root()).url.clone();
        let flaky = FlakyServer::new(SiteServer::new(site), 0.0, 7);
        assert_eq!(flaky.get(&url).status, 200);
        assert_eq!(flaky.injected(), 0);
    }

    #[test]
    fn fail_prob_one_kills_everything() {
        let site = build_site(&SiteSpec::demo(60), 3);
        let url = site.page(site.root()).url.clone();
        let flaky = FlakyServer::new(SiteServer::new(site), 1.0, 7);
        assert_eq!(flaky.get(&url).status, 503);
        assert_eq!(flaky.head(&url).status, 503);
    }

    #[test]
    fn recoverable_first_contact_is_exact_beyond_4096_urls() {
        // Regression: the old 4096-slot fingerprint table evicted entries
        // on large URL sets, so a revisited URL could look like a first
        // contact again (re-injecting a 503 a retry should have cleared).
        // Every URL must fail exactly its first attempt and recover on
        // the second, no matter how many distinct URLs came between.
        struct Ok200;
        impl HttpServer for Ok200 {
            fn head(&self, _url: &str) -> HeadResponse {
                self.get("").head()
            }
            fn get(&self, _url: &str) -> Response {
                let body = b"ok".to_vec();
                Response {
                    status: 200,
                    headers: Headers {
                        content_type: Some("text/html".to_owned()),
                        content_length: Some(body.len() as u64),
                        location: None,
                    },
                    body: body.into(),
                }
            }
        }
        let flaky = FlakyServer::new(Ok200, 1.0, 11).recoverable();
        let urls: Vec<String> =
            (0..5000).map(|i| format!("https://big.example.org/page/{i}")).collect();
        for u in &urls {
            assert_eq!(flaky.get(u).status, 503, "first contact fails: {u}");
        }
        for u in &urls {
            assert_eq!(flaky.get(u).status, 200, "retry after 5000 URLs recovers: {u}");
        }
        assert_eq!(flaky.injected(), 5000, "exactly one injection per URL");
    }

    #[test]
    fn trap_pages_always_link_deeper() {
        let trap = TrapServer::new("https://trap.example.org");
        let r = trap.get("https://trap.example.org/trap/41");
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body.to_vec()).unwrap();
        assert!(body.contains("/trap/42"));
        assert!(body.contains("/trap/85"));
    }

    #[test]
    fn trap_root_offers_one_target() {
        let trap = TrapServer::new("https://trap.example.org/");
        let r = trap.get(&trap.root_url());
        assert_eq!(r.status, 200);
        let csv = trap.get("https://trap.example.org/report.csv");
        assert_eq!(csv.headers.content_type.as_deref(), Some("text/csv"));
    }

    #[test]
    fn trap_foreign_urls_404() {
        let trap = TrapServer::new("https://trap.example.org");
        assert_eq!(trap.get("https://elsewhere.example/x").status, 404);
        assert_eq!(trap.get("https://trap.example.org/unknown").status, 404);
    }
}
