//! XML sitemaps: parsing, recursive fetching and an origin-side overlay.
//!
//! Sitemaps are the complement of focused crawling for *cooperative*
//! sites: a publisher that lists its resources in `/sitemap.xml` lets a
//! crawler seed its frontier directly instead of learning where targets
//! live. The harness uses this to quantify how much of SB-CLASSIFIER's
//! advantage a sitemap would replace — and how the crawler still wins on
//! the (many) sites whose sitemaps are partial or stale.
//!
//! Only the subset of the sitemaps.org protocol that crawlers consume is
//! implemented: `<urlset>` with `<url><loc>` (+ optional `<lastmod>`), and
//! `<sitemapindex>` with `<sitemap><loc>` nesting.

use crate::response::{HeadResponse, Headers, Response};
use crate::server::HttpServer;
use sb_webgraph::url::Url;

/// One `<url>` entry of a sitemap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitemapEntry {
    pub loc: String,
    pub lastmod: Option<String>,
}

/// A parsed sitemap file: leaf entries and/or child sitemap locations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sitemap {
    pub entries: Vec<SitemapEntry>,
    /// `<sitemapindex>` children, to be fetched recursively.
    pub children: Vec<String>,
}

/// Parses sitemap XML. Tolerant: unknown elements are skipped, entity
/// escapes (`&amp;` etc.) are decoded in `<loc>`, and malformed input
/// yields whatever well-formed entries it contains (never an error —
/// real-world sitemaps are as messy as robots.txt files).
pub fn parse_sitemap(xml: &str) -> Sitemap {
    let mut out = Sitemap::default();
    let mut pos = 0usize;
    // A tiny element scanner: find <tag ...>text</tag> pairs we care about.
    while let Some((tag, text, next)) = next_element(xml, pos) {
        pos = next;
        match tag.as_str() {
            "url" => {
                let inner = parse_url_block(&text);
                if let Some(e) = inner {
                    out.entries.push(e);
                }
            }
            "sitemap" => {
                if let Some(loc) = extract_child(&text, "loc") {
                    out.children.push(unescape(&loc));
                }
            }
            _ => {}
        }
    }
    out
}

fn parse_url_block(block: &str) -> Option<SitemapEntry> {
    let loc = extract_child(block, "loc")?;
    let loc = unescape(loc.trim());
    if loc.is_empty() {
        return None;
    }
    Some(SitemapEntry {
        loc,
        lastmod: extract_child(block, "lastmod").map(|s| s.trim().to_owned()),
    })
}

/// Finds the next `<tag>…</tag>` element at or after `from`; returns the
/// tag name, inner text and the scan position after the element.
fn next_element(xml: &str, from: usize) -> Option<(String, String, usize)> {
    let bytes = xml.as_bytes();
    let mut i = from;
    while i < bytes.len() {
        let open = xml[i..].find('<')? + i;
        let close = xml[open..].find('>')? + open;
        let raw = &xml[open + 1..close];
        // Skip closing tags, comments, declarations, self-closing tags.
        if raw.starts_with(['/', '!', '?']) || raw.ends_with('/') {
            i = close + 1;
            continue;
        }
        let name = raw.split_whitespace().next().unwrap_or("").to_ascii_lowercase();
        if name == "url" || name == "sitemap" {
            let end_tag = format!("</{name}");
            let Some(end) = xml[close + 1..].to_ascii_lowercase().find(&end_tag) else {
                return None; // truncated element: stop scanning
            };
            let inner = xml[close + 1..close + 1 + end].to_owned();
            let after = close + 1 + end + end_tag.len();
            let resume = xml[after..].find('>').map_or(xml.len(), |p| after + p + 1);
            return Some((name, inner, resume));
        }
        i = close + 1;
    }
    None
}

/// Inner text of the first `<child>…</child>` inside `block`.
fn extract_child(block: &str, child: &str) -> Option<String> {
    let lower = block.to_ascii_lowercase();
    let open = format!("<{child}");
    let start = lower.find(&open)?;
    let text_start = block[start..].find('>')? + start + 1;
    let close = format!("</{child}");
    let end = lower[text_start..].find(&close)? + text_start;
    Some(block[text_start..end].to_owned())
}

fn unescape(s: &str) -> String {
    s.replace("&amp;", "&")
        .replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
}

/// Renders sitemap XML for a list of URLs (escaped), chunking into a
/// `<sitemapindex>` when `urls` exceeds the protocol's 50 000-entry cap
/// (here configurable for tests via `per_file`).
pub fn render_sitemaps(origin: &str, urls: &[String], per_file: usize) -> Vec<(String, String)> {
    let per_file = per_file.max(1);
    let escape = |s: &str| {
        s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
    };
    let leaf = |urls: &[String]| {
        let mut x = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<urlset>\n");
        for u in urls {
            x.push_str(&format!("  <url><loc>{}</loc></url>\n", escape(u)));
        }
        x.push_str("</urlset>\n");
        x
    };
    if urls.len() <= per_file {
        return vec![("/sitemap.xml".to_owned(), leaf(urls))];
    }
    let mut files = Vec::new();
    let mut index =
        String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<sitemapindex>\n");
    for (i, chunk) in urls.chunks(per_file).enumerate() {
        let path = format!("/sitemap-{i}.xml");
        index.push_str(&format!("  <sitemap><loc>{origin}{path}</loc></sitemap>\n"));
        files.push((path, leaf(chunk)));
    }
    index.push_str("</sitemapindex>\n");
    files.push(("/sitemap.xml".to_owned(), index));
    files
}

/// Fetches `{origin}/sitemap.xml` and resolves one level of
/// `<sitemapindex>` nesting; returns all listed URLs, in file order.
pub fn fetch_sitemap_urls(server: &dyn HttpServer, root_url: &str) -> Vec<String> {
    let Ok(root) = Url::parse(root_url) else { return Vec::new() };
    let Ok(sm_url) = root.join("/sitemap.xml") else { return Vec::new() };
    let mut out = Vec::new();
    let top = server.get(&sm_url.as_string());
    if top.status != 200 {
        return out;
    }
    let top = parse_sitemap(&String::from_utf8_lossy(&top.body));
    out.extend(top.entries.iter().map(|e| e.loc.clone()));
    for child in top.children.iter().take(64) {
        let r = server.get(child);
        if r.status != 200 {
            continue;
        }
        let leaf = parse_sitemap(&String::from_utf8_lossy(&r.body));
        out.extend(leaf.entries.into_iter().map(|e| e.loc));
    }
    out
}

/// Serves generated sitemap files over a wrapped server.
pub struct WithSitemap<S> {
    inner: S,
    /// (absolute URL, XML body) pairs.
    files: Vec<(String, String)>,
}

impl<S: HttpServer> WithSitemap<S> {
    /// Publishes `urls` as the site's sitemap (chunked at `per_file`).
    pub fn new(inner: S, root_url: &str, urls: &[String], per_file: usize) -> WithSitemap<S> {
        let origin = Url::parse(root_url)
            .map(|u| format!("{}://{}", u.scheme, u.host))
            .unwrap_or_default();
        let files = render_sitemaps(&origin, urls, per_file)
            .into_iter()
            .map(|(path, body)| (format!("{origin}{path}"), body))
            .collect();
        WithSitemap { inner, files }
    }

    fn serve(&self, url: &str) -> Option<Response> {
        let body = &self.files.iter().find(|(u, _)| u == url)?.1;
        let bytes = body.clone().into_bytes();
        Some(Response {
            status: 200,
            headers: Headers {
                content_type: Some("application/xml".to_owned()),
                content_length: Some(bytes.len() as u64),
                location: None,
            },
            body: bytes.into(),
        })
    }
}

impl<S: HttpServer> HttpServer for WithSitemap<S> {
    fn head(&self, url: &str) -> HeadResponse {
        match self.serve(url) {
            Some(r) => r.head(),
            None => self.inner.head(url),
        }
    }

    fn get(&self, url: &str) -> Response {
        self.serve(url).unwrap_or_else(|| self.inner.get(url))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, SiteSpec};

    const LEAF: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<urlset xmlns="http://www.sitemaps.org/schemas/sitemap/0.9">
  <url><loc>https://www.s.example/a</loc><lastmod>2026-01-01</lastmod></url>
  <url>
    <loc>https://www.s.example/b?x=1&amp;y=2</loc>
  </url>
  <url><priority>0.5</priority></url> <!-- no loc: dropped -->
</urlset>"#;

    #[test]
    fn parses_urlset_with_lastmod_and_entities() {
        let sm = parse_sitemap(LEAF);
        assert_eq!(sm.children.len(), 0);
        assert_eq!(sm.entries.len(), 2);
        assert_eq!(sm.entries[0].loc, "https://www.s.example/a");
        assert_eq!(sm.entries[0].lastmod.as_deref(), Some("2026-01-01"));
        assert_eq!(sm.entries[1].loc, "https://www.s.example/b?x=1&y=2");
        assert_eq!(sm.entries[1].lastmod, None);
    }

    #[test]
    fn parses_sitemapindex() {
        let xml = r#"<sitemapindex>
          <sitemap><loc>https://www.s.example/sitemap-0.xml</loc></sitemap>
          <sitemap><loc>https://www.s.example/sitemap-1.xml</loc></sitemap>
        </sitemapindex>"#;
        let sm = parse_sitemap(xml);
        assert_eq!(sm.entries.len(), 0);
        assert_eq!(sm.children.len(), 2);
    }

    #[test]
    fn tolerates_garbage() {
        for garbage in ["", "<urlset>", "not xml at all", "<url><loc></loc></url>", "<<<>>>"] {
            let sm = parse_sitemap(garbage);
            assert!(sm.entries.is_empty(), "garbage {garbage:?} produced {:?}", sm.entries);
        }
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let urls: Vec<String> =
            (0..7).map(|i| format!("https://www.s.example/p{i}?a=1&b=2")).collect();
        let files = render_sitemaps("https://www.s.example", &urls, 100);
        assert_eq!(files.len(), 1);
        let parsed = parse_sitemap(&files[0].1);
        let back: Vec<String> = parsed.entries.into_iter().map(|e| e.loc).collect();
        assert_eq!(back, urls);
    }

    #[test]
    fn render_chunks_into_index() {
        let urls: Vec<String> = (0..10).map(|i| format!("https://www.s.example/p{i}")).collect();
        let files = render_sitemaps("https://www.s.example", &urls, 4);
        // 3 leaves + 1 index.
        assert_eq!(files.len(), 4);
        let index = &files.last().unwrap().1;
        let parsed = parse_sitemap(index);
        assert_eq!(parsed.children.len(), 3);
    }

    #[test]
    fn overlay_serves_and_fetch_resolves_nesting() {
        let site = build_site(&SiteSpec::demo(150), 5);
        let root = site.page(site.root()).url.clone();
        let targets: Vec<String> = site
            .target_ids()
            .iter()
            .map(|&id| site.page(id).url.clone())
            .collect();
        let n = targets.len();
        assert!(n > 4, "demo site has targets");
        let server = WithSitemap::new(SiteServer::new(site), &root, &targets, 3);
        let urls = fetch_sitemap_urls(&server, &root);
        assert_eq!(urls.len(), n, "all chunks resolved through the index");
        assert_eq!(urls, targets);
        // Delegation intact.
        assert_eq!(server.get(&root).status, 200);
    }

    #[test]
    fn missing_sitemap_is_empty() {
        let site = build_site(&SiteSpec::demo(100), 5);
        let root = site.page(site.root()).url.clone();
        let server = SiteServer::new(site);
        assert!(fetch_sitemap_urls(&server, &root).is_empty());
    }
}
