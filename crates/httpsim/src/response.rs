//! HTTP message types for the simulated transport.
//!
//! Only what a crawler observes is modelled: status code, the three headers
//! that matter (`Content-Type`, `Content-Length`, `Location`) and the body.
//! Header wire size is estimated so that HEAD-request costs `c(u)` can be
//! accounted in volume mode (Sec 2.2: "much smaller than ω(u)").
//!
//! Bodies are [`Body`] — shared, immutable byte buffers — so a `Response`
//! clone (replay stores, archives, the server's render cache) is a pointer
//! copy, not a buffer copy.

use std::sync::Arc;

/// A response body: immutable shared bytes, cheap to clone.
///
/// Dereferences to `&[u8]`, so existing `&response.body` call sites keep
/// working. Construct from `Vec<u8>`, `&[u8]` or an existing `Arc<[u8]>`
/// (the latter is what the site server's render cache hands out — zero
/// copies per request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Body(Arc<[u8]>);

impl Body {
    /// The shared empty body.
    pub fn empty() -> Body {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Body(Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new()))))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl std::ops::Deref for Body {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Body {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body(Arc::from(v))
    }
}

impl From<&[u8]> for Body {
    fn from(v: &[u8]) -> Body {
        Body(Arc::from(v))
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(v: Arc<[u8]>) -> Body {
        Body(v)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Body {
        Body(Arc::from(s.into_bytes()))
    }
}

impl FromIterator<u8> for Body {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Body {
        Body(iter.into_iter().collect())
    }
}

/// Response headers (the crawler-relevant subset).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    pub content_type: Option<String>,
    pub content_length: Option<u64>,
    pub location: Option<String>,
}

impl Headers {
    /// Approximate on-the-wire size of the status line plus headers.
    pub fn wire_size(&self) -> u64 {
        let mut n = 96u64; // status line + date + server + connection
        if let Some(ct) = &self.content_type {
            n += 16 + ct.len() as u64;
        }
        if self.content_length.is_some() {
            n += 24;
        }
        if let Some(loc) = &self.location {
            n += 12 + loc.len() as u64;
        }
        n
    }
}

/// A HEAD response: status and headers only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeadResponse {
    pub status: u16,
    pub headers: Headers,
}

impl HeadResponse {
    pub fn wire_size(&self) -> u64 {
        self.headers.wire_size()
    }
}

/// A GET response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub headers: Headers,
    /// The body as delivered. Huge files are truncated to a cap; the
    /// *declared* `Content-Length` is authoritative for volume accounting.
    pub body: Body,
}

impl Response {
    /// Declared body size: `Content-Length` if present, else actual length.
    pub fn declared_len(&self) -> u64 {
        self.headers.content_length.unwrap_or(self.body.len() as u64)
    }

    /// Full wire size of the response (headers + declared body).
    pub fn wire_size(&self) -> u64 {
        self.headers.wire_size() + self.declared_len()
    }

    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.status)
    }

    pub fn is_error(&self) -> bool {
        self.status >= 400
    }

    pub fn head(&self) -> HeadResponse {
        HeadResponse { status: self.status, headers: self.headers.clone() }
    }
}

/// Builds a minimal 404/500-style response.
pub fn error_response(status: u16) -> Response {
    let body: Body = format!("<html><body><h1>{status}</h1></body></html>").into();
    Response {
        status,
        headers: Headers {
            content_type: Some("text/html".to_owned()),
            content_length: Some(body.len() as u64),
            location: None,
        },
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_length_wins_over_body() {
        let r = Response {
            status: 200,
            headers: Headers {
                content_type: Some("application/zip".into()),
                content_length: Some(10_000_000),
                location: None,
            },
            body: vec![0; 1024].into(),
        };
        assert_eq!(r.declared_len(), 10_000_000);
        assert!(r.wire_size() > 10_000_000);
    }

    #[test]
    fn status_categories() {
        assert!(error_response(404).is_error());
        assert!(error_response(500).is_error());
        let mut r = error_response(301);
        r.status = 301;
        assert!(r.is_redirect());
        r.status = 204;
        assert!(r.is_success());
    }

    #[test]
    fn head_carries_headers_not_body() {
        let r = error_response(404);
        let h = r.head();
        assert_eq!(h.status, 404);
        assert_eq!(h.headers, r.headers);
        assert!(h.wire_size() < r.wire_size());
    }

    #[test]
    fn wire_size_counts_location() {
        let with = Headers { location: Some("https://a.com/x".into()), ..Default::default() };
        let without = Headers::default();
        assert!(with.wire_size() > without.wire_size());
    }
}
