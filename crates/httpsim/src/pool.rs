//! The shared fleet transport pool: one bounded in-flight window
//! multiplexed across every host of a multi-site crawl (PR 5).
//!
//! PR 4's [`PipelinedTransport`](crate::transport::PipelinedTransport)
//! pipelines *within* one site, but a fleet built on it holds N isolated
//! windows: a site stalled behind its politeness gate cannot lend its
//! idle connection slots to anyone else. Production frontiers (BUbiNG's
//! massive-scale design, and every host-sharded multi-queue crawler
//! since) share one global fetch pool and shard only the *politeness*
//! state per host. [`SharedTransportPool`] reproduces that shape over the
//! simulation:
//!
//! * the pool owns the **global window** ([`SharedTransportPool::new`]'s
//!   `max_in_flight`) and the **shared simulated clock**; politeness
//!   state is **sharded per handle** — each site's `GateTable` (its
//!   hosts' gates plus any robots `Crawl-delay` override) is private to
//!   its handle, exactly as it is under per-site transports. Two sites
//!   therefore dispatch concurrently while each site's own dispatches
//!   stay politeness-spaced. (Sharding by handle rather than by raw
//!   hostname string is deliberate: generated sites reuse synthetic
//!   hostnames, and each fleet job is a distinct origin regardless of
//!   what its URL strings say — string-matching hosts across handles
//!   would falsely couple unrelated sites.);
//! * each site gets a [`PoolHandle`] ([`SharedTransportPool::handle`]) —
//!   a full [`Transport`] a [`CrawlSession`] can own without owning the
//!   pool. The handle carries the site's server, MIME policy, politeness
//!   model, gate shard and cost counters; submissions and deliveries go
//!   through the shared core;
//! * completion order is **deterministic across the whole fleet**:
//!   ascending simulated arrival, cross-site ties by site index, ties
//!   within a site by [`RequestId`] (ids are pool-global and ascend in
//!   submission order). [`SharedTransportPool::next_completion_site`]
//!   exposes the order so a driver can drain sites exactly in it.
//!
//! ## Clock model
//!
//! There is **one clock**: the pool simulates a single crawler machine
//! whose `max_in_flight` connections serve every site at once. A
//! dispatch's `start = max(shared clock, host gate)`, so a handle's
//! [`Traffic::elapsed_secs`] reads on the shared clock — the instant its
//! last completion was delivered, fleet-wide waiting included. The
//! fleet-level makespan is therefore `max` over handles (equivalently
//! [`SharedTransportPool::clock_secs`] at the end), **not** the per-site
//! sum: with a global window of 1 the pool serialises the whole fleet
//! (the makespan telescopes to the serial sum of every site), while a
//! window ≥ the host count lets every politeness gate tick concurrently
//! and the makespan approaches the slowest single host.
//!
//! With one handle and any window, a `PoolHandle` is behaviour-identical
//! to a `PipelinedTransport` of the same window — both backends are
//! pinned by the conformance suite (`tests/transport_conformance.rs`).
//!
//! ## Threading model (PR 8)
//!
//! The core lives behind `Arc<parking_lot::Mutex<..>>`, so the pool and
//! every [`PoolHandle`] are **`Send`** ([`HttpServer`] is already
//! `Send + Sync`): a sharded fleet can build one pool per driver thread —
//! or move handles across threads outright — and still inherit the exact
//! single-pool semantics pinned by the conformance suite. One *window* is
//! still one serially-ordered resource: determinism within a pool requires
//! a single ration point, so a driver thread owns its pool's schedule
//! (`sb_crawler::fleet::FleetMode::SharedPool` drives one pool on one
//! thread; `FleetMode::Sharded` drives P pools on P threads), refilling
//! least-elapsed-host first and draining in pool completion order.
//!
//! [`CrawlSession`]: ../../sb_crawler/session/struct.CrawlSession.html

use crate::client::{settle_get, Fetched, Politeness, Traffic};
use crate::hazard::{dispatch_hazard_get, DispatchCtx, HazardPolicy, HazardState, RetryPolicy};
use crate::response::HeadResponse;
use crate::server::HttpServer;
use crate::transport::{GateTable, Request, RequestId, Transport};
use parking_lot::Mutex;
use sb_webgraph::mime::MimePolicy;
use std::sync::Arc;

/// One fleet-wide in-flight request. As in the single-site transport, the
/// answer is computed eagerly at dispatch (the simulated origin is
/// synchronous); only the delivery is deferred to its simulated arrival.
struct PoolEntry {
    id: RequestId,
    site: usize,
    arrival: f64,
    answer: Fetched,
    /// GET attempts this request consumed (retries included).
    gets: u64,
    /// Total wire bytes across all attempts.
    wire: u64,
}

/// The shared state behind every handle of one pool.
struct PoolCore {
    window: usize,
    /// The shared simulated clock: the arrival of the last delivered
    /// completion (or last synchronous request) across the whole fleet.
    clock: f64,
    next_id: RequestId,
    inflight: Vec<PoolEntry>,
    /// Per-site: shared-clock instant of the site's last delivery (0 until
    /// the first). The fleet's least-elapsed-host refill order keys on it.
    site_elapsed: Vec<f64>,
}

impl PoolEntry {
    /// The fleet-wide completion order: arrival, cross-site ties by site
    /// index, ties within a site by submission id. The single comparator
    /// behind both the poll sort and [`PoolCore::next_completion`] — the
    /// two must agree or the driver would drain a different site than
    /// delivery order promises.
    fn completion_order(&self, other: &PoolEntry) -> std::cmp::Ordering {
        self.arrival
            .total_cmp(&other.arrival)
            .then(self.site.cmp(&other.site))
            .then(self.id.cmp(&other.id))
    }
}

impl PoolCore {
    /// Sorts the pool into global completion order.
    fn sort_completion_order(&mut self) {
        self.inflight.sort_by(PoolEntry::completion_order);
    }

    /// The globally next completion, by the same order.
    fn next_completion(&self) -> Option<&PoolEntry> {
        self.inflight.iter().min_by(|a, b| a.completion_order(b))
    }
}

/// The fleet-wide transport pool. See the module docs; build one with
/// [`SharedTransportPool::new`] and hand every site a
/// [`SharedTransportPool::handle`].
pub struct SharedTransportPool {
    core: Arc<Mutex<PoolCore>>,
}

impl SharedTransportPool {
    /// A pool with a global in-flight window of `max_in_flight` (clamped
    /// to ≥ 1) shared by every handle.
    pub fn new(max_in_flight: usize) -> Self {
        SharedTransportPool {
            core: Arc::new(Mutex::new(PoolCore {
                window: max_in_flight.max(1),
                clock: 0.0,
                next_id: 0,
                inflight: Vec::new(),
                site_elapsed: Vec::new(),
            })),
        }
    }

    /// Registers one site and returns its [`Transport`] handle. The site
    /// index (also the cross-site tie-break rank) is assigned in
    /// registration order. The handle keeps the pool's core alive; the
    /// `SharedTransportPool` itself may be dropped once every handle is
    /// built.
    pub fn handle<'a>(
        &self,
        server: &'a (dyn HttpServer + 'a),
        policy: MimePolicy,
        politeness: Politeness,
    ) -> PoolHandle<'a> {
        let mut core = self.core.lock();
        let site = core.site_elapsed.len();
        core.site_elapsed.push(0.0);
        PoolHandle {
            core: Arc::clone(&self.core),
            site,
            server,
            policy,
            politeness,
            retry: RetryPolicy::retries(0),
            hazards: HazardPolicy::default(),
            hazard_state: HazardState::default(),
            gates: GateTable::default(),
            traffic: Traffic::default(),
        }
    }

    /// The global window size.
    pub fn max_in_flight(&self) -> usize {
        self.core.lock().window
    }

    /// Requests in flight across every handle.
    pub fn in_flight(&self) -> usize {
        self.core.lock().inflight.len()
    }

    /// `in_flight() < max_in_flight()` — the global capacity check a
    /// fleet driver rations across sites.
    pub fn has_capacity(&self) -> bool {
        let core = self.core.lock();
        core.inflight.len() < core.window
    }

    /// The shared simulated clock.
    pub fn clock_secs(&self) -> f64 {
        self.core.lock().clock
    }

    /// The site owning the globally next completion (arrival, then site
    /// index, then id), or `None` when nothing is in flight. Drivers poll
    /// *that* site's handle next, so deliveries advance the shared clock
    /// in true arrival order.
    pub fn next_completion_site(&self) -> Option<usize> {
        self.core.lock().next_completion().map(|e| e.site)
    }

    /// Shared-clock instant of `site`'s last delivery (0 before the
    /// first) — the least-elapsed-host refill key.
    pub fn site_elapsed(&self, site: usize) -> f64 {
        self.core.lock().site_elapsed.get(site).copied().unwrap_or(0.0)
    }
}

/// One site's view of a [`SharedTransportPool`]: a [`Transport`] whose
/// window, clock and politeness gates live in the shared core, while the
/// origin server, MIME policy, politeness model, retry policy and cost
/// counters are per-site. [`Transport::in_flight`] and
/// [`Transport::traffic`] report this site only;
/// [`Transport::has_capacity`] reports the **global** window (a handle
/// may be unable to submit because other sites hold every slot).
pub struct PoolHandle<'a> {
    core: Arc<Mutex<PoolCore>>,
    site: usize,
    server: &'a (dyn HttpServer + 'a),
    policy: MimePolicy,
    politeness: Politeness,
    retry: RetryPolicy,
    hazards: HazardPolicy,
    /// Rate-limit counters and circuit breaker, sharded per handle like
    /// the gates (quarantine is an origin property).
    hazard_state: HazardState,
    /// This site's politeness shard: gates for its hosts plus robots
    /// `Crawl-delay` overrides, private to the handle (see module docs).
    gates: GateTable,
    traffic: Traffic,
}

impl<'a> PoolHandle<'a> {
    /// Re-dispatches 5xx answers up to `retries` extra attempts through
    /// the shared gate; every attempt is charged at delivery (same
    /// contract as `PipelinedTransport::with_retries`).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retry.max_retries = retries;
        self
    }

    /// Installs a full [`RetryPolicy`] (backoff, jitter, circuit breaker);
    /// same contract as `PipelinedTransport::with_retry_policy`.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Installs a [`HazardPolicy`] on this handle's GET path; same
    /// contract as `PipelinedTransport::with_hazards`.
    pub fn with_hazards(mut self, hazards: HazardPolicy) -> Self {
        self.hazards = hazards;
        self
    }

    /// Hosts of this handle quarantined by the circuit breaker so far.
    pub fn quarantined_hosts(&self) -> usize {
        self.hazard_state.quarantined_hosts()
    }

    /// The pool site index this handle was registered as.
    pub fn site(&self) -> usize {
        self.site
    }

    /// Executes a GET through the shared hazard-aware dispatch loop
    /// (this site's gate shard, dispatching no earlier than the shared
    /// clock) and returns the final answer with its cumulative accounting
    /// and arrival.
    fn dispatch_get(&mut self, clock: f64, url: &str) -> (Fetched, u64, u64, f64) {
        let mut ctx = DispatchCtx {
            server: self.server,
            policy: &self.policy,
            politeness: &self.politeness,
            gates: &mut self.gates,
            hazards: &self.hazards,
            retry: &self.retry,
            state: &mut self.hazard_state,
        };
        let out = dispatch_hazard_get(&mut ctx, url, clock);
        (out.answer, out.gets, out.wire, out.arrival)
    }

    /// Charges one synchronous request and advances the shared clock.
    fn charge_sync(&mut self, core: &mut PoolCore, arrival: f64) {
        core.clock = core.clock.max(arrival);
        core.site_elapsed[self.site] = core.clock;
        self.traffic.elapsed_secs = core.clock;
    }
}

impl Transport for PoolHandle<'_> {
    fn submit(&mut self, req: Request<'_>) -> RequestId {
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        debug_assert!(
            core.inflight.len() < core.window,
            "submit beyond the shared window (window {})",
            core.window
        );
        let id = core.next_id;
        core.next_id += 1;
        let (answer, gets, wire, arrival) = self.dispatch_get(core.clock, req.url);
        core.inflight.push(PoolEntry { id, site: self.site, arrival, answer, gets, wire });
        id
    }

    fn poll_into(&mut self, out: &mut Vec<(RequestId, Fetched)>) {
        out.clear();
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        core.sort_completion_order();
        // The horizon is this site's next completion instant (never
        // backwards). Another site may own an earlier arrival: its entries
        // stay pooled — they are delivered with their own arrival when its
        // handle polls, so nothing is lost if this site drains first (the
        // shared clock then just jumps past them, as on a machine that was
        // busy elsewhere). Drivers that poll sites in
        // [`SharedTransportPool::next_completion_site`] order never hit
        // that case and advance the clock in true arrival order.
        let Some(first) = core.inflight.iter().find(|e| e.site == self.site).map(|e| e.arrival)
        else {
            return;
        };
        let horizon = core.clock.max(first);
        let mut i = 0;
        while i < core.inflight.len() {
            let e = &core.inflight[i];
            if e.site != self.site || e.arrival > horizon {
                i += 1;
                continue;
            }
            let e = core.inflight.remove(i);
            core.clock = core.clock.max(e.arrival);
            self.traffic.get_requests += e.gets;
            self.traffic.non_target_bytes += e.wire;
            out.push((e.id, e.answer));
        }
        core.site_elapsed[self.site] = core.clock;
        self.traffic.elapsed_secs = core.clock;
    }

    fn head(&mut self, url: &str) -> HeadResponse {
        let r = self.server.head(url);
        let wire = r.wire_size();
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        let (_, arrival) = self.gates.dispatch(&self.politeness, url, core.clock, wire);
        self.traffic.head_requests += 1;
        self.traffic.non_target_bytes += wire;
        self.charge_sync(&mut core, arrival);
        r
    }

    fn fetch_now(&mut self, url: &str) -> Fetched {
        let f = settle_get(self.server.get(url), &self.policy);
        let core = Arc::clone(&self.core);
        let mut core = core.lock();
        let (_, arrival) = self.gates.dispatch(&self.politeness, url, core.clock, f.wire_bytes);
        self.traffic.get_requests += 1;
        self.traffic.non_target_bytes += f.wire_bytes;
        self.charge_sync(&mut core, arrival);
        f
    }

    fn in_flight(&self) -> usize {
        self.core.lock().inflight.iter().filter(|e| e.site == self.site).count()
    }

    fn in_flight_bytes(&self) -> u64 {
        self.core.lock().inflight.iter().filter(|e| e.site == self.site).map(|e| e.wire).sum()
    }

    fn max_in_flight(&self) -> usize {
        self.core.lock().window
    }

    /// Global, not per-site: a slot is free only when the *pool* has one.
    fn has_capacity(&self) -> bool {
        let core = self.core.lock();
        core.inflight.len() < core.window
    }

    fn traffic(&self) -> Traffic {
        self.traffic
    }

    fn tag_target(&mut self, bytes: u64) {
        let moved = bytes.min(self.traffic.non_target_bytes);
        self.traffic.non_target_bytes -= moved;
        self.traffic.target_bytes += moved;
    }

    fn policy(&self) -> &MimePolicy {
        &self.policy
    }

    fn set_host_min_delay(&mut self, host: &str, delay_secs: f64) {
        self.gates.set_host_min_delay(host, delay_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use sb_webgraph::gen::{build_site, SiteSpec};

    fn server(pages: usize, seed: u64) -> SiteServer {
        SiteServer::new(build_site(&SiteSpec::demo(pages), seed))
    }

    fn html_urls(s: &SiteServer, n: usize) -> Vec<String> {
        s.site()
            .pages()
            .iter()
            .filter(|p| matches!(p.kind, sb_webgraph::PageKind::Html(_)))
            .map(|p| p.url.clone())
            .take(n)
            .collect()
    }

    fn drain(t: &mut dyn Transport) -> Vec<RequestId> {
        let mut out = Vec::new();
        let mut order = Vec::new();
        while t.in_flight() > 0 {
            t.poll_into(&mut out);
            order.extend(out.iter().map(|(id, _)| *id));
        }
        order
    }

    #[test]
    fn window_is_shared_across_handles() {
        let (a, b) = (server(120, 1), server(120, 2));
        let (ua, ub) = (html_urls(&a, 4), html_urls(&b, 4));
        let pool = SharedTransportPool::new(3);
        let mut ha = pool.handle(&a, MimePolicy::default(), Politeness::default());
        let mut hb = pool.handle(&b, MimePolicy::default(), Politeness::default());

        ha.submit(Request::get(&ua[0]));
        hb.submit(Request::get(&ub[0]));
        ha.submit(Request::get(&ua[1]));
        assert_eq!(pool.in_flight(), 3);
        assert!(!pool.has_capacity());
        assert!(!ha.has_capacity() && !hb.has_capacity(), "capacity is global");
        assert_eq!(ha.in_flight(), 2);
        assert_eq!(hb.in_flight(), 1);
        assert!(ha.in_flight_bytes() > 0);

        drain(&mut ha);
        drain(&mut hb);
        assert_eq!(pool.in_flight(), 0);
        assert!(pool.has_capacity());
        assert_eq!(ha.traffic().get_requests, 2);
        assert_eq!(hb.traffic().get_requests, 1);
    }

    #[test]
    fn next_completion_breaks_cross_site_ties_by_site_index() {
        // Two identical sites (same spec, same seed — same root URL, same
        // sizes) submitted back to back at clock 0: each handle's own gate
        // starts cold, so both requests dispatch at t = 0 and arrive at
        // the identical instant. Submission order is deliberately reversed
        // so the tie cannot be won by id accident: the pool must rank the
        // lower *site index* first.
        let (a, b) = (server(120, 3), server(120, 3));
        let (ua, ub) = (html_urls(&a, 1), html_urls(&b, 1));
        assert_eq!(ua[0], ub[0], "same spec + seed generate the same site");
        let pool = SharedTransportPool::new(2);
        let mut ha = pool.handle(&a, MimePolicy::default(), Politeness::default());
        let mut hb = pool.handle(&b, MimePolicy::default(), Politeness::default());
        let id_b = hb.submit(Request::get(&ub[0]));
        let id_a = ha.submit(Request::get(&ua[0]));
        assert!(id_b < id_a, "ids ascend in submission order, pool-wide");
        assert_eq!(
            pool.next_completion_site(),
            Some(0),
            "equal arrivals rank by site index, not submission order"
        );
    }

    #[test]
    fn gates_shard_per_handle_and_space_within_a_site() {
        // Politeness-dominated regime: 1 s delay, negligible transfer.
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 };
        let (a, b) = (server(200, 5), server(200, 6));
        let (ua, ub) = (html_urls(&a, 6), html_urls(&b, 6));

        // Wide window, two sites: each handle's gate ticks concurrently
        // (politeness shards per site — the synthetic hostname the two
        // generated sites share must NOT couple them), so 12 requests
        // cost ~6 s, not ~12 s.
        let pool = SharedTransportPool::new(12);
        let mut ha = pool.handle(&a, MimePolicy::default(), pol);
        let mut hb = pool.handle(&b, MimePolicy::default(), pol);
        for (x, y) in ua.iter().zip(&ub) {
            ha.submit(Request::get(x));
            hb.submit(Request::get(y));
        }
        drain(&mut ha);
        drain(&mut hb);
        let sharded = pool.clock_secs();
        assert!(
            sharded < 6.0 + 1.0,
            "distinct sites must overlap politeness waits: {sharded:.1}s"
        );
        // Within one site the gate still spaces every dispatch.
        assert!(
            ha.traffic().elapsed_secs >= 6.0 * pol.delay_secs - 1e-9,
            "a site's own dispatches must stay politeness-spaced"
        );

        // One site, wide window: its single gate spaces all 12 — ~12 s.
        let a2 = server(200, 5);
        let pool = SharedTransportPool::new(12);
        let mut h1 = pool.handle(&a2, MimePolicy::default(), pol);
        for x in ua.iter().chain(ua.iter()) {
            h1.submit(Request::get(x));
        }
        drain(&mut h1);
        let gated = pool.clock_secs();
        assert!(
            gated >= 12.0 * pol.delay_secs - 1e-9,
            "one site's gate must space every dispatch: {gated:.1}s"
        );
    }

    #[test]
    fn global_window_one_serialises_the_fleet() {
        // With window 1 the pool is one crawler visiting sites strictly in
        // turn: the shared clock telescopes to the serial sum of both
        // sites' blocking-client costs.
        let (a, b) = (server(150, 7), server(150, 8));
        let (ua, ub) = (html_urls(&a, 8), html_urls(&b, 8));
        let mut ca = crate::Client::new(&a, MimePolicy::default());
        let mut cb = crate::Client::new(&b, MimePolicy::default());
        for u in &ua {
            ca.get(u);
        }
        for u in &ub {
            cb.get(u);
        }
        let serial_sum = ca.traffic().elapsed_secs + cb.traffic().elapsed_secs;

        let pool = SharedTransportPool::new(1);
        let mut ha = pool.handle(&a, MimePolicy::default(), Politeness::default());
        let mut hb = pool.handle(&b, MimePolicy::default(), Politeness::default());
        let mut out = Vec::new();
        for (x, y) in ua.iter().zip(&ub) {
            ha.submit(Request::get(x));
            ha.poll_into(&mut out);
            assert_eq!(out.len(), 1);
            hb.submit(Request::get(y));
            hb.poll_into(&mut out);
            assert_eq!(out.len(), 1);
        }
        assert!(
            (pool.clock_secs() - serial_sum).abs() < 1e-6,
            "window 1 must serialise: {} vs {}",
            pool.clock_secs(),
            serial_sum
        );
        // And per-site volume matches the blocking clients exactly.
        assert_eq!(ha.traffic().total_bytes(), ca.traffic().total_bytes());
        assert_eq!(hb.traffic().total_bytes(), cb.traffic().total_bytes());
    }

    #[test]
    fn site_elapsed_tracks_last_delivery_per_site() {
        let (a, b) = (server(120, 9), server(120, 10));
        let (ua, ub) = (html_urls(&a, 2), html_urls(&b, 2));
        let pool = SharedTransportPool::new(4);
        let mut ha = pool.handle(&a, MimePolicy::default(), Politeness::default());
        let mut hb = pool.handle(&b, MimePolicy::default(), Politeness::default());
        assert_eq!(pool.site_elapsed(0), 0.0);
        ha.submit(Request::get(&ua[0]));
        drain(&mut ha);
        assert!(pool.site_elapsed(0) > 0.0);
        assert_eq!(pool.site_elapsed(1), 0.0, "site 1 has not delivered yet");
        hb.submit(Request::get(&ub[0]));
        drain(&mut hb);
        assert!(pool.site_elapsed(1) >= pool.site_elapsed(0), "shared clock is monotone");
    }

    #[test]
    fn pool_and_handles_are_send() {
        // The PR 8 contract: the pool core is `Arc<Mutex<..>>` and the
        // server bound is `Send + Sync`, so both ends cross threads.
        fn is_send<T: Send>() {}
        is_send::<SharedTransportPool>();
        is_send::<PoolHandle<'static>>();
    }

    #[test]
    fn handles_drive_their_sites_from_other_threads() {
        // Two handles of one pool, each moved to its own thread and driven
        // there concurrently. Per-site volume accounting must come out
        // exactly as a blocking client's, whatever the interleaving of the
        // two threads' submissions — only the shared clock (elapsed) is
        // schedule-dependent.
        let (a, b) = (server(150, 13), server(150, 14));
        let (ua, ub) = (html_urls(&a, 5), html_urls(&b, 5));
        let mut ca = crate::Client::new(&a, MimePolicy::default());
        let mut cb = crate::Client::new(&b, MimePolicy::default());
        for u in &ua {
            ca.get(u);
        }
        for u in &ub {
            cb.get(u);
        }

        // Window wide enough that racing submits cannot overfill it.
        let pool = SharedTransportPool::new(ua.len() + ub.len());
        let ha = pool.handle(&a, MimePolicy::default(), Politeness::default());
        let hb = pool.handle(&b, MimePolicy::default(), Politeness::default());
        let (ta, tb) = std::thread::scope(|s| {
            let run_a = s.spawn(|| {
                let mut h = ha;
                for u in &ua {
                    h.submit(Request::get(u));
                }
                drain(&mut h);
                h.traffic()
            });
            let run_b = s.spawn(|| {
                let mut h = hb;
                for u in &ub {
                    h.submit(Request::get(u));
                }
                drain(&mut h);
                h.traffic()
            });
            (run_a.join().expect("site A thread"), run_b.join().expect("site B thread"))
        });
        assert_eq!(pool.in_flight(), 0);
        assert_eq!(ta.get_requests, ca.traffic().get_requests);
        assert_eq!(ta.total_bytes(), ca.traffic().total_bytes());
        assert_eq!(tb.get_requests, cb.traffic().get_requests);
        assert_eq!(tb.total_bytes(), cb.traffic().total_bytes());
    }

    #[test]
    fn crawl_delay_override_stays_in_the_handles_shard() {
        let (a, b) = (server(150, 11), server(150, 12));
        let (ua, ub) = (html_urls(&a, 3), html_urls(&b, 3));
        let host = crate::transport::host_of(&ua[0]).to_owned();
        let pol = Politeness { delay_secs: 1.0, bytes_per_sec: 1e9 };
        let pool = SharedTransportPool::new(6);
        let mut ha = pool.handle(&a, MimePolicy::default(), pol);
        let mut hb = pool.handle(&b, MimePolicy::default(), pol);
        // Site A declares a 5 s Crawl-delay; site B (same synthetic
        // hostname — the shard is the handle, not the string) keeps the
        // 1 s default.
        ha.set_host_min_delay(&host, 5.0);
        for (x, y) in ua.iter().zip(&ub) {
            ha.submit(Request::get(x));
            hb.submit(Request::get(y));
        }
        // Drain B first: its last arrival is ~3 s in, well before A's
        // gated ones (draining A first would advance the shared clock past
        // B's arrivals and mask the comparison).
        drain(&mut hb);
        drain(&mut ha);
        assert!(
            hb.traffic().elapsed_secs < 15.0,
            "B must not inherit A's Crawl-delay: {:.1}s",
            hb.traffic().elapsed_secs
        );
        assert!(
            ha.traffic().elapsed_secs >= 15.0 - 1e-9,
            "5 s Crawl-delay must gate all three of A's dispatches: {:.1}s",
            ha.traffic().elapsed_secs
        );
    }
}
