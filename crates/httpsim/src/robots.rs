//! robots.txt: parsing, path matching and an origin-side overlay.
//!
//! The paper's crawler respects *crawling ethics* (the 1-second politeness
//! wait of Sec 1); a production deployment also honours the Robots
//! Exclusion Protocol. This module implements the REP as specified by
//! RFC 9309: user-agent groups, `Allow`/`Disallow` with `*` wildcards and
//! the `$` end anchor, longest-match precedence with `Allow` winning ties,
//! and the de-facto `Crawl-delay` extension (which feeds the
//! [`crate::Politeness`] model).
//!
//! [`WithRobots`] wraps any [`HttpServer`] so generated sites can publish a
//! `/robots.txt` without touching the site generator.

use crate::response::{error_response, HeadResponse, Headers, Response};
use crate::server::HttpServer;
use sb_webgraph::url::Url;

/// One `Allow`/`Disallow` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// True for `Allow`, false for `Disallow`.
    pub allow: bool,
    /// Path pattern; may contain `*` wildcards and a trailing `$` anchor.
    pub pattern: String,
}

#[derive(Debug, Clone, Default)]
struct Group {
    /// Lowercased product tokens of the `User-agent` lines; `*` matches all.
    agents: Vec<String>,
    rules: Vec<Rule>,
    crawl_delay: Option<f64>,
}

/// A parsed robots.txt file.
#[derive(Debug, Clone, Default)]
pub struct RobotsTxt {
    groups: Vec<Group>,
}

impl RobotsTxt {
    /// Parses robots.txt text. Unknown directives are ignored; parsing
    /// never fails (a malformed file simply yields fewer rules, per the
    /// RFC's error-tolerance requirement).
    pub fn parse(text: &str) -> RobotsTxt {
        let mut groups: Vec<Group> = Vec::new();
        let mut current = Group::default();
        // True while we are still collecting consecutive User-agent lines
        // for the group being opened.
        let mut collecting_agents = false;

        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else { continue };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim();
            match key.as_str() {
                "user-agent" => {
                    if !collecting_agents {
                        if !current.agents.is_empty() {
                            groups.push(std::mem::take(&mut current));
                        }
                        collecting_agents = true;
                    }
                    current.agents.push(value.to_ascii_lowercase());
                }
                "allow" | "disallow" => {
                    collecting_agents = false;
                    if current.agents.is_empty() {
                        // Rules before any User-agent line are ignored.
                        continue;
                    }
                    // An empty Disallow means "allow everything": no rule.
                    if value.is_empty() {
                        continue;
                    }
                    current.rules.push(Rule { allow: key == "allow", pattern: value.to_owned() });
                }
                "crawl-delay" => {
                    collecting_agents = false;
                    if let Ok(d) = value.parse::<f64>() {
                        if d >= 0.0 && current.crawl_delay.is_none() {
                            current.crawl_delay = Some(d);
                        }
                    }
                }
                _ => {
                    collecting_agents = false;
                }
            }
        }
        if !current.agents.is_empty() {
            groups.push(current);
        }
        RobotsTxt { groups }
    }

    /// Fetches and parses `{origin}/robots.txt` from `server`. Returns an
    /// empty (allow-everything) file when the server has none.
    pub fn fetch(server: &dyn HttpServer, root_url: &str) -> RobotsTxt {
        let Ok(root) = Url::parse(root_url) else { return RobotsTxt::default() };
        let Ok(robots_url) = root.join("/robots.txt") else { return RobotsTxt::default() };
        let r = server.get(&robots_url.as_string());
        if r.status == 200 {
            RobotsTxt::parse(&String::from_utf8_lossy(&r.body))
        } else {
            RobotsTxt::default()
        }
    }

    /// The group that governs `agent`: the one whose matched `User-agent`
    /// token is longest; the `*` group is the fallback.
    fn group_for(&self, agent: &str) -> Option<&Group> {
        let agent = agent.to_ascii_lowercase();
        let mut best: Option<(usize, &Group)> = None;
        let mut wildcard: Option<&Group> = None;
        for g in &self.groups {
            for a in &g.agents {
                if a == "*" {
                    wildcard = wildcard.or(Some(g));
                } else if agent.contains(a.as_str()) {
                    match best {
                        Some((len, _)) if a.len() <= len => {}
                        _ => best = Some((a.len(), g)),
                    }
                }
            }
        }
        best.map(|(_, g)| g).or(wildcard)
    }

    /// May `agent` fetch `path`? Longest-pattern match decides; `Allow`
    /// wins ties; no matching rule (or no matching group) means allowed.
    pub fn allows(&self, agent: &str, path: &str) -> bool {
        let Some(group) = self.group_for(agent) else { return true };
        let mut best: Option<(usize, bool)> = None;
        for rule in &group.rules {
            if !pattern_matches(&rule.pattern, path) {
                continue;
            }
            let len = rule.pattern.len();
            match best {
                Some((blen, ballow)) => {
                    if len > blen || (len == blen && rule.allow && !ballow) {
                        best = Some((len, rule.allow));
                    }
                }
                None => best = Some((len, rule.allow)),
            }
        }
        best.is_none_or(|(_, allow)| allow)
    }

    /// The `Crawl-delay` (seconds) governing `agent`, if declared.
    pub fn crawl_delay(&self, agent: &str) -> Option<f64> {
        self.group_for(agent).and_then(|g| g.crawl_delay)
    }

    /// Number of parsed groups (diagnostics).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }
}

/// REP path matching: the pattern is anchored at the start of the path,
/// `*` matches any (possibly empty) run of characters, a trailing `$`
/// anchors at the end. Without `$` the pattern is a prefix pattern, which
/// is the same as appending a final `*` and requiring a full match.
pub fn pattern_matches(pattern: &str, path: &str) -> bool {
    let (stripped, anchored) = match pattern.strip_suffix('$') {
        Some(p) => (p, true),
        None => (pattern, false),
    };
    let mut pat = stripped.as_bytes().to_vec();
    if !anchored {
        pat.push(b'*');
    }
    glob_match(&pat, path.as_bytes())
}

/// Full-text `*`-glob match with backtracking (no other metacharacters).
fn glob_match(pat: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let mut star: Option<usize> = None;
    let mut mark = 0usize;
    while t < text.len() {
        if p < pat.len() && pat[p] != b'*' && pat[p] == text[t] {
            p += 1;
            t += 1;
        } else if p < pat.len() && pat[p] == b'*' {
            star = Some(p);
            mark = t;
            p += 1;
        } else if let Some(s) = star {
            // Backtrack: let the last star absorb one more byte.
            p = s + 1;
            mark += 1;
            t = mark;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == b'*' {
        p += 1;
    }
    p == pat.len()
}

/// Serves `body` at `{origin}/robots.txt`, delegating every other URL to
/// the wrapped server.
pub struct WithRobots<S> {
    inner: S,
    robots_url: String,
    body: String,
}

impl<S: HttpServer> WithRobots<S> {
    /// `root_url` fixes the origin; `body` is the robots.txt text.
    pub fn new(inner: S, root_url: &str, body: impl Into<String>) -> WithRobots<S> {
        let robots_url = Url::parse(root_url)
            .and_then(|u| u.join("/robots.txt"))
            .map(|u| u.as_string())
            .unwrap_or_else(|_| "/robots.txt".to_owned());
        WithRobots { inner, robots_url, body: body.into() }
    }

    fn robots_response(&self) -> Response {
        let body = self.body.clone().into_bytes();
        Response {
            status: 200,
            headers: Headers {
                content_type: Some("text/plain; charset=utf-8".to_owned()),
                content_length: Some(body.len() as u64),
                location: None,
            },
            body: body.into(),
        }
    }
}

impl<S: HttpServer> HttpServer for WithRobots<S> {
    fn head(&self, url: &str) -> HeadResponse {
        if url == self.robots_url {
            self.robots_response().head()
        } else {
            self.inner.head(url)
        }
    }

    fn get(&self, url: &str) -> Response {
        if url == self.robots_url {
            self.robots_response()
        } else {
            self.inner.get(url)
        }
    }
}

/// A server enforcing its own robots.txt: disallowed paths answer
/// 403 Forbidden instead of content. Useful to *test* that a crawler never
/// even tries (with enforcement off, a compliant crawler's traffic must be
/// identical).
pub struct EnforcedRobots<S> {
    inner: WithRobots<S>,
    robots: RobotsTxt,
    agent: String,
}

impl<S: HttpServer> EnforcedRobots<S> {
    pub fn new(inner: S, root_url: &str, body: impl Into<String>, agent: &str) -> Self {
        let body = body.into();
        let robots = RobotsTxt::parse(&body);
        EnforcedRobots {
            inner: WithRobots::new(inner, root_url, body),
            robots,
            agent: agent.to_owned(),
        }
    }

    fn blocked(&self, url: &str) -> bool {
        match Url::parse(url) {
            Ok(u) => u.path != "/robots.txt" && !self.robots.allows(&self.agent, &u.path),
            Err(_) => false,
        }
    }
}

impl<S: HttpServer> HttpServer for EnforcedRobots<S> {
    fn head(&self, url: &str) -> HeadResponse {
        if self.blocked(url) {
            error_response(403).head()
        } else {
            self.inner.head(url)
        }
    }

    fn get(&self, url: &str) -> Response {
        if self.blocked(url) {
            error_response(403)
        } else {
            self.inner.get(url)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# stats portal robots
User-agent: *
Disallow: /private/
Disallow: /search
Allow: /private/open/
Crawl-delay: 2

User-agent: sbcrawl
Disallow: /api/
Allow: /

User-agent: greedybot
Disallow: /
";

    #[test]
    fn groups_and_delay_parse() {
        let r = RobotsTxt::parse(SAMPLE);
        assert_eq!(r.n_groups(), 3);
        assert_eq!(r.crawl_delay("anybot"), Some(2.0));
        assert_eq!(r.crawl_delay("sbcrawl"), None);
    }

    #[test]
    fn wildcard_group_applies_to_unknown_agents() {
        let r = RobotsTxt::parse(SAMPLE);
        assert!(!r.allows("somebot", "/private/data.csv"));
        assert!(r.allows("somebot", "/public/data.csv"));
        assert!(r.allows("somebot", "/private/open/data.csv"), "longest match is Allow");
    }

    #[test]
    fn specific_group_overrides_wildcard() {
        let r = RobotsTxt::parse(SAMPLE);
        // sbcrawl's own group allows /private/ (no rule ⇒ its Allow: /).
        assert!(r.allows("sbcrawl/0.1", "/private/data.csv"));
        assert!(!r.allows("sbcrawl/0.1", "/api/v1/data"));
        assert!(!r.allows("greedybot", "/anything"));
    }

    #[test]
    fn prefix_matching_without_trailing_slash() {
        let r = RobotsTxt::parse("User-agent: *\nDisallow: /search");
        assert!(!r.allows("x", "/search"));
        assert!(!r.allows("x", "/search/results"));
        assert!(!r.allows("x", "/searchable")); // prefix semantics, per RFC
        assert!(r.allows("x", "/sea"));
    }

    #[test]
    fn wildcards_and_anchor() {
        let r = RobotsTxt::parse("User-agent: *\nDisallow: /*.pdf$\nDisallow: /tmp/*/draft");
        assert!(!r.allows("x", "/docs/report.pdf"));
        assert!(r.allows("x", "/docs/report.pdf?page=2"), "$ anchors the end");
        assert!(!r.allows("x", "/tmp/2026/draft"));
        assert!(!r.allows("x", "/tmp/a/b/draft-v2"));
        assert!(r.allows("x", "/tmp/draft"), "the * must span a middle segment");
    }

    #[test]
    fn allow_wins_ties_and_longest_wins_overall() {
        let r = RobotsTxt::parse("User-agent: *\nDisallow: /data\nAllow: /data");
        assert!(r.allows("x", "/data/x.csv"), "equal length: Allow wins");
        let r2 = RobotsTxt::parse("User-agent: *\nAllow: /data\nDisallow: /data/private");
        assert!(!r2.allows("x", "/data/private/x.csv"), "longer Disallow wins");
    }

    #[test]
    fn empty_disallow_allows_everything() {
        let r = RobotsTxt::parse("User-agent: *\nDisallow:");
        assert!(r.allows("x", "/anything"));
    }

    #[test]
    fn garbage_never_panics_and_allows() {
        for garbage in ["", ":::", "Disallow: /x", "User-agent *\nDisallow /x", "\u{0}\u{1}"] {
            let r = RobotsTxt::parse(garbage);
            assert!(r.allows("x", "/x"), "rules without a preceding agent line are dropped");
        }
    }

    #[test]
    fn pattern_matcher_edge_cases() {
        assert!(pattern_matches("/", "/anything"));
        assert!(pattern_matches("/*", "/anything"));
        assert!(pattern_matches("/a*b$", "/axxb"));
        assert!(!pattern_matches("/a*b$", "/axxbc"));
        assert!(pattern_matches("/a**b", "/ab"));
        assert!(pattern_matches("/x*$", "/x/anything"));
        assert!(!pattern_matches("/y", "/x"));
        // Anchored patterns must backtrack past earlier piece occurrences.
        assert!(pattern_matches("/a*b$", "/axbyb"), "the * must stretch to the final b");
        assert!(!pattern_matches("/ab$", "/abxab/ab "), "single-piece anchor is exact");
        assert!(pattern_matches("/ab$", "/ab"));
    }

    #[test]
    fn with_robots_serves_and_delegates() {
        use crate::server::SiteServer;
        use sb_webgraph::gen::{build_site, SiteSpec};
        let site = build_site(&SiteSpec::demo(80), 3);
        let root = site.page(site.root()).url.clone();
        let server = WithRobots::new(SiteServer::new(site), &root, "User-agent: *\nDisallow: /x");
        let robots = RobotsTxt::fetch(&server, &root);
        assert_eq!(robots.n_groups(), 1);
        assert!(!robots.allows("any", "/x/y"));
        // Delegation: the root page still serves.
        assert_eq!(server.get(&root).status, 200);
    }

    #[test]
    fn fetch_missing_robots_is_allow_all() {
        use crate::server::SiteServer;
        use sb_webgraph::gen::{build_site, SiteSpec};
        let site = build_site(&SiteSpec::demo(80), 3);
        let root = site.page(site.root()).url.clone();
        let server = SiteServer::new(site);
        let robots = RobotsTxt::fetch(&server, &root);
        assert_eq!(robots.n_groups(), 0);
        assert!(robots.allows("any", "/whatever"));
    }

    #[test]
    fn enforced_robots_blocks_with_403() {
        use crate::server::SiteServer;
        use sb_webgraph::gen::{build_site, SiteSpec};
        let site = build_site(&SiteSpec::demo(80), 3);
        let root = site.page(site.root()).url.clone();
        let some_page = site
            .pages()
            .iter()
            .find(|p| p.url != root && matches!(p.kind, sb_webgraph::PageKind::Html(_)))
            .expect("site has a second page")
            .url
            .clone();
        let path = Url::parse(&some_page).unwrap().path;
        let body = format!("User-agent: *\nDisallow: {path}");
        let server = EnforcedRobots::new(SiteServer::new(site), &root, body, "sbcrawl");
        assert_eq!(server.get(&some_page).status, 403);
        assert_eq!(server.get(&root).status, 200);
        assert_eq!(server.head(&some_page).status, 403);
    }
}
