//! Simulated HTTP transport for the `sbcrawl` focused crawler.
//!
//! Everything the paper's crawlers do over the network is reproduced here
//! offline: an origin [`server`] over a generated website, the local
//! [`replay`] database of Sec 4.4 (persistable via [`archive`]), and the
//! crawler-side [`client`] with request/volume cost accounting,
//! politeness-based time estimation and mid-flight interruption of
//! block-listed downloads. The [`transport`] module is the nonblocking
//! fetch boundary (PR 4): a politeness-gated in-flight request pool with
//! deterministic completion ordering, which the crawl engine pipelines on.
//! The [`pool`] module (PR 5) multiplexes one bounded in-flight window
//! across every host of a multi-site fleet with per-host politeness
//! sharding. Production-crawler substrates live alongside:
//! [`robots`] (RFC 9309 Robots Exclusion Protocol), [`flaky`]
//! (failure-injection and robot-trap servers for robustness testing) and
//! [`hazard`] (PR 6: composable transport-level hazards — timeouts,
//! heavy-tailed latency, bandwidth caps, 429 rate limiting — plus the
//! retry/backoff policy and per-host circuit breaker both transport
//! backends dispatch through).

pub mod archive;
pub mod client;
pub mod flaky;
pub mod hazard;
pub mod pool;
pub mod replay;
pub mod response;
pub mod robots;
pub mod server;
pub mod sitemap;
pub mod transport;

pub use archive::{ArchiveError, ArchiveReader, ArchiveWriter};
pub use client::{Client, Fetched, Politeness, Traffic};
pub use flaky::{FlakyServer, TrapServer};
pub use hazard::{
    HazardPolicy, HazardState, RateLimit, RetryPolicy, TailLatency, STATUS_QUARANTINED,
    STATUS_TIMEOUT,
};
pub use pool::{PoolHandle, SharedTransportPool};
pub use replay::{Mode, ReplayStore};
pub use response::{Body, HeadResponse, Headers, Response};
pub use robots::{EnforcedRobots, RobotsTxt, WithRobots};
pub use server::{HttpServer, SiteServer};
pub use sitemap::{fetch_sitemap_urls, parse_sitemap, Sitemap, SitemapEntry, WithSitemap};
pub use transport::{PipelinedTransport, Request, RequestId, Transport};
