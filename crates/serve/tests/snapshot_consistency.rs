//! Proptest-driven interleaving tests for the snapshot store (PR 9
//! tentpole invariants).
//!
//! A writer thread commits generation-tagged bodies while reader threads
//! hammer `read()`. Each body is the generation number repeated, so a
//! torn read is detectable byte-by-byte, and the embedded generation
//! must match the version's `generation` field (versions are committed
//! atomically or not at all). Per reader and per URL, observed
//! generations must be monotone — the store never serves an older
//! version after a newer one.

use proptest::prelude::*;
use sb_httpsim::Body;
use sb_revisit::fnv64;
use sb_serve::SnapshotStore;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};

/// Body whose every 8-byte word is the generation: untorn iff uniform.
fn tagged_body(generation: u64) -> (Body, u64) {
    let bytes: Vec<u8> = generation.to_le_bytes().repeat(16);
    let hash = fnv64(&bytes);
    (Body::from(bytes), hash)
}

fn embedded_generation(body: &[u8]) -> u64 {
    u64::from_le_bytes(body[..8].try_into().expect("tagged bodies hold >= 8 bytes"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Readers under concurrent commits observe only complete,
    /// previously-committed versions, monotonically per URL.
    #[test]
    fn readers_see_complete_committed_monotone_versions(
        n_urls in 1usize..4,
        commits_per_url in 20u64..120,
        readers in 1usize..4,
        retain in 0usize..3,
    ) {
        let store = SnapshotStore::new(retain);
        let urls: Vec<String> = (0..n_urls).map(|k| format!("https://s/p{k}")).collect();
        for url in &urls {
            let (body, hash) = tagged_body(1);
            store.commit(url, 200, body, hash);
        }
        let done = AtomicBool::new(false);
        let failure = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..readers {
                let store = &store;
                let urls = &urls;
                let done = &done;
                handles.push(s.spawn(move || -> Result<(), String> {
                    let mut last = vec![0u64; urls.len()];
                    let mut spin = t; // stagger which URL each reader starts on
                    while !done.load(SeqCst) {
                        let slot = spin % urls.len();
                        spin = spin.wrapping_add(1);
                        let v = store.read(&urls[slot]).expect("pre-seeded URL");
                        let bytes = v.body.as_slice();
                        let tag = embedded_generation(bytes);
                        if !bytes.chunks(8).all(|c| embedded_generation_chunk(c) == tag) {
                            return Err(format!("torn body on {}: {:?}", urls[slot], bytes));
                        }
                        if tag != v.generation {
                            return Err(format!(
                                "body of {} tagged {} but generation field is {}",
                                urls[slot], tag, v.generation
                            ));
                        }
                        if v.generation < last[slot] {
                            return Err(format!(
                                "{} went backwards: gen {} after {}",
                                urls[slot], v.generation, last[slot]
                            ));
                        }
                        last[slot] = v.generation;
                    }
                    Ok(())
                }));
            }
            // Writer: round-robin commits, generations 2..=commits_per_url+1.
            for g in 2..=commits_per_url + 1 {
                for url in &urls {
                    let (body, hash) = tagged_body(g);
                    let committed = store.commit(url, 200, body, hash);
                    assert_eq!(committed, g, "store-assigned generation tracks the writer");
                }
            }
            done.store(true, SeqCst);
            handles.into_iter().find_map(|h| h.join().expect("reader panicked").err())
        });
        prop_assert!(failure.is_none(), "{}", failure.unwrap_or_default());
        for url in &urls {
            let v = store.peek(url).expect("known");
            prop_assert_eq!(v.generation, commits_per_url + 1);
            prop_assert!(store.retained(url) <= retain);
        }
    }
}

fn embedded_generation_chunk(chunk: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    word[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(word)
}
