//! End-to-end pins for the continuous crawl-and-serve loop.
//!
//! * Determinism: with readers off and a transport window of 1, the
//!   whole refresh schedule is a pure function of the seed —
//!   byte-reproducible across runs.
//! * The serve feed's body hashing matches `sb_revisit::fnv64`, so
//!   store hashes, session change detection and the evolution oracle
//!   all speak the same fingerprint.
//! * The loop actually refreshes: counters move, staleness is bounded,
//!   and the store serves committed pages after the final epoch.

use sb_crawler::Budget;
use sb_revisit::EvolvingSite;
use sb_revisit::{fnv64, ChangeModel, ProportionalRevisit};
use sb_serve::{crawl_and_serve, serve_site, ServeConfig, ServeOutcome};
use sb_webgraph::{build_site, SiteSpec};

fn pinned_config() -> ServeConfig {
    ServeConfig {
        change: ChangeModel {
            epochs: 5,
            ..ChangeModel::default()
        },
        seed: 2026,
        window: 1,
        discovery_requests: 160,
        refresh_per_epoch: 10,
        retain: 1,
        budget: Budget::Requests(600),
        read: None,
    }
}

fn run_once(cfg: &ServeConfig) -> ServeOutcome {
    let base = build_site(&SiteSpec::demo(180), 99);
    let site = EvolvingSite::evolve(base, &cfg.change, cfg.seed);
    let mut policy = ProportionalRevisit::default();
    serve_site(&site, &mut policy, cfg)
}

#[test]
fn refresh_schedule_is_byte_reproducible_with_readers_off() {
    let cfg = pinned_config();
    let a = run_once(&cfg);
    let b = run_once(&cfg);
    assert!(
        !a.schedule.is_empty(),
        "epochs planned at least one refresh"
    );
    assert_eq!(
        a.schedule, b.schedule,
        "schedule must be a pure function of the seed"
    );
    assert_eq!(
        a.outcome.refresh, b.outcome.refresh,
        "refresh counters reproduce too"
    );
}

#[test]
fn serve_loop_refreshes_and_bounds_staleness() {
    let out = run_once(&pinned_config());
    let r = out.outcome.refresh;
    assert!(r.scheduled >= 10, "scheduled {} refreshes", r.scheduled);
    assert_eq!(r.attempted(), r.completed + r.failed);
    assert!(r.completed > 0, "some refreshes completed: {r:?}");
    assert!(
        r.changed > 0,
        "an evolving origin must yield changed refetches: {r:?}"
    );
    assert!(out.store.len() > 20, "store serves the discovered corpus");
    assert!(out.staleness_p99 >= out.staleness_p50);
    assert_eq!(r.staleness_p50, out.staleness_p50);
    assert_eq!(r.staleness_p99, out.staleness_p99);
    // Refreshing the popular/likely-changed head each epoch keeps the
    // median bounded well under the run's epoch count.
    assert!(out.staleness_p50 <= 4.0, "p50 {} epochs", out.staleness_p50);

    // The store serves every scheduled URL, and generations advanced for
    // at least one refreshed page.
    let mut advanced = 0usize;
    for url in &out.schedule {
        let v = out.store.peek(url).expect("scheduled URLs are store-known");
        assert_eq!(
            v.body_hash,
            fnv64(v.body.as_slice()),
            "served hash matches served bytes"
        );
        if v.generation > 1 {
            advanced += 1;
        }
    }
    assert!(advanced > 0, "refreshes advanced at least one generation");
}

#[test]
fn read_load_feeds_popularity_and_staleness_percentiles() {
    let mut cfg = pinned_config();
    cfg.read = Some(sb_serve::ReadLoadConfig {
        readers: 2,
        reads_per_reader: 800,
        zipf_s: 1.1,
        seed: 7,
    });
    let base = build_site(&SiteSpec::demo(180), 99);
    let mut policy = ProportionalRevisit::default();
    let out = crawl_and_serve(base, &mut policy, &cfg);
    // 4 refresh epochs × 2 readers × 800 reads.
    assert_eq!(out.read.reads, 6_400);
    assert_eq!(out.read.misses, 0, "readers only sample store-known URLs");
    assert!(out.read.qps > 0.0);
    let urls = out.store.urls();
    assert!(out.store.reads(&urls[0]) > 0, "the Zipf head got read");
    assert_eq!(
        out.outcome.refresh.staleness_p50, out.staleness_p50,
        "percentiles ride RefreshStats"
    );
}
