//! The continuous crawl-and-serve loop: one crawl session, one snapshot
//! store, many origin epochs.
//!
//! [`serve_site`] wires the pieces together the way the paper's
//! data-acquisition pipeline runs in production: a single
//! [`CrawlSession`] first *discovers* the site (BFS under the shared
//! politeness gates and budget), every fetched page is committed to the
//! copy-on-write [`SnapshotStore`], and then, as the origin evolves
//! epoch by epoch, a [`RevisitPolicy`]-driven planner picks which known
//! URLs to refetch. Refreshes ride the **same** session — same
//! transport window, same politeness, same budget accounting — so
//! discovery of newly-linked pages interleaves with refresh traffic
//! instead of competing from a separate harness. Meanwhile an optional
//! [`ReadLoad`] hammers the store from reader threads, and a truth
//! oracle marks per-slot divergence on the [`StaleBoard`] so every read
//! samples its age-at-read; the aggregate p50/p99 land in
//! [`sb_crawler::RefreshStats`] as the freshness-SLA metric.
//!
//! Determinism: with readers off and `window == 1` the whole refresh
//! schedule is a pure function of the seed (pinned by a test). Reader
//! threads deliberately break that — read popularity feeds the refresh
//! priority, which is the point of the subsystem.

use crate::read::{percentile_of, ReadLoad, ReadLoadConfig, ReadReport, StaleBoard};
use crate::sched::plan_epoch;
use crate::store::SnapshotStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::{Budget, CrawlConfig, CrawlOutcome, CrawlSession, RefreshedPage};
use sb_httpsim::HttpServer;
use sb_revisit::{fnv64, ChangeModel, EvolvingServer, EvolvingSite, Observation, RevisitPolicy};
use sb_webgraph::Website;

/// Knobs of the crawl-and-serve loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How the origin evolves underneath the store.
    pub change: ChangeModel,
    /// Seed for the crawl, the planner pool and the read workload.
    pub seed: u64,
    /// Transport window (in-flight requests) of the single session.
    pub window: usize,
    /// GET quota of the initial discovery phase; the frontier left over
    /// keeps draining interleaved with later refresh epochs.
    pub discovery_requests: u64,
    /// Refreshes planned per origin epoch.
    pub refresh_per_epoch: usize,
    /// Replaced versions retained per URL in the store.
    pub retain: usize,
    /// Whole-run request budget shared by discovery and refresh.
    pub budget: Budget,
    /// Simulated read workload; `None` = serve nobody (the deterministic
    /// scheduling rung).
    pub read: Option<ReadLoadConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            change: ChangeModel::default(),
            seed: 0,
            window: 2,
            discovery_requests: 300,
            refresh_per_epoch: 16,
            retain: 2,
            budget: Budget::Unlimited,
            read: None,
        }
    }
}

/// What a crawl-and-serve run produced.
pub struct ServeOutcome {
    /// The underlying session's outcome; `outcome.refresh` carries the
    /// refresh counters and the staleness percentiles.
    pub outcome: CrawlOutcome,
    /// The store as it stands after the final epoch, still serving.
    pub store: SnapshotStore,
    /// Every refresh in the order it was queued, across all epochs.
    pub schedule: Vec<String>,
    /// Aggregate read-workload report (zeroed when `read` was `None`).
    pub read: ReadReport,
    /// Median / 99th-percentile age-at-read in origin epochs. With
    /// readers off these come from a per-epoch sweep of the stale board
    /// instead of the (empty) read stream.
    pub staleness_p50: f64,
    pub staleness_p99: f64,
}

/// The crawler's view of a page's section, derived from the URL path the
/// way the recrawl corpus derives in-link DOM paths: pages of one
/// section share one policy group.
pub fn in_path_of(url: &str) -> String {
    let path = url.splitn(4, '/').nth(3).unwrap_or("");
    let seg = path.split('/').next().unwrap_or("");
    if seg.is_empty() {
        "html body main a".to_owned()
    } else {
        format!("html body section.{seg} ul a")
    }
}

/// Evolves `base` under `cfg.change` and runs [`serve_site`] on it.
pub fn crawl_and_serve(
    base: Website,
    policy: &mut dyn RevisitPolicy,
    cfg: &ServeConfig,
) -> ServeOutcome {
    let site = EvolvingSite::evolve(base, &cfg.change, cfg.seed);
    serve_site(&site, policy, cfg)
}

/// Runs the continuous crawl-and-serve loop over an already-evolved
/// site. See the module docs for the phase structure.
pub fn serve_site(
    site: &EvolvingSite,
    policy: &mut dyn RevisitPolicy,
    cfg: &ServeConfig,
) -> ServeOutcome {
    let server = EvolvingServer::new(site);
    let base = site.snapshot(0);
    let root_url = base.page(base.root()).url.clone();
    server.set_epoch(0);

    let crawl_cfg = CrawlConfig::builder()
        .budget(cfg.budget)
        .rng_seed(cfg.seed)
        .max_in_flight(cfg.window.max(1))
        .serve_feed(true)
        .build()
        .expect("serve crawl config is valid by construction");
    let mut strategy = QueueStrategy::bfs();
    let mut session = CrawlSession::new(&server, None, &root_url, &mut strategy, &crawl_cfg)
        .expect("generated root URL is absolute");

    let store = SnapshotStore::new(cfg.retain);
    let mut board = StaleBoard::new(0);
    let mut schedule: Vec<String> = Vec::new();
    let mut read_total = ReadReport::default();
    let mut sweep_hist: Vec<u64> = Vec::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA076_1D64_78BD_642F);

    // Phase 0: discovery up to the quota (or frontier exhaustion). The
    // remaining frontier keeps draining inside later refresh epochs.
    while !session.is_finished() && session.traffic().get_requests < cfg.discovery_requests {
        session.step();
    }
    let new_pages = drain_feed(&mut session, &store, &board, policy);
    admit_new(&store, &mut board, policy, new_pages);

    for e in 1..site.epochs() {
        let epoch = e as u64;
        server.set_epoch(e);

        // Truth oracle: compare what the store serves against the live
        // origin and time-stamp divergence. Bypasses the session's
        // transport, so it spends no crawl budget and counts no reads.
        let urls = store.urls();
        for (slot, url) in urls.iter().enumerate() {
            let live = server.get(url);
            let fresh = live.status < 400
                && store
                    .peek(url)
                    .is_some_and(|v| v.body_hash == fnv64(live.body.as_slice()));
            if fresh {
                board.mark_fresh(slot);
            } else {
                board.mark_stale(slot, epoch);
            }
        }

        // Plan and queue this epoch's refreshes.
        policy.begin_epoch();
        let plan = plan_epoch(&store, policy, &mut rng, cfg.refresh_per_epoch);
        let target_attempts = session.refresh_stats().attempted() + plan.len() as u64;
        for entry in &plan {
            schedule.push(entry.url.clone());
            session.queue_refresh(&entry.url, entry.prior_hash);
        }

        // Drive the session until the queued refreshes resolve, with the
        // read workload (if any) hammering the store concurrently.
        let mut pending_new: Vec<RefreshedPage> = Vec::new();
        let report = std::thread::scope(|s| {
            let reader = cfg.read.clone().map(|rc| {
                let store = &store;
                let board = &board;
                s.spawn(move || ReadLoad::new(rc).run(store, board, epoch))
            });
            while !session.is_finished() && session.refresh_stats().attempted() < target_attempts {
                session.step();
                pending_new.extend(drain_feed(&mut session, &store, &board, policy));
            }
            pending_new.extend(drain_feed(&mut session, &store, &board, policy));
            reader
                .map(|h| h.join().expect("reader thread panicked"))
                .unwrap_or_default()
        });
        read_total.merge(&report);
        admit_new(&store, &mut board, policy, pending_new);

        // End-of-epoch staleness sweep: what the store would serve right
        // now, over every slot. This is the freshness signal at the
        // zero-reader rung and a cross-check otherwise.
        for slot in 0..board.len() {
            let age = board.age(slot, epoch) as usize;
            if sweep_hist.len() <= age {
                sweep_hist.resize(age + 1, 0);
            }
            sweep_hist[age] += 1;
        }
    }

    let (p50, p99) = if read_total.reads > 0 {
        (
            read_total.age_percentile(0.5),
            read_total.age_percentile(0.99),
        )
    } else {
        (
            percentile_of(&sweep_hist, 0.5),
            percentile_of(&sweep_hist, 0.99),
        )
    };
    session.set_staleness(p50, p99);
    let outcome = session.finish();

    ServeOutcome {
        outcome,
        store,
        schedule,
        read: read_total,
        staleness_p50: p50,
        staleness_p99: p99,
    }
}

/// Applies everything the session's serve feed buffered since the last
/// drain: refreshes of known URLs are committed (or observed as dead —
/// the store keeps serving the last good version), their slots marked
/// fresh and their outcome fed back to the policy; pages the store has
/// never seen are returned for [`admit_new`] (the stale board needs
/// `&mut` to grow, which the concurrent read phase forbids).
fn drain_feed(
    session: &mut CrawlSession<'_>,
    store: &SnapshotStore,
    board: &StaleBoard,
    policy: &mut dyn RevisitPolicy,
) -> Vec<RefreshedPage> {
    let mut pending_new = Vec::new();
    for page in session.take_refreshed() {
        match store.slot(&page.url) {
            Some(slot) => {
                if page.status < 400 {
                    if page.refresh {
                        policy.observe(
                            &page.url,
                            &Observation {
                                changed: page.changed,
                                new_targets: u64::from(page.changed),
                                died: false,
                            },
                        );
                    }
                    if page.changed {
                        store.commit(&page.url, page.status, page.body, page.body_hash);
                    }
                    if slot < board.len() {
                        board.mark_fresh(slot);
                    }
                } else if page.refresh {
                    // Dead on refetch: tell the policy, keep serving the
                    // last good version.
                    policy.observe(
                        &page.url,
                        &Observation {
                            changed: false,
                            new_targets: 0,
                            died: true,
                        },
                    );
                }
            }
            None if page.status < 400 => pending_new.push(page),
            None => {}
        }
    }
    pending_new
}

/// Commits newly-discovered pages, grows the stale board to match and
/// registers each page with the policy under its section group.
fn admit_new(
    store: &SnapshotStore,
    board: &mut StaleBoard,
    policy: &mut dyn RevisitPolicy,
    pages: Vec<RefreshedPage>,
) {
    for page in pages {
        if store.slot(&page.url).is_none() {
            policy.register(&page.url, &in_path_of(&page.url));
        }
        store.commit(&page.url, page.status, page.body, page.body_hash);
    }
    board.ensure(store.len());
}
