//! The freshness-SLA refresh planner: which known URLs to refetch this
//! epoch, and in what order.
//!
//! Per epoch the planner draws a candidate pool from the active
//! [`RevisitPolicy`] (the same `begin_epoch` → `next` loop the recrawl
//! harness drives, so the policy's own exploration shapes the pool),
//! then ranks candidates by
//!
//! ```text
//! priority(url) = estimate(url) × (1 + ln(1 + reads(url)))
//! ```
//!
//! — estimated change probability (from [`RevisitPolicy::estimate`])
//! weighted by read popularity (the [`SnapshotStore`]'s per-slot read
//! counters), so a page that is both likely stale *and* heavily read is
//! refreshed first. Ties and float equality break on URL order, which
//! keeps the plan byte-reproducible for a fixed seed when the read
//! counters are quiescent (the determinism pin in `tests/`).

use crate::store::SnapshotStore;
use rand::rngs::StdRng;
use sb_crawler::strategies::finite_or_zero;
use sb_revisit::RevisitPolicy;

/// One planned refresh: the URL, the hash the refetch is compared
/// against, and the priority it was ranked with.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub url: String,
    /// Body hash of the version currently served (prior for change
    /// detection in the session's refresh path).
    pub prior_hash: u64,
    pub score: f64,
}

/// How many candidates the planner draws per planned slot before
/// ranking. A pool wider than the budget lets popularity re-order what
/// the policy would have visited in its own order.
pub const POOL_FACTOR: usize = 4;

/// Total `policy.next` draws the planner is willing to spend per call,
/// as a multiple of the pool it is trying to fill. Policies that sample
/// with replacement never answer `None`; without this bound a store that
/// knows fewer than `POOL_FACTOR × per_epoch` of the policy's URLs kept
/// the draw loop spinning forever (store-unknown URLs `continue` without
/// growing the pool). 8× lets a sampling policy re-offer generously —
/// the pool still fills whenever fills are possible — while bounding the
/// worst case.
pub const MAX_DRAW_FACTOR: usize = 8;

/// Plans one refresh epoch: draws up to `POOL_FACTOR × per_epoch`
/// candidates from `policy`, keeps those the store knows, ranks them by
/// estimated-change × read-popularity and returns the top `per_epoch`
/// in refresh order. The caller is responsible for `policy.begin_epoch()`
/// beforehand (the policy may also be mid-epoch; the planner just drains
/// what it is offered).
pub fn plan_epoch(
    store: &SnapshotStore,
    policy: &mut dyn RevisitPolicy,
    rng: &mut StdRng,
    per_epoch: usize,
) -> Vec<PlanEntry> {
    if per_epoch == 0 {
        return Vec::new();
    }
    let mut pool = Vec::with_capacity(per_epoch * POOL_FACTOR);
    // Bounded by *draw attempts*, not only by pool growth: a policy that
    // samples with replacement never returns `None`, and store-unknown
    // draws don't grow the pool — unbounded, that combination loops
    // forever (the PR 10 regression test pins this).
    let max_draws = MAX_DRAW_FACTOR * POOL_FACTOR * per_epoch;
    for _ in 0..max_draws {
        if pool.len() >= per_epoch * POOL_FACTOR {
            break;
        }
        let Some(url) = policy.next(rng) else { break };
        let Some(current) = store.peek(&url) else {
            continue;
        };
        // Clamp before ranking: a degenerate estimator's NaN/∞ would
        // otherwise break `partial_cmp`'s total order below and with it
        // the byte-reproducible-schedule pin.
        let score =
            finite_or_zero(policy.estimate(&url)) * (1.0 + (1.0 + store.reads(&url) as f64).ln());
        debug_assert!(score.is_finite(), "clamped estimate cannot rank non-finite");
        pool.push(PlanEntry {
            url,
            prior_hash: current.body_hash,
            score,
        });
    }
    pool.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
    });
    pool.truncate(per_epoch);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sb_httpsim::Body;
    use sb_revisit::ProportionalRevisit;

    fn seeded_store(urls: &[&str]) -> SnapshotStore {
        let store = SnapshotStore::new(0);
        for (k, url) in urls.iter().enumerate() {
            let bytes = vec![k as u8; 16];
            let hash = sb_revisit::fnv64(&bytes);
            store.commit(url, 200, Body::from(bytes), hash);
        }
        store
    }

    #[test]
    fn popularity_breaks_estimate_ties() {
        let urls = ["https://s/a", "https://s/b", "https://s/c"];
        let store = seeded_store(&urls);
        // Same estimate everywhere (fresh policy), but /c is read-hot.
        for _ in 0..50 {
            store.read("https://s/c");
        }
        let mut policy = ProportionalRevisit::default();
        for u in &urls {
            policy.register(u, "html body main a");
        }
        let mut rng = StdRng::seed_from_u64(3);
        policy.begin_epoch();
        let plan = plan_epoch(&store, &mut policy, &mut rng, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan[0].url, "https://s/c",
            "read-hot page planned first: {plan:?}"
        );
        assert!(plan[0].score > plan[1].score);
    }

    #[test]
    fn unknown_urls_are_skipped_and_budget_is_respected() {
        let store = seeded_store(&["https://s/a"]);
        let mut policy = ProportionalRevisit::default();
        policy.register("https://s/a", "html body main a");
        policy.register("https://s/ghost", "html body main a");
        let mut rng = StdRng::seed_from_u64(3);
        policy.begin_epoch();
        let plan = plan_epoch(&store, &mut policy, &mut rng, 8);
        assert_eq!(plan.len(), 1, "only store-known URLs are planned");
        assert_eq!(plan[0].url, "https://s/a");
        let expect = store.peek("https://s/a").unwrap().body_hash;
        assert_eq!(plan[0].prior_hash, expect);
    }

    /// A policy that samples with replacement: `next` never answers
    /// `None`, cycling over its registered URLs forever — the shape that
    /// hung the unbounded draw loop whenever the store knew fewer than
    /// `POOL_FACTOR × per_epoch` of them.
    struct NeverExhausting {
        urls: Vec<String>,
        draws: std::cell::Cell<usize>,
        estimate: f64,
        /// `Some(n)`: exhaust after `n` draws (one-pass mode for tests
        /// that want a duplicate-free pool). `None`: never exhaust.
        limit: Option<usize>,
    }

    impl NeverExhausting {
        fn over(urls: &[&str]) -> Self {
            NeverExhausting {
                urls: urls.iter().map(|s| s.to_string()).collect(),
                draws: std::cell::Cell::new(0),
                estimate: 1.0,
                limit: None,
            }
        }
    }

    impl RevisitPolicy for NeverExhausting {
        fn name(&self) -> String {
            "NEVER-EXHAUSTING".to_owned()
        }

        fn register(&mut self, url: &str, _in_path: &str) {
            self.urls.push(url.to_owned());
        }

        fn begin_epoch(&mut self) {}

        fn next(&mut self, _rng: &mut StdRng) -> Option<String> {
            let k = self.draws.get();
            if self.limit.is_some_and(|n| k >= n) {
                return None;
            }
            self.draws.set(k + 1);
            Some(self.urls[k % self.urls.len()].clone())
        }

        fn observe(&mut self, _url: &str, _obs: &sb_revisit::Observation) {}

        fn estimate(&self, _url: &str) -> f64 {
            self.estimate
        }
    }

    /// Regression (PR 10): a never-exhausting policy over a store that
    /// knows fewer URLs than the pool it wants must terminate — bounded
    /// by total draw attempts — and still plan everything plannable.
    #[test]
    fn never_exhausting_policy_terminates_and_plans_known_urls() {
        // Store knows 2 URLs; the pool wants POOL_FACTOR × 8 = 32; the
        // policy happily re-offers ghosts forever.
        let store = seeded_store(&["https://s/a", "https://s/b"]);
        let mut policy =
            NeverExhausting::over(&["https://s/a", "https://s/b", "https://s/ghost"]);
        let mut rng = StdRng::seed_from_u64(5);
        let plan = plan_epoch(&store, &mut policy, &mut rng, 8);
        let drawn = policy.draws.get();
        assert!(drawn <= MAX_DRAW_FACTOR * POOL_FACTOR * 8, "draws bounded: {drawn}");
        // Only store-known URLs made the plan (a with-replacement policy
        // fills the pool with repeats; ghosts still never plan), capped
        // at the per-epoch budget.
        assert!(!plan.is_empty());
        assert!(plan.len() <= 8);
        assert!(plan.iter().all(|e| e.url != "https://s/ghost"), "{plan:?}");
    }

    /// Regression (PR 10): a NaN estimate is clamped to 0.0 before
    /// ranking, so the sort's total order — and with it the deterministic
    /// plan — survives a degenerate estimator. The NaN candidate ranks
    /// *last*, not arbitrarily.
    #[test]
    fn nan_estimates_are_clamped_not_ranked() {
        let store = seeded_store(&["https://s/a", "https://s/b", "https://s/c"]);
        let mut policy = NeverExhausting::over(&["https://s/a", "https://s/b", "https://s/c"]);
        policy.estimate = f64::NAN;
        policy.limit = Some(3); // one duplicate-free pass
        let mut rng = StdRng::seed_from_u64(5);
        let plan = plan_epoch(&store, &mut policy, &mut rng, 3);
        assert_eq!(plan.len(), 3);
        // All scores clamped to 0.0 × popularity = 0.0: pure URL order.
        assert!(plan.iter().all(|e| e.score == 0.0), "{plan:?}");
        let urls: Vec<&str> = plan.iter().map(|e| e.url.as_str()).collect();
        assert_eq!(urls, vec!["https://s/a", "https://s/b", "https://s/c"]);
    }

    #[test]
    fn plan_is_deterministic_for_a_fixed_seed() {
        let urls: Vec<String> = (0..20).map(|k| format!("https://s/p{k}")).collect();
        let refs: Vec<&str> = urls.iter().map(|s| s.as_str()).collect();
        let plans: Vec<Vec<String>> = (0..2)
            .map(|_| {
                let store = seeded_store(&refs);
                let mut policy = ProportionalRevisit::default();
                for u in &urls {
                    policy.register(u, "html body main a");
                }
                let mut rng = StdRng::seed_from_u64(77);
                policy.begin_epoch();
                plan_epoch(&store, &mut policy, &mut rng, 6)
                    .into_iter()
                    .map(|e| e.url)
                    .collect()
            })
            .collect();
        assert_eq!(plans[0], plans[1]);
        assert_eq!(plans[0].len(), 6);
    }
}
