//! The freshness-SLA refresh planner: which known URLs to refetch this
//! epoch, and in what order.
//!
//! Per epoch the planner draws a candidate pool from the active
//! [`RevisitPolicy`] (the same `begin_epoch` → `next` loop the recrawl
//! harness drives, so the policy's own exploration shapes the pool),
//! then ranks candidates by
//!
//! ```text
//! priority(url) = estimate(url) × (1 + ln(1 + reads(url)))
//! ```
//!
//! — estimated change probability (from [`RevisitPolicy::estimate`])
//! weighted by read popularity (the [`SnapshotStore`]'s per-slot read
//! counters), so a page that is both likely stale *and* heavily read is
//! refreshed first. Ties and float equality break on URL order, which
//! keeps the plan byte-reproducible for a fixed seed when the read
//! counters are quiescent (the determinism pin in `tests/`).

use crate::store::SnapshotStore;
use rand::rngs::StdRng;
use sb_revisit::RevisitPolicy;

/// One planned refresh: the URL, the hash the refetch is compared
/// against, and the priority it was ranked with.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub url: String,
    /// Body hash of the version currently served (prior for change
    /// detection in the session's refresh path).
    pub prior_hash: u64,
    pub score: f64,
}

/// How many candidates the planner draws per planned slot before
/// ranking. A pool wider than the budget lets popularity re-order what
/// the policy would have visited in its own order.
pub const POOL_FACTOR: usize = 4;

/// Plans one refresh epoch: draws up to `POOL_FACTOR × per_epoch`
/// candidates from `policy`, keeps those the store knows, ranks them by
/// estimated-change × read-popularity and returns the top `per_epoch`
/// in refresh order. The caller is responsible for `policy.begin_epoch()`
/// beforehand (the policy may also be mid-epoch; the planner just drains
/// what it is offered).
pub fn plan_epoch(
    store: &SnapshotStore,
    policy: &mut dyn RevisitPolicy,
    rng: &mut StdRng,
    per_epoch: usize,
) -> Vec<PlanEntry> {
    if per_epoch == 0 {
        return Vec::new();
    }
    let mut pool = Vec::with_capacity(per_epoch * POOL_FACTOR);
    while pool.len() < per_epoch * POOL_FACTOR {
        let Some(url) = policy.next(rng) else { break };
        let Some(current) = store.peek(&url) else {
            continue;
        };
        let score = policy.estimate(&url) * (1.0 + (1.0 + store.reads(&url) as f64).ln());
        pool.push(PlanEntry {
            url,
            prior_hash: current.body_hash,
            score,
        });
    }
    pool.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.url.cmp(&b.url))
    });
    pool.truncate(per_epoch);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sb_httpsim::Body;
    use sb_revisit::ProportionalRevisit;

    fn seeded_store(urls: &[&str]) -> SnapshotStore {
        let store = SnapshotStore::new(0);
        for (k, url) in urls.iter().enumerate() {
            let bytes = vec![k as u8; 16];
            let hash = sb_revisit::fnv64(&bytes);
            store.commit(url, 200, Body::from(bytes), hash);
        }
        store
    }

    #[test]
    fn popularity_breaks_estimate_ties() {
        let urls = ["https://s/a", "https://s/b", "https://s/c"];
        let store = seeded_store(&urls);
        // Same estimate everywhere (fresh policy), but /c is read-hot.
        for _ in 0..50 {
            store.read("https://s/c");
        }
        let mut policy = ProportionalRevisit::default();
        for u in &urls {
            policy.register(u, "html body main a");
        }
        let mut rng = StdRng::seed_from_u64(3);
        policy.begin_epoch();
        let plan = plan_epoch(&store, &mut policy, &mut rng, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan[0].url, "https://s/c",
            "read-hot page planned first: {plan:?}"
        );
        assert!(plan[0].score > plan[1].score);
    }

    #[test]
    fn unknown_urls_are_skipped_and_budget_is_respected() {
        let store = seeded_store(&["https://s/a"]);
        let mut policy = ProportionalRevisit::default();
        policy.register("https://s/a", "html body main a");
        policy.register("https://s/ghost", "html body main a");
        let mut rng = StdRng::seed_from_u64(3);
        policy.begin_epoch();
        let plan = plan_epoch(&store, &mut policy, &mut rng, 8);
        assert_eq!(plan.len(), 1, "only store-known URLs are planned");
        assert_eq!(plan[0].url, "https://s/a");
        let expect = store.peek("https://s/a").unwrap().body_hash;
        assert_eq!(plan[0].prior_hash, expect);
    }

    #[test]
    fn plan_is_deterministic_for_a_fixed_seed() {
        let urls: Vec<String> = (0..20).map(|k| format!("https://s/p{k}")).collect();
        let refs: Vec<&str> = urls.iter().map(|s| s.as_str()).collect();
        let plans: Vec<Vec<String>> = (0..2)
            .map(|_| {
                let store = seeded_store(&refs);
                let mut policy = ProportionalRevisit::default();
                for u in &urls {
                    policy.register(u, "html body main a");
                }
                let mut rng = StdRng::seed_from_u64(77);
                policy.begin_epoch();
                plan_epoch(&store, &mut policy, &mut rng, 6)
                    .into_iter()
                    .map(|e| e.url)
                    .collect()
            })
            .collect();
        assert_eq!(plans[0], plans[1]);
        assert_eq!(plans[0].len(), 6);
    }
}
