//! [`SnapshotStore`]: the versioned, copy-on-write page store that the
//! read workload hits while the crawler refreshes it.
//!
//! Layout: an [`ArcCell`]-published *shelf* maps URL → slot; each slot is
//! a `VersionCell` whose current [`PageVersion`] is itself an `ArcCell`.
//! The shelf is cloned only when a **new URL** is inserted (copy-on-write
//! of the index — cheap `Arc` clones of the cells, never of bodies);
//! committing a fresh version of a *known* URL touches only that slot's
//! pointer. Readers therefore never block, never see a torn page, and a
//! read costs two lock-free loads plus one relaxed counter bump (the
//! popularity signal the refresh scheduler consumes).
//!
//! Per-URL **generations** are monotonic: commit *k* for a URL carries
//! generation *k*, generations are assigned under the writer lock, and
//! version pointers are published in assignment order — so two successive
//! reads of one URL can never observe generations going backwards.
//! Replaced versions are retained in a bounded per-slot history (the
//! retained-version budget), so a version a reader still holds stays
//! cheap — dropping history only drops `Arc`s.

use crate::cell::ArcCell;
use parking_lot::Mutex;
use sb_httpsim::Body;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// One committed, immutable version of one page.
#[derive(Debug)]
pub struct PageVersion {
    pub url: Arc<str>,
    pub status: u16,
    /// Shared body bytes — committing and serving never copy them.
    pub body: Body,
    /// FNV-1a of the body (matches `sb_revisit::fnv64` and the core
    /// session's refresh hashing, pinned by a test).
    pub body_hash: u64,
    /// 1-based per-URL commit counter; strictly monotonic per URL.
    pub generation: u64,
}

struct VersionCell {
    url: Arc<str>,
    current: ArcCell<PageVersion>,
    generation: AtomicU64,
    /// Reads served from this slot — the popularity signal.
    reads: AtomicU64,
    /// Replaced versions, newest first, capped at the retain budget.
    history: Mutex<VecDeque<Arc<PageVersion>>>,
}

struct Shelf {
    index: HashMap<Arc<str>, usize>,
    cells: Vec<Arc<VersionCell>>,
}

/// The copy-on-write, versioned page store. See the module docs.
pub struct SnapshotStore {
    shelf: ArcCell<Shelf>,
    /// Serialises inserts and commits; readers never take it.
    writer: Mutex<()>,
    retain: usize,
}

impl SnapshotStore {
    /// An empty store retaining at most `retain` replaced versions per
    /// URL (0 = current version only).
    pub fn new(retain: usize) -> Self {
        SnapshotStore {
            shelf: ArcCell::new(Arc::new(Shelf {
                index: HashMap::new(),
                cells: Vec::new(),
            })),
            writer: Mutex::new(()),
            retain,
        }
    }

    /// Serves the current version of `url` and counts the read. This is
    /// the reader hot path: two lock-free loads, one counter bump, no
    /// allocation beyond the returned `Arc`.
    pub fn read(&self, url: &str) -> Option<Arc<PageVersion>> {
        let shelf = self.shelf.load();
        let cell = &shelf.cells[*shelf.index.get(url)?];
        cell.reads.fetch_add(1, Relaxed);
        Some(cell.current.load())
    }

    /// The current version without counting a read — for schedulers and
    /// oracles that must not pollute the popularity signal.
    pub fn peek(&self, url: &str) -> Option<Arc<PageVersion>> {
        let shelf = self.shelf.load();
        Some(shelf.cells[*shelf.index.get(url)?].current.load())
    }

    /// Commits a new version of `url`, inserting the URL on first sight.
    /// Returns the version's generation (1 for a brand-new URL).
    pub fn commit(&self, url: &str, status: u16, body: Body, body_hash: u64) -> u64 {
        let _writer = self.writer.lock();
        let shelf = self.shelf.load();
        let cell = match shelf.index.get(url) {
            Some(&i) => Arc::clone(&shelf.cells[i]),
            None => {
                // New URL: copy-on-write shelf clone (Arc clones only).
                let u: Arc<str> = Arc::from(url);
                let cell = Arc::new(VersionCell {
                    url: Arc::clone(&u),
                    current: ArcCell::new(Arc::new(PageVersion {
                        url: Arc::clone(&u),
                        status,
                        body: body.clone(),
                        body_hash,
                        generation: 1,
                    })),
                    generation: AtomicU64::new(1),
                    reads: AtomicU64::new(0),
                    history: Mutex::new(VecDeque::new()),
                });
                let mut index = shelf.index.clone();
                let mut cells = shelf.cells.clone();
                index.insert(u, cells.len());
                cells.push(Arc::clone(&cell));
                self.shelf.store(Arc::new(Shelf { index, cells }));
                return 1;
            }
        };
        drop(shelf);
        let generation = cell.generation.fetch_add(1, Relaxed) + 1;
        let next = Arc::new(PageVersion {
            url: Arc::clone(&cell.url),
            status,
            body,
            body_hash,
            generation,
        });
        let old = cell.current.store(next);
        let mut history = cell.history.lock();
        history.push_front(old);
        history.truncate(self.retain);
        generation
    }

    /// Slot of `url` in insertion order, if known. Slot indexes are
    /// stable for the life of the store (the shelf only grows).
    pub fn slot(&self, url: &str) -> Option<usize> {
        self.shelf.load().index.get(url).copied()
    }

    pub fn len(&self) -> usize {
        self.shelf.load().cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every known URL, in insertion (slot) order.
    pub fn urls(&self) -> Vec<Arc<str>> {
        self.shelf
            .load()
            .cells
            .iter()
            .map(|c| Arc::clone(&c.url))
            .collect()
    }

    /// Reads served for `url` so far (the popularity signal).
    pub fn reads(&self, url: &str) -> u64 {
        let shelf = self.shelf.load();
        shelf
            .index
            .get(url)
            .map_or(0, |&i| shelf.cells[i].reads.load(Relaxed))
    }

    /// Current generation of `url` (0 if unknown).
    pub fn generation(&self, url: &str) -> u64 {
        let shelf = self.shelf.load();
        shelf
            .index
            .get(url)
            .map_or(0, |&i| shelf.cells[i].generation.load(Relaxed))
    }

    /// Replaced versions currently retained for `url`.
    pub fn retained(&self, url: &str) -> usize {
        let shelf = self.shelf.load();
        shelf
            .index
            .get(url)
            .map_or(0, |&i| shelf.cells[i].history.lock().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_of(tag: u64) -> (Body, u64) {
        let bytes: Vec<u8> = tag.to_le_bytes().repeat(16);
        let hash = sb_revisit::fnv64(&bytes);
        (Body::from(bytes), hash)
    }

    #[test]
    fn commit_then_read_roundtrips() {
        let store = SnapshotStore::new(2);
        let (body, hash) = body_of(1);
        assert_eq!(store.commit("https://s/a", 200, body, hash), 1);
        let v = store.read("https://s/a").expect("known");
        assert_eq!(v.status, 200);
        assert_eq!(v.body_hash, hash);
        assert_eq!(v.generation, 1);
        assert_eq!(store.reads("https://s/a"), 1);
        assert_eq!(store.peek("https://s/a").expect("known").generation, 1);
        assert_eq!(store.reads("https://s/a"), 1, "peek does not count");
        assert!(store.read("https://s/b").is_none());
    }

    #[test]
    fn generations_are_monotonic_and_history_is_bounded() {
        let store = SnapshotStore::new(2);
        for k in 1..=5u64 {
            let (body, hash) = body_of(k);
            assert_eq!(store.commit("https://s/a", 200, body, hash), k);
        }
        assert_eq!(store.generation("https://s/a"), 5);
        assert_eq!(
            store.retained("https://s/a"),
            2,
            "retain budget caps history"
        );
        assert_eq!(store.read("https://s/a").expect("known").generation, 5);
    }

    #[test]
    fn insertion_order_is_slot_order() {
        let store = SnapshotStore::new(0);
        for (k, url) in ["https://s/c", "https://s/a", "https://s/b"]
            .iter()
            .enumerate()
        {
            let (body, hash) = body_of(k as u64);
            store.commit(url, 200, body, hash);
            assert_eq!(store.slot(url), Some(k));
        }
        let urls = store.urls();
        assert_eq!(urls.len(), 3);
        assert_eq!(&*urls[0], "https://s/c");
        assert_eq!(&*urls[2], "https://s/b");
    }

    #[test]
    fn reader_holding_old_version_is_unaffected_by_commits() {
        let store = SnapshotStore::new(0);
        let (b1, h1) = body_of(10);
        store.commit("https://s/a", 200, b1, h1);
        let held = store.read("https://s/a").expect("known");
        let (b2, h2) = body_of(20);
        store.commit("https://s/a", 200, b2, h2);
        assert_eq!(held.body_hash, h1, "held version is immutable");
        assert_eq!(store.peek("https://s/a").expect("known").body_hash, h2);
    }
}
