//! The simulated read workload and the staleness instrumentation.
//!
//! [`ReadLoad`] models the paper's "millions of users" end of the
//! pipeline: `readers` threads issue a seeded Zipf-distributed stream of
//! page reads against the [`SnapshotStore`] while the crawler refreshes
//! it, and every read samples the page's **age** — how many origin
//! epochs the served version lags the evolving site — off the
//! [`StaleBoard`]. The aggregate age distribution's p50/p99 are the
//! freshness-SLA metric (`staleness_p50`/`p99` in
//! [`sb_crawler::RefreshStats`]).
//!
//! The vendored `rand` has no Zipf distribution, so [`Zipf`] hand-rolls
//! the standard CDF-inversion sampler: weights `i^-s` over ranks
//! `1..=n`, binary-searched per draw. Rank 0 maps to the store's slot 0
//! (first URL discovered), matching the head-heavy access pattern of
//! real read traffic landing on a crawled corpus.

use crate::store::SnapshotStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Seeded Zipf(s) sampler over ranks `0..n` via CDF inversion.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Panics if `n == 0`. `s = 0` degenerates to uniform.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let x: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

/// Per-slot staleness marks, written by the serve runtime's oracle and
/// read (lock-free) by every reader at sample time. `0` = the stored
/// version matches the live origin; `m > 0` = it diverged when the origin
/// entered epoch `m`.
pub struct StaleBoard {
    marks: Vec<AtomicU64>,
}

impl StaleBoard {
    pub fn new(n: usize) -> Self {
        StaleBoard {
            marks: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Grows the board to `n` slots (new slots fresh). Requires `&mut`:
    /// only call between read phases.
    pub fn ensure(&mut self, n: usize) {
        while self.marks.len() < n {
            self.marks.push(AtomicU64::new(0));
        }
    }

    pub fn len(&self) -> usize {
        self.marks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Marks `slot` stale as of `epoch` unless it already went stale
    /// earlier (the first divergence epoch is what ages are counted from).
    pub fn mark_stale(&self, slot: usize, epoch: u64) {
        let _ = self.marks[slot].compare_exchange(0, epoch, Relaxed, Relaxed);
    }

    pub fn mark_fresh(&self, slot: usize) {
        self.marks[slot].store(0, Relaxed);
    }

    /// Age-at-read in epochs: `0` when fresh, else how many epochs
    /// (inclusive) the stored copy has lagged the origin by `epoch_now`.
    pub fn age(&self, slot: usize, epoch_now: u64) -> u64 {
        match self.marks[slot].load(Relaxed) {
            0 => 0,
            m => epoch_now.saturating_sub(m) + 1,
        }
    }
}

/// Read workload knobs.
#[derive(Debug, Clone)]
pub struct ReadLoadConfig {
    /// Reader threads.
    pub readers: usize,
    /// Reads each thread issues per refresh epoch.
    pub reads_per_reader: usize,
    /// Zipf exponent of the popularity skew (0 = uniform).
    pub zipf_s: f64,
    /// Base seed; each thread derives its own stream from it.
    pub seed: u64,
}

impl Default for ReadLoadConfig {
    fn default() -> Self {
        ReadLoadConfig {
            readers: 2,
            reads_per_reader: 2_000,
            zipf_s: 1.1,
            seed: 0,
        }
    }
}

/// What a read phase measured.
#[derive(Debug, Clone, Default)]
pub struct ReadReport {
    pub reads: u64,
    /// Reads of URLs the store did not know (0 when sampling store URLs).
    pub misses: u64,
    pub wall_secs: f64,
    /// Achieved read throughput (reads / wall_secs).
    pub qps: f64,
    /// Histogram of age-at-read: `ages[a]` = reads that sampled age `a`.
    pub ages: Vec<u64>,
}

impl ReadReport {
    pub fn merge(&mut self, other: &ReadReport) {
        self.reads += other.reads;
        self.misses += other.misses;
        self.wall_secs += other.wall_secs;
        if self.ages.len() < other.ages.len() {
            self.ages.resize(other.ages.len(), 0);
        }
        for (a, n) in other.ages.iter().enumerate() {
            self.ages[a] += n;
        }
        self.qps = if self.wall_secs > 0.0 {
            self.reads as f64 / self.wall_secs
        } else {
            0.0
        };
    }

    /// The `q`-th percentile of the age-at-read distribution, in epochs.
    pub fn age_percentile(&self, q: f64) -> f64 {
        percentile_of(&self.ages, q)
    }
}

/// The `q`-th percentile (0..=1) of a count histogram indexed by value.
pub fn percentile_of(hist: &[u64], q: f64) -> f64 {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let want = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (age, n) in hist.iter().enumerate() {
        seen += n;
        if seen >= want {
            return age as f64;
        }
    }
    (hist.len() - 1) as f64
}

/// The simulated read workload. [`ReadLoad::run`] drives one phase on
/// the calling scope's threads and aggregates per-thread reports.
pub struct ReadLoad {
    cfg: ReadLoadConfig,
}

impl ReadLoad {
    pub fn new(cfg: ReadLoadConfig) -> Self {
        ReadLoad { cfg }
    }

    /// One read phase against `store`, sampling ages off `board` at
    /// origin epoch `epoch_now`. Blocks until every reader thread drains
    /// its quota; call it concurrently with the refresh drive by spawning
    /// it on its own scope thread.
    pub fn run(&self, store: &SnapshotStore, board: &StaleBoard, epoch_now: u64) -> ReadReport {
        let urls = store.urls();
        if urls.is_empty() || self.cfg.readers == 0 || self.cfg.reads_per_reader == 0 {
            return ReadReport::default();
        }
        let zipf = Zipf::new(urls.len(), self.cfg.zipf_s);
        let mut merged = ReadReport::default();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.cfg.readers)
                .map(|t| {
                    let urls = &urls;
                    let zipf = &zipf;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(
                            self.cfg.seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        let mut report = ReadReport::default();
                        let started = std::time::Instant::now();
                        for _ in 0..self.cfg.reads_per_reader {
                            let slot = zipf.sample(&mut rng);
                            report.reads += 1;
                            match store.read(&urls[slot]) {
                                None => report.misses += 1,
                                Some(v) => {
                                    debug_assert!(!v.url.is_empty());
                                    let age = if slot < board.len() {
                                        board.age(slot, epoch_now) as usize
                                    } else {
                                        0
                                    };
                                    if report.ages.len() <= age {
                                        report.ages.resize(age + 1, 0);
                                    }
                                    report.ages[age] += 1;
                                }
                            }
                        }
                        report.wall_secs = started.elapsed().as_secs_f64();
                        report
                    })
                })
                .collect();
            for h in handles {
                merged.merge(&h.join().expect("reader thread panicked"));
            }
        });
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_httpsim::Body;

    #[test]
    fn zipf_is_head_heavy_and_deterministic() {
        let z = Zipf::new(100, 1.2);
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut head = 0usize;
        for _ in 0..2_000 {
            let x = z.sample(&mut a);
            assert_eq!(x, z.sample(&mut b), "same seed, same stream");
            assert!(x < 100);
            if x < 10 {
                head += 1;
            }
        }
        // Top 10 % of ranks draw well over half the mass at s = 1.2.
        assert!(head > 1_000, "only {head}/2000 samples in the head");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 4];
        for _ in 0..4_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "uniform-ish: {counts:?}");
    }

    #[test]
    fn staleboard_ages() {
        let mut board = StaleBoard::new(2);
        assert_eq!(board.age(0, 5), 0);
        board.mark_stale(0, 3);
        board.mark_stale(0, 4); // keeps the earlier divergence epoch
        assert_eq!(board.age(0, 3), 1);
        assert_eq!(board.age(0, 5), 3);
        board.mark_fresh(0);
        assert_eq!(board.age(0, 5), 0);
        board.ensure(4);
        assert_eq!(board.len(), 4);
        assert_eq!(board.age(3, 9), 0, "grown slots start fresh");
    }

    #[test]
    fn percentiles_of_histogram() {
        // 90 reads at age 0, 9 at age 2, 1 at age 7.
        let mut hist = vec![0u64; 8];
        hist[0] = 90;
        hist[2] = 9;
        hist[7] = 1;
        assert_eq!(percentile_of(&hist, 0.5), 0.0);
        assert_eq!(percentile_of(&hist, 0.95), 2.0);
        assert_eq!(percentile_of(&hist, 0.999), 7.0);
        assert_eq!(percentile_of(&[], 0.5), 0.0);
    }

    #[test]
    fn read_load_reports_reads_and_ages() {
        let store = SnapshotStore::new(0);
        for k in 0..5u64 {
            let body = Body::from(vec![k as u8; 8]);
            let hash = sb_revisit::fnv64(body.as_slice());
            store.commit(&format!("https://s/p{k}"), 200, body, hash);
        }
        let board = StaleBoard::new(5);
        board.mark_stale(0, 2);
        let load = ReadLoad::new(ReadLoadConfig {
            readers: 2,
            reads_per_reader: 500,
            zipf_s: 1.0,
            seed: 11,
        });
        let report = load.run(&store, &board, 4);
        assert_eq!(report.reads, 1_000);
        assert_eq!(report.misses, 0);
        assert!(report.qps > 0.0);
        // Slot 0 is the Zipf head and it is 3 epochs stale.
        assert!(report.ages.len() > 3);
        assert!(report.ages[3] > 0, "stale head sampled: {:?}", report.ages);
        assert!(report.age_percentile(0.99) >= report.age_percentile(0.5));
        assert_eq!(store.reads("https://s/p0") > 0, true);
    }
}
