//! [`ArcCell`]: an atomically swappable `Arc<T>` slot with wait-free-ish
//! readers — the synchronisation primitive under the snapshot store.
//!
//! `load` never blocks on a lock and never observes a torn value: the
//! pointer is published with a single atomic swap, so a reader sees either
//! the complete old `Arc` or the complete new one. The subtlety is
//! *reclamation* — a reader that has loaded the raw pointer but not yet
//! bumped the refcount must not race a writer dropping that pointer's last
//! reference. The classic fix (epoch-based reclamation, as in
//! userspace-RCU) is used here in a deliberately small form:
//!
//! * Readers **pin** one of two parity counters (`readers[epoch & 1]`)
//!   before touching the pointer, and *re-check* the epoch after pinning.
//!   A reader that pinned a stale parity (the writer flipped in between)
//!   unpins and retries; one that passes the re-check is guaranteed the
//!   writer has not yet entered its grace period.
//! * Writers serialise on a mutex, swap the pointer, flip the epoch, and
//!   then spin until the *old* parity's pin count drains before dropping
//!   the replaced `Arc`. Serialisation is load-bearing: because the next
//!   writer cannot start until the previous one's grace period ends, a
//!   pinned reader can only ever dereference a pointer whose reclaimer is
//!   the very writer currently waiting on that reader's parity — so the
//!   refcount bump always happens before the matching drop.
//!
//! Writers may briefly spin; readers only retry if they lose a race with
//! an epoch flip, which a writer cannot re-trigger until all pinned
//! readers finish. `SeqCst` everywhere: this cell is swapped a few
//! thousand times per run while being read millions of times, so the
//! write-side cost is irrelevant and the reasoning stays simple.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// A shared slot holding an `Arc<T>`, readable without locks and
/// replaceable with a single atomic pointer swap.
pub struct ArcCell<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicUsize,
    readers: [AtomicUsize; 2],
    writer: Mutex<()>,
}

// The cell hands out `Arc<T>` across threads and mutates the slot from
// any thread, so it needs exactly what `Arc<T>: Send + Sync` needs.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

impl<T> ArcCell<T> {
    pub fn new(value: Arc<T>) -> Self {
        ArcCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// A complete, previously-committed value. Lock-free: at most a few
    /// retries when racing an epoch flip, never a blocking wait.
    pub fn load(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(SeqCst);
            let pin = &self.readers[e & 1];
            pin.fetch_add(1, SeqCst);
            if self.epoch.load(SeqCst) != e {
                // Lost the race: the writer flipped between our epoch read
                // and our pin, so it is *not* waiting on this parity and
                // the pointer may already be in its grace period.
                pin.fetch_sub(1, SeqCst);
                continue;
            }
            // Passing the re-check while pinned guarantees the current
            // writer (if any) drains this parity before dropping whatever
            // pointer we are about to read — see the module docs.
            let p = self.ptr.load(SeqCst);
            let value = unsafe {
                Arc::increment_strong_count(p);
                Arc::from_raw(p)
            };
            pin.fetch_sub(1, SeqCst);
            return value;
        }
    }

    /// Publishes `value` and returns the replaced `Arc` after the grace
    /// period — once no in-flight reader can still dereference it.
    pub fn store(&self, value: Arc<T>) -> Arc<T> {
        let _writer = self.writer.lock();
        let new = Arc::into_raw(value).cast_mut();
        let old = self.ptr.swap(new, SeqCst);
        let e = self.epoch.fetch_add(1, SeqCst);
        while self.readers[e & 1].load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        unsafe { Arc::from_raw(old) }
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        // &mut self: no readers or writers can exist; reclaim the slot.
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn load_returns_stored_value() {
        let cell = ArcCell::new(Arc::new(7u32));
        assert_eq!(*cell.load(), 7);
        let old = cell.store(Arc::new(8));
        assert_eq!(*old, 7);
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn drop_reclaims_exactly_once() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, SeqCst);
            }
        }
        {
            let cell = ArcCell::new(Arc::new(D));
            let old = cell.store(Arc::new(D));
            drop(old);
            assert_eq!(DROPS.load(SeqCst), 1, "replaced value dropped once");
        }
        assert_eq!(
            DROPS.load(SeqCst),
            2,
            "cell drop reclaims the current value"
        );
    }

    #[test]
    fn held_arc_outlives_replacement() {
        let cell = ArcCell::new(Arc::new(vec![1u8; 64]));
        let held = cell.load();
        cell.store(Arc::new(vec![2u8; 64]));
        cell.store(Arc::new(vec![3u8; 64]));
        assert!(
            held.iter().all(|&b| b == 1),
            "reader's Arc is immutable history"
        );
    }

    /// Concurrent readers under a storm of writes: every loaded value is
    /// internally consistent (untorn) and the observed sequence is
    /// monotone per reader.
    #[test]
    fn concurrent_loads_see_complete_monotone_values() {
        const WRITES: u64 = 3_000;
        const READERS: usize = 4;
        let cell = ArcCell::new(Arc::new(vec![0u64; 8]));
        std::thread::scope(|s| {
            for _ in 0..READERS {
                s.spawn(|| {
                    let mut last = 0u64;
                    while last < WRITES {
                        let v = cell.load();
                        let first = v[0];
                        assert!(v.iter().all(|&x| x == first), "torn value {v:?}");
                        assert!(first >= last, "went backwards: {first} after {last}");
                        last = first;
                    }
                });
            }
            s.spawn(|| {
                for i in 1..=WRITES {
                    cell.store(Arc::new(vec![i; 8]));
                }
            });
        });
        assert_eq!(cell.load()[0], WRITES);
    }
}
