//! # sb-serve — continuous crawl-and-serve
//!
//! The serving half of the paper's data-acquisition story: the crawler
//! does not stop when the frontier drains — it keeps the acquired corpus
//! *fresh* while a read workload consumes it. This crate turns the
//! one-shot crawl (`sb-crawler`) plus the recrawl machinery
//! (`sb-revisit`) into a long-running subsystem:
//!
//! * [`cell::ArcCell`] — the lock-free snapshot primitive: an atomically
//!   swappable `Arc<T>` with epoch-based reclamation. Readers never
//!   block and never observe a torn value.
//! * [`store::SnapshotStore`] — versioned, copy-on-write page store.
//!   Per-URL generations are monotonic, replaced versions are retained
//!   under a bounded budget, and a read is two lock-free loads plus a
//!   relaxed popularity bump.
//! * [`sched`] — the freshness-SLA planner: per origin epoch it ranks
//!   refresh candidates by *estimated change* ([`sb_revisit`] policies)
//!   × *read popularity* (store counters) and feeds the winners back
//!   into the live [`sb_crawler::CrawlSession`] via its refresh queue,
//!   so refresh and residual discovery share one politeness/budget
//!   window.
//! * [`read`] — the simulated read side: seeded Zipf readers measuring
//!   achieved QPS and age-at-read percentiles off the [`read::StaleBoard`].
//! * [`runtime`] — [`runtime::serve_site`] wires all of it into the
//!   continuous loop and reports `staleness_p50`/`p99` through
//!   [`sb_crawler::RefreshStats`].
//!
//! Invariants pinned by this crate's tests: readers only ever observe
//! complete, previously-committed versions with per-URL monotone
//! generations (proptest interleaving), and with readers off at
//! `window == 1` the refresh schedule is byte-reproducible for a fixed
//! seed.

pub mod cell;
pub mod read;
pub mod runtime;
pub mod sched;
pub mod store;

pub use cell::ArcCell;
pub use read::{percentile_of, ReadLoad, ReadLoadConfig, ReadReport, StaleBoard, Zipf};
pub use runtime::{crawl_and_serve, in_path_of, serve_site, ServeConfig, ServeOutcome};
pub use sched::{plan_epoch, PlanEntry, POOL_FACTOR};
pub use store::{PageVersion, SnapshotStore};
