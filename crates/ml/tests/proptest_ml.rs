//! Property tests for the feature pipeline and the online models.

use proptest::prelude::*;
use sb_ml::features::{featurize, FeatureInput, FeatureSet};
use sb_ml::metrics::{Class3, Confusion};
use sb_ml::models::ModelKind;
use sb_ml::{Class2, UrlClassifier};

proptest! {
    /// Featurisation is total, deterministic and L2-normalised for any URL.
    #[test]
    fn featurize_total_and_normalised(url in ".{0,120}") {
        let a = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only(&url));
        let b = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only(&url));
        prop_assert_eq!(&a, &b);
        if a.nnz() > 0 {
            prop_assert!((a.norm_sq() - 1.0).abs() < 1e-4);
        }
        // Indices strictly increasing and in range.
        prop_assert!(a.items.windows(2).all(|w| w[0].0 < w[1].0));
        for &(i, _) in &a.items {
            prop_assert!((i as usize) < FeatureSet::UrlOnly.dim());
        }
    }

    /// Every model kind, trained on linearly separated URL families, gets
    /// the held-out family members right — regardless of batch slicing.
    #[test]
    fn models_learn_under_any_batching(
        batch_size in 2usize..40,
        kind_idx in 0usize..4,
    ) {
        let kind = ModelKind::ALL[kind_idx];
        let mut clf = UrlClassifier::new(kind, FeatureSet::UrlOnly, batch_size);
        for i in 0..120 {
            let (url, class) = if i % 2 == 0 {
                (format!("https://a.com/files/data-{i}.csv"), Class2::Target)
            } else {
                (format!("https://a.com/pages/article-{i}.html"), Class2::Html)
            };
            clf.observe(&FeatureInput::url_only(&url), class);
        }
        let mut right = 0;
        for i in 500..520 {
            if clf.predict(&FeatureInput::url_only(&format!("https://a.com/files/data-{i}.csv")))
                == Class2::Target
            {
                right += 1;
            }
            if clf.predict(&FeatureInput::url_only(&format!("https://a.com/pages/article-{i}.html")))
                == Class2::Html
            {
                right += 1;
            }
        }
        prop_assert!(right >= 34, "{:?} with b={batch_size}: {right}/40", kind);
    }

    /// Confusion-matrix percentages always sum to 100 and MR is within
    /// [0, 100], for any record pattern.
    #[test]
    fn confusion_invariants(records in proptest::collection::vec((0usize..3, 0usize..2), 1..200)) {
        let mut c = Confusion::new();
        for (t, p) in records {
            c.record(Class3::ALL[t], Class3::ALL[p]);
        }
        let total: f64 = c.percentages().iter().flatten().sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
        let mr = c.misclassification_rate();
        prop_assert!((0.0..=100.0).contains(&mr));
        // Predicted-Neither column is structurally zero for 2-class preds.
        for t in Class3::ALL {
            prop_assert_eq!(c.count(t, Class3::Neither), 0.0);
        }
    }
}
