//! Online machine learning for URL classification (Sec 3.3, Sec 4.6).
//!
//! * [`features`] — character 2-gram features, `URL_ONLY` and `URL_CONT`,
//! * [`models`] — online LR (default), linear SVM, multinomial NB and
//!   passive-aggressive classifiers,
//! * [`classifier`] — the batch-incremental URL classifier of Algorithm 2,
//! * [`metrics`] — 3×3 confusion matrices and the MR metric of Table 5.

pub mod classifier;
pub mod features;
pub mod metrics;
pub mod models;

pub use classifier::{Class2, UrlClassifier};
pub use features::{featurize, FeatureInput, FeatureSet, SparseVec};
pub use metrics::{Class3, Confusion};
pub use models::{ModelKind, OnlineBinaryModel};
