//! Online binary classifiers (Sec 4.6): logistic regression (the default),
//! linear SVM, multinomial naive Bayes, and passive-aggressive — all
//! lightweight, batch-incremental models; "deep approaches whose cost would
//! shift the bottleneck from network latency to local CPU/GPU time" are
//! deliberately out of scope, as in the paper.
//!
//! Convention: the positive class is **Target**, the negative class is
//! **HTML**. `predict_score > 0` ⇒ Target.

use crate::features::SparseVec;

/// A binary classifier trainable on mini-batches (Algorithm 2's `C`).
pub trait OnlineBinaryModel: Send {
    /// Decision value; positive ⇒ Target.
    fn predict_score(&self, x: &SparseVec) -> f32;

    /// One incremental training step on a labelled batch
    /// (`true` = Target).
    fn train_batch(&mut self, batch: &[(SparseVec, bool)]);

    /// Has at least one batch been seen?
    fn trained(&self) -> bool;

    fn predict_target(&self, x: &SparseVec) -> bool {
        self.predict_score(x) > 0.0
    }
}

/// Which model to instantiate (Table 5 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    LogisticRegression,
    LinearSvm,
    NaiveBayes,
    PassiveAggressive,
}

impl ModelKind {
    pub const ALL: [ModelKind; 4] = [
        ModelKind::LogisticRegression,
        ModelKind::LinearSvm,
        ModelKind::NaiveBayes,
        ModelKind::PassiveAggressive,
    ];

    pub fn short_name(self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "LR",
            ModelKind::LinearSvm => "SVM",
            ModelKind::NaiveBayes => "NB",
            ModelKind::PassiveAggressive => "PA",
        }
    }

    /// Builds a model for feature dimension `dim`.
    pub fn build(self, dim: usize) -> Box<dyn OnlineBinaryModel> {
        match self {
            ModelKind::LogisticRegression => Box::new(LogReg::new(dim)),
            ModelKind::LinearSvm => Box::new(LinearSvm::new(dim)),
            ModelKind::NaiveBayes => Box::new(NaiveBayes::new(dim)),
            ModelKind::PassiveAggressive => Box::new(PassiveAggressive::new(dim)),
        }
    }
}

// ----------------------------------------------------------------------
// Logistic regression (SGD) — Algorithm 2's default classifier
// ----------------------------------------------------------------------

/// Binary logistic regression trained by mini-batch SGD [8, 32].
pub struct LogReg {
    w: Vec<f32>,
    bias: f32,
    lr: f32,
    l2: f32,
    epochs: usize,
    batches: u64,
}

impl LogReg {
    pub fn new(dim: usize) -> Self {
        LogReg { w: vec![0.0; dim], bias: 0.0, lr: 0.5, l2: 1e-6, epochs: 2, batches: 0 }
    }

    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }
}

fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

impl OnlineBinaryModel for LogReg {
    fn predict_score(&self, x: &SparseVec) -> f32 {
        x.dot_dense(&self.w) + self.bias
    }

    fn train_batch(&mut self, batch: &[(SparseVec, bool)]) {
        for _ in 0..self.epochs {
            for (x, y) in batch {
                let p = sigmoid(x.dot_dense(&self.w) + self.bias);
                let g = p - if *y { 1.0 } else { 0.0 };
                for &(i, v) in &x.items {
                    let wi = &mut self.w[i as usize];
                    *wi -= self.lr * (g * v + self.l2 * *wi);
                }
                self.bias -= self.lr * g;
            }
        }
        self.batches += 1;
    }

    fn trained(&self) -> bool {
        self.batches > 0
    }
}

// ----------------------------------------------------------------------
// Linear SVM (hinge loss, SGD)
// ----------------------------------------------------------------------

/// Linear SVM trained with sub-gradient steps on the hinge loss.
pub struct LinearSvm {
    w: Vec<f32>,
    bias: f32,
    lr: f32,
    l2: f32,
    epochs: usize,
    batches: u64,
}

impl LinearSvm {
    pub fn new(dim: usize) -> Self {
        LinearSvm { w: vec![0.0; dim], bias: 0.0, lr: 0.5, l2: 1e-6, epochs: 2, batches: 0 }
    }
}

impl OnlineBinaryModel for LinearSvm {
    fn predict_score(&self, x: &SparseVec) -> f32 {
        x.dot_dense(&self.w) + self.bias
    }

    fn train_batch(&mut self, batch: &[(SparseVec, bool)]) {
        for _ in 0..self.epochs {
            for (x, y) in batch {
                let yy = if *y { 1.0f32 } else { -1.0 };
                let z = x.dot_dense(&self.w) + self.bias;
                if yy * z < 1.0 {
                    for &(i, v) in &x.items {
                        let wi = &mut self.w[i as usize];
                        *wi += self.lr * (yy * v - self.l2 * *wi);
                    }
                    self.bias += self.lr * yy;
                } else {
                    for &(i, _) in &x.items {
                        let wi = &mut self.w[i as usize];
                        *wi -= self.lr * self.l2 * *wi;
                    }
                }
            }
        }
        self.batches += 1;
    }

    fn trained(&self) -> bool {
        self.batches > 0
    }
}

// ----------------------------------------------------------------------
// Multinomial naive Bayes
// ----------------------------------------------------------------------

/// Multinomial NB with Laplace smoothing; incremental by construction.
pub struct NaiveBayes {
    /// Per-class feature mass.
    counts: [Vec<f64>; 2],
    totals: [f64; 2],
    docs: [f64; 2],
    alpha: f64,
    batches: u64,
}

impl NaiveBayes {
    pub fn new(dim: usize) -> Self {
        NaiveBayes {
            counts: [vec![0.0; dim], vec![0.0; dim]],
            totals: [0.0; 2],
            docs: [0.0; 2],
            alpha: 0.1,
            batches: 0,
        }
    }

    fn log_likelihood(&self, x: &SparseVec, class: usize) -> f64 {
        let dim = self.counts[class].len() as f64;
        let denom = (self.totals[class] + self.alpha * dim).ln();
        let prior = ((self.docs[class] + 1.0) / (self.docs[0] + self.docs[1] + 2.0)).ln();
        let mut ll = prior;
        for &(i, v) in &x.items {
            let p = (self.counts[class][i as usize] + self.alpha).ln() - denom;
            ll += f64::from(v) * p;
        }
        ll
    }
}

impl OnlineBinaryModel for NaiveBayes {
    fn predict_score(&self, x: &SparseVec) -> f32 {
        (self.log_likelihood(x, 1) - self.log_likelihood(x, 0)) as f32
    }

    fn train_batch(&mut self, batch: &[(SparseVec, bool)]) {
        for (x, y) in batch {
            let c = usize::from(*y);
            self.docs[c] += 1.0;
            for &(i, v) in &x.items {
                self.counts[c][i as usize] += f64::from(v);
                self.totals[c] += f64::from(v);
            }
        }
        self.batches += 1;
    }

    fn trained(&self) -> bool {
        self.batches > 0
    }
}

// ----------------------------------------------------------------------
// Passive-aggressive (PA-I) [49]
// ----------------------------------------------------------------------

/// Online passive-aggressive classifier, PA-I variant.
pub struct PassiveAggressive {
    w: Vec<f32>,
    bias: f32,
    c: f32,
    batches: u64,
}

impl PassiveAggressive {
    pub fn new(dim: usize) -> Self {
        PassiveAggressive { w: vec![0.0; dim], bias: 0.0, c: 1.0, batches: 0 }
    }
}

impl OnlineBinaryModel for PassiveAggressive {
    fn predict_score(&self, x: &SparseVec) -> f32 {
        x.dot_dense(&self.w) + self.bias
    }

    fn train_batch(&mut self, batch: &[(SparseVec, bool)]) {
        for (x, y) in batch {
            let yy = if *y { 1.0f32 } else { -1.0 };
            let z = x.dot_dense(&self.w) + self.bias;
            let loss = (1.0 - yy * z).max(0.0);
            if loss > 0.0 {
                let norm = x.norm_sq() + 1.0; // +1 for the bias feature
                let tau = (loss / norm).min(self.c);
                for &(i, v) in &x.items {
                    self.w[i as usize] += tau * yy * v;
                }
                self.bias += tau * yy;
            }
        }
        self.batches += 1;
    }

    fn trained(&self) -> bool {
        self.batches > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{featurize, FeatureInput, FeatureSet};

    fn vec_of(url: &str) -> SparseVec {
        featurize(FeatureSet::UrlOnly, &FeatureInput::url_only(url))
    }

    /// A tiny separable problem: target URLs end in .csv/.xlsx, HTML URLs in
    /// .html or no extension. Every model must learn it from a few batches.
    fn separable_batch(n: usize) -> Vec<(SparseVec, bool)> {
        let mut batch = Vec::new();
        for i in 0..n {
            batch.push((vec_of(&format!("https://a.com/files/data-{i}.csv")), true));
            batch.push((vec_of(&format!("https://a.com/files/report-{i}.xlsx")), true));
            batch.push((vec_of(&format!("https://a.com/pages/article-{i}.html")), false));
            batch.push((vec_of(&format!("https://a.com/sections/topic-{i}/")), false));
        }
        batch
    }

    fn accuracy(model: &dyn OnlineBinaryModel) -> f64 {
        let mut right = 0;
        let mut total = 0;
        for i in 100..140 {
            let t = model.predict_target(&vec_of(&format!("https://a.com/files/extra-{i}.csv")));
            let h = model.predict_target(&vec_of(&format!("https://a.com/pages/extra-{i}.html")));
            right += usize::from(t) + usize::from(!h);
            total += 2;
        }
        right as f64 / total as f64
    }

    #[test]
    fn all_models_learn_separable_urls() {
        for kind in ModelKind::ALL {
            let mut model = kind.build(FeatureSet::UrlOnly.dim());
            assert!(!model.trained());
            for _ in 0..4 {
                model.train_batch(&separable_batch(10));
            }
            assert!(model.trained());
            let acc = accuracy(model.as_ref());
            assert!(acc >= 0.9, "{} accuracy {acc}", kind.short_name());
        }
    }

    #[test]
    fn untrained_models_do_not_crash() {
        for kind in ModelKind::ALL {
            let model = kind.build(FeatureSet::UrlOnly.dim());
            let _ = model.predict_target(&vec_of("https://a.com/x.csv"));
        }
    }

    #[test]
    fn logreg_score_is_margin_like() {
        let mut m = LogReg::new(FeatureSet::UrlOnly.dim());
        for _ in 0..4 {
            m.train_batch(&separable_batch(10));
        }
        let st = m.predict_score(&vec_of("https://a.com/files/x.csv"));
        let sh = m.predict_score(&vec_of("https://a.com/pages/x.html"));
        assert!(st > sh);
    }

    #[test]
    fn nb_incremental_equals_cumulative() {
        // Training NB on two half-batches equals one full batch.
        let full = separable_batch(6);
        let (a, b) = full.split_at(12);
        let mut m1 = NaiveBayes::new(FeatureSet::UrlOnly.dim());
        m1.train_batch(&full);
        let mut m2 = NaiveBayes::new(FeatureSet::UrlOnly.dim());
        m2.train_batch(a);
        m2.train_batch(b);
        let x = vec_of("https://a.com/files/probe.csv");
        assert!((m1.predict_score(&x) - m2.predict_score(&x)).abs() < 1e-4);
    }

    #[test]
    fn pa_only_updates_on_margin_violation() {
        let mut m = PassiveAggressive::new(FeatureSet::UrlOnly.dim());
        let batch = separable_batch(10);
        for _ in 0..6 {
            m.train_batch(&batch);
        }
        // After convergence, the same batch produces (almost) no change.
        let x = vec_of("https://a.com/files/probe.csv");
        let before = m.predict_score(&x);
        m.train_batch(&batch);
        let after = m.predict_score(&x);
        assert!((before - after).abs() < 0.35, "before {before}, after {after}");
    }
}
