//! Character 2-gram features (Sec 3.3, Sec 4.6).
//!
//! A URL such as `https://www.A.com/data/file.csv` becomes the bag of its
//! character bigrams `[ht, tt, tp, …, .c, cs, sv]` over the "usual ASCII"
//! alphabet (digits, letters, main special characters); anything outside is
//! bucketed. The `URL_CONT` variant appends three more bigram blocks —
//! anchor text, DOM path, surrounding text — each in its own index range so
//! the models can weight them independently.

/// Alphabet size: printable ASCII (0x20–0x7E) plus one "other" bucket.
pub const CHAR_VOCAB: usize = 96;
/// Features per block.
pub const BLOCK_DIM: usize = CHAR_VOCAB * CHAR_VOCAB;

/// Feature sets of the Table 5 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// Bigrams of the URL only (the paper's default).
    UrlOnly,
    /// URL + anchor text + DOM path + surrounding text.
    UrlContent,
}

impl FeatureSet {
    pub fn n_blocks(self) -> usize {
        match self {
            FeatureSet::UrlOnly => 1,
            FeatureSet::UrlContent => 4,
        }
    }

    /// Total feature dimension (without bias).
    pub fn dim(self) -> usize {
        self.n_blocks() * BLOCK_DIM
    }
}

/// Raw text inputs for one URL occurrence.
#[derive(Debug, Clone, Copy, Default)]
pub struct FeatureInput<'a> {
    pub url: &'a str,
    pub anchor: &'a str,
    pub dom_path: &'a str,
    pub surrounding: &'a str,
}

impl<'a> FeatureInput<'a> {
    pub fn url_only(url: &'a str) -> Self {
        FeatureInput { url, ..Default::default() }
    }
}

/// A sparse, L2-normalised feature vector: `(index, value)` sorted by index.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    pub items: Vec<(u32, f32)>,
}

impl SparseVec {
    pub fn dot_dense(&self, w: &[f32]) -> f32 {
        self.items.iter().map(|&(i, v)| v * w[i as usize]).sum()
    }

    pub fn norm_sq(&self) -> f32 {
        self.items.iter().map(|&(_, v)| v * v).sum()
    }

    pub fn nnz(&self) -> usize {
        self.items.len()
    }
}

#[inline]
fn char_id(b: u8) -> u32 {
    if (0x20..0x7F).contains(&b) {
        u32::from(b) - 0x20
    } else {
        (CHAR_VOCAB - 1) as u32
    }
}

fn add_bigrams(s: &str, block: usize, counts: &mut std::collections::HashMap<u32, f32>) {
    let bytes = s.as_bytes();
    if bytes.len() < 2 {
        return;
    }
    let base = (block * BLOCK_DIM) as u32;
    for w in bytes.windows(2) {
        let id = base + char_id(w[0]) * CHAR_VOCAB as u32 + char_id(w[1]);
        *counts.entry(id).or_insert(0.0) += 1.0;
    }
}

/// Featurises an input under a feature set. The result is L2-normalised so
/// SGD step sizes are comparable across URLs of different lengths.
pub fn featurize(set: FeatureSet, input: &FeatureInput<'_>) -> SparseVec {
    let mut counts = std::collections::HashMap::new();
    add_bigrams(input.url, 0, &mut counts);
    if set == FeatureSet::UrlContent {
        add_bigrams(input.anchor, 1, &mut counts);
        add_bigrams(input.dom_path, 2, &mut counts);
        add_bigrams(input.surrounding, 3, &mut counts);
    }
    let mut items: Vec<(u32, f32)> = counts.into_iter().collect();
    items.sort_unstable_by_key(|&(i, _)| i);
    let norm = items.iter().map(|&(_, v)| f64::from(v) * f64::from(v)).sum::<f64>().sqrt();
    if norm > 0.0 {
        for (_, v) in &mut items {
            *v /= norm as f32;
        }
    }
    SparseVec { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_bigrams_present() {
        let x = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only("https://a.com/f.csv"));
        assert!(x.nnz() > 5);
        // "ht" bigram id: ('h'-32)*96 + ('t'-32)
        let ht = (u32::from(b'h') - 32) * 96 + (u32::from(b't') - 32);
        assert!(x.items.iter().any(|&(i, _)| i == ht));
    }

    #[test]
    fn l2_normalised() {
        let x = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only("https://a.com/data/file.csv"));
        assert!((x.norm_sq() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn url_cont_uses_separate_blocks() {
        let a = featurize(
            FeatureSet::UrlContent,
            &FeatureInput { url: "https://a.com/x", anchor: "Download CSV", dom_path: "", surrounding: "" },
        );
        let b = featurize(
            FeatureSet::UrlContent,
            &FeatureInput { url: "https://a.com/x", anchor: "", dom_path: "Download CSV", surrounding: "" },
        );
        // Same texts in different blocks must hit different indices.
        assert_ne!(a.items, b.items);
        assert!(a.items.iter().any(|&(i, _)| (i as usize) >= BLOCK_DIM && (i as usize) < 2 * BLOCK_DIM));
        assert!(b.items.iter().any(|&(i, _)| (i as usize) >= 2 * BLOCK_DIM && (i as usize) < 3 * BLOCK_DIM));
    }

    #[test]
    fn non_ascii_bucketed_not_dropped() {
        let x = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only("日本"));
        assert!(x.nnz() >= 1);
        for &(i, _) in &x.items {
            assert!((i as usize) < BLOCK_DIM);
        }
    }

    #[test]
    fn deterministic_and_sorted() {
        let f = || featurize(FeatureSet::UrlOnly, &FeatureInput::url_only("https://a.com/abcabc"));
        let x = f();
        assert_eq!(x, f());
        assert!(x.items.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_input_is_empty_vector() {
        let x = featurize(FeatureSet::UrlOnly, &FeatureInput::url_only(""));
        assert_eq!(x.nnz(), 0);
    }

    #[test]
    fn dims() {
        assert_eq!(FeatureSet::UrlOnly.dim(), 9216);
        assert_eq!(FeatureSet::UrlContent.dim(), 4 * 9216);
    }
}
