//! Confusion matrices and the "MR" misclassification-rate metric of Table 5
//! and Tables 8–16.
//!
//! The matrices are 3×3 (true HTML / Target / Neither × predicted HTML /
//! Target / Neither) even though the classifier never predicts "Neither"
//! (Sec 3.3): the predicted-Neither column is structurally zero, exactly as
//! in the paper's appendix tables.

/// The three URL classes of Sec 3.3 (classifier-side mirror of
/// `sb_webgraph::UrlClass` so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class3 {
    Html,
    Target,
    Neither,
}

impl Class3 {
    pub const ALL: [Class3; 3] = [Class3::Html, Class3::Target, Class3::Neither];

    pub fn index(self) -> usize {
        match self {
            Class3::Html => 0,
            Class3::Target => 1,
            Class3::Neither => 2,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Class3::Html => "HTML",
            Class3::Target => "Target",
            Class3::Neither => "Neither",
        }
    }
}

/// A running 3×3 confusion matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Confusion {
    /// `m[true][predicted]` raw counts.
    m: [[f64; 3]; 3],
}

impl Confusion {
    pub fn new() -> Self {
        Confusion::default()
    }

    pub fn record(&mut self, truth: Class3, predicted: Class3) {
        self.m[truth.index()][predicted.index()] += 1.0;
    }

    pub fn count(&self, truth: Class3, predicted: Class3) -> f64 {
        self.m[truth.index()][predicted.index()]
    }

    pub fn total(&self) -> f64 {
        self.m.iter().flatten().sum()
    }

    /// The matrix as percentages of all recorded URLs (the paper's format).
    pub fn percentages(&self) -> [[f64; 3]; 3] {
        let t = self.total();
        if t == 0.0 {
            return [[0.0; 3]; 3];
        }
        let mut out = [[0.0; 3]; 3];
        for (i, row) in self.m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[i][j] = 100.0 * v / t;
            }
        }
        out
    }

    /// The "MR" column of Table 5: off-diagonal mass within the true-HTML
    /// and true-Target rows, as a percentage of those rows' mass. (The
    /// Neither row is excluded: those URLs have no correct answer available
    /// to a two-class model.)
    pub fn misclassification_rate(&self) -> f64 {
        let rows = [Class3::Html.index(), Class3::Target.index()];
        let mut wrong = 0.0;
        let mut mass = 0.0;
        for &r in &rows {
            for j in 0..3 {
                mass += self.m[r][j];
                if j != r {
                    wrong += self.m[r][j];
                }
            }
        }
        if mass == 0.0 {
            0.0
        } else {
            100.0 * wrong / mass
        }
    }

    /// Merges another matrix into this one (inter-site averaging).
    pub fn merge(&mut self, other: &Confusion) {
        for i in 0..3 {
            for j in 0..3 {
                self.m[i][j] += other.m[i][j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut c = Confusion::new();
        c.record(Class3::Html, Class3::Html);
        c.record(Class3::Html, Class3::Target);
        c.record(Class3::Target, Class3::Target);
        c.record(Class3::Neither, Class3::Html);
        assert_eq!(c.total(), 4.0);
        assert_eq!(c.count(Class3::Html, Class3::Target), 1.0);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut c = Confusion::new();
        for _ in 0..7 {
            c.record(Class3::Html, Class3::Html);
        }
        for _ in 0..3 {
            c.record(Class3::Target, Class3::Html);
        }
        let p = c.percentages();
        let sum: f64 = p.iter().flatten().sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    /// Reproduces the paper's aggregate numbers (Table 16): row masses
    /// 60.42 % HTML / 33.5 % Target, off-diagonal 2.46 ⇒ MR ≈ 2.62.
    #[test]
    fn mr_matches_paper_arithmetic() {
        let mut c = Confusion::new();
        let scale = 100.0;
        let add = |c: &mut Confusion, t: Class3, p: Class3, pct: f64| {
            for _ in 0..((pct * scale) as usize) {
                c.record(t, p);
            }
        };
        add(&mut c, Class3::Html, Class3::Html, 58.73);
        add(&mut c, Class3::Html, Class3::Target, 1.69);
        add(&mut c, Class3::Target, Class3::Html, 0.77);
        add(&mut c, Class3::Target, Class3::Target, 32.73);
        add(&mut c, Class3::Neither, Class3::Html, 4.50);
        add(&mut c, Class3::Neither, Class3::Target, 1.58);
        // (1.69 + 0.77) / (58.73 + 1.69 + 0.77 + 32.73) ≈ 2.62 %
        assert!((c.misclassification_rate() - 2.62).abs() < 0.02, "{}", c.misclassification_rate());
    }

    #[test]
    fn neither_predictions_never_counted_as_right() {
        let mut c = Confusion::new();
        c.record(Class3::Neither, Class3::Target);
        assert_eq!(c.misclassification_rate(), 0.0, "Neither row excluded from MR");
    }

    #[test]
    fn merge_adds() {
        let mut a = Confusion::new();
        a.record(Class3::Html, Class3::Html);
        let mut b = Confusion::new();
        b.record(Class3::Html, Class3::Target);
        a.merge(&b);
        assert_eq!(a.total(), 2.0);
        assert!(a.misclassification_rate() > 0.0);
    }

    #[test]
    fn empty_matrix_is_quiet() {
        let c = Confusion::new();
        assert_eq!(c.misclassification_rate(), 0.0);
        assert_eq!(c.percentages(), [[0.0; 3]; 3]);
    }
}
