//! The online URL classifier of Algorithm 2.
//!
//! Life cycle, exactly as the paper describes:
//!
//! 1. **Initial training phase** — the crawler labels the first `b` URLs via
//!    HTTP HEAD requests ([`UrlClassifier::in_initial_phase`] tells the
//!    caller to do so) and feeds them in with [`UrlClassifier::observe`].
//! 2. Once a full batch is collected, the model trains incrementally and the
//!    initial phase ends: classes are now inferred for free.
//! 3. **Online training** — every later HTTP GET yields an annotated
//!    (URL, class) pair, observed the same way; each full batch triggers
//!    another incremental training step, letting the classifier adapt "to
//!    potential changes in the form of the URLs".
//!
//! The classifier is deliberately **two-class** (HTML vs Target) despite
//! three true classes: predicting "Neither" would silently amputate the
//! crawl (Sec 3.3), while misclassifying a dead URL only wastes one request.

use crate::features::{featurize, FeatureInput, FeatureSet, SparseVec};
use crate::models::{ModelKind, OnlineBinaryModel};

/// The two predictable classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class2 {
    Html,
    Target,
}

/// Algorithm 2's classifier `C` with its batch buffer `(X, y)`.
pub struct UrlClassifier {
    model: Box<dyn OnlineBinaryModel>,
    feature_set: FeatureSet,
    batch: Vec<(SparseVec, bool)>,
    batch_size: usize,
    initial_phase: bool,
    observed: u64,
    trainings: u64,
}

impl UrlClassifier {
    /// The paper's default: logistic regression, URL-only features, `b = 10`.
    pub fn paper_default() -> Self {
        UrlClassifier::new(ModelKind::LogisticRegression, FeatureSet::UrlOnly, 10)
    }

    pub fn new(kind: ModelKind, feature_set: FeatureSet, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size b must be positive");
        UrlClassifier {
            model: kind.build(feature_set.dim()),
            feature_set,
            batch: Vec::with_capacity(batch_size),
            batch_size,
            initial_phase: true,
            observed: 0,
            trainings: 0,
        }
    }

    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// While true, the caller must obtain labels via HTTP HEAD (paying the
    /// cost `c(u)`) instead of calling [`UrlClassifier::predict`].
    pub fn in_initial_phase(&self) -> bool {
        self.initial_phase
    }

    /// Number of completed incremental trainings.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Adds an annotated (URL, class) pair to `(X, y)`; trains when the
    /// batch is full. Labels come from HEAD requests during the initial
    /// phase and from GET responses afterwards — either way at the caller's
    /// initiative, so this method is cost-free.
    pub fn observe(&mut self, input: &FeatureInput<'_>, class: Class2) {
        let x = featurize(self.feature_set, input);
        self.batch.push((x, class == Class2::Target));
        self.observed += 1;
        if self.batch.len() >= self.batch_size {
            self.model.train_batch(&self.batch);
            self.batch.clear();
            self.trainings += 1;
            self.initial_phase = false;
        }
    }

    /// Infers the class of a URL. Valid once the initial phase is over; if
    /// called before, it answers from the untrained model (callers in this
    /// repo always bootstrap first, as Algorithm 2 requires).
    pub fn predict(&self, input: &FeatureInput<'_>) -> Class2 {
        let x = featurize(self.feature_set, input);
        if self.model.predict_target(&x) {
            Class2::Target
        } else {
            Class2::Html
        }
    }

    /// The model's raw decision value for a URL (positive ⇒ Target);
    /// [`UrlClassifier::predict`] is `predict_score > 0`. Ranking
    /// strategies (PR 10's value-driven frontier) use this to order
    /// candidates by confidence rather than by hard class.
    pub fn predict_score(&self, input: &FeatureInput<'_>) -> f32 {
        self.model.predict_score(&featurize(self.feature_set, input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_input(i: usize) -> String {
        format!("https://a.com/files/data-{i}.csv")
    }

    fn html_input(i: usize) -> String {
        format!("https://a.com/pages/article-{i}.html")
    }

    #[test]
    fn initial_phase_ends_after_first_batch() {
        let mut c = UrlClassifier::new(ModelKind::LogisticRegression, FeatureSet::UrlOnly, 10);
        assert!(c.in_initial_phase());
        for i in 0..9 {
            let url = if i % 2 == 0 { target_input(i) } else { html_input(i) };
            let class = if i % 2 == 0 { Class2::Target } else { Class2::Html };
            c.observe(&FeatureInput::url_only(&url), class);
            assert!(c.in_initial_phase(), "phase must persist until b observations");
        }
        let url = target_input(9);
        c.observe(&FeatureInput::url_only(&url), Class2::Target);
        assert!(!c.in_initial_phase());
        assert_eq!(c.trainings(), 1);
    }

    #[test]
    fn learns_url_shapes_online() {
        let mut c = UrlClassifier::paper_default();
        for i in 0..60 {
            let (url, class) = if i % 2 == 0 {
                (target_input(i), Class2::Target)
            } else {
                (html_input(i), Class2::Html)
            };
            c.observe(&FeatureInput::url_only(&url), class);
        }
        assert!(!c.in_initial_phase());
        let mut right = 0;
        for i in 100..120 {
            if c.predict(&FeatureInput::url_only(&target_input(i))) == Class2::Target {
                right += 1;
            }
            if c.predict(&FeatureInput::url_only(&html_input(i))) == Class2::Html {
                right += 1;
            }
        }
        assert!(right >= 36, "right = {right}/40");
    }

    /// The paper's motivating case: the crawl reaches a new part of the
    /// website where URLs are formatted differently; online training adapts.
    #[test]
    fn adapts_to_new_url_dialect() {
        let mut c = UrlClassifier::paper_default();
        for i in 0..40 {
            let (url, class) = if i % 2 == 0 {
                (target_input(i), Class2::Target)
            } else {
                (html_input(i), Class2::Html)
            };
            c.observe(&FeatureInput::url_only(&url), class);
        }
        // New dialect: extensionless download URLs.
        let new_target = |i: usize| format!("https://a.com/dlsvc/get?id={i}");
        let new_html = |i: usize| format!("https://a.com/portal/view?node={i}");
        for i in 0..60 {
            let (url, class) = if i % 2 == 0 {
                (new_target(i), Class2::Target)
            } else {
                (new_html(i), Class2::Html)
            };
            c.observe(&FeatureInput::url_only(&url), class);
        }
        let mut right = 0;
        for i in 200..220 {
            if c.predict(&FeatureInput::url_only(&new_target(i))) == Class2::Target {
                right += 1;
            }
            if c.predict(&FeatureInput::url_only(&new_html(i))) == Class2::Html {
                right += 1;
            }
        }
        assert!(right >= 32, "right = {right}/40 after dialect shift");
    }

    #[test]
    fn partial_batches_do_not_train() {
        let mut c = UrlClassifier::new(ModelKind::NaiveBayes, FeatureSet::UrlOnly, 100);
        for i in 0..50 {
            c.observe(&FeatureInput::url_only(&target_input(i)), Class2::Target);
        }
        assert_eq!(c.trainings(), 0);
        assert!(c.in_initial_phase());
    }

    #[test]
    fn all_variants_construct() {
        for kind in ModelKind::ALL {
            for fs in [FeatureSet::UrlOnly, FeatureSet::UrlContent] {
                let c = UrlClassifier::new(kind, fs, 10);
                assert!(c.in_initial_phase());
            }
        }
    }
}
