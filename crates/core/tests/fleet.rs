//! Fleet scheduler contract: per-site outcomes are **worker-count
//! invariant** and identical to sequential single-site crawls — sessions
//! share nothing, so scheduling can only change wall-clock, never results.

use sb_crawler::engine::{crawl, Budget, CrawlConfig};
use sb_crawler::fleet::{Fleet, FleetJob, SharedServer};
use sb_crawler::strategies::{QueueStrategy, SbConfig, SbStrategy};
use sb_crawler::ConfigError;
use sb_httpsim::{Politeness, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::Website;
use std::sync::Arc;

const N_SITES: usize = 9;

fn fleet_sites() -> Vec<Arc<Website>> {
    (0..N_SITES)
        .map(|i| Arc::new(build_site(&SiteSpec::demo(120 + 25 * i), 40 + i as u64)))
        .collect()
}

fn root_of(site: &Website) -> String {
    site.page(site.root()).url.clone()
}

/// The per-site observables the invariance tests compare.
#[derive(Debug, PartialEq)]
struct SiteSummary {
    name: String,
    targets: Vec<String>,
    pages_crawled: u64,
    requests: u64,
    trace_len: usize,
}

fn run_fleet(sites: &[Arc<Website>], workers: usize, budget: Budget) -> Vec<SiteSummary> {
    let mut fleet = Fleet::new(workers);
    for (i, site) in sites.iter().enumerate() {
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        let cfg = CrawlConfig { budget, seed: i as u64, ..Default::default() };
        fleet.push(
            FleetJob::new(format!("site{i}"), server, root_of(site), || {
                Box::new(QueueStrategy::bfs())
            })
            .config(cfg),
        );
    }
    let out = fleet.run();
    assert_eq!(out.sites.len(), sites.len());
    out.sites
        .iter()
        .map(|r| {
            let o = r.expect_outcome();
            SiteSummary {
                name: r.name.clone(),
                targets: o.targets.iter().map(|t| t.url.clone()).collect(),
                pages_crawled: o.pages_crawled,
                requests: o.traffic.requests(),
                trace_len: o.trace.points().len(),
            }
        })
        .collect()
}

#[test]
fn per_site_results_are_worker_count_invariant() {
    let sites = fleet_sites();
    let sequentialish = run_fleet(&sites, 1, Budget::Unlimited);
    for workers in [2, 4, N_SITES] {
        let concurrent = run_fleet(&sites, workers, Budget::Unlimited);
        assert_eq!(sequentialish, concurrent, "workers={workers} changed per-site results");
    }
}

#[test]
fn fleet_results_match_standalone_crawls() {
    let sites = fleet_sites();
    let fleet_out = run_fleet(&sites, 4, Budget::Requests(80));
    for (i, site) in sites.iter().enumerate() {
        let server = SiteServer::shared(Arc::clone(site));
        let mut bfs = QueueStrategy::bfs();
        let cfg =
            CrawlConfig { budget: Budget::Requests(80), seed: i as u64, ..Default::default() };
        let solo = crawl(&server, None, &root_of(site), &mut bfs, &cfg);
        assert_eq!(fleet_out[i].pages_crawled, solo.pages_crawled, "site{i}");
        assert_eq!(fleet_out[i].requests, solo.traffic.requests(), "site{i}");
        let solo_targets: Vec<String> = solo.targets.iter().map(|t| t.url.clone()).collect();
        assert_eq!(fleet_out[i].targets, solo_targets, "site{i}");
    }
}

#[test]
fn learning_sessions_are_worker_invariant_too() {
    // The SB crawler holds per-session RNG + bandit + classifier state;
    // concurrency must not leak between sessions.
    let sites: Vec<Arc<Website>> =
        (0..4).map(|i| Arc::new(build_site(&SiteSpec::demo(200), 7 + i))).collect();
    let run = |workers: usize| -> Vec<Vec<String>> {
        let mut fleet = Fleet::new(workers);
        for (i, site) in sites.iter().enumerate() {
            let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
            let cfg = CrawlConfig {
                budget: Budget::Requests(120),
                seed: i as u64,
                ..Default::default()
            };
            fleet.push(
                FleetJob::new(format!("s{i}"), server, root_of(site), || {
                    Box::new(SbStrategy::with_classifier(
                        SbConfig::default(),
                        sb_ml::UrlClassifier::paper_default(),
                    ))
                })
                .config(cfg),
            );
        }
        fleet
            .run()
            .sites
            .iter()
            .map(|r| r.expect_outcome().targets.iter().map(|t| t.url.clone()).collect())
            .collect()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn invalid_roots_are_reported_not_panicked() {
    let site = Arc::new(build_site(&SiteSpec::demo(120), 3));
    let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(&site)));
    let mut fleet = Fleet::new(2);
    fleet.push(FleetJob::new("good", Arc::clone(&server), root_of(&site), || {
        Box::new(QueueStrategy::bfs())
    }));
    fleet.push(FleetJob::new("bad", server, "not-a-url", || Box::new(QueueStrategy::bfs())));
    let out = fleet.run();
    assert_eq!(out.sites.len(), 2);
    assert!(out.sites[0].outcome.is_ok());
    assert!(matches!(
        out.sites[1].outcome,
        Err(ConfigError::InvalidRoot { ref url, .. }) if url == "not-a-url"
    ));
    // Aggregates only count the sites that ran.
    assert_eq!(
        out.traffic.requests(),
        out.sites[0].expect_outcome().traffic.requests()
    );
}

#[test]
fn aggregate_traffic_sums_per_site_traffic() {
    let sites = fleet_sites();
    let mut fleet = Fleet::new(3);
    for (i, site) in sites.iter().enumerate() {
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        // Vary politeness so the politeness-aware scheduler actually has
        // skew to balance.
        let cfg = CrawlConfig {
            politeness: Politeness { delay_secs: 0.2 * (i + 1) as f64, ..Default::default() },
            ..Default::default()
        };
        fleet.push(
            FleetJob::new(format!("site{i}"), server, root_of(site), || {
                Box::new(QueueStrategy::bfs())
            })
            .config(cfg),
        );
    }
    let out = fleet.run();
    let sum_requests: u64 =
        out.sites.iter().map(|r| r.expect_outcome().traffic.requests()).sum();
    let sum_targets: u64 = out.sites.iter().map(|r| r.expect_outcome().targets_found()).sum();
    assert_eq!(out.traffic.requests(), sum_requests);
    assert_eq!(out.targets, sum_targets);
    assert!(out.sim_makespan_secs() <= out.traffic.elapsed_secs);
    assert!(out.wall_secs > 0.0);
}
