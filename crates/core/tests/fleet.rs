//! Fleet scheduler contract: per-site outcomes are **worker-count
//! invariant** and identical to sequential single-site crawls — sessions
//! share nothing, so scheduling can only change wall-clock, never results.
//!
//! PR 5 extends the contract to [`FleetMode::SharedPool`]: multiplexing
//! every session through one global transport window must not change what
//! any site retrieves (proptested against per-site transports for
//! arbitrary worker counts and windows), at global window 1 it must
//! replay the frozen seed engine per site exactly (via
//! `sb_bench::reference`, masking only the shared clock), and shutdown
//! with selections in flight across several sites must drain every one of
//! them as `feedback_error` + `Abandoned(SessionClosed)`.
//!
//! PR 8 extends it once more to [`FleetMode::Sharded`]: per-site results
//! must be **shard-count invariant** (proptested against the single
//! shared pool for arbitrary shard counts, windows and site → shard
//! assignments), at per-shard window 1 every site must replay the frozen
//! seed engine byte for byte regardless of which shard drives it or how
//! work stealing moved it there, and shutdown of sessions on pools driven
//! from several threads must drain each in-flight selection as exactly
//! one `feedback_error` + `Abandoned(SessionClosed)`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use sb_bench::reference::{collapse_target_amends, reference_queue_crawl};
use sb_crawler::engine::{crawl, Budget, CrawlConfig, CrawlSession};
use sb_crawler::events::OwnedEvent;
use sb_crawler::fleet::{Fleet, FleetJob, FleetMode, SharedServer};
use sb_crawler::strategies::{Discipline, QueueStrategy, SbConfig, SbStrategy};
use sb_crawler::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use sb_crawler::{AbandonReason, ConfigError, CrawlTrace, EventLog};
use sb_httpsim::{Politeness, SharedTransportPool, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::{UrlId, Website};
use std::collections::VecDeque;
use std::sync::Arc;

const N_SITES: usize = 9;

fn fleet_sites() -> Vec<Arc<Website>> {
    (0..N_SITES)
        .map(|i| Arc::new(build_site(&SiteSpec::demo(120 + 25 * i), 40 + i as u64)))
        .collect()
}

fn root_of(site: &Website) -> String {
    site.page(site.root()).url.clone()
}

/// The per-site observables the invariance tests compare.
#[derive(Debug, PartialEq)]
struct SiteSummary {
    name: String,
    targets: Vec<String>,
    pages_crawled: u64,
    requests: u64,
    trace_len: usize,
}

/// A fuller per-site record for the shared-pool invariance tests: the
/// summary plus the full trace (compared with the shared clock masked).
struct SiteOutcome {
    summary: SiteSummary,
    trace: CrawlTrace,
    makespan: f64,
}

/// Builds the standard BFS fleet over `sites` (seed = site index) in the
/// given mode, optionally with an explicit site → shard assignment.
fn build_fleet(
    sites: &[Arc<Website>],
    workers: usize,
    budget: Budget,
    mode: FleetMode,
    assignment: Option<Vec<usize>>,
) -> Fleet {
    let mut fleet = Fleet::new(workers).mode(mode);
    if let Some(a) = assignment {
        fleet = fleet.shard_assignment(a);
    }
    for (i, site) in sites.iter().enumerate() {
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        let cfg = CrawlConfig { budget, seed: i as u64, ..Default::default() };
        fleet.push(
            FleetJob::new(format!("site{i}"), server, root_of(site), || {
                Box::new(QueueStrategy::bfs())
            })
            .config(cfg),
        );
    }
    fleet
}

fn site_outcomes(out: &sb_crawler::FleetOutcome) -> Vec<SiteOutcome> {
    out.sites
        .iter()
        .map(|r| {
            let o = r.expect_outcome();
            SiteOutcome {
                summary: SiteSummary {
                    name: r.name.clone(),
                    targets: o.targets.iter().map(|t| t.url.clone()).collect(),
                    pages_crawled: o.pages_crawled,
                    requests: o.traffic.requests(),
                    trace_len: o.trace.points().len(),
                },
                trace: o.trace.clone(),
                makespan: o.traffic.elapsed_secs,
            }
        })
        .collect()
}

fn run_fleet_mode(
    sites: &[Arc<Website>],
    workers: usize,
    budget: Budget,
    mode: FleetMode,
) -> Vec<SiteOutcome> {
    let out = build_fleet(sites, workers, budget, mode, None).run();
    assert_eq!(out.sites.len(), sites.len());
    site_outcomes(&out)
}

fn run_fleet(sites: &[Arc<Website>], workers: usize, budget: Budget) -> Vec<SiteSummary> {
    run_fleet_mode(sites, workers, budget, FleetMode::PerSite)
        .into_iter()
        .map(|o| o.summary)
        .collect()
}

/// A trace with the time axis masked: under the shared pool a site's
/// `elapsed_secs` reads on the fleet-wide clock, so cost-counter series
/// are compared and simulated time is not.
fn masked(trace: &CrawlTrace) -> Vec<(u64, u64, u64, u64, u64)> {
    trace
        .points()
        .iter()
        .map(|p| (p.requests, p.head_requests, p.target_bytes, p.non_target_bytes, p.targets))
        .collect()
}

#[test]
fn per_site_results_are_worker_count_invariant() {
    let sites = fleet_sites();
    let sequentialish = run_fleet(&sites, 1, Budget::Unlimited);
    for workers in [2, 4, N_SITES] {
        let concurrent = run_fleet(&sites, workers, Budget::Unlimited);
        assert_eq!(sequentialish, concurrent, "workers={workers} changed per-site results");
    }
}

#[test]
fn fleet_results_match_standalone_crawls() {
    let sites = fleet_sites();
    let fleet_out = run_fleet(&sites, 4, Budget::Requests(80));
    for (i, site) in sites.iter().enumerate() {
        let server = SiteServer::shared(Arc::clone(site));
        let mut bfs = QueueStrategy::bfs();
        let cfg =
            CrawlConfig { budget: Budget::Requests(80), seed: i as u64, ..Default::default() };
        let solo = crawl(&server, None, &root_of(site), &mut bfs, &cfg);
        assert_eq!(fleet_out[i].pages_crawled, solo.pages_crawled, "site{i}");
        assert_eq!(fleet_out[i].requests, solo.traffic.requests(), "site{i}");
        let solo_targets: Vec<String> = solo.targets.iter().map(|t| t.url.clone()).collect();
        assert_eq!(fleet_out[i].targets, solo_targets, "site{i}");
    }
}

#[test]
fn learning_sessions_are_worker_invariant_too() {
    // The SB crawler holds per-session RNG + bandit + classifier state;
    // concurrency must not leak between sessions.
    let sites: Vec<Arc<Website>> =
        (0..4).map(|i| Arc::new(build_site(&SiteSpec::demo(200), 7 + i))).collect();
    let run = |workers: usize| -> Vec<Vec<String>> {
        let mut fleet = Fleet::new(workers);
        for (i, site) in sites.iter().enumerate() {
            let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
            let cfg = CrawlConfig {
                budget: Budget::Requests(120),
                seed: i as u64,
                ..Default::default()
            };
            fleet.push(
                FleetJob::new(format!("s{i}"), server, root_of(site), || {
                    Box::new(SbStrategy::with_classifier(
                        SbConfig::default(),
                        sb_ml::UrlClassifier::paper_default(),
                    ))
                })
                .config(cfg),
            );
        }
        fleet
            .run()
            .sites
            .iter()
            .map(|r| r.expect_outcome().targets.iter().map(|t| t.url.clone()).collect())
            .collect()
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn invalid_roots_are_reported_not_panicked() {
    let site = Arc::new(build_site(&SiteSpec::demo(120), 3));
    let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(&site)));
    let mut fleet = Fleet::new(2);
    fleet.push(FleetJob::new("good", Arc::clone(&server), root_of(&site), || {
        Box::new(QueueStrategy::bfs())
    }));
    fleet.push(FleetJob::new("bad", server, "not-a-url", || Box::new(QueueStrategy::bfs())));
    let out = fleet.run();
    assert_eq!(out.sites.len(), 2);
    assert!(out.sites[0].outcome.is_ok());
    assert!(matches!(
        out.sites[1].outcome,
        Err(ConfigError::InvalidRoot { ref url, .. }) if url == "not-a-url"
    ));
    // Aggregates only count the sites that ran.
    assert_eq!(
        out.traffic.requests(),
        out.sites[0].expect_outcome().traffic.requests()
    );
}

#[test]
fn aggregate_traffic_sums_per_site_traffic() {
    let sites = fleet_sites();
    let mut fleet = Fleet::new(3);
    for (i, site) in sites.iter().enumerate() {
        let server: SharedServer = Arc::new(SiteServer::shared(Arc::clone(site)));
        // Vary politeness so the politeness-aware scheduler actually has
        // skew to balance.
        let cfg = CrawlConfig {
            politeness: Politeness { delay_secs: 0.2 * (i + 1) as f64, ..Default::default() },
            ..Default::default()
        };
        fleet.push(
            FleetJob::new(format!("site{i}"), server, root_of(site), || {
                Box::new(QueueStrategy::bfs())
            })
            .config(cfg),
        );
    }
    let out = fleet.run();
    let sum_requests: u64 =
        out.sites.iter().map(|r| r.expect_outcome().traffic.requests()).sum();
    let sum_targets: u64 = out.sites.iter().map(|r| r.expect_outcome().targets_found()).sum();
    assert_eq!(out.traffic.requests(), sum_requests);
    assert_eq!(out.targets, sum_targets);
    assert!(out.sim_makespan_secs() <= out.traffic.elapsed_secs);
    assert!(out.wall_secs > 0.0);
}

// ----------------------------------------------------------------------
// Shared transport pool (PR 5)
// ----------------------------------------------------------------------

fn pool_sites(seed: u64) -> Vec<Arc<Website>> {
    (0..3)
        .map(|i| Arc::new(build_site(&SiteSpec::demo(80 + 40 * i), seed.wrapping_add(i as u64))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-site results are invariant between per-site transports (any
    /// worker count) and the shared pool (any global window ≥ 1): the
    /// pool reorders *when* fetches happen across the fleet, never what
    /// an exhaustive crawl finds. At global window 1 the pin is exact:
    /// the pool serialises the whole fleet, so every site replays the
    /// frozen seed engine byte for byte — targets in retrieval order,
    /// pages crawled, and the full per-request trace (seed duplicates
    /// collapsed via `reference::collapse_target_amends`, the shared
    /// clock masked).
    #[test]
    fn shared_pool_results_match_per_site_transports(
        (seed, workers, window) in (0u64..500, 1usize..5, 1usize..17),
    ) {
        let sites = pool_sites(seed);
        let per_site = run_fleet_mode(&sites, workers, Budget::Unlimited, FleetMode::PerSite);
        let shared = run_fleet_mode(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::SharedPool { max_in_flight: window },
        );
        for (i, (p, s)) in per_site.iter().zip(&shared).enumerate() {
            let mut p_targets = p.summary.targets.clone();
            let mut s_targets = s.summary.targets.clone();
            p_targets.sort();
            s_targets.sort();
            prop_assert_eq!(
                p_targets, s_targets,
                "site{} target coverage changed under the shared pool (window {})", i, window
            );
        }

        let shared_serial = run_fleet_mode(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::SharedPool { max_in_flight: 1 },
        );
        for (i, (site, s)) in sites.iter().zip(&shared_serial).enumerate() {
            let server = SiteServer::shared(Arc::clone(site));
            let reference = reference_queue_crawl(
                &server,
                &root_of(site),
                Discipline::Fifo,
                Budget::Unlimited,
                i as u64,
                None,
            );
            let ref_targets: Vec<String> =
                reference.targets.iter().map(|(u, _)| u.clone()).collect();
            prop_assert_eq!(
                &s.summary.targets, &ref_targets,
                "site{} window-1 pool must replay the seed engine's target order", i
            );
            prop_assert_eq!(s.summary.pages_crawled, reference.pages_crawled, "site{}", i);
            prop_assert_eq!(
                masked(&s.trace),
                masked(&collapse_target_amends(&reference.trace)),
                "site{} window-1 pool trace must replay the seed engine", i
            );
        }
    }
}

/// The ISSUE 5 acceptance shape on the bench workload: the 8×500 fleet's
/// shared-pool coverage is byte-identical to per-site transports site for
/// site, and the global window buys simulated makespan (≥ 2× from window
/// 1 to window 16 — every handle's politeness gate ticks concurrently
/// instead of the pool serialising the whole fleet).
#[test]
fn shared_pool_eight_by_500_coverage_and_makespan() {
    let sites: Vec<Arc<Website>> =
        (0..8).map(|i| Arc::new(build_site(&SiteSpec::demo(500), 100 + i))).collect();
    let per_site = run_fleet_mode(&sites, 4, Budget::Unlimited, FleetMode::PerSite);
    let shared1 =
        run_fleet_mode(&sites, 1, Budget::Unlimited, FleetMode::SharedPool { max_in_flight: 1 });
    let shared16 =
        run_fleet_mode(&sites, 1, Budget::Unlimited, FleetMode::SharedPool { max_in_flight: 16 });

    for (i, p) in per_site.iter().enumerate() {
        // Window 1 serialises per site: identical replay, order included.
        assert_eq!(p.summary, shared1[i].summary, "site{i} (window 1)");
        // Wider windows reorder within a site; coverage must not move.
        let mut a = p.summary.targets.clone();
        let mut b = shared16[i].summary.targets.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "site{i} coverage changed at window 16");
        assert_eq!(p.summary.requests, shared16[i].summary.requests, "site{i} request count");
    }

    let makespan = |outcomes: &[SiteOutcome]| -> f64 {
        outcomes.iter().map(|o| o.makespan).fold(0.0, f64::max)
    };
    let m1 = makespan(&shared1);
    let m16 = makespan(&shared16);
    assert!(
        m16 * 2.0 <= m1,
        "global window 16 must at least halve the shared-pool makespan: {m1:.0}s vs {m16:.0}s"
    );
}

/// A BFS recorder that counts feedback per token (as in the pipeline
/// tests, reused here to pin the invariant across a *shared* pool).
#[derive(Default)]
struct Recorder {
    frontier: VecDeque<UrlId>,
    selected: Vec<u64>,
    observations: Vec<u64>,
}

impl Strategy for Recorder {
    fn name(&self) -> String {
        "RECORDER".to_owned()
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        let id = self.frontier.pop_front()?;
        let token = u64::from(id);
        self.selected.push(token);
        Some(Selection { url: SelUrl::Id(id), token })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        LinkDecision::Enqueue
    }

    fn feedback(&mut self, token: u64, _reward: f64) {
        self.observations.push(token);
    }

    fn feedback_target(&mut self, token: u64) {
        self.observations.push(token);
    }

    fn feedback_error(&mut self, token: u64) {
        self.observations.push(token);
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

/// Shutdown with selections in flight across *multiple* sites of one
/// shared pool: every outstanding selection must drain as
/// `feedback_error` + `Abandoned(SessionClosed)`, preserving exactly one
/// feedback per selection per site.
#[test]
fn shared_pool_shutdown_drains_in_flight_selections_across_sites() {
    let sites = pool_sites(77);
    let servers: Vec<SiteServer> =
        sites.iter().map(|s| SiteServer::shared(Arc::clone(s))).collect();
    let roots: Vec<String> = sites.iter().map(|s| root_of(s)).collect();
    let cfgs: Vec<CrawlConfig> = (0..sites.len())
        .map(|i| CrawlConfig { seed: i as u64, ..CrawlConfig::default() })
        .collect();
    let mut recorders: Vec<Recorder> = (0..sites.len()).map(|_| Recorder::default()).collect();
    let mut logs: Vec<EventLog> = (0..sites.len()).map(|_| EventLog::new()).collect();

    let pool = SharedTransportPool::new(9);
    let mut sessions: Vec<CrawlSession<'_>> = servers
        .iter()
        .zip(recorders.iter_mut())
        .zip(logs.iter_mut())
        .zip(cfgs.iter())
        .enumerate()
        .map(|(i, (((server, rec), log), cfg))| {
            let handle =
                pool.handle(server, cfg.policy.clone(), cfg.politeness);
            CrawlSession::with_transport(Box::new(handle), None, &roots[i], rec, cfg)
                .expect("generated roots are valid")
                .observe(log)
        })
        .collect();

    // Seed each frontier: submit + drain the root, then one more round so
    // links are discovered.
    for _ in 0..2 {
        for s in &mut sessions {
            s.refill_one();
        }
        for s in &mut sessions {
            s.drain_completions();
        }
    }
    // Fill the global window with outer selections across every site and
    // stop without draining: 3 slots each.
    for _ in 0..3 {
        for s in &mut sessions {
            assert!(s.refill_one(), "frontiers must still offer selections");
        }
    }
    let in_flight: Vec<usize> = sessions.iter().map(|s| s.in_flight()).collect();
    assert!(
        in_flight.iter().filter(|&&n| n > 0).count() >= 2,
        "the scenario needs selections in flight across several sites: {in_flight:?}"
    );
    assert_eq!(pool.in_flight(), in_flight.iter().sum::<usize>());

    // Kill every session mid-flight.
    let outcomes: Vec<_> = sessions.into_iter().map(|s| s.finish()).collect();
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(o.finish_reason, sb_crawler::FinishReason::Cancelled, "site{i}");
    }
    assert_eq!(pool.in_flight(), 0, "shutdown must drain the pool (wire cost stays honest)");

    for (i, (rec, log)) in recorders.iter().zip(&logs).enumerate() {
        let mut selected = rec.selected.clone();
        let mut observed = rec.observations.clone();
        selected.sort_unstable();
        observed.sort_unstable();
        assert_eq!(
            selected, observed,
            "site{i}: every pull must produce exactly one observation across shutdown"
        );
        let closed = log
            .events()
            .iter()
            .filter(|e| {
                matches!(e, OwnedEvent::Abandoned { reason: AbandonReason::SessionClosed, .. })
            })
            .count();
        assert_eq!(
            closed, in_flight[i],
            "site{i}: each in-flight job must end as Abandoned(SessionClosed)"
        );
    }
}

/// PR 6 extension of the shutdown-drain contract: the same mid-flight
/// kill, but with every handle running a retry policy with real backoff
/// over a fully flaky origin — so at shutdown the outstanding selections
/// are not idle transfers but requests *mid-retry*, their re-dispatches
/// scheduled seconds into the simulated future. The drain must still
/// deliver exactly one `feedback_error` per selection, one
/// `Abandoned(SessionClosed)` per in-flight job, tally them in the PR 6
/// per-reason counters, and leave the pool empty with every attempt
/// (failures included) charged.
#[test]
fn shared_pool_shutdown_drains_selections_mid_retry_backoff() {
    use sb_httpsim::{FlakyServer, RetryPolicy};

    let sites = pool_sites(78);
    // Every URL 503s on first contact and recovers on retry: each
    // submission is guaranteed to spend at least two attempts, with the
    // second gated behind a long exponential backoff.
    let servers: Vec<FlakyServer<SiteServer>> = sites
        .iter()
        .map(|s| FlakyServer::new(SiteServer::shared(Arc::clone(s)), 1.0, 5).recoverable())
        .collect();
    let roots: Vec<String> = sites.iter().map(|s| root_of(s)).collect();
    let cfgs: Vec<CrawlConfig> = (0..sites.len())
        .map(|i| CrawlConfig { seed: i as u64, ..CrawlConfig::default() })
        .collect();
    let mut recorders: Vec<Recorder> = (0..sites.len()).map(|_| Recorder::default()).collect();
    let mut logs: Vec<EventLog> = (0..sites.len()).map(|_| EventLog::new()).collect();

    let pool = SharedTransportPool::new(9);
    let mut sessions: Vec<CrawlSession<'_>> = servers
        .iter()
        .zip(recorders.iter_mut())
        .zip(logs.iter_mut())
        .zip(cfgs.iter())
        .enumerate()
        .map(|(i, (((server, rec), log), cfg))| {
            let handle = pool
                .handle(server, cfg.policy.clone(), cfg.politeness)
                .with_retry_policy(RetryPolicy::retries(2).with_backoff(5.0, 40.0).with_jitter(0.2, i as u64));
            CrawlSession::with_transport(Box::new(handle), None, &roots[i], rec, cfg)
                .expect("generated roots are valid")
                .observe(log)
        })
        .collect();

    // Seed each frontier through the flaky root (two attempts each).
    for _ in 0..2 {
        for s in &mut sessions {
            s.refill_one();
        }
        for s in &mut sessions {
            s.drain_completions();
        }
    }
    // Fill the global window with selections that will all hit a 503 and
    // re-enter the gate behind a multi-second backoff, then stop without
    // draining.
    for _ in 0..3 {
        for s in &mut sessions {
            assert!(s.refill_one(), "frontiers must still offer selections");
        }
    }
    let in_flight: Vec<usize> = sessions.iter().map(|s| s.in_flight()).collect();
    assert!(
        in_flight.iter().filter(|&&n| n > 0).count() >= 2,
        "the scenario needs mid-retry selections across several sites: {in_flight:?}"
    );
    let before_gets: Vec<u64> = sessions.iter().map(|s| s.traffic().get_requests).collect();

    let outcomes: Vec<_> = sessions.into_iter().map(|s| s.finish()).collect();
    assert_eq!(pool.in_flight(), 0, "shutdown must drain mid-backoff work too");

    for (i, (rec, log)) in recorders.iter().zip(&logs).enumerate() {
        let mut selected = rec.selected.clone();
        let mut observed = rec.observations.clone();
        selected.sort_unstable();
        observed.sort_unstable();
        assert_eq!(
            selected, observed,
            "site{i}: exactly one observation per selection across a mid-retry shutdown"
        );
        let closed = log
            .events()
            .iter()
            .filter(|e| {
                matches!(e, OwnedEvent::Abandoned { reason: AbandonReason::SessionClosed, .. })
            })
            .count();
        assert_eq!(closed, in_flight[i], "site{i}: every mid-retry job ends as SessionClosed");
        assert_eq!(
            outcomes[i].abandoned.session_closed as usize, closed,
            "site{i}: the per-reason counter must agree with the event stream"
        );
        // The drain delivers the final answers of outstanding work: with
        // 100% first-contact failure every delivered request spent ≥ 2
        // attempts, and all of them are charged.
        assert!(
            outcomes[i].traffic.get_requests >= before_gets[i] + 2 * in_flight[i] as u64,
            "site{i}: drained retries must be charged ({} < {} + 2·{})",
            outcomes[i].traffic.get_requests,
            before_gets[i],
            in_flight[i]
        );
    }
}

// ----------------------------------------------------------------------
// Sharded parallel fleet (PR 8)
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-site results are **shard-count invariant**: for any shard
    /// count, per-shard window and site → shard assignment (hashed or
    /// arbitrary), the sharded fleet's coverage matches the single shared
    /// pool site for site. And at per-shard window 1 every site replays
    /// the frozen seed engine byte for byte — targets in retrieval order,
    /// pages crawled, full masked trace — no matter which shard's pool
    /// ends up driving it or whether it got there by stealing.
    #[test]
    fn sharded_results_are_shard_count_invariant(
        (seed, shards, window) in (0u64..500, 1usize..5, 1usize..9),
        assignment in proptest::option::of(proptest::collection::vec(0usize..8, 0..4)),
    ) {
        let sites = pool_sites(seed);
        let baseline = run_fleet_mode(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::SharedPool { max_in_flight: window },
        );

        let out = build_fleet(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::Sharded { shards, max_in_flight: window },
            assignment.clone(),
        )
        .run();
        let sharded = site_outcomes(&out);

        prop_assert_eq!(out.shards.len(), shards);
        prop_assert_eq!(
            out.shards.iter().map(|s| s.sites).sum::<usize>(),
            sites.len(),
            "every site is driven by exactly one shard"
        );
        for (i, (b, s)) in baseline.iter().zip(&sharded).enumerate() {
            let mut b_targets = b.summary.targets.clone();
            let mut s_targets = s.summary.targets.clone();
            b_targets.sort();
            s_targets.sort();
            prop_assert_eq!(
                b_targets, s_targets,
                "site{} coverage changed under sharding (shards {}, window {})",
                i, shards, window
            );
            prop_assert_eq!(b.summary.pages_crawled, s.summary.pages_crawled, "site{}", i);
            prop_assert_eq!(b.summary.requests, s.summary.requests, "site{}", i);
        }

        // Per-shard window 1: byte-identical replay of the frozen seed
        // engine for every shard count.
        let serial = build_fleet(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::Sharded { shards, max_in_flight: 1 },
            assignment,
        )
        .run();
        let serial = site_outcomes(&serial);
        for (i, (site, s)) in sites.iter().zip(&serial).enumerate() {
            let server = SiteServer::shared(Arc::clone(site));
            let reference = reference_queue_crawl(
                &server,
                &root_of(site),
                Discipline::Fifo,
                Budget::Unlimited,
                i as u64,
                None,
            );
            let ref_targets: Vec<String> =
                reference.targets.iter().map(|(u, _)| u.clone()).collect();
            prop_assert_eq!(
                &s.summary.targets, &ref_targets,
                "site{} window-1 shard must replay the seed engine's target order (shards {})",
                i, shards
            );
            prop_assert_eq!(s.summary.pages_crawled, reference.pages_crawled, "site{}", i);
            prop_assert_eq!(
                masked(&s.trace),
                masked(&collapse_target_amends(&reference.trace)),
                "site{} window-1 shard trace must replay the seed engine (shards {})", i, shards
            );
        }
    }
}

/// The ISSUE 8 acceptance shape on the bench workload: the 8×500 fleet at
/// per-shard window 1 is byte-identical — summary *and* target order —
/// across shard counts 1, 2 and 4 and to the single shared pool, and the
/// fleet-level gauge/abandon aggregates stay consistent with both the
/// per-site outcomes and the per-shard reports.
#[test]
fn sharded_eight_by_500_is_byte_identical_across_shard_counts() {
    let sites: Vec<Arc<Website>> =
        (0..8).map(|i| Arc::new(build_site(&SiteSpec::demo(500), 100 + i))).collect();
    let baseline =
        run_fleet_mode(&sites, 1, Budget::Unlimited, FleetMode::SharedPool { max_in_flight: 1 });

    for shards in [1usize, 2, 4] {
        let out = build_fleet(
            &sites,
            1,
            Budget::Unlimited,
            FleetMode::Sharded { shards, max_in_flight: 1 },
            None,
        )
        .run();
        let sharded = site_outcomes(&out);
        for (i, (b, s)) in baseline.iter().zip(&sharded).enumerate() {
            assert_eq!(b.summary, s.summary, "site{i} (shards {shards})");
        }

        // Satellite: fleet-level gauges and abandon counts aggregate both
        // per site and per shard.
        let site_visited: usize =
            out.sites.iter().map(|r| r.expect_outcome().mem.visited_urls).sum();
        let shard_visited: usize = out.shards.iter().map(|s| s.mem.visited_urls).sum();
        assert!(out.mem.visited_urls > 0, "exhaustive crawls visit URLs");
        assert_eq!(out.mem.visited_urls, site_visited, "fleet gauges sum site gauges");
        assert_eq!(out.mem.visited_urls, shard_visited, "shard gauges sum to fleet gauges");
        let site_abandoned: u64 =
            out.sites.iter().map(|r| r.expect_outcome().abandoned.total()).sum();
        assert_eq!(out.abandoned.total(), site_abandoned);
        assert_eq!(out.shards.len(), shards);
        assert_eq!(out.shards.iter().map(|s| s.sites).sum::<usize>(), sites.len());
        for (s, report) in out.shards.iter().enumerate() {
            assert!(
                report.sites == 0 || report.sim_makespan_secs > 0.0,
                "shard {s} drove {} sites but its clock never moved",
                report.sites
            );
        }
    }
}

/// Work stealing: pin every site to shard 0 of a two-shard fleet. Shard 1
/// starts with an empty backlog, so any site it drives *must* have been
/// stolen — and stealing must not change any result. (Whether shard 1
/// wins a steal is the one wall-clock-dependent outcome; with shard 0
/// grinding 300-page crawls one wave at a time it effectively always
/// does, and the bookkeeping identity holds either way.)
#[test]
fn stealing_shards_keep_results_identical() {
    let sites: Vec<Arc<Website>> =
        (0..6).map(|i| Arc::new(build_site(&SiteSpec::demo(300), 900 + i))).collect();
    let pinned = Some(vec![0usize; sites.len()]);

    let solo = build_fleet(
        &sites,
        1,
        Budget::Unlimited,
        FleetMode::Sharded { shards: 1, max_in_flight: 1 },
        None,
    )
    .run();
    let out = build_fleet(
        &sites,
        1,
        Budget::Unlimited,
        FleetMode::Sharded { shards: 2, max_in_flight: 1 },
        pinned,
    )
    .run();

    let solo_sites = site_outcomes(&solo);
    let stolen_sites = site_outcomes(&out);
    for (i, (a, b)) in solo_sites.iter().zip(&stolen_sites).enumerate() {
        assert_eq!(a.summary, b.summary, "site{i}: stealing changed a per-site result");
    }

    assert_eq!(out.shards.len(), 2);
    assert_eq!(out.shards[0].sites + out.shards[1].sites, sites.len());
    // Everything was assigned to shard 0, so shard 1's driven count IS its
    // steal count — the bookkeeping identity that holds regardless of
    // scheduling luck.
    assert_eq!(
        out.shards[1].sites as u64, out.shards[1].stolen,
        "a shard with an empty assignment only drives stolen sites"
    );
    assert_eq!(out.stolen_sites(), out.shards[0].stolen + out.shards[1].stolen);
}

/// Multi-shard shutdown: two threads each drive their own pool (the
/// PR 8 `Send` backend), seed a few sites, fill both windows with
/// selections and kill every session mid-flight. Each in-flight selection
/// must drain as exactly one `feedback_error` + `Abandoned(SessionClosed)`
/// on its own shard, exactly as in the single-pool contract.
#[test]
fn multi_shard_shutdown_drains_in_flight_selections_per_shard() {
    let sites = pool_sites(79);
    let site_refs: Vec<Arc<Website>> = sites.clone();

    // Shard 0 gets sites 0..2, shard 1 gets site 2.. — both pools hold
    // several selections in flight at kill time.
    let split = 2usize;
    let shards: Vec<Vec<Arc<Website>>> =
        vec![site_refs[..split].to_vec(), site_refs[split..].to_vec()];

    let results: Vec<(Vec<Vec<u64>>, Vec<Vec<u64>>, Vec<usize>, Vec<usize>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard_sites| {
                    scope.spawn(move || {
                        let servers: Vec<SiteServer> = shard_sites
                            .iter()
                            .map(|s| SiteServer::shared(Arc::clone(s)))
                            .collect();
                        let roots: Vec<String> =
                            shard_sites.iter().map(|s| root_of(s)).collect();
                        let cfgs: Vec<CrawlConfig> = (0..shard_sites.len())
                            .map(|i| CrawlConfig { seed: i as u64, ..CrawlConfig::default() })
                            .collect();
                        let mut recorders: Vec<Recorder> =
                            (0..shard_sites.len()).map(|_| Recorder::default()).collect();
                        let mut logs: Vec<EventLog> =
                            (0..shard_sites.len()).map(|_| EventLog::new()).collect();

                        let pool = SharedTransportPool::new(6);
                        let mut sessions: Vec<CrawlSession<'_>> = servers
                            .iter()
                            .zip(recorders.iter_mut())
                            .zip(logs.iter_mut())
                            .zip(cfgs.iter())
                            .enumerate()
                            .map(|(i, (((server, rec), log), cfg))| {
                                let handle =
                                    pool.handle(server, cfg.policy.clone(), cfg.politeness);
                                CrawlSession::with_transport(
                                    Box::new(handle),
                                    None,
                                    &roots[i],
                                    rec,
                                    cfg,
                                )
                                .expect("generated roots are valid")
                                .observe(log)
                            })
                            .collect();

                        for _ in 0..2 {
                            for s in &mut sessions {
                                s.refill_one();
                            }
                            for s in &mut sessions {
                                s.drain_completions();
                            }
                        }
                        for _ in 0..3 {
                            for s in &mut sessions {
                                assert!(s.refill_one(), "frontiers must still offer selections");
                            }
                        }
                        let in_flight: Vec<usize> =
                            sessions.iter().map(|s| s.in_flight()).collect();
                        assert!(in_flight.iter().sum::<usize>() > 0, "need mid-flight work");

                        let closed_counts: Vec<usize> = {
                            let outcomes: Vec<_> =
                                sessions.into_iter().map(|s| s.finish()).collect();
                            assert_eq!(pool.in_flight(), 0, "shutdown must drain the pool");
                            outcomes
                                .iter()
                                .map(|o| o.abandoned.session_closed as usize)
                                .collect()
                        };
                        let selected: Vec<Vec<u64>> =
                            recorders.iter().map(|r| r.selected.clone()).collect();
                        let observed: Vec<Vec<u64>> =
                            recorders.iter().map(|r| r.observations.clone()).collect();
                        let event_closed: Vec<usize> = logs
                            .iter()
                            .map(|log| {
                                log.events()
                                    .iter()
                                    .filter(|e| {
                                        matches!(
                                            e,
                                            OwnedEvent::Abandoned {
                                                reason: AbandonReason::SessionClosed,
                                                ..
                                            }
                                        )
                                    })
                                    .count()
                            })
                            .collect();
                        assert_eq!(event_closed, closed_counts, "counters agree with events");
                        (selected, observed, in_flight, event_closed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
        });

    for (shard, (selected, observed, in_flight, closed)) in results.iter().enumerate() {
        for i in 0..selected.len() {
            let mut sel = selected[i].clone();
            let mut obs = observed[i].clone();
            sel.sort_unstable();
            obs.sort_unstable();
            assert_eq!(
                sel, obs,
                "shard{shard}/site{i}: exactly one observation per selection across shutdown"
            );
            assert_eq!(
                closed[i], in_flight[i],
                "shard{shard}/site{i}: each in-flight job ends as Abandoned(SessionClosed)"
            );
        }
    }
}

/// PR 9: [`FleetMode::Continuous`] — the crawl-and-serve building block.
/// Discovery coverage must match the plain shared-pool fleet at the same
/// window (the serve feed is a buffer, not a behaviour change), the
/// fleet-wide refresh ledger must be exactly the merge of the per-site
/// ledgers, a static origin must report every refresh `unchanged`, and
/// the whole thing must be run-to-run deterministic.
#[test]
fn continuous_mode_refreshes_and_merges_ledgers() {
    let sites: Vec<Arc<Website>> = fleet_sites().into_iter().take(3).collect();
    let (epochs, per_epoch) = (3usize, 5usize);
    let mode = FleetMode::Continuous {
        max_in_flight: 4,
        refresh_epochs: epochs,
        refresh_per_epoch: per_epoch,
    };
    let run = || build_fleet(&sites, 2, Budget::Unlimited, mode, None).run();
    let out = run();
    assert_eq!(out.sites.len(), sites.len());

    // Discovery is untouched by the serve feed and the refresh rounds:
    // targets and page coverage match the plain shared-pool fleet.
    let base = run_fleet_mode(&sites, 2, Budget::Unlimited, FleetMode::SharedPool {
        max_in_flight: 4,
    });
    for (r, b) in site_outcomes(&out).iter().zip(&base) {
        assert_eq!(r.summary.targets, b.summary.targets, "{}: same targets", r.summary.name);
        // Refresh traffic rides the same sessions, on top of discovery:
        // each completed refresh is one more fetched page and request.
        let refreshes = (epochs * per_epoch) as u64;
        assert_eq!(r.summary.pages_crawled, b.summary.pages_crawled + refreshes);
        assert!(r.summary.requests >= b.summary.requests + refreshes, "refreshes cost requests");
    }

    // The ledger adds up: every queued refresh dispatched (unlimited
    // budget), and a static origin never reports a change.
    let want = (sites.len() * epochs * per_epoch) as u64;
    assert_eq!(out.refresh.scheduled, want);
    assert_eq!(out.refresh.completed, want);
    assert_eq!(out.refresh.unchanged, want);
    assert_eq!(out.refresh.changed, 0);
    assert_eq!(out.refresh.failed, 0);

    // Fleet-wide ledger == merge of the per-site ledgers.
    let mut merged = sb_crawler::RefreshStats::default();
    for r in &out.sites {
        merged.merge(&r.expect_outcome().refresh);
    }
    assert_eq!(out.refresh, merged);

    // Deterministic across runs.
    let again = run();
    assert_eq!(out.refresh, again.refresh);
    for (a, b) in site_outcomes(&out).iter().zip(site_outcomes(&again).iter()) {
        assert_eq!(a.summary, b.summary);
    }
}
