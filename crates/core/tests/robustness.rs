//! Failure injection and compliance: the engine against hostile transport.
//!
//! A production crawler must terminate on infinite URL spaces (robot
//! traps), degrade gracefully under transient 5xx bursts, and honour
//! robots.txt without spending a single request on an excluded URL. These
//! tests drive the shared engine (Algorithms 3–4) through the
//! `sb-httpsim` failure-injection servers.

use sb_crawler::engine::{crawl, robots_filter, Budget, CrawlConfig};
use sb_crawler::strategies::{QueueStrategy, SbStrategy};
use sb_httpsim::{EnforcedRobots, FlakyServer, RobotsTxt, SiteServer, TrapServer, WithRobots};
use sb_webgraph::url::Url;
use sb_webgraph::{build_site, SiteSpec};

// ---------------------------------------------------------------------
// Robot trap: infinite URL space
// ---------------------------------------------------------------------

#[test]
fn dfs_in_a_trap_burns_its_whole_budget() {
    let trap = TrapServer::new("https://trap.example.org");
    let root = trap.root_url();
    let mut dfs = QueueStrategy::dfs();
    let cfg = CrawlConfig { budget: Budget::Requests(300), ..Default::default() };
    let outcome = crawl(&trap, None, &root, &mut dfs, &cfg);
    // The crawl must stop at the budget — not hang, not overflow.
    assert!(outcome.pages_crawled <= 301);
    assert!(outcome.traffic.requests() >= 300, "DFS keeps descending forever");
}

#[test]
fn bfs_in_a_trap_still_finds_the_shallow_target() {
    let trap = TrapServer::new("https://trap.example.org");
    let root = trap.root_url();
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(100), ..Default::default() };
    let outcome = crawl(&trap, None, &root, &mut bfs, &cfg);
    assert_eq!(outcome.targets_found(), 1, "the entry-page CSV is at depth 1");
}

#[test]
fn early_stopping_escapes_the_trap() {
    let trap = TrapServer::new("https://trap.example.org");
    let root = trap.root_url();
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig {
        budget: Budget::Requests(100_000),
        early_stop: Some(sb_crawler::EarlyStopConfig {
            nu: 50,
            epsilon: 0.2,
            gamma: 0.05,
            kappa: 4,
        }),
        ..Default::default()
    };
    let outcome = crawl(&trap, None, &root, &mut bfs, &cfg);
    assert!(outcome.stopped_early, "target discovery flatlines ⇒ the slope rule must fire");
    assert!(
        outcome.traffic.requests() < 10_000,
        "stopped after {} requests",
        outcome.traffic.requests()
    );
}

#[test]
fn engine_never_fetches_a_trap_url_twice() {
    // The seen-set is what makes traps merely wasteful instead of loops.
    let trap = TrapServer::new("https://trap.example.org");
    let root = trap.root_url();
    let mut dfs = QueueStrategy::dfs();
    let cfg = CrawlConfig { budget: Budget::Requests(400), ..Default::default() };
    let outcome = crawl(&trap, None, &root, &mut dfs, &cfg);
    // /trap/n links to n+1 and 2n+3; revisits would show as pages_crawled
    // exceeding distinct URLs. Requests == pages crawled on an all-200 site.
    assert_eq!(outcome.pages_crawled, outcome.traffic.get_requests);
}

// ---------------------------------------------------------------------
// Flaky origin: transient and hard 5xx
// ---------------------------------------------------------------------

#[test]
fn crawl_survives_a_hard_5xx_outage_on_a_third_of_urls() {
    let site = build_site(&SiteSpec::demo(400), 11);
    let root = site.page(site.root()).url.clone();
    let total_targets = site.census().targets as u64;
    let flaky = FlakyServer::new(SiteServer::new(site), 0.33, 5).protecting(&root);
    let mut bfs = QueueStrategy::bfs();
    let outcome = crawl(&flaky, None, &root, &mut bfs, &CrawlConfig::default());
    assert!(flaky.injected() > 0, "failures were actually injected");
    assert!(outcome.targets_found() > 0, "the crawl still makes progress");
    assert!(
        outcome.targets_found() < total_targets,
        "a hard outage on a third of URLs must cost some targets"
    );
}

#[test]
fn sb_classifier_survives_failure_injection() {
    let site = build_site(&SiteSpec::demo(400), 11);
    let root = site.page(site.root()).url.clone();
    let flaky = FlakyServer::new(SiteServer::new(site), 0.2, 9).recoverable();
    let mut sb = SbStrategy::classifier_default();
    let cfg = CrawlConfig { budget: Budget::Requests(500), ..Default::default() };
    let outcome = crawl(&flaky, None, &root, &mut sb, &cfg);
    assert!(outcome.targets_found() > 0);
    assert!(!outcome.aborted_oom);
}

#[test]
fn deterministic_under_identical_failure_seeds() {
    let run = || {
        let site = build_site(&SiteSpec::demo(300), 11);
        let root = site.page(site.root()).url.clone();
        let flaky = FlakyServer::new(SiteServer::new(site), 0.25, 5);
        let mut bfs = QueueStrategy::bfs();
        let outcome = crawl(&flaky, None, &root, &mut bfs, &CrawlConfig::default());
        (outcome.pages_crawled, outcome.targets_found(), outcome.traffic.requests())
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------------
// robots.txt compliance
// ---------------------------------------------------------------------

/// Disallow a real section of a generated site, then check (a) the
/// compliant crawl never requests an excluded URL — proven by running
/// against an *enforcing* server and seeing zero 403s — and (b) coverage
/// shrinks accordingly.
#[test]
fn robots_filter_prevents_excluded_requests_entirely() {
    let site = build_site(&SiteSpec::demo(400), 17);
    let root_url = site.page(site.root()).url.clone();
    // Find a path prefix that actually exists: the first section hub's
    // first path segment.
    let prefix = site
        .pages()
        .iter()
        .filter_map(|p| {
            let u = Url::parse(&p.url).ok()?;
            let seg = u.path.split('/').nth(1)?.to_owned();
            (!seg.is_empty()).then_some(format!("/{seg}/"))
        })
        .find(|pre| !root_url.ends_with(pre.as_str()))
        .expect("site has sectioned paths");
    let robots_body = format!("User-agent: *\nDisallow: {prefix}");

    // Uncompliant crawl on the plain site: spends requests under `prefix`.
    let plain = SiteServer::new(site.clone());
    let mut bfs = QueueStrategy::bfs();
    let unfiltered = crawl(&plain, None, &root_url, &mut bfs, &CrawlConfig::default());

    // Compliant crawl against the *enforcing* server: if the filter ever
    // leaked a request to an excluded URL it would cost a 403 and show up
    // as a request count difference vs. the non-enforcing server.
    let enforcing = EnforcedRobots::new(SiteServer::new(site.clone()), &root_url, robots_body.clone(), "sbcrawl");
    let robots = RobotsTxt::parse(&robots_body);
    let mut bfs2 = QueueStrategy::bfs();
    let cfg = CrawlConfig {
        url_filter: Some(robots_filter(robots.clone(), "sbcrawl")),
        ..Default::default()
    };
    let filtered_enforced = crawl(&enforcing, None, &root_url, &mut bfs2, &cfg);

    let soft = WithRobots::new(SiteServer::new(site), &root_url, robots_body);
    let mut bfs3 = QueueStrategy::bfs();
    let cfg2 = CrawlConfig { url_filter: Some(robots_filter(robots, "sbcrawl")), ..Default::default() };
    let filtered_soft = crawl(&soft, None, &root_url, &mut bfs3, &cfg2);

    assert_eq!(
        filtered_enforced.traffic.requests(),
        filtered_soft.traffic.requests(),
        "enforcement changes nothing for a compliant crawler ⇒ no excluded URL was requested"
    );
    assert_eq!(filtered_enforced.targets_found(), filtered_soft.targets_found());
    assert!(
        filtered_enforced.pages_crawled < unfiltered.pages_crawled,
        "excluding a section must shrink coverage ({} vs {})",
        filtered_enforced.pages_crawled,
        unfiltered.pages_crawled
    );
}

/// PR 6: setting `robots_agent` makes the session fetch `/robots.txt` on
/// its own, route every admission decision through the parsed rules, and
/// feed `Crawl-delay` into the transport gate — no manual `url_filter` or
/// `Politeness` plumbing. The enforcing server proves compliance: a leaked
/// request to a disallowed URL would cost a 403 there but not on the soft
/// server, so identical traffic on both means no excluded URL was fetched.
#[test]
fn robots_agent_auto_applies_disallow_and_crawl_delay() {
    let site = build_site(&SiteSpec::demo(400), 17);
    let root_url = site.page(site.root()).url.clone();
    let prefix = site
        .pages()
        .iter()
        .filter_map(|p| {
            let u = Url::parse(&p.url).ok()?;
            let seg = u.path.split('/').nth(1)?.to_owned();
            (!seg.is_empty()).then_some(format!("/{seg}/"))
        })
        .find(|pre| !root_url.ends_with(pre.as_str()))
        .expect("site has sectioned paths");
    let robots_body = format!("User-agent: *\nDisallow: {prefix}\nCrawl-delay: 5");

    // Baseline with no agent configured: robots.txt is never requested and
    // the excluded section is crawled at the default 1 s politeness.
    let plain = SiteServer::new(site.clone());
    let mut bfs = QueueStrategy::bfs();
    let blind = crawl(&plain, None, &root_url, &mut bfs, &CrawlConfig::default());

    let enforcing =
        EnforcedRobots::new(SiteServer::new(site.clone()), &root_url, robots_body.clone(), "sbcrawl");
    let mut bfs2 = QueueStrategy::bfs();
    let cfg = CrawlConfig { robots_agent: Some("sbcrawl".to_owned()), ..Default::default() };
    let auto = crawl(&enforcing, None, &root_url, &mut bfs2, &cfg);

    let soft = WithRobots::new(SiteServer::new(site), &root_url, robots_body);
    let mut bfs3 = QueueStrategy::bfs();
    let auto_soft = crawl(&soft, None, &root_url, &mut bfs3, &cfg);

    assert_eq!(
        auto.traffic.requests(),
        auto_soft.traffic.requests(),
        "enforcement changes nothing ⇒ no disallowed URL was ever requested"
    );
    assert_eq!(auto.targets_found(), auto_soft.targets_found());
    assert!(
        auto.pages_crawled < blind.pages_crawled,
        "the Disallow section must shrink coverage ({} vs {})",
        auto.pages_crawled,
        blind.pages_crawled
    );
    let per_request = auto.traffic.elapsed_secs / auto.traffic.requests() as f64;
    assert!(
        per_request > 4.0,
        "Crawl-delay 5 must reach the gate: {per_request:.2}s per request"
    );
}

#[test]
fn crawl_delay_raises_estimated_wall_clock() {
    let site = build_site(&SiteSpec::demo(200), 3);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);

    let run_with_delay = |delay: f64| {
        let mut bfs = QueueStrategy::bfs();
        let cfg = CrawlConfig {
            budget: Budget::Requests(150),
            politeness: sb_httpsim::Politeness { delay_secs: delay, ..Default::default() },
            ..Default::default()
        };
        crawl(&server, None, &root, &mut bfs, &cfg).traffic.elapsed_secs
    };

    let t1 = run_with_delay(1.0);
    // A robots Crawl-delay of 5 feeds straight into the politeness model.
    let robots = RobotsTxt::parse("User-agent: *\nCrawl-delay: 5");
    let t5 = run_with_delay(robots.crawl_delay("sbcrawl").unwrap());
    assert!(t5 > t1 * 3.0, "5 s delay must dominate: {t1:.0}s vs {t5:.0}s");
}

// ---------------------------------------------------------------------
// Sitemap seeding
// ---------------------------------------------------------------------

#[test]
fn sitemap_seeding_front_loads_targets() {
    use sb_httpsim::{fetch_sitemap_urls, WithSitemap};

    let site = build_site(&SiteSpec::demo(500), 23);
    let root = site.page(site.root()).url.clone();
    let target_urls: Vec<String> =
        site.target_ids().iter().map(|&id| site.page(id).url.clone()).collect();
    let n_listed = 40.min(target_urls.len());
    let listed: Vec<String> = target_urls[..n_listed].to_vec();
    let server = WithSitemap::new(SiteServer::new(site), &root, &listed, 25);

    // Cooperative crawl: read the sitemap, seed the engine with it.
    let seeds = fetch_sitemap_urls(&server, &root);
    assert_eq!(seeds.len(), n_listed);
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig {
        budget: Budget::Requests(n_listed as u64 + 5),
        seed_urls: seeds,
        ..Default::default()
    };
    let outcome = crawl(&server, None, &root, &mut bfs, &cfg);
    // Root + seeds fit in the budget: nearly every request lands a target.
    assert!(
        outcome.targets_found() >= n_listed as u64 - 2,
        "sitemap seeding should land ~{n_listed} targets, got {}",
        outcome.targets_found()
    );

    // The uncooperative baseline finds far fewer in the same budget.
    let mut bfs2 = QueueStrategy::bfs();
    let cfg2 = CrawlConfig { budget: Budget::Requests(n_listed as u64 + 5), ..Default::default() };
    let blind = crawl(&server, None, &root, &mut bfs2, &cfg2);
    assert!(blind.targets_found() < outcome.targets_found());
}

#[test]
fn seed_urls_respect_site_boundary_filter_and_dedup() {
    let site = build_site(&SiteSpec::demo(200), 23);
    let root = site.page(site.root()).url.clone();
    let a_target = site.target_ids().first().map(|&id| site.page(id).url.clone()).unwrap();
    let server = SiteServer::new(site);
    let robots = RobotsTxt::parse("User-agent: *\nDisallow: /");
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig {
        budget: Budget::Requests(50),
        // Off-site, duplicate-of-root, robots-blocked: all skipped for free.
        seed_urls: vec![
            "https://elsewhere.example/x.csv".to_owned(),
            root.clone(),
            a_target,
        ],
        url_filter: Some(robots_filter(robots, "sbcrawl")),
        ..Default::default()
    };
    let outcome = crawl(&server, None, &root, &mut bfs, &cfg);
    // Only the root fetch happened: every seed was rejected unrequested.
    assert_eq!(outcome.pages_crawled, 1);
}
