//! End-to-end engine tests: every strategy crawls a generated website
//! through the full stack (render → parse → classify → cluster → select).

use sb_crawler::engine::{crawl, Budget, CrawlConfig, CrawlOutcome};
use sb_crawler::strategies::{
    FocusedStrategy, OmniscientStrategy, QueueStrategy, SbConfig, SbStrategy, TpOffStrategy,
    TresStrategy,
};
use sb_crawler::strategy::Strategy;
use sb_crawler::EarlyStopConfig;
use sb_httpsim::SiteServer;
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::Website;

fn demo_site(n: usize, seed: u64) -> Website {
    build_site(&SiteSpec::demo(n), seed)
}

fn run(site: &Website, strategy: &mut dyn Strategy, cfg: &CrawlConfig) -> CrawlOutcome {
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site.clone());
    crawl(&server, Some(site), &root, strategy, cfg)
}

#[test]
fn bfs_exhausts_the_site() {
    let site = demo_site(400, 1);
    let mut bfs = QueueStrategy::bfs();
    let out = run(&site, &mut bfs, &CrawlConfig::default());
    // An unlimited BFS retrieves every reachable target.
    assert_eq!(out.targets_found() as usize, site.census().targets);
    assert!(!out.stopped_early);
    assert!(!out.aborted_oom);
}

#[test]
fn no_url_is_fetched_twice() {
    let site = demo_site(300, 2);
    let mut bfs = QueueStrategy::bfs();
    let out = run(&site, &mut bfs, &CrawlConfig { keep_target_bodies: false, ..Default::default() });
    // Requests ≤ distinct URLs (incl. errors/redirects) + HEADs.
    let distinct = site.len() as u64;
    assert!(
        out.traffic.get_requests <= distinct,
        "{} GETs for {} distinct URLs",
        out.traffic.get_requests,
        distinct
    );
}

#[test]
fn sb_oracle_exhausts_site_too() {
    let site = demo_site(400, 3);
    let mut sb = SbStrategy::oracle(SbConfig::default());
    let out = run(&site, &mut sb, &CrawlConfig::default());
    assert_eq!(out.targets_found() as usize, site.census().targets);
    // The oracle never wastes a GET on a dead URL.
    let avail = site.census().available as u64;
    // + redirects can still be followed; allow slack.
    assert!(out.traffic.get_requests <= avail + (site.len() as u64 - avail) / 2);
}

#[test]
fn sb_classifier_crawls_and_learns() {
    let site = demo_site(600, 4);
    let mut sb = SbStrategy::classifier_default();
    let out = run(&site, &mut sb, &CrawlConfig::default());
    let total = site.census().targets;
    // The classifier makes mistakes but must still retrieve nearly all
    // targets on an exhaustive run (missed ones are targets misrouted as
    // HTML — still fetched eventually — so the only true losses are
    // classifier-dropped URLs, which never happens: HTML/Target is a closed
    // world for enqueue/fetch).
    assert!(
        out.targets_found() as usize >= total * 95 / 100,
        "retrieved {} of {} targets",
        out.targets_found(),
        total
    );
    assert!(out.report.n_actions > 3, "learned {} actions", out.report.n_actions);
}

#[test]
fn sb_beats_bfs_under_budget() {
    let site = demo_site(900, 5);
    let total = site.census().targets as f64;
    let budget = Budget::Requests(350);
    let cfg = CrawlConfig { budget, ..Default::default() };
    let mut sb = SbStrategy::oracle(SbConfig::default());
    let sb_out = run(&site, &mut sb, &cfg);
    let mut bfs = QueueStrategy::bfs();
    let bfs_out = run(&site, &mut bfs, &cfg);
    let sb_frac = sb_out.targets_found() as f64 / total;
    let bfs_frac = bfs_out.targets_found() as f64 / total;
    assert!(
        sb_frac > bfs_frac,
        "SB-ORACLE {sb_frac:.2} must beat BFS {bfs_frac:.2} at the same budget"
    );
}

#[test]
fn omniscient_is_request_optimal() {
    let site = demo_site(400, 6);
    let targets: Vec<String> =
        site.target_ids().iter().map(|&id| site.page(id).url.clone()).collect();
    let n = targets.len() as u64;
    let mut omni = OmniscientStrategy::new(targets);
    let out = run(&site, &mut omni, &CrawlConfig::default());
    assert_eq!(out.targets_found(), n);
    // Root + one GET per target.
    assert_eq!(out.traffic.get_requests, n + 1);
}

#[test]
fn budget_is_respected() {
    let site = demo_site(500, 7);
    for b in [10u64, 50, 200] {
        let mut bfs = QueueStrategy::bfs();
        let out = run(&site, &mut bfs, &CrawlConfig { budget: Budget::Requests(b), ..Default::default() });
        // The cascade may overshoot by the in-flight page's immediate fetches.
        assert!(
            out.traffic.requests() <= b + 5,
            "budget {b} but spent {}",
            out.traffic.requests()
        );
    }
}

#[test]
fn volume_budget_is_respected() {
    let site = demo_site(500, 8);
    let mut bfs = QueueStrategy::bfs();
    let budget = 3_000_000u64;
    let out = run(&site, &mut bfs, &CrawlConfig { budget: Budget::VolumeBytes(budget), ..Default::default() });
    let last = out.trace.last().unwrap();
    // Stops within one response of the bound (responses can be large).
    assert!(last.target_bytes + last.non_target_bytes >= budget / 2);
}

#[test]
fn focused_and_tpoff_and_tres_run_to_completion() {
    let site = demo_site(400, 9);
    let total = site.census().targets;
    let mut focused = FocusedStrategy::new();
    let out_f = run(&site, &mut focused, &CrawlConfig::default());
    assert_eq!(out_f.targets_found() as usize, total, "FOCUSED exhaustive");

    let mut tpoff = TpOffStrategy::new(60);
    let out_t = run(&site, &mut tpoff, &CrawlConfig::default());
    assert_eq!(out_t.targets_found() as usize, total, "TP-OFF exhaustive");

    let mut tres = TresStrategy::new();
    let out_r = run(&site, &mut tres, &CrawlConfig::default());
    assert_eq!(out_r.targets_found() as usize, total, "TRES exhaustive");
    assert!(tres.rescore_work > 0);
}

#[test]
fn deterministic_given_seed() {
    let site = demo_site(300, 10);
    let cfg = CrawlConfig { budget: Budget::Requests(150), seed: 77, ..Default::default() };
    let run_once = || {
        let mut sb = SbStrategy::oracle(SbConfig::default());
        let out = run(&site, &mut sb, &cfg);
        (out.targets_found(), out.traffic.get_requests, out.pages_crawled)
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn early_stopping_fires_on_exhausted_site() {
    let site = demo_site(400, 11);
    // After the site is effectively exhausted the crawler keeps selecting
    // (there are always dead/article links left); early stopping must cut it.
    let mut sb = SbStrategy::oracle(SbConfig::default());
    let cfg = CrawlConfig {
        early_stop: Some(EarlyStopConfig { nu: 20, epsilon: 0.2, gamma: 0.05, kappa: 5 }),
        ..Default::default()
    };
    let out = run(&site, &mut sb, &cfg);
    // Either it stopped early, or the frontier emptied first (tiny site);
    // both are acceptable ends — but the flag must be consistent.
    if out.stopped_early {
        assert!(out.early_stop_at.is_some());
    }
}

#[test]
fn redirects_are_followed_once() {
    let site = demo_site(400, 12);
    let mut bfs = QueueStrategy::bfs();
    let out = run(&site, &mut bfs, &CrawlConfig::default());
    // All targets reachable only via redirects are still found.
    assert_eq!(out.targets_found() as usize, site.census().targets);
}

#[test]
fn keep_target_bodies_populates_bodies() {
    let site = demo_site(300, 13);
    let mut bfs = QueueStrategy::bfs();
    let out = run(&site, &mut bfs, &CrawlConfig { keep_target_bodies: true, ..Default::default() });
    assert!(out.targets.iter().all(|t| t.body.is_some()));
    assert!(out.targets.iter().any(|t| !t.body.as_ref().unwrap().is_empty()));
}

#[test]
fn trace_is_monotone_and_complete() {
    let site = demo_site(300, 14);
    let mut bfs = QueueStrategy::bfs();
    let out = run(&site, &mut bfs, &CrawlConfig::default());
    let pts = out.trace.points();
    assert!(!pts.is_empty());
    for w in pts.windows(2) {
        assert!(w[0].requests <= w[1].requests);
        assert!(w[0].targets <= w[1].targets);
        assert!(w[0].target_bytes <= w[1].target_bytes);
    }
    assert_eq!(out.trace.final_targets(), out.targets_found());
}

#[test]
fn oom_guard_aborts_cleanly() {
    let mut spec = SiteSpec::demo(400);
    spec.unique_ids = true; // every page gets a unique frame id in paths
    let site = build_site(&spec, 15);
    let mut sb = SbStrategy::oracle(SbConfig {
        actions: sb_crawler::ActionSpaceConfig {
            theta: 1.0,
            max_actions: Some(40),
            ..Default::default()
        },
        ..Default::default()
    });
    let out = run(&site, &mut sb, &CrawlConfig::default());
    assert!(out.aborted_oom, "θ=1.0 on a unique-id site must explode the action space");
}
