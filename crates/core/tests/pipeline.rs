//! The pipelined-session contract (PR 4): widening the in-flight window
//! changes *when* pages are fetched, never *what* an exhaustive crawl
//! finds; the politeness gate keeps makespans honest; and the
//! one-feedback-per-selection invariant survives both pipelining and
//! mid-flight shutdown.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use sb_crawler::engine::{Budget, CrawlConfig, CrawlSession};
use sb_crawler::events::OwnedEvent;
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use sb_crawler::EventLog;
use sb_httpsim::transport::{PipelinedTransport, Transport};
use sb_httpsim::{FlakyServer, Politeness, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::{UrlId, Website};
use rand::rngs::StdRng;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

fn arb_spec() -> impl PropStrategy<Value = SiteSpec> {
    (60usize..200, 0.08f64..0.5, 0.03f64..0.3, 0.0f64..0.4, 0.0f64..0.15).prop_map(
        |(n, tf, lf, ext, err)| {
            let mut s = SiteSpec::demo(n);
            s.target_frac = tf;
            s.html_to_target_frac = lf;
            s.extensionless = ext;
            s.error_frac = err;
            s
        },
    )
}

/// Exhaustive BFS crawl at a given window; returns (fetched URL set,
/// target URL set, simulated makespan).
fn exhaust(site: &Arc<Website>, window: usize) -> (BTreeSet<String>, BTreeSet<String>, f64) {
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::shared(Arc::clone(site));
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { max_in_flight: window, ..CrawlConfig::default() };
    let mut log = EventLog::new();
    let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .expect("generated roots are valid")
        .observe(&mut log)
        .run();
    let fetched: BTreeSet<String> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            OwnedEvent::Fetched { url, .. } => Some(url.clone()),
            _ => None,
        })
        .collect();
    let targets: BTreeSet<String> = out.targets.iter().map(|t| t.url.clone()).collect();
    (fetched, targets, out.traffic.elapsed_secs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any `max_in_flight ≥ 1` visits the same URL set and retrieves the
    /// same targets as the sequential engine on an exhaustive crawl —
    /// pipelining reorders fetches, it never changes coverage.
    #[test]
    fn window_width_never_changes_exhaustive_coverage(
        (spec, seed) in (arb_spec(), 0u64..200),
    ) {
        let site = Arc::new(build_site(&spec, seed));
        let (seq_fetched, seq_targets, seq_makespan) = exhaust(&site, 1);
        for window in [2usize, 7, 16] {
            let (fetched, targets, makespan) = exhaust(&site, window);
            prop_assert_eq!(&fetched, &seq_fetched, "window {} changed the visited set", window);
            prop_assert_eq!(&targets, &seq_targets, "window {} changed the targets", window);
            // Overlapping transfers can only shrink simulated time.
            prop_assert!(
                makespan <= seq_makespan + 1e-6,
                "window {} made the crawl slower: {} vs {}", window, makespan, seq_makespan
            );
        }
    }
}

/// On a transfer-dominated site the makespan improves monotonically with
/// the window and by ≥ 2× at 16 — the acceptance shape of the `pipeline`
/// bench, pinned at test scale.
#[test]
fn latency_simulated_makespan_scales_with_window() {
    let site = Arc::new(build_site(&SiteSpec::demo(400), 42));
    let root = site.page(site.root()).url.clone();
    let politeness = Politeness { delay_secs: 1.0, bytes_per_sec: 600.0 };
    let makespan = |window: usize| {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut bfs = QueueStrategy::bfs();
        let cfg = CrawlConfig { max_in_flight: window, politeness, ..CrawlConfig::default() };
        let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg).unwrap().run();
        (out.traffic.elapsed_secs, out.traffic.requests())
    };
    let (m1, _) = makespan(1);
    let (m4, _) = makespan(4);
    let (m16, requests) = makespan(16);
    assert!(m4 < m1 && m16 <= m4, "monotone: {m1:.0}s → {m4:.0}s → {m16:.0}s");
    assert!(m16 * 2.0 <= m1, "window 16 must at least halve the makespan: {m1:.0}s vs {m16:.0}s");
    // The politeness gate bounds the improvement through the session too:
    // dispatches to the one host sit ≥ delay_secs apart, so n GETs cost at
    // least n·delay of simulated time no matter how wide the window is.
    assert!(
        m16 >= requests as f64 * politeness.delay_secs - 1e-6,
        "gate floor violated: {requests} requests finished in {m16:.1}s"
    );
}

/// A BFS recorder that counts feedback per token (as in session_api.rs,
/// reused here to pin the invariant *under pipelining*).
#[derive(Default)]
struct Recorder {
    frontier: VecDeque<UrlId>,
    selected: Vec<u64>,
    observations: Vec<u64>,
}

impl Strategy for Recorder {
    fn name(&self) -> String {
        "RECORDER".to_owned()
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        let id = self.frontier.pop_front()?;
        let token = u64::from(id);
        self.selected.push(token);
        Some(Selection { url: SelUrl::Id(id), token })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        LinkDecision::Enqueue
    }

    fn feedback(&mut self, token: u64, _reward: f64) {
        self.observations.push(token);
    }

    fn feedback_target(&mut self, token: u64) {
        self.observations.push(token);
    }

    fn feedback_error(&mut self, token: u64) {
        self.observations.push(token);
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

/// Every selection pulled under a wide window gets exactly one feedback —
/// including the ones still in flight when the budget kills the session
/// mid-pipeline (they drain as `SessionClosed` error observations).
#[test]
fn one_feedback_per_selection_survives_pipelining_and_shutdown() {
    let site = Arc::new(build_site(&SiteSpec::demo(300), 9));
    let root = site.page(site.root()).url.clone();
    for budget in [Budget::Unlimited, Budget::Requests(37)] {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut rec = Recorder::default();
        let cfg = CrawlConfig { max_in_flight: 8, budget, ..CrawlConfig::default() };
        let _ = CrawlSession::new(&server, None, &root, &mut rec, &cfg).unwrap().run();
        let mut selected = rec.selected.clone();
        let mut observed = rec.observations.clone();
        selected.sort_unstable();
        observed.sort_unstable();
        assert_eq!(
            selected, observed,
            "every pull must produce exactly one observation under {budget:?}"
        );
    }
}

/// Transient 503 bursts: a retrying transport threaded through the session
/// recovers pages the plain pipeline abandons, on identical failure seeds.
#[test]
fn flaky_retry_through_the_pipeline_recovers_targets() {
    let site = build_site(&SiteSpec::demo(400), 11);
    let root = site.page(site.root()).url.clone();
    let cfg = CrawlConfig { max_in_flight: 6, ..CrawlConfig::default() };

    let run = |retries: u32| {
        let flaky =
            FlakyServer::new(SiteServer::new(site.clone()), 0.3, 5).recoverable().protecting(&root);
        let transport: Box<dyn Transport + '_> = Box::new(
            PipelinedTransport::new(&flaky, cfg.policy.clone(), cfg.politeness)
                .with_window(cfg.max_in_flight)
                .with_retries(retries),
        );
        let mut bfs = QueueStrategy::bfs();
        let out = CrawlSession::with_transport(transport, None, &root, &mut bfs, &cfg)
            .unwrap()
            .run();
        (out.targets_found(), out.pages_crawled)
    };

    let (plain_targets, _) = run(0);
    let (retry_targets, _) = run(1);
    let total = site.census().targets as u64;
    assert!(retry_targets > plain_targets, "{retry_targets} vs {plain_targets}");
    assert_eq!(retry_targets, total, "one retry recovers every transiently failing target");
}

/// A wide window must not overshoot `Budget::VolumeBytes` (ROADMAP open
/// item, fixed in PR 5): in-flight wire bytes count against the remaining
/// volume at refill, so exhaustion lands at the same budget point at
/// `max_in_flight` 1 and 16 — within the one-request check-to-charge gap
/// the sequential engine has always had, never a whole window of
/// undelivered transfers past the limit.
#[test]
fn volume_budget_is_not_overshot_by_wide_windows() {
    // Near-uniform transfer sizes, so "one transfer past the line" is a
    // *sharp* bound: a whole window of undelivered transfers (the pre-fix
    // failure mode — ~15 extra pages at window 16) dwarfs the largest
    // single page, where a default demo site's multi-MB outlier targets
    // would mask it.
    let mut spec = SiteSpec::demo(300);
    spec.target_frac = 0.5;
    spec.target_size_mb = (0.05, 0.005);
    let site = Arc::new(build_site(&spec, 13));
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::shared(Arc::clone(&site));

    // The largest single transfer the site can answer: the only legal
    // overshoot is one request past the line (budget checks run before
    // the charge lands, exactly like the sequential engine).
    let max_wire: u64 = site
        .pages()
        .iter()
        .map(|p| sb_httpsim::HttpServer::get(&server, &p.url).wire_size())
        .max()
        .unwrap();

    // A budget deep enough that the window is full when it exhausts.
    let exhaustive = {
        let mut bfs = QueueStrategy::bfs();
        CrawlSession::new(&server, None, &root, &mut bfs, &CrawlConfig::default())
            .unwrap()
            .run()
            .traffic
            .total_bytes()
    };
    let budget_bytes = exhaustive / 3;

    let run = |window: usize| {
        let mut bfs = QueueStrategy::bfs();
        let cfg = CrawlConfig {
            budget: Budget::VolumeBytes(budget_bytes),
            max_in_flight: window,
            ..CrawlConfig::default()
        };
        CrawlSession::new(&server, None, &root, &mut bfs, &cfg).unwrap().run()
    };
    let w1 = run(1);
    let w16 = run(16);

    use sb_crawler::events::FinishReason;
    assert_eq!(w1.finish_reason, FinishReason::BudgetExhausted);
    assert_eq!(w16.finish_reason, FinishReason::BudgetExhausted, "window 16 must exhaust too");
    for (window, out) in [(1usize, &w1), (16, &w16)] {
        let total = out.traffic.total_bytes();
        assert!(total >= budget_bytes, "window {window} stopped short of the budget");
        assert!(
            total < budget_bytes + max_wire,
            "window {window} overshot the volume budget by more than one transfer: \
             {total} vs budget {budget_bytes} (max single transfer {max_wire})"
        );
    }
}

/// Pipelined runs are deterministic: same site, same seed, same window ⇒
/// identical traces and targets, run to run.
#[test]
fn pipelined_runs_replay_themselves() {
    let site = Arc::new(build_site(&SiteSpec::demo(350), 21));
    let root = site.page(site.root()).url.clone();
    let run = || {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut bfs = QueueStrategy::bfs();
        let cfg = CrawlConfig { max_in_flight: 9, seed: 3, ..CrawlConfig::default() };
        let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg).unwrap().run();
        let targets: Vec<String> = out.targets.iter().map(|t| t.url.clone()).collect();
        (out.pages_crawled, targets, out.trace.points().to_vec())
    };
    let (pages_a, targets_a, trace_a) = run();
    let (pages_b, targets_b, trace_b) = run();
    assert_eq!(pages_a, pages_b);
    assert_eq!(targets_a, targets_b);
    assert_eq!(trace_a, trace_b);
}

