//! The hostile-web conformance suite (PR 6), mirroring the `Transport`
//! conformance suite's shape: every bounded-waste invariant is written
//! once against (strategy kind × hazard profile × transport backend) and
//! macro-instantiated over the full cross product, so a new strategy or
//! backend inherits the whole hostile scenario pack for free.
//!
//! For every combination the scenario run asserts:
//!
//! * **termination** — the crawl ends (budget or frontier), never hangs in
//!   a trap, a redirect loop or a retry storm;
//! * **budget honesty** — `requests ≤ budget + window·(1 + retries)`: a
//!   pipelined window may finish work already in flight (one attempt per
//!   retried request, as documented on `with_retries`), never more;
//! * **bounded waste** — requests spent inside the hazard subspace (the
//!   `HazardReport` ground truth) stay under the profile's waste ceiling;
//! * **clean-subset parity at window 1** — an exhaustive hazard-free run
//!   and an exhaustive hazard run cover the *same clean URL set*, retrieve
//!   the same targets and the same target bytes. The hazard overlay only
//!   repurposes error URLs, so clean pages render byte-identically (pinned
//!   in `sb-webgraph`); equal coverage over byte-identical pages is
//!   byte-identical coverage.
//!
//! Alongside the cross product: retry/backoff never violates the
//! politeness gate, hazard statuses map to their `AbandonReason`s (and the
//! PR 6 per-reason counters), the circuit breaker quarantines hosts, and
//! near-duplicate clusters are detectable with the `sb-ann` n-gram
//! sketches.

use sb_crawler::engine::{Budget, CrawlConfig, CrawlOutcome, CrawlSession, Oracle};
use sb_crawler::strategies::{QueueStrategy, SbConfig, SbStrategy, TresStrategy};
use sb_crawler::{EventLog, OwnedEvent, Strategy};
use sb_httpsim::transport::Transport;
use sb_httpsim::{
    FlakyServer, HazardPolicy, HttpServer, PipelinedTransport, Politeness, RetryPolicy,
    SharedTransportPool, SiteServer, TailLatency,
};
use sb_webgraph::gen::hazard::{apply_hazards, HazardReport, HazardSpec};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::Website;
use std::collections::BTreeSet;
use std::sync::Arc;

// ----------------------------------------------------------------------
// Axes of the cross product
// ----------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Strat {
    Bfs,
    Sb,
    Tres,
}

impl Strat {
    fn build(self) -> (Box<dyn Strategy>, bool) {
        match self {
            Strat::Bfs => (Box::new(QueueStrategy::bfs()), false),
            Strat::Sb => (Box::new(SbStrategy::oracle(SbConfig::default())), true),
            Strat::Tres => (Box::new(TresStrategy::new()), true),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Hazard {
    /// Calendar pagination trap behind a redirect entrance.
    Trap,
    /// Redirect farm + redirect 2-cycles behind a directory entrance.
    Redirects,
    /// 200-status error bodies at former 404/500 URLs.
    Soft404,
    /// Transport-level transient 503 bursts, recovered by retries.
    Flaky,
    /// Transport-level heavy-tailed latency + bandwidth cap + timeout.
    SlowHost,
}

impl Hazard {
    /// Site overlay for this profile (`None` = transport-level only).
    fn spec(self) -> Option<HazardSpec> {
        match self {
            Hazard::Trap => Some(HazardSpec::trap_only(80)),
            Hazard::Redirects => Some(HazardSpec::redirects_only(18, 2)),
            Hazard::Soft404 => Some(HazardSpec::soft_404s_only(12)),
            Hazard::Flaky | Hazard::SlowHost => None,
        }
    }

    /// Waste ceiling: share of fetches allowed inside the hazard subspace.
    /// The trap is the biggest subspace (81 of ~430 URLs) and the only one
    /// that actively baits (Pagination-slot links); the others are small.
    fn waste_ceiling_pct(self) -> u64 {
        match self {
            Hazard::Trap => 40,
            Hazard::Redirects => 35,
            Hazard::Soft404 => 25,
            Hazard::Flaky | Hazard::SlowHost => 100,
        }
    }

    fn retry_policy(self) -> RetryPolicy {
        match self {
            // Recover the transient 503s; jittered exponential backoff.
            Hazard::Flaky => RetryPolicy::retries(2).with_backoff(0.5, 4.0).with_jitter(0.1, 9),
            _ => RetryPolicy::retries(1).with_backoff(0.25, 2.0),
        }
    }

    fn hazard_policy(self, host: &str) -> HazardPolicy {
        match self {
            Hazard::SlowHost => HazardPolicy::seeded(7)
                .with_tail(TailLatency { prob: 0.3, scale_secs: 2.0, alpha: 1.5 })
                .cap_host_bandwidth(host, 64_000.0)
                .with_timeout(30.0),
            _ => HazardPolicy::default(),
        }
    }
}

/// Builds the transport backend under test.
type Build = for<'a> fn(
    &'a (dyn HttpServer + 'a),
    Politeness,
    usize,
    RetryPolicy,
    HazardPolicy,
) -> Box<dyn Transport + 'a>;

fn build_pipelined<'a>(
    server: &'a (dyn HttpServer + 'a),
    politeness: Politeness,
    window: usize,
    retry: RetryPolicy,
    hazards: HazardPolicy,
) -> Box<dyn Transport + 'a> {
    Box::new(
        PipelinedTransport::new(server, MimePolicy::default(), politeness)
            .with_window(window)
            .with_retry_policy(retry)
            .with_hazards(hazards),
    )
}

fn build_pool_handle<'a>(
    server: &'a (dyn HttpServer + 'a),
    politeness: Politeness,
    window: usize,
    retry: RetryPolicy,
    hazards: HazardPolicy,
) -> Box<dyn Transport + 'a> {
    let pool = SharedTransportPool::new(window);
    Box::new(
        pool.handle(server, MimePolicy::default(), politeness)
            .with_retry_policy(retry)
            .with_hazards(hazards),
    )
}

// ----------------------------------------------------------------------
// Scenario fixtures
// ----------------------------------------------------------------------

const PAGES: usize = 300;
const SITE_SEED: u64 = 5;
const BUDGET: u64 = 600;
const WINDOW: usize = 4;
const RETRIES_MAX: u64 = 2; // max over Hazard::retry_policy()

fn clean_site() -> Arc<Website> {
    Arc::new(build_site(&SiteSpec::demo(PAGES), SITE_SEED))
}

fn hazard_site(h: Hazard) -> (Arc<Website>, HazardReport) {
    let mut site = build_site(&SiteSpec::demo(PAGES), SITE_SEED);
    let report = match h.spec() {
        Some(spec) => apply_hazards(&mut site, &spec, 99),
        None => HazardReport::default(),
    };
    (Arc::new(site), report)
}

/// Low-latency politeness so exhaustive runs stay fast while the gate is
/// still a real constraint.
fn politeness() -> Politeness {
    Politeness { delay_secs: 0.01, bytes_per_sec: 4_000_000.0 }
}

struct RunResult {
    outcome: CrawlOutcome,
    fetched: Vec<(String, u16)>,
}

/// One crawl of `site` under the given budget/window/backend, with the
/// hazard profile's transport policies applied and every `Fetched` event
/// collected.
fn run(
    h: Hazard,
    s: Strat,
    build: Build,
    site: &Arc<Website>,
    budget: Budget,
    window: usize,
) -> RunResult {
    let origin = SiteServer::shared(site.clone());
    let flaky;
    let server: &dyn HttpServer = if h == Hazard::Flaky {
        let root = site.page(site.root()).url.clone();
        flaky = FlakyServer::new(SiteServer::shared(site.clone()), 0.25, 13)
            .recoverable()
            .protecting(&root);
        &flaky
    } else {
        &origin
    };
    let root = site.page(site.root()).url.clone();
    let host = root.split('/').nth(2).unwrap_or_default().to_owned();
    let transport = build(server, politeness(), window, h.retry_policy(), h.hazard_policy(&host));
    let (mut strategy, needs_oracle) = s.build();
    let oracle = needs_oracle.then_some(site.as_ref() as &dyn Oracle);
    let cfg = CrawlConfig { budget, max_in_flight: window, ..Default::default() };
    let mut log = EventLog::new();
    let session =
        CrawlSession::with_transport(transport, oracle, &root, strategy.as_mut(), &cfg)
            .expect("valid root")
            .observe(&mut log);
    let outcome = session.run();
    let fetched = log
        .events()
        .iter()
        .filter_map(|e| match e {
            OwnedEvent::Fetched { url, status, .. } => Some((url.clone(), *status)),
            _ => None,
        })
        .collect();
    RunResult { outcome, fetched }
}

/// The full invariant check for one (strategy, hazard, backend) cell.
fn check_scenario(s: Strat, h: Hazard, build: Build) {
    let (site, report) = hazard_site(h);

    // --- Budgeted run: termination, budget honesty, bounded waste. ---
    let r = run(h, s, build, &site, Budget::Requests(BUDGET), WINDOW);
    // Termination is implied by `run` returning; the reason must be a
    // natural one.
    let reason = r.outcome.finish_reason;
    assert!(
        matches!(
            reason,
            sb_crawler::FinishReason::BudgetExhausted
                | sb_crawler::FinishReason::FrontierExhausted
        ),
        "crawl must end on budget or frontier, got {reason:?}"
    );
    let slack = (WINDOW as u64) * (1 + RETRIES_MAX);
    assert!(
        r.outcome.traffic.requests() <= BUDGET + slack,
        "budget overshoot: {} > {BUDGET} + {slack}",
        r.outcome.traffic.requests()
    );
    if !report.is_empty() {
        let total = r.fetched.len() as u64;
        let waste =
            r.fetched.iter().filter(|(url, _)| report.is_hazard_url(url)).count() as u64;
        let ceiling = h.waste_ceiling_pct();
        assert!(
            waste * 100 <= total * ceiling,
            "trap waste {waste}/{total} fetches exceeds {ceiling}%"
        );
    }

    // --- Window-1 exhaustive runs: clean-subset parity. ---
    if report.is_empty() {
        return; // transport-level hazards leave no subspace to compare
    }
    let clean = clean_site();
    let base = run(h, s, build, &clean, Budget::Unlimited, 1);
    let hazy = run(h, s, build, &site, Budget::Unlimited, 1);
    let clean_urls = |rr: &RunResult| -> BTreeSet<String> {
        rr.fetched
            .iter()
            .filter(|(url, _)| !report.is_hazard_url(url))
            .map(|(url, _)| url.clone())
            .collect()
    };
    assert_eq!(
        clean_urls(&base),
        clean_urls(&hazy),
        "hazards must not change which clean URLs get crawled"
    );
    let targets = |o: &CrawlOutcome| -> BTreeSet<String> {
        o.targets.iter().map(|t| t.url.clone()).collect()
    };
    assert_eq!(targets(&base.outcome), targets(&hazy.outcome), "same targets retrieved");
    assert_eq!(
        base.outcome.traffic.target_bytes, hazy.outcome.traffic.target_bytes,
        "same target bytes — clean coverage is byte-identical"
    );
}

macro_rules! scenario_tests {
    ($($name:ident: ($s:expr, $h:expr, $b:expr),)+) => {
        $(
            #[test]
            fn $name() {
                check_scenario($s, $h, $b);
            }
        )+
    };
}

scenario_tests! {
    bfs_trap_pipelined: (Strat::Bfs, Hazard::Trap, build_pipelined),
    bfs_trap_pool: (Strat::Bfs, Hazard::Trap, build_pool_handle),
    bfs_redirects_pipelined: (Strat::Bfs, Hazard::Redirects, build_pipelined),
    bfs_redirects_pool: (Strat::Bfs, Hazard::Redirects, build_pool_handle),
    bfs_soft404_pipelined: (Strat::Bfs, Hazard::Soft404, build_pipelined),
    bfs_soft404_pool: (Strat::Bfs, Hazard::Soft404, build_pool_handle),
    bfs_flaky_pipelined: (Strat::Bfs, Hazard::Flaky, build_pipelined),
    bfs_flaky_pool: (Strat::Bfs, Hazard::Flaky, build_pool_handle),
    bfs_slow_pipelined: (Strat::Bfs, Hazard::SlowHost, build_pipelined),
    bfs_slow_pool: (Strat::Bfs, Hazard::SlowHost, build_pool_handle),
    sb_trap_pipelined: (Strat::Sb, Hazard::Trap, build_pipelined),
    sb_trap_pool: (Strat::Sb, Hazard::Trap, build_pool_handle),
    sb_redirects_pipelined: (Strat::Sb, Hazard::Redirects, build_pipelined),
    sb_redirects_pool: (Strat::Sb, Hazard::Redirects, build_pool_handle),
    sb_soft404_pipelined: (Strat::Sb, Hazard::Soft404, build_pipelined),
    sb_soft404_pool: (Strat::Sb, Hazard::Soft404, build_pool_handle),
    sb_flaky_pipelined: (Strat::Sb, Hazard::Flaky, build_pipelined),
    sb_flaky_pool: (Strat::Sb, Hazard::Flaky, build_pool_handle),
    sb_slow_pipelined: (Strat::Sb, Hazard::SlowHost, build_pipelined),
    sb_slow_pool: (Strat::Sb, Hazard::SlowHost, build_pool_handle),
    tres_trap_pipelined: (Strat::Tres, Hazard::Trap, build_pipelined),
    tres_trap_pool: (Strat::Tres, Hazard::Trap, build_pool_handle),
    tres_redirects_pipelined: (Strat::Tres, Hazard::Redirects, build_pipelined),
    tres_redirects_pool: (Strat::Tres, Hazard::Redirects, build_pool_handle),
    tres_soft404_pipelined: (Strat::Tres, Hazard::Soft404, build_pipelined),
    tres_soft404_pool: (Strat::Tres, Hazard::Soft404, build_pool_handle),
    tres_flaky_pipelined: (Strat::Tres, Hazard::Flaky, build_pipelined),
    tres_flaky_pool: (Strat::Tres, Hazard::Flaky, build_pool_handle),
    tres_slow_pipelined: (Strat::Tres, Hazard::SlowHost, build_pipelined),
    tres_slow_pool: (Strat::Tres, Hazard::SlowHost, build_pool_handle),
}

// ----------------------------------------------------------------------
// Retry/backoff vs the politeness gate
// ----------------------------------------------------------------------

/// Retries re-enter the politeness gate like any dispatch: n charged GETs
/// to one host can never complete in less than (n-1)·delay of simulated
/// time, backoff or not.
fn check_backoff_respects_gate(build: Build) {
    let site = clean_site();
    let root = site.page(site.root()).url.clone();
    let flaky = FlakyServer::new(SiteServer::shared(site.clone()), 0.4, 21)
        .recoverable()
        .protecting(&root);
    let politeness = Politeness { delay_secs: 1.0, bytes_per_sec: 4_000_000.0 };
    let transport = build(
        &flaky,
        politeness,
        WINDOW,
        RetryPolicy::retries(2).with_backoff(0.05, 0.4).with_jitter(0.2, 3),
        HazardPolicy::default(),
    );
    let mut bfs = QueueStrategy::bfs();
    let cfg =
        CrawlConfig { budget: Budget::Requests(120), max_in_flight: WINDOW, ..Default::default() };
    let outcome = CrawlSession::with_transport(transport, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    let gets = outcome.traffic.get_requests;
    assert!(gets > 50, "scenario must exercise the gate, got {gets} GETs");
    assert!(
        outcome.traffic.elapsed_secs >= (gets - 1) as f64 * 1.0,
        "{} gated GETs finished in {:.2}s < {}s — retries jumped the politeness gate",
        gets,
        outcome.traffic.elapsed_secs,
        gets - 1
    );
}

#[test]
fn backoff_respects_gate_pipelined() {
    check_backoff_respects_gate(build_pipelined);
}

#[test]
fn backoff_respects_gate_pool() {
    check_backoff_respects_gate(build_pool_handle);
}

// ----------------------------------------------------------------------
// Hazard statuses → AbandonReason → per-reason counters
// ----------------------------------------------------------------------

#[test]
fn exhausted_retries_are_counted_as_retries_exhausted() {
    // Hard 503s everywhere but the root: every child URL burns its retries
    // and lands as RetriesExhausted, never plain HttpError(503).
    let site = clean_site();
    let root = site.page(site.root()).url.clone();
    let flaky = FlakyServer::new(SiteServer::shared(site.clone()), 1.0, 17).protecting(&root);
    let transport = build_pipelined(
        &flaky,
        politeness(),
        1,
        RetryPolicy::retries(2).with_backoff(0.1, 1.0),
        HazardPolicy::default(),
    );
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(60), ..Default::default() };
    let outcome = CrawlSession::with_transport(transport, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    assert!(outcome.abandoned.retries_exhausted > 0, "retried 503s must be tallied");
    assert_eq!(
        outcome.abandoned.http_error, 0,
        "with retries on, no 5xx should surface as a plain HttpError"
    );
}

#[test]
fn circuit_breaker_quarantines_and_is_counted() {
    // A host of hard failures: after the breaker threshold every further
    // fetch answers the synthetic quarantine status without touching the
    // origin, and the session tallies HostQuarantined abandonments.
    let site = clean_site();
    let root = site.page(site.root()).url.clone();
    let flaky = FlakyServer::new(SiteServer::shared(site.clone()), 1.0, 17).protecting(&root);
    let transport = build_pipelined(
        &flaky,
        politeness(),
        1,
        RetryPolicy::retries(1).with_quarantine_after(3),
        HazardPolicy::default(),
    );
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(80), ..Default::default() };
    let outcome = CrawlSession::with_transport(transport, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    assert!(
        outcome.abandoned.quarantined > 0,
        "the breaker must trip and its drains must be tallied: {:?}",
        outcome.abandoned
    );
}

#[test]
fn transport_timeouts_are_counted_as_timeouts() {
    // A timeout shorter than any transfer: every GET (but nothing is
    // retryable about it — 598 is terminal) lands as Timeout.
    let site = clean_site();
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::shared(site.clone());
    let transport = build_pipelined(
        &server,
        Politeness { delay_secs: 0.01, bytes_per_sec: 100.0 },
        1,
        RetryPolicy::retries(0),
        HazardPolicy::seeded(1).with_timeout(1e-6),
    );
    let mut bfs = QueueStrategy::bfs();
    let cfg = CrawlConfig { budget: Budget::Requests(10), ..Default::default() };
    let outcome = CrawlSession::with_transport(transport, None, &root, &mut bfs, &cfg)
        .expect("valid root")
        .run();
    assert!(outcome.abandoned.timeout > 0, "timeouts must be tallied: {:?}", outcome.abandoned);
    assert_eq!(outcome.targets_found(), 0, "nothing survives a sub-microsecond timeout");
}

// ----------------------------------------------------------------------
// Near-duplicate clusters vs the sb-ann n-gram sketches
// ----------------------------------------------------------------------

#[test]
fn dup_clusters_sketch_closer_than_unrelated_pages() {
    use sb_ann::{cosine, NgramVocab};

    let mut site = build_site(&SiteSpec::demo(PAGES), SITE_SEED);
    let report = apply_hazards(&mut site, &HazardSpec::dups_only(1, 3), 99);
    let clones: Vec<u32> = report.dup_ids[1..].to_vec(); // [0] is the index page
    assert!(clones.len() >= 2);
    let server = SiteServer::new(site);
    let tokens = |url: &str| -> Vec<String> {
        let body = server.get(url).body.to_vec();
        String::from_utf8_lossy(&body)
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect()
    };
    let a = tokens(&server.site().page(clones[0]).url.clone());
    let b = tokens(&server.site().page(clones[1]).url.clone());
    // An unrelated page: the root (a different role entirely).
    let other = tokens(&server.site().page(server.site().root()).url.clone());

    // Freeze one bigram vocabulary over all three pages, then sketch.
    let mut vocab = NgramVocab::new(2);
    for t in [&a, &b, &other] {
        vocab.vectorize_mut(t);
    }
    let dense = |t: &[String]| vocab.vectorize(t).to_dense();
    let (va, vb, vo) = (dense(&a), dense(&b), dense(&other));
    let clone_sim = cosine(&va, &vb);
    let unrelated_sim = cosine(&va, &vo);
    assert!(
        clone_sim > 0.8,
        "clones share structure, links and title — sketches must be close: {clone_sim:.3}"
    );
    assert!(
        clone_sim > unrelated_sim + 0.1,
        "clone similarity {clone_sim:.3} must clearly beat unrelated {unrelated_sim:.3}"
    );
}
