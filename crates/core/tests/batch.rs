//! The batched-selection contract (PR 10): filling the in-flight window
//! through one `Strategy::select_batch` ranking pass changes *when*
//! selections are pulled, never what an exhaustive crawl finds; at batch
//! 1 / window 1 it replays the frozen seed engine byte for byte; and the
//! one-feedback-per-selection invariant holds for every batch member —
//! including members still buffered (pulled but unsubmitted) when the
//! session shuts down mid-batch.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use rand::rngs::StdRng;
use sb_bench::reference::{collapse_target_amends, reference_queue_crawl};
use sb_crawler::engine::{Budget, CrawlConfig, CrawlSession};
use sb_crawler::events::OwnedEvent;
use sb_crawler::strategies::{Batched, Discipline, QueueStrategy, ValueStrategy};
use sb_crawler::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use sb_crawler::{CrawlTrace, EventLog};
use sb_httpsim::SiteServer;
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::{UrlId, Website};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

fn arb_spec() -> impl PropStrategy<Value = SiteSpec> {
    (60usize..180, 0.08f64..0.5, 0.03f64..0.3, 0.0f64..0.3, 0.0f64..0.15).prop_map(
        |(n, tf, lf, ext, err)| {
            let mut s = SiteSpec::demo(n);
            s.target_frac = tf;
            s.html_to_target_frac = lf;
            s.extensionless = ext;
            s.error_frac = err;
            s
        },
    )
}

fn root_of(site: &Website) -> String {
    site.page(site.root()).url.clone()
}

/// The time axis masked out of a trace (batching reorders concurrent
/// transfers; cost-counter series are what must replay).
fn masked(trace: &CrawlTrace) -> Vec<(u64, u64, u64, u64, u64)> {
    trace
        .points()
        .iter()
        .map(|p| (p.requests, p.head_requests, p.target_bytes, p.non_target_bytes, p.targets))
        .collect()
}

/// Exhaustive crawl with a queue strategy, optionally forced through the
/// batched refill path; returns (fetched set, target set, batch events).
fn exhaust(
    site: &Arc<Website>,
    discipline: Discipline,
    window: usize,
    batched: bool,
) -> (BTreeSet<String>, BTreeSet<String>, usize) {
    let root = root_of(site);
    let server = SiteServer::shared(Arc::clone(site));
    let cfg = CrawlConfig { max_in_flight: window, ..CrawlConfig::default() };
    let make = || match discipline {
        Discipline::Fifo => QueueStrategy::bfs(),
        Discipline::Lifo => QueueStrategy::dfs(),
        Discipline::Random => QueueStrategy::random(),
    };
    let mut log = EventLog::new();
    let out = if batched {
        let mut strat = Batched(make());
        CrawlSession::new(&server, None, &root, &mut strat, &cfg)
            .expect("generated roots are valid")
            .observe(&mut log)
            .run()
    } else {
        let mut strat = make();
        CrawlSession::new(&server, None, &root, &mut strat, &cfg)
            .expect("generated roots are valid")
            .observe(&mut log)
            .run()
    };
    let fetched: BTreeSet<String> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            OwnedEvent::Fetched { url, .. } => Some(url.clone()),
            _ => None,
        })
        .collect();
    let batch_events = log
        .events()
        .iter()
        .filter(|e| matches!(e, OwnedEvent::BatchSelected { .. }))
        .count();
    let targets: BTreeSet<String> = out.targets.iter().map(|t| t.url.clone()).collect();
    (fetched, targets, batch_events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch-size invariance: forcing any queue strategy through the
    /// batched refill path, at any window (= batch size), visits the same
    /// URL set and retrieves the same targets as the classic per-pull
    /// path at window 1 — batching reorders pulls, it never changes
    /// coverage. (RANDOM is excluded: its pop consumes RNG draws, so the
    /// *set* is seed-dependent by design, not a batching artifact.)
    #[test]
    fn batch_size_never_changes_exhaustive_coverage(
        (spec, seed) in (arb_spec(), 0u64..200),
    ) {
        let site = Arc::new(build_site(&spec, seed));
        for discipline in [Discipline::Fifo, Discipline::Lifo] {
            let (seq_fetched, seq_targets, seq_batches) =
                exhaust(&site, discipline, 1, false);
            prop_assert_eq!(seq_batches, 0, "per-pull path must emit no batch events");
            for window in [1usize, 4, 16] {
                let (fetched, targets, batches) = exhaust(&site, discipline, window, true);
                prop_assert!(batches > 0, "batched path must emit BatchSelected events");
                prop_assert_eq!(
                    &fetched, &seq_fetched,
                    "{:?} batch={} changed the visited set", discipline, window
                );
                prop_assert_eq!(
                    &targets, &seq_targets,
                    "{:?} batch={} changed the targets", discipline, window
                );
            }
        }
    }
}

/// Batch 1 at window 1 replays the frozen seed engine byte for byte:
/// same targets in retrieval order, same page count, same per-request
/// trace — under an unlimited budget and at a budget stop. The batched
/// path degenerates to exactly one stop check + one pull + one
/// submission per refill, which is the sequential engine's loop.
#[test]
fn batch_one_window_one_replays_frozen_reference() {
    let site = Arc::new(build_site(&SiteSpec::demo(250), 17));
    let root = root_of(&site);
    for budget in [Budget::Unlimited, Budget::Requests(40)] {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut strat = Batched(QueueStrategy::bfs());
        let cfg = CrawlConfig { budget, seed: 5, max_in_flight: 1, ..CrawlConfig::default() };
        let out = CrawlSession::new(&server, None, &root, &mut strat, &cfg).unwrap().run();

        let reference =
            reference_queue_crawl(&server, &root, Discipline::Fifo, budget, 5, None);
        let ref_targets: Vec<String> =
            reference.targets.iter().map(|(u, _)| u.clone()).collect();
        let targets: Vec<String> = out.targets.iter().map(|t| t.url.clone()).collect();
        assert_eq!(targets, ref_targets, "target order diverged under {budget:?}");
        assert_eq!(out.pages_crawled, reference.pages_crawled, "{budget:?}");
        assert_eq!(
            masked(&out.trace),
            masked(&collapse_target_amends(&reference.trace)),
            "batch-1/window-1 trace must replay the seed engine under {budget:?}"
        );
    }
}

/// ValueStrategy itself — ranked batches, learned scorers — still visits
/// every page of an exhaustive crawl: scoring changes order, never
/// admission (every link is enqueued).
#[test]
fn value_strategy_exhaustive_coverage_matches_bfs() {
    let site = Arc::new(build_site(&SiteSpec::demo(200), 23));
    let root = root_of(&site);
    let (bfs_fetched, bfs_targets, _) = exhaust(&site, Discipline::Fifo, 1, false);
    for window in [1usize, 8] {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut strat = ValueStrategy::default_mix();
        let cfg = CrawlConfig { max_in_flight: window, ..CrawlConfig::default() };
        let mut log = EventLog::new();
        let out = CrawlSession::new(&server, None, &root, &mut strat, &cfg)
            .unwrap()
            .observe(&mut log)
            .run();
        let fetched: BTreeSet<String> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                OwnedEvent::Fetched { url, .. } => Some(url.clone()),
                _ => None,
            })
            .collect();
        let targets: BTreeSet<String> = out.targets.iter().map(|t| t.url.clone()).collect();
        assert_eq!(fetched, bfs_fetched, "window {window} changed the visited set");
        assert_eq!(targets, bfs_targets, "window {window} changed the targets");
    }
}

/// A recorder forced through the batch path: tracks every pulled token
/// and every observation, so the one-observation-per-pull invariant can
/// be asserted exactly.
#[derive(Default)]
struct Recorder {
    frontier: VecDeque<UrlId>,
    selected: Vec<u64>,
    observations: Vec<u64>,
    errors: Vec<u64>,
}

impl Strategy for Recorder {
    fn name(&self) -> String {
        "BATCH-RECORDER".to_owned()
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        let id = self.frontier.pop_front()?;
        let token = u64::from(id);
        self.selected.push(token);
        Some(Selection { url: SelUrl::Id(id), token })
    }

    fn batch_selection(&self) -> bool {
        true
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        LinkDecision::Enqueue
    }

    fn feedback(&mut self, token: u64, _reward: f64) {
        self.observations.push(token);
    }

    fn feedback_target(&mut self, token: u64) {
        self.observations.push(token);
    }

    fn feedback_error(&mut self, token: u64) {
        self.observations.push(token);
        self.errors.push(token);
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

/// Every batch member gets exactly one observation — under natural
/// exhaustion, a request-budget stop, and a volume-budget stop (the case
/// that leaves ranked members *buffered but unsubmitted*: they must drain
/// as `feedback_error`, never silently).
#[test]
fn one_feedback_per_batch_member_survives_shutdown() {
    let site = Arc::new(build_site(&SiteSpec::demo(300), 9));
    let root = root_of(&site);
    for budget in [Budget::Unlimited, Budget::Requests(37), Budget::VolumeBytes(200_000)] {
        let server = SiteServer::shared(Arc::clone(&site));
        let mut rec = Recorder::default();
        let cfg = CrawlConfig { max_in_flight: 8, budget, ..CrawlConfig::default() };
        let _ = CrawlSession::new(&server, None, &root, &mut rec, &cfg).unwrap().run();
        let mut selected = rec.selected.clone();
        let mut observed = rec.observations.clone();
        selected.sort_unstable();
        observed.sort_unstable();
        assert_eq!(
            selected, observed,
            "every batch member must produce exactly one observation under {budget:?}"
        );
    }
}

/// Cancelling a session mid-batch (the external-shutdown path) drains
/// exactly one `feedback_error` per member still owed an answer — both
/// the in-flight ones and the ranked-but-unsubmitted tail of the batch.
#[test]
fn mid_batch_cancel_drains_exactly_one_error_per_member() {
    let site = Arc::new(build_site(&SiteSpec::demo(300), 31));
    let root = root_of(&site);
    let server = SiteServer::shared(Arc::clone(&site));
    let mut rec = Recorder::default();
    let cfg = CrawlConfig { max_in_flight: 8, ..CrawlConfig::default() };
    let mut session = CrawlSession::new(&server, None, &root, &mut rec, &cfg).unwrap();
    // Step far enough that steady-state batches are being pulled, then
    // cancel with work in flight.
    for _ in 0..6 {
        session.step();
    }
    let _ = session.finish();
    let mut selected = rec.selected.clone();
    let mut observed = rec.observations.clone();
    selected.sort_unstable();
    observed.sort_unstable();
    assert_eq!(selected, observed, "cancel must settle every pulled member exactly once");
    // The cancel happened mid-crawl: at least one member was settled by
    // the shutdown drain itself (an error observation).
    assert!(!rec.errors.is_empty(), "mid-batch cancel must drain members as feedback_error");
    let mut errors = rec.errors.clone();
    errors.sort_unstable();
    errors.dedup();
    assert_eq!(errors.len(), rec.errors.len(), "no member may be drained twice");
}
