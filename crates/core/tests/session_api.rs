//! The session API contract: validated construction, step-driven
//! execution equivalent to `run()`, typed event streams in order, and the
//! one-feedback-per-selection invariant — including the abandoned
//! selections (dead redirects, errors) that the pre-session engine left as
//! silent bandit pulls.

use sb_crawler::engine::{crawl, Budget, ConfigError, CrawlConfig, CrawlSession};
use sb_crawler::events::{AbandonReason, FinishReason, OwnedEvent, TraceObserver};
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use sb_crawler::EventLog;
use sb_httpsim::response::error_response;
use sb_httpsim::{Headers, HeadResponse, HttpServer, Politeness, Response, SiteServer};
use sb_webgraph::gen::{build_site, SiteSpec};
use sb_webgraph::UrlId;
use rand::rngs::StdRng;
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// A small deterministic hand-built site exercising every abandon path.
// ---------------------------------------------------------------------

/// `https://t.example/` serves:
///   /            HTML linking every path below
///   /spin        301 → /spin        (self-redirect: exhausts the chain)
///   /away        301 → off-site     (abandoned off-site)
///   /back        301 → /            (abandoned: target already known)
///   /gone        404                (HTTP error)
///   /data.csv    200 text/csv       (a target)
///   /page2       200 HTML, no links
struct TrickServer;

const TRICK_ROOT: &str = "https://t.example/";

impl TrickServer {
    fn respond(&self, url: &str) -> Response {
        let path = url.strip_prefix("https://t.example").unwrap_or("<off>");
        let html = |body: &str| Response {
            status: 200,
            headers: Headers {
                content_type: Some("text/html".to_owned()),
                content_length: Some(body.len() as u64),
                location: None,
            },
            body: body.as_bytes().to_vec().into(),
        };
        let redirect = |to: &str| Response {
            status: 301,
            headers: Headers {
                content_type: None,
                content_length: Some(0),
                location: Some(to.to_owned()),
            },
            body: sb_httpsim::Body::empty(),
        };
        match path {
            "/" => html(
                "<html><body>\
                 <a href=\"/spin\">spin</a>\
                 <a href=\"/away\">away</a>\
                 <a href=\"/back\">back</a>\
                 <a href=\"/gone\">gone</a>\
                 <a href=\"/data.csv\">data</a>\
                 <a href=\"/page2\">page2</a>\
                 </body></html>",
            ),
            "/spin" => redirect("/spin"),
            "/away" => redirect("https://elsewhere.example/x"),
            "/back" => redirect("/"),
            "/gone" => error_response(404),
            "/data.csv" => Response {
                status: 200,
                headers: Headers {
                    content_type: Some("text/csv".to_owned()),
                    content_length: Some(9),
                    location: None,
                },
                body: b"a,b\n1,2\n".to_vec().into(),
            },
            "/page2" => html("<html><body>nothing here</body></html>"),
            _ => error_response(404),
        }
    }
}

impl HttpServer for TrickServer {
    fn head(&self, url: &str) -> HeadResponse {
        self.respond(url).head()
    }

    fn get(&self, url: &str) -> Response {
        self.respond(url)
    }
}

// ---------------------------------------------------------------------
// A BFS strategy that records every feedback delivery per token.
// ---------------------------------------------------------------------

#[derive(Default)]
struct Recorder {
    frontier: VecDeque<UrlId>,
    urls: Vec<(u64, String)>,
    selected: Vec<u64>,
    rewards: Vec<u64>,
    targets: Vec<u64>,
    errors: Vec<u64>,
}

impl Strategy for Recorder {
    fn name(&self) -> String {
        "RECORDER".to_owned()
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        let id = self.frontier.pop_front()?;
        let token = u64::from(id);
        self.selected.push(token);
        Some(Selection { url: SelUrl::Id(id), token })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        self.urls.push((u64::from(link.id), link.url_str.to_owned()));
        LinkDecision::Enqueue
    }

    fn feedback(&mut self, token: u64, _reward: f64) {
        self.rewards.push(token);
    }

    fn feedback_target(&mut self, token: u64) {
        self.targets.push(token);
    }

    fn feedback_error(&mut self, token: u64) {
        self.errors.push(token);
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl Recorder {
    fn token_of(&self, suffix: &str) -> u64 {
        self.urls
            .iter()
            .find(|(_, u)| u.ends_with(suffix))
            .map(|(t, _)| *t)
            .unwrap_or_else(|| panic!("no discovered URL ends with {suffix}"))
    }
}

// ---------------------------------------------------------------------
// Satellite: every abandoned selection delivers feedback_error.
// ---------------------------------------------------------------------

#[test]
fn every_selection_gets_exactly_one_feedback() {
    let server = TrickServer;
    let mut rec = Recorder::default();
    let out = crawl(&server, None, TRICK_ROOT, &mut rec, &CrawlConfig::default());
    assert_eq!(out.targets_found(), 1);

    // Every outer selection fed back exactly once, even the dead ends.
    let mut all: Vec<u64> = Vec::new();
    all.extend(&rec.rewards);
    all.extend(&rec.targets);
    all.extend(&rec.errors);
    all.sort_unstable();
    let mut selected = rec.selected.clone();
    selected.sort_unstable();
    assert_eq!(all, selected, "each pull must produce exactly one observation");

    // And the dead ends landed in the error bucket specifically.
    for suffix in ["/spin", "/away", "/back", "/gone"] {
        let token = rec.token_of(suffix);
        assert!(
            rec.errors.contains(&token),
            "{suffix} dead-ends must deliver feedback_error (got rewards={:?} targets={:?} errors={:?})",
            rec.rewards,
            rec.targets,
            rec.errors
        );
    }
    assert!(rec.targets.contains(&rec.token_of("/data.csv")));
    assert!(rec.rewards.contains(&rec.token_of("/page2")));
}

#[test]
fn redirect_chain_exhaustion_spends_the_chain_bound() {
    let server = TrickServer;
    let mut rec = Recorder::default();
    let out = crawl(&server, None, TRICK_ROOT, &mut rec, &CrawlConfig::default());
    // /spin burns MAX_REDIRECTS GETs: root + 5×/spin + 5 other selections.
    assert_eq!(out.pages_crawled, 1 + 5 + 5);
}

#[test]
fn unparseable_text_selection_feeds_back_even_on_2xx() {
    // A server that happily answers 200 for any string: the selection is
    // still abandoned (nothing classifiable can come back from a URL the
    // engine cannot parse) and the pull must get its error observation.
    struct YesServer;
    impl HttpServer for YesServer {
        fn head(&self, url: &str) -> HeadResponse {
            self.get(url).head()
        }
        fn get(&self, _url: &str) -> Response {
            Response {
                status: 200,
                headers: Headers {
                    content_type: Some("text/html".to_owned()),
                    content_length: Some(0),
                    location: None,
                },
                body: sb_httpsim::Body::empty(),
            }
        }
    }

    struct JunkOnce {
        sent: bool,
        errors: Vec<u64>,
    }
    impl Strategy for JunkOnce {
        fn name(&self) -> String {
            "JUNK".to_owned()
        }
        fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
            (!std::mem::replace(&mut self.sent, true))
                .then(|| Selection { url: SelUrl::Text("::junk::".to_owned()), token: 9 })
        }
        fn decide(&mut self, _l: &NewLink<'_>, _s: &mut Services<'_, '_>) -> LinkDecision {
            LinkDecision::Skip
        }
        fn feedback_error(&mut self, token: u64) {
            self.errors.push(token);
        }
        fn frontier_len(&self) -> usize {
            usize::from(!self.sent)
        }
    }

    let mut junk = JunkOnce { sent: false, errors: Vec::new() };
    let mut log = EventLog::new();
    let cfg = CrawlConfig::default();
    let out = CrawlSession::new(&YesServer, None, "https://y.example/", &mut junk, &cfg)
        .unwrap()
        .observe(&mut log)
        .run();
    assert_eq!(junk.errors, vec![9], "2xx for junk is still a dead pull");
    assert!(log.events().iter().any(|e| matches!(
        e,
        OwnedEvent::Abandoned { reason: AbandonReason::UnparseableSelection, .. }
    )));
    assert_eq!(out.pages_crawled, 2, "root + the charged junk fetch");
}

// ---------------------------------------------------------------------
// Builder validation.
// ---------------------------------------------------------------------

#[test]
fn builder_rejects_zero_budget() {
    assert_eq!(
        CrawlConfig::builder().budget(Budget::Requests(0)).build().err(),
        Some(ConfigError::ZeroBudget)
    );
    assert_eq!(
        CrawlConfig::builder().budget(Budget::VolumeBytes(0)).build().err(),
        Some(ConfigError::ZeroBudget)
    );
}

#[test]
fn builder_rejects_zero_max_steps_and_bad_politeness() {
    assert_eq!(
        CrawlConfig::builder().max_steps(0).build().err(),
        Some(ConfigError::ZeroMaxSteps)
    );
    let bad = Politeness { delay_secs: -1.0, bytes_per_sec: 1e6 };
    assert_eq!(
        CrawlConfig::builder().politeness(bad).build().err(),
        Some(ConfigError::InvalidPoliteness)
    );
    let nan = Politeness { delay_secs: f64::NAN, bytes_per_sec: 1e6 };
    assert_eq!(
        CrawlConfig::builder().politeness(nan).build().err(),
        Some(ConfigError::InvalidPoliteness)
    );
    let zero_bw = Politeness { delay_secs: 1.0, bytes_per_sec: 0.0 };
    assert_eq!(
        CrawlConfig::builder().politeness(zero_bw).build().err(),
        Some(ConfigError::InvalidPoliteness)
    );
}

#[test]
fn builder_rejects_unparseable_seed_urls() {
    let err = CrawlConfig::builder().seed_url("not a url").build().err();
    assert!(
        matches!(err, Some(ConfigError::InvalidSeedUrl { ref url, .. }) if url == "not a url"),
        "got {err:?}"
    );
    // A valid seed list passes.
    assert!(CrawlConfig::builder()
        .seed_urls(vec!["https://t.example/a".to_owned(), "https://t.example/b".to_owned()])
        .build()
        .is_ok());
}

#[test]
fn session_rejects_unparseable_root_without_panicking() {
    let server = TrickServer;
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let err = CrawlSession::new(&server, None, "ftp://nope/", &mut bfs, &cfg).err();
    assert!(
        matches!(err, Some(ConfigError::InvalidRoot { ref url, .. }) if url == "ftp://nope/"),
        "got {err:?}"
    );
    // No request was spent probing it.
}

// ---------------------------------------------------------------------
// seed_urls × url_filter / site boundary.
// ---------------------------------------------------------------------

#[test]
fn admitted_seed_is_fetched_filtered_and_offsite_seeds_cost_nothing() {
    let site = build_site(&SiteSpec::demo(200), 23);
    let root = site.page(site.root()).url.clone();
    let a_target = site.target_ids().first().map(|&id| site.page(id).url.clone()).unwrap();
    let server = SiteServer::new(site);

    // Filter that rejects exactly the target's path.
    let target_path = sb_webgraph::url::Url::parse(&a_target).unwrap().path;
    let rejected = target_path.clone();
    let cfg = CrawlConfig {
        budget: Budget::Requests(3),
        seed_urls: vec![
            "https://elsewhere.example/x.csv".to_owned(), // off-site: free skip
            a_target.clone(),                             // filter-rejected: free skip
        ],
        url_filter: Some(Box::new(move |u: &sb_webgraph::url::Url| u.path != rejected)),
        ..Default::default()
    };
    let mut bfs = QueueStrategy::bfs();
    let out = crawl(&server, None, &root, &mut bfs, &cfg);
    // The filtered seed was never requested.
    assert!(out.targets.iter().all(|t| t.url != a_target));

    // Without the filter, the same target seed is fetched right after the
    // root, at seed depth.
    let site2 = build_site(&SiteSpec::demo(200), 23);
    let server2 = SiteServer::new(site2);
    let cfg2 = CrawlConfig {
        budget: Budget::Requests(3),
        seed_urls: vec![a_target.clone()],
        ..Default::default()
    };
    let mut bfs2 = QueueStrategy::bfs();
    let out2 = crawl(&server2, None, &root, &mut bfs2, &cfg2);
    assert!(out2.targets_found() >= 1);
    assert_eq!(out2.targets[0].url, a_target, "seed fetched right after the root");
}

#[test]
fn plain_config_still_skips_unparseable_seeds() {
    // Compat: the unvalidated struct-literal path tolerates junk seeds by
    // skipping them for free (the builder is where rejection happens).
    let site = build_site(&SiteSpec::demo(200), 23);
    let root = site.page(site.root()).url.clone();
    let run_with_seeds = |seeds: Vec<String>| {
        let server = SiteServer::new(site.clone());
        let cfg =
            CrawlConfig { budget: Budget::Requests(30), seed_urls: seeds, ..Default::default() };
        let mut bfs = QueueStrategy::bfs();
        let out = crawl(&server, None, &root, &mut bfs, &cfg);
        (out.pages_crawled, out.targets_found(), out.traffic.requests())
    };
    let clean = run_with_seeds(Vec::new());
    let junk = run_with_seeds(vec!["::junk::".to_owned()]);
    assert_eq!(clean, junk, "a junk seed must be skipped for free");
}

// ---------------------------------------------------------------------
// Observer event ordering.
// ---------------------------------------------------------------------

#[test]
fn events_arrive_in_happens_after_order() {
    let server = TrickServer;
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let mut log = EventLog::new();
    let session = CrawlSession::new(&server, None, TRICK_ROOT, &mut bfs, &cfg)
        .unwrap()
        .observe(&mut log);
    let out = session.run();

    let events = log.events();
    assert!(matches!(events.first(), Some(OwnedEvent::SessionStarted { root }) if root == TRICK_ROOT));
    assert!(matches!(events.last(), Some(OwnedEvent::SessionFinished { reason: FinishReason::FrontierExhausted })));

    // One Fetched per GET attempt, redirect hops included.
    let fetched = events.iter().filter(|e| matches!(e, OwnedEvent::Fetched { .. })).count() as u64;
    assert_eq!(fetched, out.pages_crawled);

    // The target's TargetRetrieved directly follows its Fetched.
    let tgt = events
        .iter()
        .position(|e| matches!(e, OwnedEvent::TargetRetrieved { url, .. } if url.ends_with("/data.csv")))
        .expect("target event present");
    assert!(
        matches!(&events[tgt - 1], OwnedEvent::Fetched { url, .. } if url.ends_with("/data.csv")),
        "TargetRetrieved must immediately follow its GET, got {:?}",
        events[tgt - 1]
    );

    // Links are discovered only after their page was fetched, and the
    // page's PageProcessed comes after all its LinkDiscovered events.
    let root_fetch = events
        .iter()
        .position(|e| matches!(e, OwnedEvent::Fetched { url, .. } if url == TRICK_ROOT))
        .unwrap();
    let first_link =
        events.iter().position(|e| matches!(e, OwnedEvent::LinkDiscovered { .. })).unwrap();
    let root_processed = events
        .iter()
        .position(|e| matches!(e, OwnedEvent::PageProcessed { url, .. } if url == TRICK_ROOT))
        .unwrap();
    let last_link = events
        .iter()
        .rposition(|e| matches!(e, OwnedEvent::LinkDiscovered { .. }))
        .unwrap();
    assert!(root_fetch < first_link && last_link < root_processed);

    // Each dead end produced one Abandoned with the right reason.
    let reason_of = |suffix: &str| {
        events
            .iter()
            .find_map(|e| match e {
                OwnedEvent::Abandoned { url, reason } if url.ends_with(suffix) => Some(*reason),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no Abandoned event for {suffix}"))
    };
    assert_eq!(reason_of("/spin"), AbandonReason::RedirectChainExhausted);
    assert_eq!(reason_of("/away"), AbandonReason::RedirectOffSite);
    assert_eq!(reason_of("/back"), AbandonReason::RedirectAlreadyKnown);
    assert_eq!(reason_of("/gone"), AbandonReason::HttpError(404));
}

#[test]
fn external_trace_observer_matches_builtin_trace() {
    // CrawlTrace really is "just one observer": an externally attached
    // TraceObserver reconstructs the outcome trace bit for bit.
    let site = build_site(&SiteSpec::demo(300), 7);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let mut mirror = TraceObserver::new();
    let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .unwrap()
        .observe(&mut mirror)
        .run();
    assert_eq!(out.trace.points(), mirror.trace().points());
}

// ---------------------------------------------------------------------
// Step-driven execution.
// ---------------------------------------------------------------------

#[test]
fn stepping_matches_run_exactly() {
    let site = build_site(&SiteSpec::demo(400), 9);
    let root = site.page(site.root()).url.clone();
    let cfg = CrawlConfig { budget: Budget::Requests(120), ..Default::default() };

    let server = SiteServer::new(site.clone());
    let mut bfs = QueueStrategy::bfs();
    let run_out = crawl(&server, None, &root, &mut bfs, &cfg);

    let server2 = SiteServer::new(site);
    let mut bfs2 = QueueStrategy::bfs();
    let mut session = CrawlSession::new(&server2, None, &root, &mut bfs2, &cfg).unwrap();
    let mut steps = 0u64;
    let mut last = None;
    while !session.is_finished() {
        let report = session.step();
        assert!(report.steps >= steps, "steps are monotone");
        steps = report.steps;
        last = Some(report);
    }
    assert_eq!(last.unwrap().finished, Some(FinishReason::BudgetExhausted));
    let step_out = session.finish();

    assert_eq!(step_out.pages_crawled, run_out.pages_crawled);
    assert_eq!(step_out.targets_found(), run_out.targets_found());
    assert_eq!(step_out.trace.points(), run_out.trace.points());
    assert_eq!(step_out.finish_reason, FinishReason::BudgetExhausted);
}

#[test]
fn step_on_finished_session_is_a_reporting_noop() {
    let server = TrickServer;
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let mut session = CrawlSession::new(&server, None, TRICK_ROOT, &mut bfs, &cfg).unwrap();
    while !session.is_finished() {
        session.step();
    }
    let before = session.traffic().requests();
    let report = session.step();
    assert_eq!(report.finished, Some(FinishReason::FrontierExhausted));
    assert_eq!(report.fetched, 0);
    assert_eq!(session.traffic().requests(), before);
}

#[test]
fn cancelling_mid_crawl_reports_cancelled() {
    let site = build_site(&SiteSpec::demo(400), 9);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let mut session = CrawlSession::new(&server, None, &root, &mut bfs, &cfg).unwrap();
    session.step();
    session.step();
    let out = session.finish();
    assert_eq!(out.finish_reason, FinishReason::Cancelled);
    assert!(out.pages_crawled >= 1);
}

// ---------------------------------------------------------------------
// Observer-driven early-stop / budget events.
// ---------------------------------------------------------------------

#[test]
fn budget_exhaustion_is_announced() {
    let site = build_site(&SiteSpec::demo(300), 5);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    let cfg = CrawlConfig { budget: Budget::Requests(20), ..Default::default() };
    let mut bfs = QueueStrategy::bfs();
    let mut log = EventLog::new();
    let out = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)
        .unwrap()
        .observe(&mut log)
        .run();
    assert_eq!(out.finish_reason, FinishReason::BudgetExhausted);
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e, OwnedEvent::BudgetExhausted { requests, .. } if *requests >= 20)));
}

/// A strategy wrapper is not needed to observe: observers see the decision
/// each link got.
#[test]
fn link_decisions_are_visible_to_observers() {
    let server = TrickServer;
    let cfg = CrawlConfig::default();
    let mut bfs = QueueStrategy::bfs();
    let mut log = EventLog::new();
    CrawlSession::new(&server, None, TRICK_ROOT, &mut bfs, &cfg)
        .unwrap()
        .observe(&mut log)
        .run();
    let enqueued = log
        .events()
        .iter()
        .filter(|e| {
            matches!(e, OwnedEvent::LinkDiscovered { decision: LinkDecision::Enqueue, .. })
        })
        .count();
    assert_eq!(enqueued, 6, "the root page links six URLs, all enqueued by BFS");
}
