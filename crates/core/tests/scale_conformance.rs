//! Conformance pins for the memory-bounded scale subsystem (PR 7): a crawl
//! over a streaming site, over a spill-backed frontier, or over a compact
//! visited set must produce *exactly* the trace of the unbounded engine at
//! window 1 — the bounded structures change where state lives, never what
//! the crawl does.

use proptest::prelude::*;
use sb_crawler::engine::{crawl, CrawlConfig, CrawlOutcome};
use sb_crawler::strategies::QueueStrategy;
use sb_crawler::strategy::Strategy;
use sb_httpsim::SiteServer;
use sb_scale::{stream_site, SpillBacking};
use sb_webgraph::gen::{build_site, SiteSource, SiteSpec};
use std::sync::Arc;

fn spec_with(n: usize, tf: f64, err: f64, ext: f64) -> SiteSpec {
    let mut spec = SiteSpec::demo(n);
    spec.target_frac = tf;
    spec.error_frac = err;
    spec.extensionless = ext;
    spec
}

fn run_eager(spec: &SiteSpec, seed: u64, strategy: &mut dyn Strategy, cfg: &CrawlConfig) -> CrawlOutcome {
    let site = build_site(spec, seed);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);
    crawl(&server, None, &root, strategy, cfg)
}

fn run_streaming(spec: &SiteSpec, seed: u64, strategy: &mut dyn Strategy, cfg: &CrawlConfig) -> CrawlOutcome {
    let site = Arc::new(stream_site(spec, seed).with_render_cache_budget(64 << 10));
    let root = site.url(site.root()).to_owned();
    let server = SiteServer::from_source(site);
    crawl(&server, None, &root, strategy, cfg)
}

fn assert_same_crawl(a: &CrawlOutcome, b: &CrawlOutcome, label: &str) {
    assert_eq!(a.trace.points(), b.trace.points(), "{label}: traces diverged");
    assert_eq!(a.pages_crawled, b.pages_crawled, "{label}");
    let urls = |o: &CrawlOutcome| o.targets.iter().map(|t| t.url.clone()).collect::<Vec<_>>();
    assert_eq!(urls(a), urls(b), "{label}: target sets diverged");
    assert_eq!(a.traffic, b.traffic, "{label}: traffic diverged");
}

/// A BFS crawl served from the streaming site is indistinguishable from
/// one served from the eager site.
#[test]
fn streaming_server_crawl_is_identical() {
    let spec = spec_with(500, 0.25, 0.08, 0.3);
    let cfg = CrawlConfig::default();
    let eager = run_eager(&spec, 11, &mut QueueStrategy::bfs(), &cfg);
    let lazy = run_streaming(&spec, 11, &mut QueueStrategy::bfs(), &cfg);
    assert_same_crawl(&eager, &lazy, "streaming server");
    assert!(eager.targets_found() > 0, "vacuous site");
}

/// A spill-backed BFS/DFS frontier (memory and disk arenas) replays the
/// unbounded crawl exactly, while actually spilling.
#[test]
fn spilling_frontier_crawl_is_identical() {
    let spec = spec_with(600, 0.2, 0.05, 0.2);
    let cfg = CrawlConfig::default();
    let unbounded = run_eager(&spec, 3, &mut QueueStrategy::bfs(), &cfg);
    for backing in [SpillBacking::Memory, SpillBacking::Disk] {
        let mut spilling = QueueStrategy::bfs_spilling(32, backing);
        let bounded = run_eager(&spec, 3, &mut spilling, &cfg);
        assert_same_crawl(&unbounded, &bounded, "spilling bfs");
    }
    let dfs_unbounded = run_eager(&spec, 3, &mut QueueStrategy::dfs(), &cfg);
    let dfs_bounded = run_eager(&spec, 3, &mut QueueStrategy::dfs_spilling(32, SpillBacking::Memory), &cfg);
    assert_same_crawl(&dfs_unbounded, &dfs_bounded, "spilling dfs");
}

/// A compact visited set (tiny threshold, so nearly every URL is
/// fingerprinted) replays the exact-interner crawl byte-for-byte.
#[test]
fn compact_visited_crawl_is_identical() {
    let spec = spec_with(500, 0.25, 0.08, 0.3);
    let exact_cfg = CrawlConfig::default();
    let compact_cfg = CrawlConfig { compact_visited_threshold: 16, ..Default::default() };
    let exact = run_eager(&spec, 7, &mut QueueStrategy::bfs(), &exact_cfg);
    let compact = run_eager(&spec, 7, &mut QueueStrategy::bfs(), &compact_cfg);
    assert_same_crawl(&exact, &compact, "compact visited");
}

/// The step-level memory gauges report what the bounded structures do:
/// spill events show up in `frontier_spilled`, compaction bounds
/// `visited_bytes` below the exact crawl's.
#[test]
fn gauges_observe_bounded_memory() {
    use sb_crawler::session::CrawlSession;
    let spec = spec_with(600, 0.2, 0.05, 0.2);
    let site = build_site(&spec, 3);
    let root = site.page(site.root()).url.clone();
    let server = SiteServer::new(site);

    let run_gauged = |strategy: &mut dyn Strategy, cfg: &CrawlConfig| {
        let mut session = CrawlSession::new(&server, None, &root, strategy, cfg).unwrap();
        let mut peak_spilled = 0usize;
        let mut peak_bytes = 0u64;
        while !session.is_finished() {
            let report = session.step();
            peak_spilled = peak_spilled.max(report.mem.frontier_spilled);
            peak_bytes = peak_bytes.max(report.mem.visited_bytes);
            assert_eq!(
                report.mem.frontier_len,
                session.mem_gauges().frontier_len,
                "step report and session gauges must agree"
            );
        }
        (peak_spilled, peak_bytes)
    };

    let exact_cfg = CrawlConfig::default();
    let (spilled_unbounded, bytes_exact) =
        run_gauged(&mut QueueStrategy::bfs(), &exact_cfg);
    assert_eq!(spilled_unbounded, 0, "unbounded frontier must never spill");

    let compact_cfg = CrawlConfig { compact_visited_threshold: 32, ..Default::default() };
    let (spilled, bytes_compact) =
        run_gauged(&mut QueueStrategy::bfs_spilling(32, SpillBacking::Memory), &compact_cfg);
    assert!(spilled > 0, "cap 32 on a 600-page site must spill");
    assert!(
        bytes_compact * 2 < bytes_exact,
        "compact visited ({bytes_compact} B) must be well under exact ({bytes_exact} B)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Window-1 trace identity on *arbitrary* layouts: streaming site,
    /// spilling frontier and compact visited set all at once, vs the
    /// all-unbounded engine.
    #[test]
    fn bounded_engine_trace_identical_on_arbitrary_layouts(
        n in 150usize..400,
        tf in 0.08f64..0.4,
        err in 0.0f64..0.15,
        ext in 0.0f64..0.6,
        seed in 0u64..100,
        cap in 8usize..64,
        threshold in 0usize..64,
    ) {
        let spec = spec_with(n, tf, err, ext);
        let exact_cfg = CrawlConfig::default();
        let bounded_cfg = CrawlConfig {
            compact_visited_threshold: threshold,
            ..Default::default()
        };
        let reference = run_eager(&spec, seed, &mut QueueStrategy::bfs(), &exact_cfg);
        let mut spilling = QueueStrategy::bfs_spilling(cap, SpillBacking::Memory);
        let bounded = run_streaming(&spec, seed, &mut spilling, &bounded_cfg);
        prop_assert_eq!(reference.trace.points(), bounded.trace.points());
        prop_assert_eq!(reference.pages_crawled, bounded.pages_crawled);
        prop_assert_eq!(
            reference.targets.iter().map(|t| &t.url).collect::<Vec<_>>(),
            bounded.targets.iter().map(|t| &t.url).collect::<Vec<_>>()
        );
    }
}
