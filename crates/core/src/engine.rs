//! The crawl engine: Algorithms 3 and 4, generic over a [`Strategy`].
//!
//! The engine owns everything every crawler shares — HTTP, budget, the
//! visited set `T ∪ F`, link extraction and filtering (site boundary,
//! extension blocklist, dedup), redirect handling, immediate retrieval of
//! predicted targets, reward computation, early stopping and tracing — while
//! the [`Strategy`] decides which frontier link to crawl next and what to do
//! with each newly discovered link. `SB-CLASSIFIER`, the baselines and the
//! oracle variants are all strategies over this one engine, so comparisons
//! never hinge on engine differences.

use crate::early_stop::{EarlyStop, EarlyStopConfig};
use crate::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use crate::trace::{CrawlTrace, TracePoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sb_httpsim::{Client, HttpServer, Politeness};
use sb_webgraph::interner::{UrlId, UrlInterner};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::url::Url;
use std::collections::VecDeque;

/// The crawl budget `B` of Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Stop after this many requests (GET + HEAD): the `ω ≡ 1` cost model.
    Requests(u64),
    /// Stop after this much received volume (bytes): the size cost model.
    VolumeBytes(u64),
    /// Crawl until the frontier is exhausted.
    Unlimited,
}

/// Ground-truth URL classes, for oracle strategies (Sec 4.3's `SB-ORACLE`,
/// `TP-OFF`'s first phase and `TRES`'s URL oracle).
pub trait Oracle: Sync {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass;
}

impl Oracle for sb_webgraph::Website {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass {
        match self.lookup(url) {
            Some(id) => self.true_class(id),
            None => sb_webgraph::UrlClass::Neither,
        }
    }
}

/// Engine configuration.
pub struct CrawlConfig {
    pub budget: Budget,
    pub policy: MimePolicy,
    pub politeness: Politeness,
    pub seed: u64,
    pub early_stop: Option<EarlyStopConfig>,
    /// Keep the bodies of retrieved targets (Table 7 needs them).
    pub keep_target_bodies: bool,
    /// Hard cap on crawl steps (safety valve for tests).
    pub max_steps: Option<u64>,
    /// Optional URL admission filter, checked on every discovered link and
    /// redirect target (the root is exempt). `false` drops the URL before
    /// any request is spent on it — this is where robots.txt compliance
    /// plugs in (see [`robots_filter`]).
    pub url_filter: Option<UrlFilter>,
    /// Extra URLs fetched right after the root, before the strategy takes
    /// over — sitemap seeding (`sb_httpsim::fetch_sitemap_urls`). Off-site
    /// and filter-rejected entries are skipped; each seed costs its
    /// requests against the budget like any other fetch.
    pub seed_urls: Vec<String>,
}

/// Boxed URL predicate for [`CrawlConfig::url_filter`].
pub type UrlFilter = Box<dyn Fn(&Url) -> bool + Send + Sync>;

/// Builds a [`CrawlConfig::url_filter`] that enforces a parsed robots.txt
/// for the given user agent.
///
/// ```
/// use sb_crawler::engine::{robots_filter, CrawlConfig};
/// use sb_httpsim::RobotsTxt;
///
/// let robots = RobotsTxt::parse("User-agent: *\nDisallow: /private/");
/// let cfg = CrawlConfig { url_filter: Some(robots_filter(robots, "sbcrawl")), ..Default::default() };
/// # let _ = cfg;
/// ```
pub fn robots_filter(robots: sb_httpsim::RobotsTxt, agent: &str) -> UrlFilter {
    let agent = agent.to_owned();
    Box::new(move |url: &Url| robots.allows(&agent, &url.path))
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            budget: Budget::Unlimited,
            policy: MimePolicy::default(),
            politeness: Politeness::default(),
            seed: 0,
            early_stop: None,
            keep_target_bodies: false,
            max_steps: None,
            url_filter: None,
            seed_urls: Vec::new(),
        }
    }
}

/// A target retrieved during the crawl.
#[derive(Debug, Clone)]
pub struct RetrievedTarget {
    pub url: String,
    pub mime: String,
    /// Present only when [`CrawlConfig::keep_target_bodies`] is set.
    /// Shared bytes — cloning an outcome does not copy target payloads.
    pub body: Option<sb_httpsim::Body>,
}

/// Everything a finished crawl reports.
pub struct CrawlOutcome {
    pub trace: CrawlTrace,
    pub targets: Vec<RetrievedTarget>,
    pub pages_crawled: u64,
    /// True when Sec 4.8 early stopping fired.
    pub stopped_early: bool,
    /// Step at which early stopping fired.
    pub early_stop_at: Option<u64>,
    /// True when the action space exploded (the θ = 0.95 OOM of Table 4).
    pub aborted_oom: bool,
    pub traffic: sb_httpsim::Traffic,
    /// Strategy-specific report (action statistics for the SB crawlers).
    pub report: crate::strategy::StrategyReport,
}

impl CrawlOutcome {
    pub fn targets_found(&self) -> u64 {
        self.targets.len() as u64
    }
}

/// Crawls `root_url` on `server` driving `strategy`. The heart of the repo.
pub fn crawl(
    server: &dyn HttpServer,
    oracle: Option<&dyn Oracle>,
    root_url: &str,
    strategy: &mut dyn Strategy,
    cfg: &CrawlConfig,
) -> CrawlOutcome {
    Engine::new(server, oracle, root_url, cfg).run(strategy)
}

struct Engine<'a> {
    client: Client<'a, dyn HttpServer + 'a>,
    oracle: Option<&'a dyn Oracle>,
    cfg: &'a CrawlConfig,
    root: Url,
    /// `T ∪ F` membership: every discovered URL is interned exactly once
    /// (one hash of the parsed `Url`, no string round-trips); the id keys
    /// everything downstream.
    interner: UrlInterner,
    /// Discovery depth per interned id (parallel to the interner).
    depths: Vec<u32>,
    trace: CrawlTrace,
    targets: Vec<RetrievedTarget>,
    pages_crawled: u64,
    /// Crawl step `t` (pages entered into `T`), as in Algorithm 4.
    t: u64,
    early: Option<EarlyStop>,
    aborted_oom: bool,
    rng: StdRng,
}

/// Work item of the per-step cascade: an interned page plus whether its
/// reward feeds back into the outer selection.
struct WorkItem {
    id: UrlId,
    depth: u32,
    /// Feedback token of the outer selection; inner (immediately-retrieved)
    /// pages carry `None` — their rewards have no owning action.
    token: Option<u64>,
}

const MAX_REDIRECTS: usize = 5;

impl<'a> Engine<'a> {
    fn new(
        server: &'a dyn HttpServer,
        oracle: Option<&'a dyn Oracle>,
        root_url: &str,
        cfg: &'a CrawlConfig,
    ) -> Self {
        let root = Url::parse(root_url).expect("crawl root must be an absolute http(s) URL");
        Engine {
            client: Client::new(server, cfg.policy.clone()).with_politeness(cfg.politeness),
            oracle,
            cfg,
            root,
            interner: UrlInterner::new(),
            depths: Vec::new(),
            trace: CrawlTrace::new(),
            targets: Vec::new(),
            pages_crawled: 0,
            t: 0,
            early: cfg.early_stop.map(EarlyStop::new),
            aborted_oom: false,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc3a5_c85c_97cb_3127),
        }
    }

    fn run(mut self, strategy: &mut dyn Strategy) -> CrawlOutcome {
        // Algorithm 3: the crawl starts at r.
        let root = self.root.clone();
        let root_id = self.intern_at_depth(&root, 0);
        self.process_cascade(strategy, WorkItem { id: root_id, depth: 0, token: None });

        // Sitemap (or otherwise provided) seeds: fetched like the root.
        let seeds: Vec<String> = self.cfg.seed_urls.clone();
        for seed in seeds {
            if self.budget_exhausted() || self.aborted_oom {
                break;
            }
            let Ok(url) = Url::parse(&seed) else { continue };
            if !url.same_site_as(&self.root) {
                continue;
            }
            if self.cfg.url_filter.as_ref().is_some_and(|f| !f(&url)) {
                continue;
            }
            if self.interner.get(&url).is_some() {
                continue;
            }
            let id = self.intern_at_depth(&url, 1);
            self.process_cascade(strategy, WorkItem { id, depth: 1, token: None });
        }

        let mut stopped_early = false;
        while !self.budget_exhausted() && !self.aborted_oom {
            if let Some(max) = self.cfg.max_steps {
                if self.t >= max {
                    break;
                }
            }
            if let Some(es) = &mut self.early {
                if es.observe(self.t, self.targets.len() as f64) {
                    stopped_early = true;
                    break;
                }
            }
            let Some(Selection { url, token }) = strategy.next(&mut self.rng) else {
                break; // frontier exhausted: the site is fully crawled
            };
            let id = match url {
                // Hot path: the id resolves without parsing or hashing.
                SelUrl::Id(id) if (id as usize) < self.depths.len() => id,
                SelUrl::Id(_) => {
                    // An id the engine never handed out — a strategy bug.
                    // Degrade like an error answer instead of panicking.
                    debug_assert!(false, "strategy returned an unknown UrlId");
                    strategy.feedback_error(token);
                    continue;
                }
                // Boundary path (oracle answer keys): parse + intern once.
                SelUrl::Text(s) => {
                    let Ok(u) = Url::parse(&s) else {
                        // Seed parity: an unparseable selection still costs
                        // a (404-answered) fetch, so budgets advance and a
                        // re-offering strategy cannot spin the loop.
                        self.t += 1;
                        self.pages_crawled += 1;
                        let f = self.client.get(&s);
                        self.push_trace();
                        if f.status >= 400 {
                            strategy.feedback_error(token);
                        }
                        continue;
                    };
                    self.intern_at_depth(&u, 0)
                }
            };
            let depth = self.depths[id as usize];
            self.process_cascade(strategy, WorkItem { id, depth, token: Some(token) });
        }

        CrawlOutcome {
            trace: self.trace,
            targets: self.targets,
            pages_crawled: self.pages_crawled,
            stopped_early,
            early_stop_at: self.early.as_ref().and_then(|e| e.triggered_at()),
            aborted_oom: self.aborted_oom,
            traffic: self.client.traffic(),
            report: strategy.report(),
        }
    }

    fn budget_exhausted(&self) -> bool {
        let traffic = self.client.traffic();
        match self.cfg.budget {
            Budget::Requests(b) => traffic.requests() >= b,
            Budget::VolumeBytes(b) => traffic.total_bytes() >= b,
            Budget::Unlimited => false,
        }
    }

    /// Processes one selected page and, iteratively, every page the
    /// strategy asked to fetch immediately (Algorithm 4's recursion,
    /// flattened to survive arbitrarily deep target cascades).
    fn process_cascade(&mut self, strategy: &mut dyn Strategy, first: WorkItem) {
        let mut queue: VecDeque<WorkItem> = VecDeque::new();
        queue.push_back(first);
        while let Some(item) = queue.pop_front() {
            if self.budget_exhausted() || self.aborted_oom {
                return;
            }
            self.process_one(strategy, item, &mut queue);
        }
    }

    /// Interns `url`, recording `depth` if it is new. Existing ids keep
    /// their original discovery depth.
    fn intern_at_depth(&mut self, url: &Url, depth: u32) -> UrlId {
        let id = self.interner.intern(url);
        if id as usize == self.depths.len() {
            self.depths.push(depth);
        }
        id
    }

    /// Algorithm 4 for a single URL.
    fn process_one(
        &mut self,
        strategy: &mut dyn Strategy,
        item: WorkItem,
        queue: &mut VecDeque<WorkItem>,
    ) {
        // Follow redirects (3xx) up to a small chain bound. `id` is always
        // interned, so the canonical string and parsed form resolve without
        // any re-parse or re-stringify.
        let mut id = item.id;
        let mut fetched = None;
        for _ in 0..MAX_REDIRECTS {
            self.t += 1;
            self.pages_crawled += 1;
            let f = self.client.get(self.interner.text(id));
            self.push_trace();
            if !f.status.is_redirect_status() {
                fetched = Some((id, f));
                break;
            }
            // 3xx: follow the Location if it is new, on-site and admitted.
            let Some(loc) = f.location.clone() else { return };
            let Ok(next) = self.interner.url(id).join(&loc) else { return };
            if !next.same_site_as(&self.root) {
                return;
            }
            if self.cfg.url_filter.as_ref().is_some_and(|f| !f(&next)) {
                return;
            }
            match self.interner.get(&next) {
                // Already known elsewhere; don't crawl twice.
                Some(known) if known != id => return,
                // Self-redirect: keep following until the chain bound.
                Some(known) => id = known,
                None => id = self.intern_at_depth(&next, item.depth),
            }
        }
        let Some((id, f)) = fetched else { return };

        // Errors (4xx/5xx) yield nothing; the selection still consumed a pull.
        if f.status >= 400 {
            if let Some(token) = item.token {
                strategy.feedback_error(token);
            }
            return;
        }
        if f.interrupted {
            return; // banned MIME type: transfer aborted (Algorithm 3)
        }
        let Some(mime) = f.mime.clone() else { return };

        if self.cfg.policy.is_html_mime(&mime) {
            strategy.on_fetched(id, self.interner.text(id), sb_webgraph::UrlClass::Html);
            let reward = self.process_html(strategy, id, item.depth, &f.body, queue);
            if let Some(token) = item.token {
                strategy.feedback(token, reward);
            }
        } else if self.cfg.policy.is_target_mime(&mime) {
            // A target: tag its volume and keep it.
            self.client.tag_target(f.wire_bytes);
            strategy.on_fetched(id, self.interner.text(id), sb_webgraph::UrlClass::Target);
            self.targets.push(RetrievedTarget {
                url: self.interner.text(id).to_owned(),
                mime,
                body: self.cfg.keep_target_bodies.then_some(f.body),
            });
            self.amend_trace();
            if let Some(token) = item.token {
                // Algorithm 4 returns before the R_mean update for targets:
                // the pull happened but no reward observation follows.
                strategy.feedback_target(token);
            }
        }
        // Any other MIME type: "Neither", nothing to do.
    }

    /// Link extraction + per-link decisions; returns the page's reward
    /// (the number of new links to predicted targets, retrieved at once).
    fn process_html(
        &mut self,
        strategy: &mut dyn Strategy,
        page_id: UrlId,
        page_depth: u32,
        body: &[u8],
        queue: &mut VecDeque<WorkItem>,
    ) -> f64 {
        let html = String::from_utf8_lossy(body);
        let links = sb_html::extract_links_with(&html, strategy.link_needs());
        // One clone of the parsed base per page (instead of a re-parse);
        // per link, membership is checked on the parsed `Url` itself, so
        // known links cost one hash and zero allocations.
        let base = self.interner.url(page_id).clone();
        let mut reward = 0.0;
        for link in &links {
            let Ok(resolved) = base.join(&link.href) else { continue };
            // Only in-website links enter the graph (Sec 2.2).
            if !resolved.same_site_as(&self.root) {
                continue;
            }
            // u_new ∉ T ∪ F
            if self.interner.get(&resolved).is_some() {
                continue;
            }
            // Extension blocklist: skipped without any bookkeeping.
            if self.cfg.policy.has_blocked_extension(&resolved) {
                continue;
            }
            // URL admission filter (robots.txt etc.): dropped unrequested.
            if self.cfg.url_filter.as_ref().is_some_and(|f| !f(&resolved)) {
                continue;
            }
            let id = self.intern_at_depth(&resolved, page_depth + 1);
            let new_link = NewLink {
                id,
                url: &resolved,
                url_str: self.interner.text(id),
                html: link,
                source_depth: page_depth,
            };
            let mut services = Services {
                client: &mut self.client,
                oracle: self.oracle,
                policy: &self.cfg.policy,
            };
            match strategy.decide(&new_link, &mut services) {
                // Enqueue/Skip need no bookkeeping: interning above already
                // recorded membership and depth.
                LinkDecision::Enqueue | LinkDecision::Skip => {}
                LinkDecision::FetchNow => {
                    reward += 1.0;
                    queue.push_back(WorkItem { id, depth: page_depth + 1, token: None });
                }
                LinkDecision::ActionSpaceFull => {
                    self.aborted_oom = true;
                    return reward;
                }
            }
        }
        self.push_trace();
        reward
    }

    fn push_trace(&mut self) {
        let tr = self.client.traffic();
        self.trace.push(TracePoint {
            requests: tr.requests(),
            head_requests: tr.head_requests,
            target_bytes: tr.target_bytes,
            non_target_bytes: tr.non_target_bytes,
            targets: self.targets.len() as u64,
            elapsed_secs: tr.elapsed_secs,
        });
    }

    /// Re-records the last point after target-volume tagging so the series
    /// reflects the re-attributed bytes.
    fn amend_trace(&mut self) {
        self.push_trace();
    }
}

trait StatusExt {
    fn is_redirect_status(&self) -> bool;
}

impl StatusExt for u16 {
    fn is_redirect_status(&self) -> bool {
        (300..400).contains(self)
    }
}
