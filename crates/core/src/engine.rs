//! Compatibility surface of the pre-session crawl API.
//!
//! The engine (Algorithms 3 and 4) lives in [`crate::session`] as the
//! resumable, observable [`CrawlSession`]; this module keeps the original
//! names importable — `sb_crawler::engine::{crawl, Budget, CrawlConfig}`
//! and friends — so the six strategies, the experiment harness and the
//! frozen `sb_bench::reference` comparisons all keep compiling unchanged.
//! [`crawl`] is now a one-liner: build a session, run it to completion.

pub use crate::session::{
    robots_filter, Budget, ConfigError, CrawlConfig, CrawlConfigBuilder, CrawlOutcome, CrawlSession,
    Oracle, RetrievedTarget, StepReport, UrlFilter,
};
use crate::strategy::Strategy;
use sb_httpsim::HttpServer;

/// Crawls `root_url` on `server` driving `strategy` to completion — the
/// one-shot convenience over [`CrawlSession`].
///
/// Panics on an unparseable root, exactly like the pre-session engine did;
/// callers that want the error instead use [`CrawlSession::new`].
pub fn crawl(
    server: &dyn HttpServer,
    oracle: Option<&dyn Oracle>,
    root_url: &str,
    strategy: &mut dyn Strategy,
    cfg: &CrawlConfig,
) -> CrawlOutcome {
    CrawlSession::new(server, oracle, root_url, strategy, cfg)
        .expect("crawl root must be an absolute http(s) URL")
        .run()
}
