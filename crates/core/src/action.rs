//! The action space of the sleeping bandit (Algorithm 1).
//!
//! An *action* is an evolving cluster of similar tag paths, represented only
//! by its centroid (stored in an HNSW index for fast nearest-centroid
//! queries and cheap centroid updates). For each new hyperlink, its tag path
//! is vectorised (token n-grams over a dynamic vocabulary), projected to a
//! fixed dimension, and matched against the nearest centroid: cosine
//! similarity ≥ θ joins the action and moves its centroid; anything less
//! founds a new action.
//!
//! The θ = 1 extreme creates one action per distinct path (pure exploration,
//! and the `ed` OOM pathology of Table 4 — reproduced here by the optional
//! `max_actions` guard); θ = 0 collapses everything into one action (pure
//! random selection).

use sb_ann::{Hnsw, HnswParams, NgramVocab, Projector};
use sb_html::TagPath;

/// Identifier of an action (dense, in creation order).
pub type ActionId = usize;

/// Configuration of the tag-path clustering.
#[derive(Debug, Clone)]
pub struct ActionSpaceConfig {
    /// n-gram order for tag-path tokens (paper default: 2).
    pub ngram: usize,
    /// Cosine-similarity threshold θ (paper default: 0.75).
    pub theta: f32,
    /// Projection dimension exponent `m` (D = 2^m; paper default: 12).
    pub m: u32,
    /// Hash modulus exponent `w` (paper default: 15).
    pub w: u32,
    /// Hash prime Π.
    pub prime: u64,
    /// Abort when the action count exceeds this bound (the paper's θ = 0.95
    /// run on `ed` died of OOM; we fail gracefully instead).
    pub max_actions: Option<usize>,
}

impl Default for ActionSpaceConfig {
    fn default() -> Self {
        ActionSpaceConfig {
            ngram: 2,
            theta: 0.75,
            m: 12,
            w: 15,
            prime: sb_ann::DEFAULT_PRIME,
            max_actions: None,
        }
    }
}

/// Raised when `max_actions` is exceeded — the graceful version of the
/// paper's OOM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionSpaceFull {
    pub actions: usize,
}

impl std::fmt::Display for ActionSpaceFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "action space exploded to {} clusters (θ too high for this site)", self.actions)
    }
}

impl std::error::Error for ActionSpaceFull {}

/// One action's clustering bookkeeping (bandit statistics live with the
/// strategy, not here).
#[derive(Debug, Clone)]
struct ActionMeta {
    /// Members absorbed so far (drives the centroid update weight).
    members: u64,
    /// A representative tag path, for the Sec 4.7 interpretability study.
    exemplar: String,
}

/// The online tag-path clustering of Algorithm 1.
pub struct ActionSpace {
    cfg: ActionSpaceConfig,
    vocab: NgramVocab,
    projector: Projector,
    index: Hnsw,
    metas: Vec<ActionMeta>,
}

impl ActionSpace {
    pub fn new(cfg: ActionSpaceConfig) -> Self {
        let projector = Projector::new(cfg.m, cfg.w, cfg.prime);
        ActionSpace {
            vocab: NgramVocab::new(cfg.ngram),
            index: Hnsw::new(projector.dim(), HnswParams::default()),
            projector,
            cfg,
            metas: Vec::new(),
        }
    }

    pub fn config(&self) -> &ActionSpaceConfig {
        &self.cfg
    }

    /// Number of actions created so far.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Vocabulary size `d` (grows during the crawl).
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// A representative tag path of an action.
    pub fn exemplar(&self, a: ActionId) -> &str {
        &self.metas[a].exemplar
    }

    /// Number of tag paths absorbed by an action.
    pub fn members(&self, a: ActionId) -> u64 {
        self.metas[a].members
    }

    /// Read-only lookup: the action a tag path *would* join, without
    /// creating one or updating anything. Unseen n-grams are dropped (the
    /// vocabulary is frozen) — this is TP-OFF's phase-2 behaviour, where all
    /// learning stopped with phase 1.
    pub fn match_only(&self, path: &TagPath) -> Option<ActionId> {
        let tokens: Vec<String> = path.tokens().collect();
        let bow = self.vocab.vectorize(&tokens);
        let projected = self.projector.project(&bow);
        match self.index.nearest(&projected) {
            Some((id, sim)) if sim >= self.cfg.theta => Some(id as usize),
            _ => None,
        }
    }

    /// Algorithm 1: finds (or creates) the action for a hyperlink's tag
    /// path. Returns the action id, or [`ActionSpaceFull`] when the guard
    /// trips.
    pub fn assign(&mut self, path: &TagPath) -> Result<ActionId, ActionSpaceFull> {
        let tokens: Vec<String> = path.tokens().collect();
        let bow = self.vocab.vectorize_mut(&tokens);
        let projected = self.projector.project(&bow);

        if let Some((nearest, sim)) = self.index.nearest(&projected) {
            if sim >= self.cfg.theta {
                // Join: move the centroid toward the newcomer.
                let a = nearest as usize;
                let m = self.metas[a].members as f32;
                let old = self.index.vector(nearest).to_vec();
                let updated: Vec<f32> = old
                    .iter()
                    .zip(&projected)
                    .map(|(&c, &x)| c + (x - c) / (m + 1.0))
                    .collect();
                self.index.update(nearest, &updated);
                self.metas[a].members += 1;
                return Ok(a);
            }
        }
        // Found nothing similar enough: a new action is born.
        if let Some(cap) = self.cfg.max_actions {
            if self.metas.len() >= cap {
                return Err(ActionSpaceFull { actions: self.metas.len() });
            }
        }
        let id = self.index.insert(&projected) as usize;
        debug_assert_eq!(id, self.metas.len());
        self.metas.push(ActionMeta { members: 1, exemplar: path.to_string() });
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: &str) -> TagPath {
        TagPath::parse(s)
    }

    fn space(theta: f32) -> ActionSpace {
        ActionSpace::new(ActionSpaceConfig { theta, ..Default::default() })
    }

    #[test]
    fn identical_paths_share_an_action() {
        let mut s = space(0.75);
        let a = s.assign(&tp("html body div#main ul.datasets li a")).unwrap();
        let b = s.assign(&tp("html body div#main ul.datasets li a")).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
        assert_eq!(s.members(a), 2);
    }

    #[test]
    fn similar_paths_cluster_dissimilar_split() {
        // Realistic depth matters: at θ = 0.75 two 10-segment paths
        // differing only in the link class share 9/11 bigrams (cos ≈ 0.82).
        let mut s = space(0.75);
        let a = s
            .assign(&tp("html body div#layout div.wrap main div.content ul.datasets li a.download"))
            .unwrap();
        let b = s
            .assign(&tp("html body div#layout div.wrap main div.content ul.datasets li a.dataset"))
            .unwrap();
        let c = s.assign(&tp("html body header nav ul.menu li a")).unwrap();
        assert_eq!(a, b, "near-identical dataset paths must merge");
        assert_ne!(a, c, "nav path must found its own action");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn theta_one_separates_every_distinct_path() {
        let mut s = space(1.0);
        let paths = [
            "html body div ul li a",
            "html body div ul li a.x",
            "html body div ol li a",
            "html body nav a",
        ];
        let ids: Vec<_> = paths.iter().map(|p| s.assign(&tp(p)).unwrap()).collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), paths.len());
    }

    #[test]
    fn theta_zero_collapses_everything() {
        let mut s = space(0.0);
        let a = s.assign(&tp("html body div ul li a")).unwrap();
        let b = s.assign(&tp("html body footer div.links a")).unwrap();
        let c = s.assign(&tp("html nav a")).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn max_actions_guard_fires() {
        let mut s = ActionSpace::new(ActionSpaceConfig {
            theta: 1.0,
            max_actions: Some(3),
            ..Default::default()
        });
        // Use structurally different paths so θ=1.0 can't merge them.
        let paths =
            ["html body a", "html body div a", "html body div div a", "html body div div div a"];
        let mut err = None;
        for p in paths {
            if let Err(e) = s.assign(&tp(p)) {
                err = Some(e);
            }
        }
        let e = err.expect("guard must fire on the 4th distinct path");
        assert_eq!(e.actions, 3);
    }

    #[test]
    fn centroid_update_keeps_cluster_attractive() {
        let mut s = space(0.75);
        // A drifting family of similar (deep) paths must stay one action:
        // only the link class varies, the ≥ 80 % shared bigrams keep every
        // variant above θ even as the centroid moves.
        let variants = [
            "html body div#layout div.wrap main div.content ul.datasets li a.download",
            "html body div#layout div.wrap main div.content ul.datasets li a.file",
            "html body div#layout div.wrap main div.content ul.datasets li a.dataset",
            "html body div#layout div.wrap main div.content ul.datasets li a.doc-link",
        ];
        let ids: Vec<_> = variants.iter().map(|p| s.assign(&tp(p)).unwrap()).collect();
        assert!(ids.iter().all(|&i| i == ids[0]), "{ids:?} should all merge");
        assert_eq!(s.members(ids[0]), variants.len() as u64);
    }

    #[test]
    fn exemplar_is_first_member() {
        let mut s = space(0.75);
        let a = s.assign(&tp("html body ul.datasets li a")).unwrap();
        assert_eq!(s.exemplar(a), "html body ul.datasets li a");
    }

    #[test]
    fn vocab_grows_with_new_paths() {
        let mut s = space(0.75);
        s.assign(&tp("html body a")).unwrap();
        let d1 = s.vocab_len();
        s.assign(&tp("html body nav ul li a")).unwrap();
        assert!(s.vocab_len() > d1);
    }
}
