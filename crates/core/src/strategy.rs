//! The strategy interface: what distinguishes one crawler from another.
//!
//! The engine (Algorithms 3–4) is shared; a [`Strategy`] supplies the three
//! crawler-specific behaviours: *frontier ordering* ([`Strategy::next`]),
//! *per-link routing* ([`Strategy::decide`] — enqueue, fetch immediately as
//! a predicted target, or drop), and *learning* (the feedback hooks).

use crate::engine::Oracle;
use rand::rngs::StdRng;
use sb_httpsim::Transport;
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::url::Url;
use sb_webgraph::{UrlClass, UrlId};

/// What a strategy hands back from [`Strategy::next`] to identify the page
/// to crawl.
///
/// The hot path is [`SelUrl::Id`]: an interned id the engine resolves to
/// its parsed `Url` and canonical string without hashing, parsing or
/// allocating. [`SelUrl::Text`] is the escape hatch for strategies that
/// know URLs the engine has never discovered (OMNISCIENT's answer key);
/// the engine parses and interns those at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelUrl {
    /// An id previously handed to the strategy via [`NewLink::id`].
    Id(UrlId),
    /// An absolute URL string, parsed and interned by the engine.
    Text(String),
}

impl From<UrlId> for SelUrl {
    fn from(id: UrlId) -> SelUrl {
        SelUrl::Id(id)
    }
}

impl From<String> for SelUrl {
    fn from(s: String) -> SelUrl {
        SelUrl::Text(s)
    }
}

/// A frontier pick: the URL to crawl and an opaque token the engine hands
/// back through the feedback hooks (the SB crawlers store the action id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    pub url: SelUrl,
    pub token: u64,
}

/// What to do with a newly discovered link (Algorithm 4's inner loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Into the frontier (predicted HTML).
    Enqueue,
    /// Retrieve immediately (predicted target); counts toward the page's
    /// reward.
    FetchNow,
    /// Drop permanently (predicted dead, or out of the strategy's scope).
    Skip,
    /// The action space exploded (Table 4's θ = 0.95 OOM); abort the crawl.
    ActionSpaceFull,
}

/// A newly discovered, already-filtered link (on-site, unseen, not
/// extension-blocked).
#[derive(Debug)]
pub struct NewLink<'a> {
    /// Interned id — the key strategies should store in their frontiers.
    pub id: UrlId,
    pub url: &'a Url,
    pub url_str: &'a str,
    /// The parsed hyperlink: tag path, anchor text, surrounding text —
    /// borrowed from the page body. Strategies that keep any of it past
    /// `decide` must convert to owned here; this is the pipeline's single
    /// owned-conversion boundary.
    pub html: &'a sb_html::Link<'a>,
    /// Depth of the page the link was found on.
    pub source_depth: u32,
}

/// Engine services available during [`Strategy::decide`]: HEAD probes
/// (costed!) and the ground-truth oracle for the unrealistic variants.
///
/// HEADs go through the session's [`Transport`] synchronously — they share
/// its politeness gate and simulated clock, so a probe issued while GETs
/// are in flight still spaces correctly and is charged at its simulated
/// arrival. The transport itself stays crate-private: handing strategies
/// `submit`/`poll` would let them corrupt the session's in-flight
/// bookkeeping, so only the probe surface is exposed.
pub struct Services<'c, 'a> {
    pub(crate) transport: &'c mut (dyn Transport + 'a),
    pub oracle: Option<&'a dyn Oracle>,
    pub policy: &'c MimePolicy,
}

impl Services<'_, '_> {
    /// Determines a URL's class with an HTTP HEAD request (charged to the
    /// budget), following up to 3 redirects.
    ///
    /// The caller's string is probed as-is — the common no-redirect case
    /// costs zero allocations — and the URL is parsed (at most) once, on
    /// the first redirect; later hops join onto the already-parsed form.
    pub fn head_class(&mut self, url: &str) -> UrlClass {
        // `(parsed, canonical)` of the current redirect target; `None`
        // means we are still on the caller's original string.
        let mut current: Option<(Url, String)> = None;
        for _ in 0..3 {
            let h = match &current {
                None => self.transport.head(url),
                Some((_, text)) => self.transport.head(text),
            };
            if (300..400).contains(&h.status) {
                let Some(loc) = h.headers.location else { return UrlClass::Neither };
                let base = match current.take() {
                    Some((parsed, _)) => parsed,
                    None => match Url::parse(url) {
                        Ok(parsed) => parsed,
                        Err(_) => return UrlClass::Neither,
                    },
                };
                match base.join(&loc) {
                    Ok(next) => {
                        let text = next.as_string();
                        current = Some((next, text));
                        continue;
                    }
                    Err(_) => return UrlClass::Neither,
                }
            }
            if h.status >= 400 {
                return UrlClass::Neither;
            }
            return self.policy.classify_mime(h.headers.content_type.as_deref());
        }
        UrlClass::Neither
    }

    /// Ground truth from the oracle. Panics if the strategy was run without
    /// one — oracle strategies must be wired with `Some(oracle)`.
    pub fn oracle_class(&self, url: &str) -> UrlClass {
        self.oracle.expect("this strategy requires a ground-truth oracle").class_of(url)
    }
}

/// Per-action statistics exposed for Table 6 / Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// Representative tag path of the action.
    pub exemplar: String,
    pub pulls: u64,
    pub mean_reward: f64,
    pub std_reward: f64,
    /// Tag paths absorbed by the action.
    pub members: u64,
}

/// Strategy-specific summary returned with the crawl outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrategyReport {
    pub n_actions: usize,
    pub arms: Vec<ArmReport>,
}

/// A crawler's brain. See the module docs; implementations live in
/// [`crate::strategies`].
pub trait Strategy {
    fn name(&self) -> String;

    /// Which per-link features this strategy reads ([`NewLink::html`]).
    /// The engine skips computing the rest during link extraction — tag
    /// paths and text windows cost real time on every fetched page. The
    /// conservative default is everything.
    fn link_needs(&self) -> sb_html::LinkNeeds {
        sb_html::LinkNeeds::ALL
    }

    /// Picks the next frontier link, or `None` when the frontier is empty.
    fn next(&mut self, rng: &mut StdRng) -> Option<Selection>;

    /// Picks up to `k` frontier links in one pass (PR 10). The default
    /// calls [`Strategy::next`] up to `k` times, so every existing
    /// strategy keeps working unchanged; ranking strategies
    /// ([`crate::strategies::ValueStrategy`]) override it to score the
    /// whole frontier once and return the top `k` — the Crawl4LLM-style
    /// "select the top-k rated documents per iteration" loop. Fewer than
    /// `k` selections mean the frontier ran dry mid-batch; an empty vec
    /// is the `None` of [`Strategy::next`]. Every returned selection is a
    /// real pull: each must receive exactly one feedback call, the same
    /// contract as single selections.
    fn select_batch(&mut self, k: usize, rng: &mut StdRng) -> Vec<Selection> {
        let mut out = Vec::with_capacity(k.min(16));
        for _ in 0..k {
            match self.next(rng) {
                Some(sel) => out.push(sel),
                None => break,
            }
        }
        out
    }

    /// Does this strategy want the session to refill through
    /// [`Strategy::select_batch`] (one ranking pass fills the whole
    /// in-flight window) instead of pulling selections one at a time?
    /// Default `false`: the classic per-pull path, whose window-1 replay
    /// of the frozen seed engine stays byte-identical. Strategies that
    /// rank their frontier per step (or the [`crate::strategies::Batched`]
    /// adapter) answer `true`.
    fn batch_selection(&self) -> bool {
        false
    }

    /// Routes a newly discovered link.
    fn decide(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> LinkDecision;

    /// The page selected as `token` was HTML and produced `reward` new
    /// predicted-target links (Algorithm 4's R_mean update site).
    fn feedback(&mut self, token: u64, reward: f64) {
        let _ = (token, reward);
    }

    /// The selected link turned out to be a target itself (Algorithm 4
    /// returns before the reward update: a pull without an observation).
    fn feedback_target(&mut self, token: u64) {
        let _ = token;
    }

    /// The selected link answered 4xx/5xx.
    fn feedback_error(&mut self, token: u64) {
        let _ = token;
    }

    /// A page was successfully fetched and its true class is now known —
    /// the free online-training signal of Algorithm 2. `id` is the page's
    /// interned id (the frontier key); `url` its canonical string.
    fn on_fetched(&mut self, id: UrlId, url: &str, class: UrlClass) {
        let _ = (id, url, class);
    }

    /// Links currently in the frontier.
    fn frontier_len(&self) -> usize;

    /// Frontier links currently parked in a spill arena rather than in
    /// memory (PR 7). `0` for the in-memory frontiers every strategy uses
    /// by default; spill-backed frontiers (see `sb_scale::SpillQueue`)
    /// override this so the session's memory gauges can report it.
    fn frontier_spilled(&self) -> usize {
        0
    }

    fn report(&self) -> StrategyReport {
        StrategyReport::default()
    }
}
