//! Crawl traces: the raw series behind every plot and table of Sec 4.
//!
//! One [`TracePoint`] is recorded after every GET. From the series the
//! harness derives the paper's two efficiency metrics:
//! requests-to-90 %-of-targets (Table 2) and non-target volume before 90 %
//! of target volume (Table 3), plus the Figure 4/7 curves.

/// Cumulative crawl state after one GET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// GET + HEAD requests so far.
    pub requests: u64,
    pub head_requests: u64,
    /// Volume received from target responses, bytes.
    pub target_bytes: u64,
    /// Volume received from everything else (HTML, errors, headers).
    pub non_target_bytes: u64,
    /// Targets retrieved so far.
    pub targets: u64,
    /// Simulated elapsed seconds (politeness + transfer).
    pub elapsed_secs: f64,
}

/// The full per-request series of one crawl.
#[derive(Debug, Clone, Default)]
pub struct CrawlTrace {
    points: Vec<TracePoint>,
}

impl CrawlTrace {
    pub fn new() -> Self {
        CrawlTrace::default()
    }

    pub fn push(&mut self, p: TracePoint) {
        debug_assert!(
            self.points.last().is_none_or(|l| l.requests <= p.requests),
            "requests must be monotone"
        );
        self.points.push(p);
    }

    /// Re-records the last point in place: same request count, updated
    /// tallies (target-volume tagging re-attributes the bytes of the
    /// request the point describes). Pushes when the trace is empty.
    pub fn amend_last(&mut self, p: TracePoint) {
        match self.points.last_mut() {
            Some(last) => {
                debug_assert!(last.requests == p.requests, "amend must not change the x-axis");
                *last = p;
            }
            None => self.points.push(p),
        }
    }

    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Total targets retrieved by the end of the crawl.
    pub fn final_targets(&self) -> u64 {
        self.last().map_or(0, |p| p.targets)
    }

    /// Requests needed to reach `fraction` of `total_targets`; `None` if the
    /// crawl never got there (the paper prints `+∞`).
    pub fn requests_to_target_fraction(&self, total_targets: u64, fraction: f64) -> Option<u64> {
        if total_targets == 0 {
            return Some(0);
        }
        let want = (total_targets as f64 * fraction).ceil() as u64;
        self.points.iter().find(|p| p.targets >= want).map(|p| p.requests)
    }

    /// Non-target volume received before reaching `fraction` of
    /// `total_target_volume` bytes of targets; `None` if never reached.
    pub fn non_target_volume_to_target_volume_fraction(
        &self,
        total_target_volume: u64,
        fraction: f64,
    ) -> Option<u64> {
        if total_target_volume == 0 {
            return Some(0);
        }
        let want = (total_target_volume as f64 * fraction).ceil() as u64;
        self.points.iter().find(|p| p.target_bytes >= want).map(|p| p.non_target_bytes)
    }

    /// Down-samples the trace to ≤ `n` points for plotting (keeps endpoints).
    pub fn resampled(&self, n: usize) -> Vec<TracePoint> {
        if self.points.len() <= n || n < 2 {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        for i in 0..n {
            let idx = (i as f64 * step).round() as usize;
            out.push(self.points[idx.min(self.points.len() - 1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(requests: u64, targets: u64, tb: u64, nb: u64) -> TracePoint {
        TracePoint {
            requests,
            head_requests: 0,
            target_bytes: tb,
            non_target_bytes: nb,
            targets,
            elapsed_secs: requests as f64,
        }
    }

    fn sample() -> CrawlTrace {
        let mut t = CrawlTrace::new();
        for i in 1..=100u64 {
            // Target every 4th request, 10 bytes per target, 5 per page.
            let targets = i / 4;
            t.push(pt(i, targets, targets * 10, (i - targets) * 5));
        }
        t
    }

    #[test]
    fn requests_to_fraction_basic() {
        let t = sample();
        // 25 total targets; 90% = 23 targets → first point with ≥ 23: i = 92.
        assert_eq!(t.requests_to_target_fraction(25, 0.9), Some(92));
        assert_eq!(t.requests_to_target_fraction(25, 1.0), Some(100));
    }

    #[test]
    fn unreached_fraction_is_none() {
        let t = sample();
        assert_eq!(t.requests_to_target_fraction(1000, 0.9), None);
    }

    #[test]
    fn zero_targets_is_trivially_reached() {
        let t = CrawlTrace::new();
        assert_eq!(t.requests_to_target_fraction(0, 0.9), Some(0));
    }

    #[test]
    fn volume_metric() {
        let t = sample();
        // Total target volume 250; 90% = 225 → targets ≥ 23 → i = 92,
        // non-target bytes = (92-23)*5 = 345.
        assert_eq!(t.non_target_volume_to_target_volume_fraction(250, 0.9), Some(345));
    }

    #[test]
    fn resample_keeps_endpoints() {
        let t = sample();
        let r = t.resampled(10);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], t.points()[0]);
        assert_eq!(*r.last().unwrap(), *t.points().last().unwrap());
    }

    #[test]
    fn resample_short_trace_is_identity() {
        let t = sample();
        let r = t.resampled(1000);
        assert_eq!(r.len(), t.len());
    }
}
