//! The OMNISCIENT upper bound of Sec 4.3: it knows every target URL (`V*`)
//! from the start and crawls them one after the other. Since the optimal
//! crawler is intractable (Prop 4), this unreachable bound is what the
//! Figure 4 curves are normalised against visually.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// Crawls a pre-supplied list of target URLs directly.
pub struct OmniscientStrategy {
    remaining: VecDeque<String>,
}

impl OmniscientStrategy {
    /// `targets` is `V*` — in practice the generated site's target URL list.
    pub fn new(targets: impl IntoIterator<Item = String>) -> Self {
        OmniscientStrategy { remaining: targets.into_iter().collect() }
    }
}

impl Strategy for OmniscientStrategy {
    fn name(&self) -> String {
        "OMNISCIENT".to_owned()
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Links are ignored entirely (the answer key is in hand).
        sb_html::LinkNeeds::HREF_ONLY
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        // The answer key pre-dates the crawl, so these URLs were never
        // discovered/interned: hand the engine text to intern at the
        // boundary (the one strategy that pays the parse).
        self.remaining.pop_front().map(|url| Selection { url: url.into(), token: 0 })
    }

    fn decide(&mut self, _link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        // Discovered links are irrelevant: the answer key is in hand.
        LinkDecision::Skip
    }

    fn frontier_len(&self) -> usize {
        self.remaining.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn yields_targets_in_order_then_stops() {
        let mut s =
            OmniscientStrategy::new(vec!["https://a.com/1.csv".to_owned(), "https://a.com/2.csv".to_owned()]);
        use crate::strategy::SelUrl;
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Text("https://a.com/1.csv".into()));
        assert_eq!(s.frontier_len(), 1);
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Text("https://a.com/2.csv".into()));
        assert_eq!(s.next(&mut rng), None);
    }
}
