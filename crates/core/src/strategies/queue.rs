//! The three simple baselines of Sec 4.3: BFS (FIFO frontier), DFS (LIFO)
//! and RANDOM (uniform pick). They classify nothing and fetch everything in
//! frontier order; targets are counted when they happen to be fetched.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use rand::Rng;
use sb_webgraph::UrlId;
use std::collections::VecDeque;

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out: breadth-first crawl.
    Fifo,
    /// Last-in-first-out: depth-first crawl.
    Lifo,
    /// Uniformly random pick.
    Random,
}

/// BFS / DFS / RANDOM, depending on [`Discipline`]. The frontier holds
/// interned ids — `Copy` keys, no per-link string storage.
pub struct QueueStrategy {
    discipline: Discipline,
    frontier: VecDeque<UrlId>,
}

impl QueueStrategy {
    pub fn bfs() -> Self {
        QueueStrategy { discipline: Discipline::Fifo, frontier: VecDeque::new() }
    }

    pub fn dfs() -> Self {
        QueueStrategy { discipline: Discipline::Lifo, frontier: VecDeque::new() }
    }

    pub fn random() -> Self {
        QueueStrategy { discipline: Discipline::Random, frontier: VecDeque::new() }
    }
}

impl Strategy for QueueStrategy {
    fn name(&self) -> String {
        match self.discipline {
            Discipline::Fifo => "BFS".to_owned(),
            Discipline::Lifo => "DFS".to_owned(),
            Discipline::Random => "RANDOM".to_owned(),
        }
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Frontier order only: hrefs suffice.
        sb_html::LinkNeeds::HREF_ONLY
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        let id = match self.discipline {
            Discipline::Fifo => self.frontier.pop_front()?,
            Discipline::Lifo => self.frontier.pop_back()?,
            Discipline::Random => {
                if self.frontier.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..self.frontier.len());
                self.frontier.swap_remove_back(i)?
            }
        };
        Some(Selection { url: id.into(), token: 0 })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        LinkDecision::Enqueue
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SelUrl;
    use rand::SeedableRng;

    fn sel_order(mut s: QueueStrategy, ids: &[UrlId]) -> Vec<UrlId> {
        // Feed ids directly into the frontier (decide() requires engine
        // plumbing; the ordering logic is what's under test).
        for &id in ids {
            s.frontier.push_back(id);
        }
        let mut rng = StdRng::seed_from_u64(1);
        std::iter::from_fn(|| s.next(&mut rng))
            .map(|sel| match sel.url {
                SelUrl::Id(id) => id,
                SelUrl::Text(_) => unreachable!("queue frontiers hold ids"),
            })
            .collect()
    }

    #[test]
    fn bfs_is_fifo() {
        let order = sel_order(QueueStrategy::bfs(), &[0, 1, 2]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dfs_is_lifo() {
        let order = sel_order(QueueStrategy::dfs(), &[0, 1, 2]);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn random_is_permutation() {
        let order = sel_order(QueueStrategy::random(), &[0, 1, 2, 3, 4]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_frontier_is_none() {
        let mut s = QueueStrategy::bfs();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.next(&mut rng), None);
    }
}
