//! The three simple baselines of Sec 4.3: BFS (FIFO frontier), DFS (LIFO)
//! and RANDOM (uniform pick). They classify nothing and fetch everything in
//! frontier order; targets are counted when they happen to be fetched.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out: breadth-first crawl.
    Fifo,
    /// Last-in-first-out: depth-first crawl.
    Lifo,
    /// Uniformly random pick.
    Random,
}

/// BFS / DFS / RANDOM, depending on [`Discipline`].
pub struct QueueStrategy {
    discipline: Discipline,
    frontier: VecDeque<String>,
}

impl QueueStrategy {
    pub fn bfs() -> Self {
        QueueStrategy { discipline: Discipline::Fifo, frontier: VecDeque::new() }
    }

    pub fn dfs() -> Self {
        QueueStrategy { discipline: Discipline::Lifo, frontier: VecDeque::new() }
    }

    pub fn random() -> Self {
        QueueStrategy { discipline: Discipline::Random, frontier: VecDeque::new() }
    }
}

impl Strategy for QueueStrategy {
    fn name(&self) -> String {
        match self.discipline {
            Discipline::Fifo => "BFS".to_owned(),
            Discipline::Lifo => "DFS".to_owned(),
            Discipline::Random => "RANDOM".to_owned(),
        }
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        let url = match self.discipline {
            Discipline::Fifo => self.frontier.pop_front()?,
            Discipline::Lifo => self.frontier.pop_back()?,
            Discipline::Random => {
                if self.frontier.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..self.frontier.len());
                self.frontier.swap_remove_back(i)?
            }
        };
        Some(Selection { url, token: 0 })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.url_str.to_owned());
        LinkDecision::Enqueue
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sel_order(mut s: QueueStrategy, urls: &[&str]) -> Vec<String> {
        // Feed URLs directly into the frontier (decide() requires engine
        // plumbing; the ordering logic is what's under test).
        for u in urls {
            s.frontier.push_back((*u).to_owned());
        }
        let mut rng = StdRng::seed_from_u64(1);
        std::iter::from_fn(|| s.next(&mut rng)).map(|sel| sel.url).collect()
    }

    #[test]
    fn bfs_is_fifo() {
        let order = sel_order(QueueStrategy::bfs(), &["a", "b", "c"]);
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn dfs_is_lifo() {
        let order = sel_order(QueueStrategy::dfs(), &["a", "b", "c"]);
        assert_eq!(order, vec!["c", "b", "a"]);
    }

    #[test]
    fn random_is_permutation() {
        let order = sel_order(QueueStrategy::random(), &["a", "b", "c", "d", "e"]);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn empty_frontier_is_none() {
        let mut s = QueueStrategy::bfs();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.next(&mut rng), None);
    }
}
