//! The three simple baselines of Sec 4.3: BFS (FIFO frontier), DFS (LIFO)
//! and RANDOM (uniform pick). They classify nothing and fetch everything in
//! frontier order; targets are counted when they happen to be fetched.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use rand::Rng;
use sb_scale::{SpillBacking, SpillConfig, SpillQueue};

/// Frontier discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-in-first-out: breadth-first crawl.
    Fifo,
    /// Last-in-first-out: depth-first crawl.
    Lifo,
    /// Uniformly random pick.
    Random,
}

/// BFS / DFS / RANDOM, depending on [`Discipline`]. The frontier holds
/// interned ids — `Copy` keys, no per-link string storage — in a
/// [`SpillQueue`]: unbounded by default (pure `VecDeque` behaviour, the
/// path every frozen replay pins), memory-bounded with the `*_spilling`
/// constructors (PR 7) whose spill arena preserves the exact pop order.
pub struct QueueStrategy {
    discipline: Discipline,
    frontier: SpillQueue,
}

impl QueueStrategy {
    pub fn bfs() -> Self {
        QueueStrategy { discipline: Discipline::Fifo, frontier: SpillQueue::unbounded() }
    }

    pub fn dfs() -> Self {
        QueueStrategy { discipline: Discipline::Lifo, frontier: SpillQueue::unbounded() }
    }

    pub fn random() -> Self {
        QueueStrategy { discipline: Discipline::Random, frontier: SpillQueue::unbounded() }
    }

    /// BFS whose frontier keeps at most ~`mem_cap` ids in memory, spilling
    /// the middle of the queue to `backing`. Pop order is identical to
    /// [`QueueStrategy::bfs`] — only the residence of the ids changes.
    pub fn bfs_spilling(mem_cap: usize, backing: SpillBacking) -> Self {
        QueueStrategy {
            discipline: Discipline::Fifo,
            frontier: SpillQueue::with_config(SpillConfig::bounded(mem_cap, backing)),
        }
    }

    /// DFS with a memory-bounded frontier; see [`QueueStrategy::bfs_spilling`].
    pub fn dfs_spilling(mem_cap: usize, backing: SpillBacking) -> Self {
        QueueStrategy {
            discipline: Discipline::Lifo,
            frontier: SpillQueue::with_config(SpillConfig::bounded(mem_cap, backing)),
        }
    }

    /// Feeds an id straight into the frontier, bypassing `decide()`'s
    /// engine plumbing — for tests exercising ordering/batching logic.
    #[cfg(test)]
    pub(crate) fn push_for_test(&mut self, id: sb_webgraph::UrlId) {
        self.frontier.push_back(id);
    }
}

impl Strategy for QueueStrategy {
    fn name(&self) -> String {
        match self.discipline {
            Discipline::Fifo => "BFS".to_owned(),
            Discipline::Lifo => "DFS".to_owned(),
            Discipline::Random => "RANDOM".to_owned(),
        }
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Frontier order only: hrefs suffice.
        sb_html::LinkNeeds::HREF_ONLY
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        let id = match self.discipline {
            Discipline::Fifo => self.frontier.pop_front()?,
            Discipline::Lifo => self.frontier.pop_back()?,
            Discipline::Random => {
                if self.frontier.is_empty() {
                    return None;
                }
                let i = rng.gen_range(0..self.frontier.len());
                self.frontier.swap_remove_back(i)?
            }
        };
        Some(Selection { url: id.into(), token: 0 })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        self.frontier.push_back(link.id);
        LinkDecision::Enqueue
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    fn frontier_spilled(&self) -> usize {
        self.frontier.spilled_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::SelUrl;
    use rand::SeedableRng;
    use sb_webgraph::UrlId;

    fn sel_order(mut s: QueueStrategy, ids: &[UrlId]) -> Vec<UrlId> {
        // Feed ids directly into the frontier (decide() requires engine
        // plumbing; the ordering logic is what's under test).
        for &id in ids {
            s.frontier.push_back(id);
        }
        let mut rng = StdRng::seed_from_u64(1);
        std::iter::from_fn(|| s.next(&mut rng))
            .map(|sel| match sel.url {
                SelUrl::Id(id) => id,
                SelUrl::Text(_) => unreachable!("queue frontiers hold ids"),
            })
            .collect()
    }

    #[test]
    fn bfs_is_fifo() {
        let order = sel_order(QueueStrategy::bfs(), &[0, 1, 2]);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn dfs_is_lifo() {
        let order = sel_order(QueueStrategy::dfs(), &[0, 1, 2]);
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn random_is_permutation() {
        let order = sel_order(QueueStrategy::random(), &[0, 1, 2, 3, 4]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_frontier_is_none() {
        let mut s = QueueStrategy::bfs();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.next(&mut rng), None);
    }

    /// Spill-backed frontiers pop in exactly the unbounded order — the
    /// only observable difference is where the ids reside.
    #[test]
    fn spilling_frontiers_preserve_order() {
        let ids: Vec<UrlId> = (0..200).collect();
        for backing in [SpillBacking::Memory, SpillBacking::Disk] {
            let s = QueueStrategy::bfs_spilling(16, backing);
            assert_eq!(sel_order(s, &ids), sel_order(QueueStrategy::bfs(), &ids));
            let s = QueueStrategy::dfs_spilling(16, backing);
            assert_eq!(sel_order(s, &ids), sel_order(QueueStrategy::dfs(), &ids));
        }
    }

    /// A bounded BFS frontier actually spills once it outgrows its cap,
    /// and reports the spilled portion through the `Strategy` gauge.
    #[test]
    fn bounded_frontier_reports_spill() {
        let mut s = QueueStrategy::bfs_spilling(16, SpillBacking::Memory);
        for id in 0..200 {
            s.frontier.push_back(id);
        }
        assert_eq!(s.frontier_len(), 200);
        assert!(s.frontier_spilled() > 0, "cap 16 with 200 pushes must spill");
        assert!(QueueStrategy::bfs().frontier_spilled() == 0);
    }
}
