//! The value-driven batch frontier (PR 10): Crawl4LLM-style top-k
//! selection with composable scorers.
//!
//! Where the paper's crawlers pull one URL per outer step, Crawl4LLM-style
//! acquisition rates every frontier document with pluggable scorers each
//! iteration and crawls the **top-k** — the batch fills the pipelined
//! transport's in-flight window in one ranking pass. [`ValueStrategy`]
//! reproduces that loop over this engine's frontier contract:
//!
//! * a [`Scorer`] is one `rating_methods` entry: it maps a frontier
//!   [`Candidate`] to a value estimate and may learn from the crawl's free
//!   signals ([`Scorer::on_fetched`], [`Scorer::observe`]);
//! * the strategy combines scorers by **weighted sum**, with every raw
//!   score routed through [`finite_or_zero`] first — a NaN or infinite
//!   estimate from a degenerate scorer is clamped to 0.0 *before* ranking,
//!   so the total order (score desc, then [`UrlId`] asc) can never be
//!   broken the way `plan_epoch`'s pre-fix sort could (same guard, shared
//!   function — `sb-serve` ranks with it too);
//! * [`Strategy::select_batch`] ranks the whole frontier once and returns
//!   the top `k`; [`Strategy::next`] is the `k = 1` special case, so the
//!   strategy behaves identically whether the session batches or not.
//!
//! Four scorers ship with the repo, mirroring Crawl4LLM's length/fasttext
//! raters in this engine's vocabulary: [`DepthPriorScorer`] (link-length/
//! depth prior), [`ClassifierScorer`] (sb-ml online classifier
//! confidence), [`NearDupScorer`] (sb-ann sketch penalty for URL shapes
//! near-identical to already-fetched ones — calendar traps and session-id
//! farms score themselves out), and [`BanditScorer`] (per-directory
//! expected reward with a UCB exploration bonus, fed by the
//! one-feedback-per-selection stream). [`ValueSpec`] parses the
//! `name:weight,...` strings `xp quality` configures mixes with.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use sb_ann::{NgramVocab, Projector};
use sb_ml::{Class2, FeatureInput, UrlClassifier};
use sb_webgraph::{UrlClass, UrlId};
use std::collections::HashMap;

/// Clamps a score to something totally ordered: non-finite values (NaN,
/// ±∞) become 0.0, everything else passes through. Ranking code must
/// route every float through this before comparing — `partial_cmp` over
/// unclamped floats silently breaks the sort's total order on the first
/// NaN (the `plan_epoch` bug this PR fixes).
#[inline]
pub fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// A frontier entry as scorers see it: the interned id, the canonical URL
/// (owned at the [`Strategy::decide`] boundary, like every feature that
/// outlives its page), the discovery depth and the anchor-text length.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub id: UrlId,
    pub url: Box<str>,
    pub depth: u32,
    /// Length of the link's anchor text, captured at discovery (0 when
    /// the link had none).
    pub anchor_len: u32,
}

/// One composable rating method (a Crawl4LLM `rating_methods` entry).
///
/// `score` may return any float — the combinator clamps non-finite
/// answers to 0.0 ([`finite_or_zero`]) before weighting, so a degenerate
/// scorer can never corrupt the ranking. The learning hooks are optional:
/// the strategy forwards every fetched page's true class and every
/// selection's terminal feedback to every scorer.
pub trait Scorer: Send {
    fn name(&self) -> &'static str;

    /// Value estimate for one frontier candidate. `&mut` because scoring
    /// may touch learned state (growing vocabularies, cached sketches).
    fn score(&mut self, cand: &Candidate) -> f64;

    /// A page was fetched and its true class is known (the free online
    /// signal of Algorithm 2).
    fn on_fetched(&mut self, url: &str, class: UrlClass) {
        let _ = (url, class);
    }

    /// Terminal feedback for a selection this strategy pulled: `1.0` when
    /// the selection was a target, `0.0` for an error answer, the page
    /// reward otherwise. Exactly one call per selection.
    fn observe(&mut self, url: &str, reward: f64) {
        let _ = (url, reward);
    }
}

// ----------------------------------------------------------------------
// The four shipped scorers
// ----------------------------------------------------------------------

/// Link-length/depth prior (Crawl4LLM's `length` rater, adapted to URLs):
/// shallow, short URLs score near 1, deep or long ones decay toward 0.
/// Purely structural — it needs no learning and anchors the mix so a
/// cold-start crawl degenerates to near-BFS instead of noise.
#[derive(Debug, Default)]
pub struct DepthPriorScorer;

impl Scorer for DepthPriorScorer {
    fn name(&self) -> &'static str {
        "depth"
    }

    fn score(&mut self, cand: &Candidate) -> f64 {
        1.0 / (1.0 + f64::from(cand.depth) + cand.url.len() as f64 / 64.0)
    }
}

/// sb-ml classifier confidence (the `fasttext_score` analogue): an online
/// [`UrlClassifier`] trained on the crawl's own fetches, scoring each
/// candidate with the sigmoid of its decision value — the model's
/// confidence that the URL is a target. Before the first trained batch it
/// answers a flat 0.5 (uninformed), so early ranking rides the priors.
pub struct ClassifierScorer {
    clf: UrlClassifier,
}

impl ClassifierScorer {
    pub fn new(clf: UrlClassifier) -> Self {
        ClassifierScorer { clf }
    }

    /// The paper-default classifier (logistic regression, URL-only
    /// features, batch 10) — free labels only, no HEAD bootstrap.
    pub fn paper_default() -> Self {
        ClassifierScorer { clf: UrlClassifier::paper_default() }
    }
}

impl Scorer for ClassifierScorer {
    fn name(&self) -> &'static str {
        "classifier"
    }

    fn score(&mut self, cand: &Candidate) -> f64 {
        if self.clf.in_initial_phase() {
            return 0.5;
        }
        let s = f64::from(self.clf.predict_score(&FeatureInput::url_only(&cand.url)));
        1.0 / (1.0 + (-s).exp())
    }

    fn on_fetched(&mut self, url: &str, class: UrlClass) {
        let label = match class {
            UrlClass::Target => Class2::Target,
            UrlClass::Html => Class2::Html,
            // Dead URLs carry no class-2 label (Sec 3.3's two-class
            // deliberation): skip rather than poison either class.
            UrlClass::Neither => return,
        };
        self.clf.observe(&FeatureInput::url_only(url), label);
    }
}

/// How many fetched-URL sketches [`NearDupScorer`] compares against (a
/// ring of the most recent ones — recency is what matters for trap
/// shapes, which arrive in runs).
const NEARDUP_RING: usize = 32;

/// Cosine similarity above which a candidate is charged the near-dup
/// penalty. A trap URL that differs from a fetched one only in its tail
/// token (calendar days, `?page=N` counters) shares `n-1` of `n+1`
/// BOS/EOS-padded bigrams — ≈ 0.71 for typical URL lengths — while
/// genuinely different paths on the same host land far below.
const NEARDUP_THRESHOLD: f32 = 0.7;

/// sb-ann near-dup penalty: sketches the token bigrams of every *fetched*
/// URL into a fixed dimension ([`Projector`]) and charges −1 to any
/// candidate whose sketch is ≥ [`NEARDUP_THRESHOLD`] cosine-similar to a
/// recent fetch. Calendar traps, session-id farms and `?page=N` mills all
/// share their URL shape with what was just crawled; this scorer makes
/// them pay for it before a request is spent.
pub struct NearDupScorer {
    vocab: NgramVocab,
    projector: Projector,
    ring: Vec<Vec<f32>>,
    next_slot: usize,
}

impl NearDupScorer {
    pub fn new() -> Self {
        NearDupScorer {
            vocab: NgramVocab::new(2),
            // D = 1024: large enough that bucket collisions stay rare for
            // URL-token vocabularies, small enough that a ring scan per
            // candidate stays cheap.
            projector: Projector::new(10, 15, sb_ann::DEFAULT_PRIME),
            ring: Vec::with_capacity(NEARDUP_RING),
            next_slot: 0,
        }
    }

    fn sketch(&mut self, url: &str) -> Vec<f32> {
        let tokens: Vec<String> = url
            .split(|c: char| !c.is_ascii_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .collect();
        let bow = self.vocab.vectorize_mut(&tokens);
        self.projector.project(&bow)
    }
}

impl Default for NearDupScorer {
    fn default() -> Self {
        NearDupScorer::new()
    }
}

impl Scorer for NearDupScorer {
    fn name(&self) -> &'static str {
        "neardup"
    }

    fn score(&mut self, cand: &Candidate) -> f64 {
        let url = cand.url.clone();
        let sketch = self.sketch(&url);
        let near = self
            .ring
            .iter()
            .any(|seen| sb_ann::cosine(&sketch, seen) >= NEARDUP_THRESHOLD);
        if near {
            -1.0
        } else {
            0.0
        }
    }

    fn on_fetched(&mut self, url: &str, _class: UrlClass) {
        let sketch = self.sketch(url);
        if self.ring.len() < NEARDUP_RING {
            self.ring.push(sketch);
        } else {
            self.ring[self.next_slot] = sketch;
            self.next_slot = (self.next_slot + 1) % NEARDUP_RING;
        }
    }
}

/// Per-directory reward statistics for [`BanditScorer`].
#[derive(Debug, Default, Clone, Copy)]
struct DirArm {
    pulls: u64,
    sum: f64,
}

/// Bandit-style expected reward: URLs are grouped by their first path
/// segment (the "action" a directory represents), each group tracks the
/// mean terminal reward of its selections, and candidates score mean +
/// UCB exploration bonus — unexplored directories look optimistic, proven
/// target directories stay hot, and directories that only ever answered
/// HTML or errors decay toward 0.
#[derive(Debug, Default)]
pub struct BanditScorer {
    arms: HashMap<String, DirArm>,
    total_pulls: u64,
}

/// First path segment of a canonical URL ("" for the root).
fn dir_of(url: &str) -> &str {
    let path = url.splitn(4, '/').nth(3).unwrap_or("");
    path.split('/').next().unwrap_or("")
}

impl BanditScorer {
    pub fn new() -> Self {
        BanditScorer::default()
    }
}

impl Scorer for BanditScorer {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn score(&mut self, cand: &Candidate) -> f64 {
        let t = (1.0 + self.total_pulls as f64).ln();
        match self.arms.get(dir_of(&cand.url)) {
            Some(arm) if arm.pulls > 0 => {
                let mean = arm.sum / arm.pulls as f64;
                mean + 0.5 * (t / arm.pulls as f64).sqrt()
            }
            // Never pulled: optimistic prior plus the full bonus.
            _ => 0.5 + 0.5 * t.sqrt(),
        }
    }

    fn observe(&mut self, url: &str, reward: f64) {
        let arm = self.arms.entry(dir_of(url).to_owned()).or_default();
        arm.pulls += 1;
        arm.sum += finite_or_zero(reward).clamp(0.0, 1.0);
        self.total_pulls += 1;
    }
}

// ----------------------------------------------------------------------
// Spec parsing (`rating_methods`-style configuration)
// ----------------------------------------------------------------------

/// A parsed scorer mix: `(name, weight)` pairs in declaration order, the
/// engine-side equivalent of Crawl4LLM's `rating_methods` yaml list.
/// Parsed from `"depth:1.0,classifier:2.0,neardup:0.5,bandit:1.0"`;
/// a bare name means weight 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSpec {
    pub methods: Vec<(String, f64)>,
}

impl ValueSpec {
    /// The default mix: all four shipped scorers, classifier-weighted.
    pub fn default_mix() -> Self {
        ValueSpec {
            methods: vec![
                ("depth".to_owned(), 1.0),
                ("classifier".to_owned(), 2.0),
                ("neardup".to_owned(), 0.5),
                ("bandit".to_owned(), 1.0),
            ],
        }
    }

    /// Parses `name[:weight],...`. Unknown names are rejected here, not
    /// at crawl time. Weights must be finite (the combinator's NaN guard
    /// covers scores, not configuration).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut methods = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, weight) = match part.split_once(':') {
                Some((n, w)) => {
                    let w: f64 =
                        w.trim().parse().map_err(|_| format!("bad weight in {part:?}"))?;
                    (n.trim(), w)
                }
                None => (part, 1.0),
            };
            if !weight.is_finite() {
                return Err(format!("non-finite weight in {part:?}"));
            }
            if !matches!(name, "depth" | "classifier" | "neardup" | "bandit") {
                return Err(format!("unknown scorer {name:?}"));
            }
            methods.push((name.to_owned(), weight));
        }
        if methods.is_empty() {
            return Err("empty scorer spec".to_owned());
        }
        Ok(ValueSpec { methods })
    }

    fn build_scorers(&self) -> Vec<(Box<dyn Scorer>, f64)> {
        self.methods
            .iter()
            .map(|(name, w)| {
                let scorer: Box<dyn Scorer> = match name.as_str() {
                    "depth" => Box::new(DepthPriorScorer),
                    "classifier" => Box::new(ClassifierScorer::paper_default()),
                    "neardup" => Box::new(NearDupScorer::new()),
                    "bandit" => Box::new(BanditScorer::new()),
                    other => unreachable!("ValueSpec::parse admitted {other:?}"),
                };
                (scorer, *w)
            })
            .collect()
    }
}

// ----------------------------------------------------------------------
// The strategy
// ----------------------------------------------------------------------

/// Crawl4LLM-style value-driven frontier: every [`Strategy::select_batch`]
/// call scores the whole frontier with the configured [`Scorer`] mix and
/// returns the top `k` by weighted sum (ties on [`UrlId`] ascending — the
/// ranking is deterministic and never consults the RNG). Links are always
/// enqueued ([`LinkDecision::Enqueue`]): selection order, not routing, is
/// where this strategy spends its intelligence.
///
/// Each selection's token indexes a ledger of selected URLs, so terminal
/// feedback (one per selection, the engine's invariant) can be routed to
/// every scorer with the URL it concerns.
pub struct ValueStrategy {
    scorers: Vec<(Box<dyn Scorer>, f64)>,
    frontier: Vec<Candidate>,
    /// URL of every selection pulled so far; `Selection::token` indexes it.
    ledger: Vec<Box<str>>,
    /// Reused per-ranking scratch: `(score, frontier index)`.
    scratch: Vec<(f64, usize)>,
}

impl ValueStrategy {
    /// Builds from an explicit scorer mix.
    pub fn new(scorers: Vec<(Box<dyn Scorer>, f64)>) -> Self {
        assert!(!scorers.is_empty(), "a value strategy needs at least one scorer");
        ValueStrategy { scorers, frontier: Vec::new(), ledger: Vec::new(), scratch: Vec::new() }
    }

    /// Builds from a parsed [`ValueSpec`].
    pub fn from_spec(spec: &ValueSpec) -> Self {
        ValueStrategy::new(spec.build_scorers())
    }

    /// The default mix ([`ValueSpec::default_mix`]).
    pub fn default_mix() -> Self {
        ValueStrategy::from_spec(&ValueSpec::default_mix())
    }

    /// Weighted-sum combination with the NaN guard applied per raw score:
    /// a scorer answering NaN/∞ contributes 0, never poison. The combined
    /// value is finite by construction (`debug_assert`ed).
    fn combined_score(&mut self, idx: usize) -> f64 {
        let cand = &self.frontier[idx];
        let mut total = 0.0;
        for (scorer, weight) in &mut self.scorers {
            total += *weight * finite_or_zero(scorer.score(cand));
        }
        debug_assert!(total.is_finite(), "clamped scores cannot combine to non-finite");
        total
    }

    /// One terminal observation for the selection behind `token`.
    fn route_feedback(&mut self, token: u64, reward: f64) {
        let Some(url) = self.ledger.get(token as usize).cloned() else {
            debug_assert!(false, "feedback for a token this strategy never issued");
            return;
        };
        for (scorer, _) in &mut self.scorers {
            scorer.observe(&url, reward);
        }
    }
}

impl Strategy for ValueStrategy {
    fn name(&self) -> String {
        let mix: Vec<String> =
            self.scorers.iter().map(|(s, w)| format!("{}:{w}", s.name())).collect();
        format!("VALUE[{}]", mix.join(","))
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Scorers read URL, depth and anchor length; tag paths and
        // surrounding text are never consulted.
        sb_html::LinkNeeds { tag_path: false, anchor_text: true, surrounding_text: false }
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        self.select_batch(1, rng).pop()
    }

    fn select_batch(&mut self, k: usize, _rng: &mut StdRng) -> Vec<Selection> {
        if k == 0 || self.frontier.is_empty() {
            return Vec::new();
        }
        // Rank the whole frontier once (the Crawl4LLM iteration): score
        // every candidate, order by clamped score descending with UrlId
        // ascending as the deterministic tiebreak.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for idx in 0..self.frontier.len() {
            let score = self.combined_score(idx);
            scratch.push((score, idx));
        }
        scratch.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("combined scores are finite by construction")
                .then_with(|| self.frontier[a.1].id.cmp(&self.frontier[b.1].id))
        });
        let take = k.min(scratch.len());
        let mut picked: Vec<usize> = scratch[..take].iter().map(|&(_, idx)| idx).collect();
        let mut out = Vec::with_capacity(take);
        for &idx in &picked {
            let cand = &self.frontier[idx];
            let token = self.ledger.len() as u64;
            self.ledger.push(cand.url.clone());
            out.push(Selection { url: cand.id.into(), token });
        }
        // Remove the selected candidates (largest index first, so earlier
        // indices stay valid).
        picked.sort_unstable_by(|a, b| b.cmp(a));
        for idx in picked {
            self.frontier.swap_remove(idx);
        }
        self.scratch = scratch;
        out
    }

    fn batch_selection(&self) -> bool {
        true
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        // Owned-conversion boundary: the candidate outlives the page.
        self.frontier.push(Candidate {
            id: link.id,
            url: link.url_str.into(),
            depth: link.source_depth + 1,
            anchor_len: link.html.anchor_text.len() as u32,
        });
        LinkDecision::Enqueue
    }

    fn feedback(&mut self, token: u64, reward: f64) {
        self.route_feedback(token, reward.clamp(0.0, 1.0));
    }

    fn feedback_target(&mut self, token: u64) {
        // The selection itself was a target: maximal value per fetch.
        self.route_feedback(token, 1.0);
    }

    fn feedback_error(&mut self, token: u64) {
        self.route_feedback(token, 0.0);
    }

    fn on_fetched(&mut self, _id: UrlId, url: &str, class: UrlClass) {
        for (scorer, _) in &mut self.scorers {
            scorer.on_fetched(url, class);
        }
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

// ----------------------------------------------------------------------
// The batching adapter
// ----------------------------------------------------------------------

/// Forces the session's batched refill path over any inner strategy
/// without changing its selection logic: every call delegates, and
/// [`Strategy::batch_selection`] answers `true`, so the session fills its
/// window through [`Strategy::select_batch`] (the inner default pulls
/// `next()` up to `k` times). At window 1 the batch degenerates to one
/// pull per refill — byte-identical to the unbatched path; the batch
/// conformance suite pins that equivalence for the queue strategies.
pub struct Batched<S: Strategy>(pub S);

impl<S: Strategy> Strategy for Batched<S> {
    fn name(&self) -> String {
        format!("BATCHED({})", self.0.name())
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        self.0.link_needs()
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        self.0.next(rng)
    }

    fn select_batch(&mut self, k: usize, rng: &mut StdRng) -> Vec<Selection> {
        self.0.select_batch(k, rng)
    }

    fn batch_selection(&self) -> bool {
        true
    }

    fn decide(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> LinkDecision {
        self.0.decide(link, services)
    }

    fn feedback(&mut self, token: u64, reward: f64) {
        self.0.feedback(token, reward);
    }

    fn feedback_target(&mut self, token: u64) {
        self.0.feedback_target(token);
    }

    fn feedback_error(&mut self, token: u64) {
        self.0.feedback_error(token);
    }

    fn on_fetched(&mut self, id: UrlId, url: &str, class: UrlClass) {
        self.0.on_fetched(id, url, class);
    }

    fn frontier_len(&self) -> usize {
        self.0.frontier_len()
    }

    fn frontier_spilled(&self) -> usize {
        self.0.frontier_spilled()
    }

    fn report(&self) -> crate::strategy::StrategyReport {
        self.0.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cand(id: UrlId, url: &str, depth: u32) -> Candidate {
        Candidate { id, url: url.into(), depth, anchor_len: 0 }
    }

    /// A scorer that always answers the same (possibly degenerate) value.
    struct Fixed(&'static str, f64);

    impl Scorer for Fixed {
        fn name(&self) -> &'static str {
            self.0
        }

        fn score(&mut self, _cand: &Candidate) -> f64 {
            self.1
        }
    }

    #[test]
    fn finite_or_zero_clamps_only_non_finite() {
        assert_eq!(finite_or_zero(f64::NAN), 0.0);
        assert_eq!(finite_or_zero(f64::INFINITY), 0.0);
        assert_eq!(finite_or_zero(f64::NEG_INFINITY), 0.0);
        assert_eq!(finite_or_zero(-3.5), -3.5);
        assert_eq!(finite_or_zero(0.0), 0.0);
    }

    /// A NaN-scoring method cannot corrupt the ranking: it contributes 0
    /// and the other scorers decide, with UrlId breaking exact ties.
    #[test]
    fn nan_scorer_is_neutralised_by_the_combinator() {
        let mut s = ValueStrategy::new(vec![
            (Box::new(Fixed("nan", f64::NAN)), 10.0),
            (Box::new(DepthPriorScorer), 1.0),
        ]);
        s.frontier.push(cand(0, "https://s/deep/deep/deep/page", 5));
        s.frontier.push(cand(1, "https://s/top", 1));
        let mut rng = StdRng::seed_from_u64(1);
        let batch = s.select_batch(2, &mut rng);
        assert_eq!(batch.len(), 2);
        // The shallow URL must rank first despite the loud NaN scorer.
        assert_eq!(batch[0].url, crate::strategy::SelUrl::Id(1));
    }

    #[test]
    fn select_batch_is_deterministic_and_ranked() {
        let build = || {
            let mut s = ValueStrategy::new(vec![(
                Box::new(DepthPriorScorer) as Box<dyn Scorer>,
                1.0,
            )]);
            for k in 0..20u32 {
                let url = format!("https://s/{}", "x".repeat((k % 7) as usize + 1));
                s.frontier.push(cand(k, &url, k % 5));
            }
            s
        };
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<_> = build().select_batch(8, &mut rng).into_iter().map(|s| s.url).collect();
        let b: Vec<_> = build().select_batch(8, &mut rng).into_iter().map(|s| s.url).collect();
        assert_eq!(a, b, "ranking never consults the RNG");
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn tokens_index_the_ledger_and_feedback_routes() {
        let mut s = ValueStrategy::new(vec![(Box::new(BanditScorer::new()) as _, 1.0)]);
        s.frontier.push(cand(0, "https://s/files/a.csv", 1));
        let mut rng = StdRng::seed_from_u64(1);
        let sel = s.next(&mut rng).expect("one candidate");
        s.feedback_target(sel.token);
        // The /files directory arm must now dominate an unseen one with
        // identical depth priors.
        s.frontier.push(cand(1, "https://s/files/b.csv", 1));
        s.frontier.push(cand(2, "https://s/about/c.csv", 1));
        let next = s.next(&mut rng).expect("two candidates");
        assert_eq!(next.url, crate::strategy::SelUrl::Id(1), "proven dir first");
    }

    #[test]
    fn neardup_penalises_repeating_url_shapes() {
        let mut nd = NearDupScorer::new();
        for day in 1..=9 {
            nd.on_fetched(&format!("https://s/calendar/2021/01/0{day}"), UrlClass::Html);
        }
        let trap = nd.score(&cand(0, "https://s/calendar/2021/01/27", 3));
        let fresh = nd.score(&cand(1, "https://s/papers/edbt-2026-accepted-list", 3));
        assert!(trap < fresh, "trap-shaped URL must score below a fresh shape");
        assert_eq!(trap, -1.0);
    }

    #[test]
    fn spec_parses_names_weights_and_rejects_junk() {
        let spec = ValueSpec::parse("depth, classifier:2.5 ,bandit:0").unwrap();
        assert_eq!(
            spec.methods,
            vec![
                ("depth".to_owned(), 1.0),
                ("classifier".to_owned(), 2.5),
                ("bandit".to_owned(), 0.0)
            ]
        );
        assert!(ValueSpec::parse("pagerank:1.0").is_err());
        assert!(ValueSpec::parse("depth:wide").is_err());
        assert!(ValueSpec::parse("depth:NaN").is_err());
        assert!(ValueSpec::parse("").is_err());
        let strategy = ValueStrategy::from_spec(&spec);
        assert_eq!(strategy.name(), "VALUE[depth:1,classifier:2.5,bandit:0]");
    }

    /// The default `select_batch` (pull `next()` k times) and the batch
    /// wrapper agree for a queue strategy.
    #[test]
    fn default_select_batch_matches_repeated_next() {
        use crate::strategies::QueueStrategy;
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = QueueStrategy::bfs();
        let mut b = Batched(QueueStrategy::bfs());
        for id in 0..10u32 {
            a.push_for_test(id);
            b.0.push_for_test(id);
        }
        let singles: Vec<_> = std::iter::from_fn(|| a.next(&mut rng)).collect();
        let batched = b.select_batch(16, &mut rng);
        assert_eq!(singles, batched);
    }
}
