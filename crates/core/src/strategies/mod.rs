//! All crawler strategies of Sec 4.3, over the shared engine:
//! the paper's `SB-CLASSIFIER`/`SB-ORACLE` and the six baselines.

pub mod focused;
pub mod omniscient;
pub mod queue;
pub mod sb;
pub mod tpoff;
pub mod tres;
pub mod value;

pub use focused::FocusedStrategy;
pub use omniscient::OmniscientStrategy;
pub use queue::{Discipline, QueueStrategy};
pub use sb::{BanditChoice, SbConfig, SbMode, SbStrategy};
pub use tpoff::TpOffStrategy;
pub use tres::{TresStrategy, TRES_KEYWORDS};
pub use value::{
    finite_or_zero, BanditScorer, Batched, Candidate, ClassifierScorer, DepthPriorScorer,
    NearDupScorer, Scorer, ValueSpec, ValueStrategy,
};
