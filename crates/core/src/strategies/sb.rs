//! SB-CLASSIFIER and SB-ORACLE — the paper's contribution (Sec 3).
//!
//! The sleeping-bandit crawler keeps one frontier *pool* of links per action
//! (tag-path cluster). At each step the AUER policy scores every action
//! whose pool is non-empty and a link is drawn **uniformly at random** from
//! the chosen pool (Algorithm 3). Newly discovered links are classified
//! (Algorithm 2's online URL classifier, or the ground-truth oracle for
//! `SB-ORACLE`): predicted targets are retrieved immediately, predicted HTML
//! links are mapped to an action (Algorithm 1) and pooled, dead URLs are
//! dropped. Rewards — the number of new predicted-target links found on a
//! fetched page — update the selected action's mean exactly as in
//! Algorithm 4.

use crate::action::{ActionId, ActionSpace, ActionSpaceConfig};
use crate::strategy::{
    ArmReport, LinkDecision, NewLink, Selection, Services, Strategy, StrategyReport,
};
use rand::rngs::StdRng;
use rand::Rng;
use sb_bandit::{ArmStats, Auer, Policy, ALPHA_DEFAULT};
use sb_ml::{Class2, FeatureInput, FeatureSet, ModelKind, UrlClassifier};
use sb_webgraph::{FxHashMap, UrlClass, UrlId};

/// How the strategy estimates a link's class.
pub enum SbMode {
    /// Algorithm 2: HEAD-labelled bootstrap, then free online inference.
    Classifier(UrlClassifier),
    /// Ground truth at zero cost (Sec 4.3's unrealistic upper variant).
    Oracle,
}

/// Which bandit policy drives action selection.
///
/// The paper's production policy is AUER; the appendix discusses (and
/// rejects, for stability or missing priors) the alternatives — all four are
/// available here for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BanditChoice {
    /// The paper's sleeping bandit (deterministic, the default).
    Auer { alpha: f64 },
    /// Plain UCB1 restricted to awake arms.
    Ucb1 { alpha: f64 },
    /// ε-greedy.
    EpsilonGreedy { epsilon: f64 },
    /// Gaussian Thompson sampling.
    Thompson { sigma: f64 },
}

impl Default for BanditChoice {
    fn default() -> Self {
        BanditChoice::Auer { alpha: ALPHA_DEFAULT }
    }
}

enum AnyPolicy {
    Auer(Auer),
    Ucb1(sb_bandit::Ucb1),
    Eps(sb_bandit::EpsilonGreedy),
    Thompson(sb_bandit::ThompsonSampling),
}

impl AnyPolicy {
    fn new(choice: BanditChoice) -> Self {
        match choice {
            BanditChoice::Auer { alpha } => AnyPolicy::Auer(Auer::new(alpha)),
            BanditChoice::Ucb1 { alpha } => AnyPolicy::Ucb1(sb_bandit::Ucb1 { alpha }),
            BanditChoice::EpsilonGreedy { epsilon } => {
                AnyPolicy::Eps(sb_bandit::EpsilonGreedy { epsilon })
            }
            BanditChoice::Thompson { sigma } => {
                AnyPolicy::Thompson(sb_bandit::ThompsonSampling { sigma })
            }
        }
    }

    fn select(
        &mut self,
        arms: &[sb_bandit::policies::ArmView],
        t: u64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        match self {
            AnyPolicy::Auer(p) => p.select(arms, t, rng),
            AnyPolicy::Ucb1(p) => p.select(arms, t, rng),
            AnyPolicy::Eps(p) => p.select(arms, t, rng),
            AnyPolicy::Thompson(p) => p.select(arms, t, rng),
        }
    }
}

/// Configuration of the SB crawlers.
pub struct SbConfig {
    /// Exploration coefficient α (default 2√2) — used by the default AUER
    /// policy; ignored when `bandit` overrides the policy family.
    pub alpha: f64,
    /// Tag-path clustering parameters (n, θ, m, w, Π).
    pub actions: ActionSpaceConfig,
    /// Bandit policy family; `None` = AUER with `alpha` (the paper).
    pub bandit: Option<BanditChoice>,
}

impl SbConfig {
    fn policy(&self) -> AnyPolicy {
        AnyPolicy::new(self.bandit.unwrap_or(BanditChoice::Auer { alpha: self.alpha }))
    }
}

impl Default for SbConfig {
    fn default() -> Self {
        SbConfig { alpha: ALPHA_DEFAULT, actions: ActionSpaceConfig::default(), bandit: None }
    }
}

/// The sleeping-bandit strategy.
pub struct SbStrategy {
    mode: SbMode,
    actions: ActionSpace,
    arms: Vec<ArmStats>,
    /// Frontier pool per action — interned ids, so a pool entry is 4
    /// bytes and moving links between pools never copies a string.
    pools: Vec<Vec<UrlId>>,
    frontier_total: usize,
    policy: AnyPolicy,
    /// Selection counter `t` of the AUER score.
    t: u64,
    /// Link context for URL_CONT online training (anchor, DOM path,
    /// surrounding text of the link that discovered each URL).
    link_ctx: Option<FxHashMap<UrlId, (String, String, String)>>,
    /// When enabled, every post-bootstrap prediction is recorded for the
    /// confusion-matrix studies (Tables 5, 8–16).
    recorded: Option<Vec<(String, Class2)>>,
}

impl SbStrategy {
    /// SB-CLASSIFIER with the paper's defaults (LR, URL_ONLY, b = 10).
    pub fn classifier_default() -> Self {
        Self::with_classifier(SbConfig::default(), UrlClassifier::paper_default())
    }

    /// SB-CLASSIFIER with an explicit classifier variant (Table 5 study).
    pub fn with_classifier(cfg: SbConfig, classifier: UrlClassifier) -> Self {
        let track_ctx = classifier.feature_set() == FeatureSet::UrlContent;
        SbStrategy {
            mode: SbMode::Classifier(classifier),
            actions: ActionSpace::new(cfg.actions.clone()),
            arms: Vec::new(),
            pools: Vec::new(),
            frontier_total: 0,
            policy: cfg.policy(),
            t: 0,
            link_ctx: track_ctx.then(FxHashMap::default),
            recorded: None,
        }
    }

    /// Convenience constructor for a classifier variant.
    pub fn with_variant(cfg: SbConfig, model: ModelKind, features: FeatureSet, batch: usize) -> Self {
        Self::with_classifier(cfg, UrlClassifier::new(model, features, batch))
    }

    /// SB-ORACLE.
    pub fn oracle(cfg: SbConfig) -> Self {
        SbStrategy {
            mode: SbMode::Oracle,
            actions: ActionSpace::new(cfg.actions.clone()),
            arms: Vec::new(),
            pools: Vec::new(),
            frontier_total: 0,
            policy: cfg.policy(),
            t: 0,
            link_ctx: None,
            recorded: None,
        }
    }

    /// Enables prediction recording (for the classifier-quality studies).
    pub fn record_predictions(mut self) -> Self {
        self.recorded = Some(Vec::new());
        self
    }

    /// Post-bootstrap predictions recorded so far, as `(url, predicted)`.
    pub fn predictions(&self) -> &[(String, Class2)] {
        self.recorded.as_deref().unwrap_or(&[])
    }

    pub fn n_actions(&self) -> usize {
        self.actions.len()
    }

    fn classify(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> UrlClass {
        match &mut self.mode {
            SbMode::Oracle => services.oracle_class(link.url_str),
            SbMode::Classifier(clf) => {
                // The tag-path string only feeds the URL_CONT feature set;
                // URL_ONLY (the paper default) must not pay a per-link
                // render of the path.
                let dom_path = if clf.feature_set() == FeatureSet::UrlContent {
                    link.html.tag_path.to_string()
                } else {
                    String::new()
                };
                let input = FeatureInput {
                    url: link.url_str,
                    anchor: &link.html.anchor_text,
                    dom_path: &dom_path,
                    surrounding: &link.html.surrounding_text,
                };
                if clf.in_initial_phase() {
                    // Bootstrap: pay for a HEAD, learn from its answer.
                    let truth = services.head_class(link.url_str);
                    match truth {
                        UrlClass::Html => clf.observe(&input, Class2::Html),
                        UrlClass::Target => clf.observe(&input, Class2::Target),
                        UrlClass::Neither => {}
                    }
                    truth
                } else {
                    let predicted = clf.predict(&input);
                    if let Some(rec) = &mut self.recorded {
                        rec.push((link.url_str.to_owned(), predicted));
                    }
                    match predicted {
                        Class2::Html => UrlClass::Html,
                        Class2::Target => UrlClass::Target,
                    }
                }
            }
        }
    }

    fn pool_push(&mut self, action: ActionId, id: UrlId) {
        while self.pools.len() <= action {
            self.pools.push(Vec::new());
            self.arms.push(ArmStats::new());
        }
        self.pools[action].push(id);
        self.frontier_total += 1;
    }
}

impl Strategy for SbStrategy {
    fn name(&self) -> String {
        match &self.mode {
            SbMode::Classifier(c) => {
                if c.feature_set() == FeatureSet::UrlOnly {
                    "SB-CLASSIFIER".to_owned()
                } else {
                    "SB-CLASSIFIER (URL_CONT)".to_owned()
                }
            }
            SbMode::Oracle => "SB-ORACLE".to_owned(),
        }
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        match &self.mode {
            // URL_CONT consumes anchor, DOM path and surrounding text;
            // URL_ONLY (the paper default) and the oracle only need the
            // tag path that drives action clustering.
            SbMode::Classifier(c) if c.feature_set() == FeatureSet::UrlContent => {
                sb_html::LinkNeeds::ALL
            }
            _ => sb_html::LinkNeeds::TAG_PATH,
        }
    }

    fn next(&mut self, rng: &mut StdRng) -> Option<Selection> {
        if self.frontier_total == 0 {
            return None;
        }
        let views: Vec<sb_bandit::policies::ArmView> = self
            .arms
            .iter()
            .zip(&self.pools)
            .map(|(stats, pool)| sb_bandit::policies::ArmView {
                stats: *stats,
                available: !pool.is_empty(),
            })
            .collect();
        self.t += 1;
        let a = self.policy.select(&views, self.t, rng)?;
        self.arms[a].select();
        // Uniform link choice within the chosen action (Sec 3.2).
        let pool = &mut self.pools[a];
        let i = rng.gen_range(0..pool.len());
        let id = pool.swap_remove(i);
        self.frontier_total -= 1;
        Some(Selection { url: id.into(), token: a as u64 })
    }

    fn decide(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> LinkDecision {
        match self.classify(link, services) {
            UrlClass::Neither => LinkDecision::Skip,
            UrlClass::Target => LinkDecision::FetchNow,
            UrlClass::Html => {
                match self.actions.assign(&link.html.tag_path) {
                    Ok(a) => {
                        if let Some(ctx) = &mut self.link_ctx {
                            ctx.insert(
                                link.id,
                                (
                                    // Owned-conversion boundary: this
                                    // context outlives the page buffer.
                                    link.html.anchor_text.to_string(),
                                    link.html.tag_path.to_string(),
                                    link.html.surrounding_text.to_string(),
                                ),
                            );
                        }
                        self.pool_push(a, link.id);
                        LinkDecision::Enqueue
                    }
                    Err(_) => LinkDecision::ActionSpaceFull,
                }
            }
        }
    }

    fn feedback(&mut self, token: u64, reward: f64) {
        let a = token as usize;
        if a < self.arms.len() {
            self.arms[a].reward(reward);
        }
    }

    // feedback_target / feedback_error: Algorithm 4 returns before the
    // R_mean update for non-HTML fetches — a pull without an observation —
    // so the default no-ops are exactly right. The session engine delivers
    // feedback_error on *every* abandoned selection (dead redirect chains,
    // 4xx/5xx, interrupted transfers), so a future SB variant that wants
    // to penalise wasted pulls has the hook; AUER deliberately ignores it.

    fn on_fetched(&mut self, id: UrlId, url: &str, class: UrlClass) {
        // Free online training from GET outcomes (Algorithm 2, phase 2).
        if let SbMode::Classifier(clf) = &mut self.mode {
            let class2 = match class {
                UrlClass::Html => Class2::Html,
                UrlClass::Target => Class2::Target,
                UrlClass::Neither => return,
            };
            let ctx = self.link_ctx.as_mut().and_then(|m| m.remove(&id));
            let (anchor, dom, surr) = ctx.unwrap_or_default();
            let input = FeatureInput { url, anchor: &anchor, dom_path: &dom, surrounding: &surr };
            clf.observe(&input, class2);
        }
    }

    fn frontier_len(&self) -> usize {
        self.frontier_total
    }

    fn report(&self) -> StrategyReport {
        let arms = self
            .arms
            .iter()
            .enumerate()
            .take(self.actions.len())
            .map(|(i, s)| ArmReport {
                exemplar: self.actions.exemplar(i).to_owned(),
                pulls: s.pulls,
                mean_reward: s.mean,
                std_reward: s.std(),
                members: self.actions.members(i),
            })
            .collect();
        StrategyReport { n_actions: self.actions.len(), arms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Pool bookkeeping and AUER selection, without engine plumbing.
    #[test]
    fn selects_from_nonempty_pools_only() {
        let mut s = SbStrategy::oracle(SbConfig::default());
        s.pool_push(0, 1);
        s.pool_push(2, 2);
        // Pool 1 exists but is empty.
        s.pools[1].clear();
        let mut rng = StdRng::seed_from_u64(1);
        let mut picked = Vec::new();
        while let Some(sel) = s.next(&mut rng) {
            picked.push(sel);
        }
        assert_eq!(picked.len(), 2);
        assert!(picked.iter().all(|p| p.token == 0 || p.token == 2));
        assert_eq!(s.frontier_len(), 0);
    }

    #[test]
    fn feedback_updates_selected_arm() {
        let mut s = SbStrategy::oracle(SbConfig::default());
        s.pool_push(0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = s.next(&mut rng).unwrap();
        s.feedback(sel.token, 7.0);
        assert_eq!(s.arms[0].pulls, 1);
        assert_eq!(s.arms[0].mean, 7.0);
    }

    #[test]
    fn bandit_prefers_rewarding_action() {
        let mut s = SbStrategy::oracle(SbConfig::default());
        // Two actions with plenty of links.
        for i in 0..50 {
            s.pool_push(0, i);
            s.pool_push(1, 100 + i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut picks = [0u32; 2];
        for _ in 0..60 {
            let sel = s.next(&mut rng).unwrap();
            let a = sel.token as usize;
            picks[a] += 1;
            // Action 0 pays 10, action 1 pays 0.
            s.feedback(sel.token, if a == 0 { 10.0 } else { 0.0 });
        }
        assert!(picks[0] > picks[1] * 2, "picks: {picks:?}");
    }

    #[test]
    fn empty_strategy_yields_none() {
        let mut s = SbStrategy::classifier_default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.next(&mut rng).is_none());
    }

    #[test]
    fn report_carries_action_stats() {
        let mut s = SbStrategy::oracle(SbConfig::default());
        s.pool_push(0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = s.next(&mut rng).unwrap();
        s.feedback(sel.token, 3.0);
        // No real action space entries were created (pool_push bypasses
        // assign), so the report is sized by arms present in the space.
        let r = s.report();
        assert_eq!(r.n_actions, 0);
        let _ = r;
    }
}
