//! TRES-lite — the adapted topical RL crawler of Sec 4.3 \[37\], with the
//! paper's three "unfair advantages" built in.
//!
//! The original TRES targets topic-relevant HTML pages with a Bi-LSTM
//! relevance classifier and a tree-shaped frontier that it re-scores
//! exhaustively at every step. Per DESIGN.md, the deep model is replaced by
//! a keyword relevance scorer seeded with the paper's 74 hand-crafted terms
//! (Appendix B.2 — advantage i), the pre-training on positive pages is
//! emulated by starting with calibrated keyword weights (advantage ii), and
//! URL-type classification is a free oracle (advantage iii). What is kept
//! faithfully is the *behavioural* signature the paper reports: full
//! frontier re-scoring on every selection, whose cost grows linearly with
//! the frontier and makes the crawler unusable beyond small sites — the
//! harness accounts that work and stops TRES exactly as Sec 4.4 does.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use sb_webgraph::{UrlClass, UrlId};

/// The seed keywords of Appendix B.2 (anchor phrases; single tokens cover
/// the multi-word phrases too since matching is substring-based).
pub const TRES_KEYWORDS: [&str; 74] = [
    "pdf", "xls", "csv", "tar", "zip", "rar", "rdf", "json", "doc", "xml", "yaml", "txt",
    "tsv", "ppt", "ods", "dta", "7z", "ttl", "file", "document", "report", "publication",
    "dataset", "data", "download", "archive", "spreadsheet", "table", "list", "resource",
    "annex", "supplement", "attachment", "proceedings", "survey", "material", "output",
    "content", "statistics", "article", "paper", "metadata", "fact", "download file",
    "download document", "available for download", "access data", "view report",
    "get dataset", "data file", "read more", "resource list", "get document",
    "download pulication", "document archive", "supporting materials", "export data",
    "download csv", "download pdf", "download xls", "dataset download", "attached document",
    "official documents", "browse files", "download statistics", "download article",
    "annual report", "white paper", "technical documentation", "technical report",
    "raw data", "metadata file", "open data", "fact sheet",
];

struct FrontierNode {
    id: UrlId,
    /// URL text kept for re-scoring (TRES re-reads every frontier URL at
    /// every selection — that is the behavioural signature under study).
    url: String,
    anchor: String,
    /// Relevance of the page this link was found on (tree propagation).
    parent_relevance: f64,
}

/// The TRES-lite baseline.
pub struct TresStrategy {
    frontier: Vec<FrontierNode>,
    /// Cumulative simulated scoring work: frontier size at each selection.
    /// The harness converts this into the paper's per-request slowdown.
    pub rescore_work: u64,
    /// Keyword weights ("pre-trained" — advantage ii).
    keyword_weight: f64,
}

impl Default for TresStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl TresStrategy {
    pub fn new() -> Self {
        TresStrategy { frontier: Vec::new(), rescore_work: 0, keyword_weight: 1.0 }
    }

    fn relevance(&self, url: &str, anchor: &str) -> f64 {
        let url_l = url.to_ascii_lowercase();
        let anchor_l = anchor.to_ascii_lowercase();
        let mut score = 0.0;
        for kw in TRES_KEYWORDS {
            if anchor_l.contains(kw) {
                score += 2.0 * self.keyword_weight;
            }
            if url_l.contains(kw) {
                score += self.keyword_weight;
            }
        }
        score
    }
}

impl Strategy for TresStrategy {
    fn name(&self) -> String {
        "TRES".to_owned()
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Keyword relevance reads URL + anchor text.
        sb_html::LinkNeeds { tag_path: false, anchor_text: true, surrounding_text: false }
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        if self.frontier.is_empty() {
            return None;
        }
        // The TRES signature: exhaustively re-score the whole frontier at
        // every step (the tree-expansion cost the paper measures).
        self.rescore_work += self.frontier.len() as u64;
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, node) in self.frontier.iter().enumerate() {
            let s = self.relevance(&node.url, &node.anchor) + 0.5 * node.parent_relevance;
            if s > best_score {
                best_score = s;
                best = i;
            }
        }
        let node = self.frontier.swap_remove(best);
        Some(Selection { url: node.id.into(), token: 0 })
    }

    fn decide(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> LinkDecision {
        // Advantage (iii): a free URL-type oracle; targets that TRES would
        // normally ignore are visited immediately (the paper's adjustment).
        match services.oracle_class(link.url_str) {
            UrlClass::Target => LinkDecision::FetchNow,
            UrlClass::Neither => LinkDecision::Skip,
            UrlClass::Html => {
                let parent_relevance = self.relevance(link.url_str, &link.html.anchor_text);
                self.frontier.push(FrontierNode {
                    id: link.id,
                    url: link.url_str.to_owned(),
                    anchor: link.html.anchor_text.to_string(),
                    parent_relevance,
                });
                LinkDecision::Enqueue
            }
        }
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn keyword_list_has_74_terms() {
        assert_eq!(TRES_KEYWORDS.len(), 74);
    }

    #[test]
    fn relevance_prefers_download_anchors() {
        let s = TresStrategy::new();
        let hot = s.relevance("https://a.com/files/report.pdf", "Download PDF");
        let cold = s.relevance("https://a.com/about-us", "Our team");
        assert!(hot > cold);
    }

    #[test]
    fn rescoring_work_grows_with_frontier() {
        let mut s = TresStrategy::new();
        for i in 0..100 {
            s.frontier.push(FrontierNode {
                id: i,
                url: format!("https://a.com/{i}"),
                anchor: String::new(),
                parent_relevance: 0.0,
            });
        }
        let mut rng = StdRng::seed_from_u64(0);
        s.next(&mut rng);
        s.next(&mut rng);
        // 100 + 99 scored entries across the two steps.
        assert_eq!(s.rescore_work, 199);
    }

    #[test]
    fn picks_highest_scoring_link() {
        use crate::strategy::SelUrl;
        let mut s = TresStrategy::new();
        s.frontier.push(FrontierNode {
            id: 0,
            url: "https://a.com/boring".into(),
            anchor: "misc".into(),
            parent_relevance: 0.0,
        });
        s.frontier.push(FrontierNode {
            id: 1,
            url: "https://a.com/statistics/download".into(),
            anchor: "Download dataset".into(),
            parent_relevance: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Id(1));
    }
}
