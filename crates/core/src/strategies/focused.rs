//! FOCUSED — the classic focused-crawler baseline of Sec 4.3 [10, 19].
//!
//! A logistic regression estimates, for every newly discovered hyperlink,
//! the likelihood that it leads to a target; the frontier is a priority
//! queue over those scores. Features follow standard focused-crawler
//! practice: the (approximate) depth of the source page, a character 2-gram
//! BoW of the URL and one of the anchor text. The model is periodically
//! retrained on crawled pages at no extra HTTP cost (labels come from what
//! each URL turned out to be when fetched). No tag paths, no RL — this is
//! the paper's ablation of both.

use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use sb_ml::features::{featurize, FeatureInput, FeatureSet, SparseVec};
use sb_ml::models::{LogReg, OnlineBinaryModel};
use sb_webgraph::{FxHashMap, UrlClass, UrlId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One-hot depth features live past the bigram blocks.
const DEPTH_BUCKETS: usize = 17;

fn feature_dim() -> usize {
    FeatureSet::UrlContent.dim() + DEPTH_BUCKETS
}

/// Builds the FOCUSED feature vector: URL + anchor bigrams + depth one-hot.
fn features(url: &str, anchor: &str, depth: u32) -> SparseVec {
    let mut x = featurize(
        FeatureSet::UrlContent,
        &FeatureInput { url, anchor, dom_path: "", surrounding: "" },
    );
    let bucket = (depth as usize).min(DEPTH_BUCKETS - 1);
    x.items.push(((FeatureSet::UrlContent.dim() + bucket) as u32, 1.0));
    x
}

#[derive(Debug)]
struct Entry {
    score: f32,
    /// Tie-break: FIFO among equal scores.
    seq: u64,
    id: UrlId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The FOCUSED baseline.
pub struct FocusedStrategy {
    model: LogReg,
    heap: BinaryHeap<Entry>,
    /// Features of enqueued links, waiting for their fetch-time label.
    pending: FxHashMap<UrlId, SparseVec>,
    batch: Vec<(SparseVec, bool)>,
    retrain_every: usize,
    seq: u64,
}

impl Default for FocusedStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl FocusedStrategy {
    pub fn new() -> Self {
        FocusedStrategy {
            model: LogReg::new(feature_dim()),
            heap: BinaryHeap::new(),
            pending: FxHashMap::default(),
            batch: Vec::new(),
            retrain_every: 32,
            seq: 0,
        }
    }
}

impl Strategy for FocusedStrategy {
    fn name(&self) -> String {
        "FOCUSED".to_owned()
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // URL + anchor bigrams + depth; no tag paths.
        sb_html::LinkNeeds { tag_path: false, anchor_text: true, surrounding_text: false }
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        self.heap.pop().map(|e| Selection { url: e.id.into(), token: 0 })
    }

    fn decide(&mut self, link: &NewLink<'_>, _services: &mut Services<'_, '_>) -> LinkDecision {
        let x = features(link.url_str, &link.html.anchor_text, link.source_depth);
        let score = if self.model.trained() { self.model.predict_score(&x) } else { 0.0 };
        self.pending.insert(link.id, x);
        self.seq += 1;
        self.heap.push(Entry { score, seq: self.seq, id: link.id });
        LinkDecision::Enqueue
    }

    fn on_fetched(&mut self, id: UrlId, _url: &str, class: UrlClass) {
        let Some(x) = self.pending.remove(&id) else { return };
        let label = match class {
            UrlClass::Target => true,
            UrlClass::Html => false,
            UrlClass::Neither => return,
        };
        self.batch.push((x, label));
        if self.batch.len() >= self.retrain_every {
            self.model.train_batch(&self.batch);
            self.batch.clear();
        }
    }

    fn frontier_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn heap_orders_by_score_then_fifo() {
        use crate::strategy::SelUrl;
        let mut s = FocusedStrategy::new();
        s.heap.push(Entry { score: 0.5, seq: 1, id: 11 });
        s.heap.push(Entry { score: 0.9, seq: 2, id: 10 });
        s.heap.push(Entry { score: 0.5, seq: 0, id: 12 });
        let mut rng = StdRng::seed_from_u64(0);
        let order: Vec<SelUrl> =
            std::iter::from_fn(|| s.next(&mut rng)).map(|sel| sel.url).collect();
        assert_eq!(order, vec![SelUrl::Id(10), SelUrl::Id(12), SelUrl::Id(11)]);
    }

    #[test]
    fn learns_to_rank_target_urls_higher() {
        let mut s = FocusedStrategy::new();
        // Simulate fetch-labelled history.
        for i in 0..200 {
            let (url, label) = if i % 2 == 0 {
                (format!("https://a.com/files/d{i}.csv"), true)
            } else {
                (format!("https://a.com/pages/p{i}.html"), false)
            };
            let x = features(&url, "", 3);
            s.batch.push((x, label));
            if s.batch.len() >= s.retrain_every {
                s.model.train_batch(&s.batch);
                s.batch.clear();
            }
        }
        let xt = features("https://a.com/files/probe.csv", "", 3);
        let xh = features("https://a.com/pages/probe.html", "", 3);
        assert!(s.model.predict_score(&xt) > s.model.predict_score(&xh));
    }

    #[test]
    fn depth_feature_in_range() {
        let x = features("https://a.com/x", "anchor", 99);
        let max_idx = x.items.iter().map(|&(i, _)| i).max().unwrap();
        assert!((max_idx as usize) < feature_dim());
    }
}
