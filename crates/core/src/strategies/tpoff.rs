//! TP-OFF — the offline-trained, tag-path-based baseline of Sec 4.3,
//! an adaptation of ACEBot \[20\] to target retrieval.
//!
//! Phase 1: crawl the first `phase1_pages` pages breadth-first while an
//! **oracle** supplies the true benefit of each page (the number of targets
//! behind its links — the paper's deliberate "unfair advantage"); tag paths
//! of followed links are grouped with the same clustering machinery as the
//! SB crawlers and accumulate their pages' benefits.
//!
//! Phase 2: learning stops. Links whose tag path matches an existing group
//! are enqueued with the group's average benefit as priority; links forming
//! new groups get a fixed benefit of 0. This is the paper's ablation of
//! *online* learning: everything the crawler will ever know, it learned in
//! phase 1.

use crate::action::{ActionSpace, ActionSpaceConfig};
use crate::strategy::{LinkDecision, NewLink, Selection, Services, Strategy};
use rand::rngs::StdRng;
use sb_webgraph::{FxHashMap, UrlClass, UrlId};
use std::cmp::Ordering;
use std::collections::VecDeque;

#[derive(Debug)]
struct Entry {
    benefit: f64,
    seq: u64,
    id: UrlId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.benefit.total_cmp(&other.benefit).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The TP-OFF baseline.
pub struct TpOffStrategy {
    /// Pages left in the oracle-assisted BFS phase.
    phase1_left: usize,
    bfs: VecDeque<UrlId>,
    groups: ActionSpace,
    /// Per-group benefit accumulator: (sum, observations).
    benefit: Vec<(f64, u64)>,
    /// Group each phase-1 frontier URL was reached through.
    link_group: FxHashMap<UrlId, usize>,
    heap: std::collections::BinaryHeap<Entry>,
    seq: u64,
    drained: bool,
}

impl TpOffStrategy {
    /// `phase1_pages` is the paper's 3 000, scaled by the harness.
    pub fn new(phase1_pages: usize) -> Self {
        TpOffStrategy {
            phase1_left: phase1_pages,
            bfs: VecDeque::new(),
            groups: ActionSpace::new(ActionSpaceConfig::default()),
            benefit: Vec::new(),
            link_group: FxHashMap::default(),
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            drained: false,
        }
    }

    fn avg_benefit(&self, g: usize) -> f64 {
        match self.benefit.get(g) {
            Some(&(sum, n)) if n > 0 => sum / n as f64,
            _ => 0.0,
        }
    }

    fn in_phase1(&self) -> bool {
        self.phase1_left > 0
    }

    /// Moves leftover BFS frontier into the priority queue when phase 1 ends.
    fn drain_bfs(&mut self) {
        if self.drained {
            return;
        }
        self.drained = true;
        while let Some(id) = self.bfs.pop_front() {
            let benefit = self.link_group.get(&id).map_or(0.0, |&g| self.avg_benefit(g));
            self.seq += 1;
            self.heap.push(Entry { benefit, seq: self.seq, id });
        }
    }
}

impl Strategy for TpOffStrategy {
    fn name(&self) -> String {
        "TP-OFF".to_owned()
    }

    fn link_needs(&self) -> sb_html::LinkNeeds {
        // Tag paths drive the groups; no text features.
        sb_html::LinkNeeds::TAG_PATH
    }

    fn next(&mut self, _rng: &mut StdRng) -> Option<Selection> {
        if self.in_phase1() {
            if let Some(id) = self.bfs.pop_front() {
                self.phase1_left -= 1;
                let g = self.link_group.get(&id).copied().unwrap_or(usize::MAX);
                return Some(Selection { url: id.into(), token: g as u64 });
            }
            return None;
        }
        self.drain_bfs();
        self.heap.pop().map(|e| Selection { url: e.id.into(), token: u64::MAX })
    }

    fn decide(&mut self, link: &NewLink<'_>, services: &mut Services<'_, '_>) -> LinkDecision {
        if self.in_phase1() {
            // Oracle-assisted: targets are fetched at once (their count is
            // the page benefit the oracle grants), HTML goes to BFS, dead
            // links are recognised for free.
            match services.oracle_class(link.url_str) {
                UrlClass::Target => LinkDecision::FetchNow,
                UrlClass::Neither => LinkDecision::Skip,
                UrlClass::Html => {
                    if let Ok(g) = self.groups.assign(&link.html.tag_path) {
                        while self.benefit.len() <= g {
                            self.benefit.push((0.0, 0));
                        }
                        self.link_group.insert(link.id, g);
                        self.bfs.push_back(link.id);
                        LinkDecision::Enqueue
                    } else {
                        LinkDecision::ActionSpaceFull
                    }
                }
            }
        } else {
            self.drain_bfs();
            // Phase 2: no oracle, no learning. Existing groups rank links;
            // novel tag paths get benefit 0.
            let benefit = match self.groups.match_only(&link.html.tag_path) {
                Some(g) => self.avg_benefit(g),
                None => 0.0,
            };
            self.seq += 1;
            self.heap.push(Entry { benefit, seq: self.seq, id: link.id });
            LinkDecision::Enqueue
        }
    }

    fn feedback(&mut self, token: u64, reward: f64) {
        // Phase-1 benefit assignment: the group of the link that led to the
        // page absorbs the page's target count.
        let g = token as usize;
        if self.in_phase1() || !self.drained {
            if let Some(b) = self.benefit.get_mut(g) {
                b.0 += reward;
                b.1 += 1;
            }
        }
    }

    fn frontier_len(&self) -> usize {
        self.bfs.len() + self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn phase1_is_fifo() {
        use crate::strategy::SelUrl;
        let mut s = TpOffStrategy::new(10);
        s.bfs.push_back(1);
        s.bfs.push_back(2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Id(1));
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Id(2));
        assert_eq!(s.phase1_left, 8);
    }

    #[test]
    fn benefit_accumulates_and_averages() {
        let mut s = TpOffStrategy::new(2);
        s.benefit.push((0.0, 0));
        s.feedback(0, 10.0);
        s.feedback(0, 2.0);
        assert_eq!(s.avg_benefit(0), 6.0);
        assert_eq!(s.avg_benefit(99), 0.0);
    }

    #[test]
    fn phase2_orders_by_group_benefit() {
        use crate::strategy::SelUrl;
        let mut s = TpOffStrategy::new(0); // straight to phase 2
        s.drained = true;
        s.heap.push(Entry { benefit: 0.0, seq: 0, id: 0 });
        s.heap.push(Entry { benefit: 9.0, seq: 1, id: 9 });
        s.heap.push(Entry { benefit: 4.0, seq: 2, id: 4 });
        let mut rng = StdRng::seed_from_u64(0);
        let order: Vec<SelUrl> =
            std::iter::from_fn(|| s.next(&mut rng)).map(|sel| sel.url).collect();
        assert_eq!(order, vec![SelUrl::Id(9), SelUrl::Id(4), SelUrl::Id(0)]);
    }

    #[test]
    fn leftover_bfs_drains_into_heap() {
        use crate::strategy::SelUrl;
        let mut s = TpOffStrategy::new(1);
        s.bfs.push_back(7);
        s.bfs.push_back(8);
        let mut rng = StdRng::seed_from_u64(0);
        // Consumes the single phase-1 page.
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Id(7));
        assert!(!s.in_phase1());
        // Next selection must surface the drained leftover.
        assert_eq!(s.next(&mut rng).unwrap().url, SelUrl::Id(8));
    }
}
