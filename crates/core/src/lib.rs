//! `sb-crawler` — the paper's contribution: the SB-CLASSIFIER focused
//! crawler (sleeping-bandit RL over tag-path actions with an online URL
//! classifier) plus every baseline, over one shared crawl engine.
//!
//! * [`action`] — tag-path clustering into actions (Algorithm 1),
//! * [`strategy`] — the crawler interface (frontier policy + link routing),
//! * [`strategies`] — SB-CLASSIFIER, SB-ORACLE, BFS, DFS, RANDOM,
//!   OMNISCIENT, FOCUSED, TP-OFF, TRES-lite, and the value-driven
//!   batch frontier ([`ValueStrategy`]: whole-frontier top-k ranking
//!   per window-fill with composable [`strategies::Scorer`]s),
//! * [`session`] — Algorithms 3 & 4 as a resumable [`CrawlSession`]:
//!   validated construction, `step()`/`run()`, typed [`CrawlEvent`]s,
//!   pipelined over the nonblocking `sb_httpsim::Transport`
//!   ([`CrawlConfig`]`::max_in_flight` requests in flight at once, with
//!   the politeness gate enforced at the transport),
//! * [`events`] — the [`CrawlObserver`] interface ([`CrawlTrace`] is just
//!   one observer),
//! * [`fleet`] — the multi-site [`Fleet`] scheduler: per-site transports
//!   over worker threads, or one shared transport pool multiplexing a
//!   global in-flight window across every site
//!   ([`FleetMode::SharedPool`]),
//! * [`engine`] — the pre-session compatibility surface ([`crawl`]),
//! * [`early_stop`] — the Sec 4.8 stopping rule,
//! * [`trace`] — per-request series and the Table 2/3 metrics.
//!
//! One-shot crawl (the classic API):
//!
//! ```no_run
//! use sb_crawler::engine::{crawl, CrawlConfig};
//! use sb_crawler::strategies::SbStrategy;
//! use sb_httpsim::SiteServer;
//! use sb_webgraph::{build_site, SiteSpec};
//!
//! let site = build_site(&SiteSpec::demo(500), 42);
//! let root = site.page(site.root()).url.clone();
//! let server = SiteServer::new(site);
//! let mut strategy = SbStrategy::classifier_default();
//! let outcome = crawl(&server, None, &root, &mut strategy, &CrawlConfig::default());
//! println!("retrieved {} targets", outcome.targets_found());
//! ```
//!
//! Step-driven crawl with validation and observation (the session API):
//!
//! ```no_run
//! use sb_crawler::{Budget, CrawlConfig, CrawlSession, EventLog};
//! use sb_crawler::strategies::QueueStrategy;
//! use sb_httpsim::SiteServer;
//! use sb_webgraph::{build_site, SiteSpec};
//!
//! let site = build_site(&SiteSpec::demo(500), 42);
//! let root = site.page(site.root()).url.clone();
//! let server = SiteServer::new(site);
//! let cfg = CrawlConfig::builder().budget(Budget::Requests(100)).build()?;
//! let mut bfs = QueueStrategy::bfs();
//! let mut log = EventLog::new();
//! let mut session = CrawlSession::new(&server, None, &root, &mut bfs, &cfg)?.observe(&mut log);
//! while !session.is_finished() {
//!     let report = session.step();
//!     println!("step {}: {} targets so far", report.steps, session.targets_found());
//! }
//! let outcome = session.finish();
//! # Ok::<(), sb_crawler::ConfigError>(())
//! ```

pub mod action;
pub mod early_stop;
pub mod engine;
pub mod events;
pub mod fleet;
pub mod session;
pub mod strategies;
pub mod strategy;
pub mod trace;

pub use action::{ActionId, ActionSpace, ActionSpaceConfig, ActionSpaceFull};
pub use early_stop::{EarlyStop, EarlyStopConfig};
pub use engine::crawl;
pub use events::{
    AbandonCounts, AbandonReason, CrawlEvent, CrawlObserver, CrawlSnapshot, EventLog, FinishReason,
    MemGauges, OwnedEvent, RefreshStats, TraceObserver,
};
pub use fleet::{
    Fleet, FleetJob, FleetMode, FleetOutcome, ShardReport, SharedOracle, SharedServer, SiteReport,
};
pub use session::{
    robots_filter, Budget, ConfigError, CrawlConfig, CrawlConfigBuilder, CrawlOutcome,
    CrawlSession, Oracle, RefreshedPage, RetrievedTarget, StepReport, UrlFilter,
};
pub use strategies::{Batched, ValueSpec, ValueStrategy};
pub use strategy::{
    ArmReport, LinkDecision, NewLink, SelUrl, Selection, Services, Strategy, StrategyReport,
};
pub use trace::{CrawlTrace, TracePoint};
