//! `sb-crawler` — the paper's contribution: the SB-CLASSIFIER focused
//! crawler (sleeping-bandit RL over tag-path actions with an online URL
//! classifier) plus every baseline, over one shared crawl engine.
//!
//! * [`action`] — tag-path clustering into actions (Algorithm 1),
//! * [`strategy`] — the crawler interface (frontier policy + link routing),
//! * [`strategies`] — SB-CLASSIFIER, SB-ORACLE, BFS, DFS, RANDOM,
//!   OMNISCIENT, FOCUSED, TP-OFF, TRES-lite,
//! * [`engine`] — Algorithms 3 & 4 (fetch, redirects, rewards, budget),
//! * [`early_stop`] — the Sec 4.8 stopping rule,
//! * [`trace`] — per-request series and the Table 2/3 metrics.
//!
//! ```no_run
//! use sb_crawler::engine::{crawl, CrawlConfig};
//! use sb_crawler::strategies::SbStrategy;
//! use sb_httpsim::SiteServer;
//! use sb_webgraph::{build_site, SiteSpec};
//!
//! let site = build_site(&SiteSpec::demo(500), 42);
//! let root = site.page(site.root()).url.clone();
//! let server = SiteServer::new(site);
//! let mut strategy = SbStrategy::classifier_default();
//! let outcome = crawl(&server, None, &root, &mut strategy, &CrawlConfig::default());
//! println!("retrieved {} targets", outcome.targets_found());
//! ```

pub mod action;
pub mod early_stop;
pub mod engine;
pub mod strategies;
pub mod strategy;
pub mod trace;

pub use action::{ActionId, ActionSpace, ActionSpaceConfig, ActionSpaceFull};
pub use early_stop::{EarlyStop, EarlyStopConfig};
pub use engine::{
    crawl, robots_filter, Budget, CrawlConfig, CrawlOutcome, Oracle, RetrievedTarget, UrlFilter,
};
pub use strategy::{ArmReport, LinkDecision, NewLink, SelUrl, Selection, Services, Strategy, StrategyReport};
pub use trace::{CrawlTrace, TracePoint};
