//! Multi-site crawl scheduling: N independent [`CrawlSession`]s driven
//! concurrently on worker threads.
//!
//! The paper crawls one website at a time; production acquisition runs
//! thousands of per-site crawls side by side (BUbiNG-style massive
//! crawling). The session API makes that a scheduling problem rather than
//! an engine rewrite: a [`Fleet`] owns a set of [`FleetJob`]s (server +
//! root + strategy factory + config per site), deals them round-robin onto
//! worker threads, and each worker interleaves its sessions
//! **politeness-aware** — it always steps the session with the smallest
//! simulated elapsed time, so a site throttled by a long politeness delay
//! yields its worker to faster sites instead of blocking them, exactly as
//! a wall-clock scheduler would.
//!
//! Per-site results are **worker-count invariant**: sessions share nothing
//! (each has its own RNG, interner, transport and strategy), so the fleet
//! produces byte-identical per-site outcomes whether it runs on 1 worker
//! or 16 — the property the fleet determinism tests pin down. Scheduling
//! itself is deterministic too: equal simulated-elapsed times are broken
//! by submission (site) index, so the interleaving does not depend on
//! float coincidences or bucket layout.
//!
//! Each site gets **one pipelined transport** (PR 4), built once on the
//! worker from the job's config — the politeness gate and in-flight pool
//! live for the site's whole crawl, and a job's `max_in_flight` turns on
//! intra-site pipelining inside its fleet slot. Custom transports (retry
//! policies, robots `Crawl-delay` gates) plug in through
//! [`CrawlSession::with_transport`].

use crate::events::FinishReason;
use crate::session::{ConfigError, CrawlConfig, CrawlOutcome, CrawlSession, Oracle};
use crate::strategy::Strategy;
use sb_httpsim::{HttpServer, Traffic};
use std::sync::Arc;

/// Shareable server handle: fleets move jobs across threads.
pub type SharedServer = Arc<dyn HttpServer + Send + Sync>;

/// Shareable ground-truth oracle for oracle strategies.
pub type SharedOracle = Arc<dyn Oracle + Send + Sync>;

/// Builds the strategy on the worker thread that will drive the session —
/// strategies themselves never cross threads.
pub type StrategyFactory = Box<dyn FnOnce() -> Box<dyn Strategy> + Send>;

/// One site's crawl: everything a worker needs to build and drive a
/// session.
pub struct FleetJob {
    pub name: String,
    pub root: String,
    server: SharedServer,
    oracle: Option<SharedOracle>,
    strategy: StrategyFactory,
    cfg: CrawlConfig,
}

impl FleetJob {
    pub fn new(
        name: impl Into<String>,
        server: SharedServer,
        root: impl Into<String>,
        strategy: impl FnOnce() -> Box<dyn Strategy> + Send + 'static,
    ) -> Self {
        FleetJob {
            name: name.into(),
            root: root.into(),
            server,
            oracle: None,
            strategy: Box::new(strategy),
            cfg: CrawlConfig::default(),
        }
    }

    /// Per-site crawl configuration (budget, politeness, seeds, …).
    pub fn config(mut self, cfg: CrawlConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Ground truth for oracle strategies on this site.
    pub fn oracle(mut self, oracle: SharedOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }
}

/// One site's result. Construction errors (an unparseable root) are
/// reported here instead of panicking the worker.
pub struct SiteReport {
    pub name: String,
    pub outcome: Result<CrawlOutcome, ConfigError>,
}

impl SiteReport {
    /// Convenience: the outcome, or a panic naming the site.
    pub fn expect_outcome(&self) -> &CrawlOutcome {
        match &self.outcome {
            Ok(o) => o,
            Err(e) => panic!("fleet site {:?} failed to start: {e}", self.name),
        }
    }
}

/// What a finished fleet reports: per-site outcomes (in submission order)
/// plus aggregate traffic.
pub struct FleetOutcome {
    pub sites: Vec<SiteReport>,
    /// Sum of every site's cost counters. `elapsed_secs` is the *serial*
    /// simulated time — what one crawler visiting the sites back to back
    /// would have waited.
    pub traffic: Traffic,
    /// Targets retrieved across the fleet.
    pub targets: u64,
    /// Real wall-clock seconds the fleet took.
    pub wall_secs: f64,
}

impl FleetOutcome {
    /// Requests per real second across the whole fleet — the headline
    /// multi-site throughput number.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.traffic.requests() as f64 / self.wall_secs
    }

    /// Longest simulated per-site duration — the fleet's simulated
    /// wall-clock, since sites crawl concurrently.
    pub fn sim_makespan_secs(&self) -> f64 {
        self.sites
            .iter()
            .filter_map(|s| s.outcome.as_ref().ok())
            .map(|o| o.traffic.elapsed_secs)
            .fold(0.0, f64::max)
    }
}

/// The multi-site scheduler. See the module docs.
pub struct Fleet {
    jobs: Vec<FleetJob>,
    workers: usize,
}

impl Fleet {
    /// A fleet driving its sites on up to `workers` threads (clamped to
    /// the number of jobs at run time; 0 means one worker).
    pub fn new(workers: usize) -> Self {
        Fleet { jobs: Vec::new(), workers: workers.max(1) }
    }

    pub fn push(&mut self, job: FleetJob) {
        self.jobs.push(job);
    }

    /// Fluent [`Fleet::push`].
    pub fn job(mut self, job: FleetJob) -> Self {
        self.push(job);
        self
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Crawls every site to completion and reports. Jobs are dealt
    /// round-robin onto workers; each worker interleaves its sessions by
    /// smallest simulated elapsed time (politeness-aware fairness).
    pub fn run(self) -> FleetOutcome {
        let n = self.jobs.len();
        let workers = self.workers.clamp(1, n.max(1));
        let started = std::time::Instant::now();

        // Deal jobs round-robin, remembering submission order.
        let mut buckets: Vec<Vec<(usize, FleetJob)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in self.jobs.into_iter().enumerate() {
            buckets[i % workers].push((i, job));
        }

        let mut indexed: Vec<(usize, SiteReport)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                buckets.into_iter().map(|bucket| scope.spawn(|| drive_bucket(bucket))).collect();
            for h in handles {
                indexed.extend(h.join().expect("fleet worker panicked"));
            }
        });
        indexed.sort_by_key(|(i, _)| *i);

        let mut traffic = Traffic::default();
        let mut targets = 0u64;
        let sites: Vec<SiteReport> = indexed.into_iter().map(|(_, r)| r).collect();
        for report in &sites {
            if let Ok(o) = &report.outcome {
                traffic.absorb(&o.traffic);
                targets += o.targets_found();
            }
        }
        FleetOutcome { sites, traffic, targets, wall_secs: started.elapsed().as_secs_f64() }
    }
}

/// Drives one worker's share of the fleet: builds every session, then
/// repeatedly steps the unfinished session with the smallest simulated
/// elapsed time until all are done.
fn drive_bucket(bucket: Vec<(usize, FleetJob)>) -> Vec<(usize, SiteReport)> {
    // Materialise everything a session borrows (server, oracle, strategy,
    // config, root) so the sessions below can borrow from this frame.
    struct Prepared {
        index: usize,
        name: String,
        root: String,
        server: SharedServer,
        oracle: Option<SharedOracle>,
        strategy: Box<dyn Strategy>,
        cfg: CrawlConfig,
    }
    let mut prepared: Vec<Prepared> = bucket
        .into_iter()
        .map(|(index, job)| Prepared {
            index,
            name: job.name,
            root: job.root,
            server: job.server,
            oracle: job.oracle,
            strategy: (job.strategy)(),
            cfg: job.cfg,
        })
        .collect();
    let names: Vec<(usize, String)> = prepared.iter().map(|p| (p.index, p.name.clone())).collect();

    let mut sessions: Vec<Result<CrawlSession<'_>, ConfigError>> = prepared
        .iter_mut()
        .map(|p| {
            // One transport per site for the whole crawl: `new` builds the
            // job's `PipelinedTransport` (window and politeness from its
            // config) exactly as a standalone session would, so fleet and
            // solo runs cannot diverge. Jobs needing a custom transport
            // (retries, robots gates) go through
            // `CrawlSession::with_transport` instead.
            CrawlSession::new(
                p.server.as_ref(),
                p.oracle.as_ref().map(|o| o.as_ref() as &dyn Oracle),
                &p.root,
                p.strategy.as_mut(),
                &p.cfg,
            )
        })
        .collect();

    // Politeness-aware interleaving: always advance the session whose
    // simulated clock is furthest behind. Ties are broken by site
    // (submission) index — an explicit, stable order, so scheduling stays
    // deterministic even when several sites share one transport clock
    // value (common right after start, when every clock is 0).
    loop {
        let mut pick: Option<(usize, (f64, usize))> = None;
        for (k, s) in sessions.iter().enumerate() {
            let Ok(session) = s else { continue };
            if session.is_finished() {
                continue;
            }
            let key = (session.traffic().elapsed_secs, names[k].0);
            if pick.is_none_or(|(_, best)| key < best) {
                pick = Some((k, key));
            }
        }
        let Some((k, _)) = pick else { break };
        if let Ok(session) = &mut sessions[k] {
            session.step();
        }
    }

    sessions
        .into_iter()
        .zip(names)
        .map(|(s, (index, name))| {
            let outcome = s.map(|session| {
                debug_assert!(
                    session.finish_reason() != Some(FinishReason::Cancelled),
                    "fleet sessions run to natural completion"
                );
                session.finish()
            });
            (index, SiteReport { name, outcome })
        })
        .collect()
}
