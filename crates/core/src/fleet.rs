//! Multi-site crawl scheduling: N independent [`CrawlSession`]s driven
//! concurrently on worker threads.
//!
//! The paper crawls one website at a time; production acquisition runs
//! thousands of per-site crawls side by side (BUbiNG-style massive
//! crawling). The session API makes that a scheduling problem rather than
//! an engine rewrite: a [`Fleet`] owns a set of [`FleetJob`]s (server +
//! root + strategy factory + config per site), deals them round-robin onto
//! worker threads, and each worker interleaves its sessions
//! **politeness-aware** — it always steps the session with the smallest
//! simulated elapsed time, so a site throttled by a long politeness delay
//! yields its worker to faster sites instead of blocking them, exactly as
//! a wall-clock scheduler would.
//!
//! Per-site results are **worker-count invariant**: sessions share nothing
//! (each has its own RNG, interner, transport and strategy), so the fleet
//! produces byte-identical per-site outcomes whether it runs on 1 worker
//! or 16 — the property the fleet determinism tests pin down. Scheduling
//! itself is deterministic too: equal simulated-elapsed times are broken
//! by submission (site) index, so the interleaving does not depend on
//! float coincidences or bucket layout.
//!
//! In [`FleetMode::PerSite`] (the default) each site gets **one pipelined
//! transport** (PR 4), built once on the worker from the job's config —
//! the politeness gate and in-flight pool live for the site's whole
//! crawl, and a job's `max_in_flight` turns on intra-site pipelining
//! inside its fleet slot. Custom transports (retry policies, robots
//! `Crawl-delay` gates) plug in through [`CrawlSession::with_transport`].
//!
//! In [`FleetMode::SharedPool`] (PR 5) the fleet instead multiplexes
//! every session through **one**
//! [`SharedTransportPool`](sb_httpsim::SharedTransportPool): a single
//! global in-flight window shared across all sites, with politeness
//! sharded per host. The driver runs on one thread (the global window is
//! one serially-ordered resource; determinism requires a single ration
//! point) and alternates two moves:
//!
//! * **refill, least-elapsed-host first** — while the pool has a free
//!   slot, the unfinished session whose host has waited longest for a
//!   delivery ([`SharedTransportPool::site_elapsed`], ties by site index)
//!   is offered one submission ([`CrawlSession::refill_one`]), so no site
//!   starves and a politeness-stalled site lends its capacity onward;
//! * **drain, in pool completion order** — the site owning the globally
//!   next completion ([`SharedTransportPool::next_completion_site`]:
//!   ascending arrival, cross-site ties by site index) drains one batch
//!   ([`CrawlSession::drain_completions`]), so the shared clock advances
//!   in true arrival order.
//!
//! Per-site coverage is transport-invariant (pinned by the fleet tests:
//! shared-pool targets match per-site-transport targets site for site,
//! and at global window 1 the pool replays the sequential engine per site
//! exactly), while per-site `elapsed_secs` reads on the **shared clock**:
//! [`FleetOutcome::sim_makespan_secs`] is the pool's makespan, and
//! [`FleetOutcome::traffic`]'s `elapsed_secs` sum is not a serial-visit
//! estimate in this mode.
//!
//! In [`FleetMode::Sharded`] (PR 8) the fleet finally buys **real
//! wall-clock parallelism**: sites are hashed onto P shards, each shard
//! thread owns an independent `SharedTransportPool` (the backend is
//! `Send` since PR 8) and runs the same two-move schedule over its own
//! sites in **waves** of at most `max_in_flight` sites — a fuller wave
//! could never add in-flight concurrency, and the wave boundary is the
//! *safe* boundary for work stealing: when a shard's sites all drain
//! (frontiers exhausted or budgets spent, own backlog empty), it steals
//! whole pending sites — sites with no session and no in-flight requests —
//! from the most-loaded shard's backlog. Every site is still driven start
//! to finish by exactly one pool under the deterministic single-pool
//! schedule, so per-site results are **shard-count invariant** (and at
//! per-shard window 1, byte-identical to the shared pool minus the shared
//! clock — each site replays the sequential engine regardless of
//! tenancy). Steal timing is the one wall-clock-dependent input, and it
//! only decides *which shard's clock* a pending site later joins.
//!
//! [`SharedTransportPool`]: sb_httpsim::SharedTransportPool

use crate::events::{AbandonCounts, FinishReason, MemGauges, RefreshStats};
use crate::session::{ConfigError, CrawlConfig, CrawlOutcome, CrawlSession, Oracle};
use crate::strategy::Strategy;
use parking_lot::Mutex;
use sb_httpsim::{HttpServer, SharedTransportPool, Traffic};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Shareable server handle: fleets move jobs across threads.
pub type SharedServer = Arc<dyn HttpServer + Send + Sync>;

/// Shareable ground-truth oracle for oracle strategies.
pub type SharedOracle = Arc<dyn Oracle + Send + Sync>;

/// Builds the strategy on the worker thread that will drive the session —
/// strategies themselves never cross threads.
pub type StrategyFactory = Box<dyn FnOnce() -> Box<dyn Strategy> + Send>;

/// One site's crawl: everything a worker needs to build and drive a
/// session.
pub struct FleetJob {
    pub name: String,
    pub root: String,
    server: SharedServer,
    oracle: Option<SharedOracle>,
    strategy: StrategyFactory,
    cfg: CrawlConfig,
}

impl FleetJob {
    pub fn new(
        name: impl Into<String>,
        server: SharedServer,
        root: impl Into<String>,
        strategy: impl FnOnce() -> Box<dyn Strategy> + Send + 'static,
    ) -> Self {
        FleetJob {
            name: name.into(),
            root: root.into(),
            server,
            oracle: None,
            strategy: Box::new(strategy),
            cfg: CrawlConfig::default(),
        }
    }

    /// Per-site crawl configuration (budget, politeness, seeds, …).
    pub fn config(mut self, cfg: CrawlConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Ground truth for oracle strategies on this site.
    pub fn oracle(mut self, oracle: SharedOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }
}

/// One site's result. Construction errors (an unparseable root) are
/// reported here instead of panicking the worker.
pub struct SiteReport {
    pub name: String,
    pub outcome: Result<CrawlOutcome, ConfigError>,
}

impl SiteReport {
    /// Convenience: the outcome, or a panic naming the site.
    pub fn expect_outcome(&self) -> &CrawlOutcome {
        match &self.outcome {
            Ok(o) => o,
            Err(e) => panic!("fleet site {:?} failed to start: {e}", self.name),
        }
    }

    /// The site's per-reason abandonment tally (PR 6); zero for sites
    /// that failed to start.
    pub fn abandoned(&self) -> AbandonCounts {
        self.outcome.as_ref().map(|o| o.abandoned).unwrap_or_default()
    }
}

/// What a finished fleet reports: per-site outcomes (in submission order)
/// plus aggregate traffic.
pub struct FleetOutcome {
    pub sites: Vec<SiteReport>,
    /// Sum of every site's cost counters. `elapsed_secs` is the *serial*
    /// simulated time — what one crawler visiting the sites back to back
    /// would have waited.
    pub traffic: Traffic,
    /// Targets retrieved across the fleet.
    pub targets: u64,
    /// Real wall-clock seconds the fleet took.
    pub wall_secs: f64,
    /// Fleet-wide per-reason abandonment tally (PR 6) — the sum of every
    /// site's [`CrawlOutcome::abandoned`].
    pub abandoned: AbandonCounts,
    /// Fleet-wide memory gauges (PR 8) — the sum of every site's final
    /// [`CrawlOutcome::mem`], i.e. the combined visited-set + frontier
    /// footprint the fleet held at the instant each site finished.
    pub mem: MemGauges,
    /// Fleet-wide refresh ledger (PR 9) — the merged
    /// [`CrawlOutcome::refresh`] of every site: refreshes
    /// scheduled/completed/changed/unchanged/failed, plus the worst
    /// staleness percentiles any site reported. All-zero outside
    /// [`FleetMode::Continuous`] unless a job queued refreshes itself.
    pub refresh: RefreshStats,
    /// Per-shard ledgers (PR 8): one entry per shard thread in
    /// [`FleetMode::Sharded`], empty in the other modes.
    pub shards: Vec<ShardReport>,
}

/// One shard thread's ledger in a [`FleetMode::Sharded`] run (PR 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardReport {
    /// Sites this shard drove to completion, steals included.
    pub sites: usize,
    /// Sites this shard stole from other shards' pending backlogs.
    pub stolen: u64,
    /// The shard pool's simulated clock when its last wave drained — the
    /// shard's own makespan on its own clock.
    pub sim_makespan_secs: f64,
    /// Final memory gauges summed over the shard's sites.
    pub mem: MemGauges,
    /// Abandonment tally summed over the shard's sites.
    pub abandoned: AbandonCounts,
    /// Refresh ledger merged over the shard's sites (PR 9).
    pub refresh: RefreshStats,
}

impl FleetOutcome {
    /// Requests per real second across the whole fleet — the headline
    /// multi-site throughput number.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.traffic.requests() as f64 / self.wall_secs
    }

    /// Longest simulated per-site duration — the fleet's simulated
    /// wall-clock, since sites crawl concurrently.
    pub fn sim_makespan_secs(&self) -> f64 {
        self.sites
            .iter()
            .filter_map(|s| s.outcome.as_ref().ok())
            .map(|o| o.traffic.elapsed_secs)
            .fold(0.0, f64::max)
    }

    /// Total sites stolen across shards (0 outside
    /// [`FleetMode::Sharded`]) — the work-stealing activity of the run.
    pub fn stolen_sites(&self) -> u64 {
        self.shards.iter().map(|s| s.stolen).sum()
    }
}

/// How a fleet's sessions reach the wire. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMode {
    /// One isolated `PipelinedTransport` per site, sessions dealt over
    /// worker threads (PR 4). Sites never share in-flight capacity.
    PerSite,
    /// One `SharedTransportPool` multiplexing a global window of
    /// `max_in_flight` requests across every site, driven on a single
    /// thread ([`Fleet::new`]'s `workers` is ignored): refills go to the
    /// least-elapsed host first, drains follow the pool's deterministic
    /// completion order. `max_in_flight` is clamped to ≥ 1.
    SharedPool { max_in_flight: usize },
    /// `shards` independent `SharedTransportPool`s, one per driver thread
    /// ([`Fleet::new`]'s `workers` is ignored — `shards` is the thread
    /// count; both values clamped to ≥ 1), each running the shared-pool
    /// schedule over its own hashed share of the sites in waves of at
    /// most `max_in_flight` sites, with whole-site work stealing from the
    /// most-loaded backlog once a shard's own sites all drain (PR 8). See
    /// the module docs.
    Sharded { shards: usize, max_in_flight: usize },
    /// Crawl-and-serve (PR 9): the shared-pool schedule runs a full
    /// discovery crawl first (with [`CrawlConfig::serve_feed`] forced on,
    /// so every fetched page is buffered for the serving layer), then
    /// `refresh_epochs` rounds each re-queueing `refresh_per_epoch`
    /// refreshes per site — round-robin over that site's known pages in
    /// first-fetch order — through the *same* pool window, so refresh
    /// traffic competes with nothing but itself under the same politeness
    /// gates and budgets as discovery. Refresh outcomes accumulate in
    /// [`FleetOutcome::refresh`]. The `sb-serve` runtime layers
    /// policy-driven selection and an evolving origin on top of the same
    /// session primitives; this mode is the fleet-shaped building block.
    Continuous {
        max_in_flight: usize,
        refresh_epochs: usize,
        refresh_per_epoch: usize,
    },
}

/// The multi-site scheduler. See the module docs.
pub struct Fleet {
    jobs: Vec<FleetJob>,
    workers: usize,
    mode: FleetMode,
    assignment: Option<Vec<usize>>,
}

impl Fleet {
    /// A fleet driving its sites on up to `workers` threads (clamped to
    /// the number of jobs at run time; 0 means one worker), in
    /// [`FleetMode::PerSite`] unless [`Fleet::mode`] says otherwise.
    pub fn new(workers: usize) -> Self {
        Fleet { jobs: Vec::new(), workers: workers.max(1), mode: FleetMode::PerSite, assignment: None }
    }

    /// Selects the transport mode (fluent).
    pub fn mode(mut self, mode: FleetMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for [`FleetMode::SharedPool`] with a global window of
    /// `max_in_flight`.
    pub fn shared_pool(self, max_in_flight: usize) -> Self {
        self.mode(FleetMode::SharedPool { max_in_flight })
    }

    /// Shorthand for [`FleetMode::Sharded`].
    pub fn sharded(self, shards: usize, max_in_flight: usize) -> Self {
        self.mode(FleetMode::Sharded { shards, max_in_flight })
    }

    /// Shorthand for [`FleetMode::Continuous`].
    pub fn continuous(
        self,
        max_in_flight: usize,
        refresh_epochs: usize,
        refresh_per_epoch: usize,
    ) -> Self {
        self.mode(FleetMode::Continuous {
            max_in_flight,
            refresh_epochs,
            refresh_per_epoch,
        })
    }

    /// Overrides the hash-based site→shard assignment of
    /// [`FleetMode::Sharded`]: `assignment[i] % shards` is site `i`'s
    /// initial shard (sites past the end go to shard 0). The invariance
    /// tests and load-skew drills use this to force arbitrary — including
    /// pathologically imbalanced — placements; results must not depend on
    /// it.
    pub fn shard_assignment(mut self, assignment: Vec<usize>) -> Self {
        self.assignment = Some(assignment);
        self
    }

    pub fn push(&mut self, job: FleetJob) {
        self.jobs.push(job);
    }

    /// Fluent [`Fleet::push`].
    pub fn job(mut self, job: FleetJob) -> Self {
        self.push(job);
        self
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Crawls every site to completion and reports. In
    /// [`FleetMode::PerSite`] jobs are dealt round-robin onto workers and
    /// each worker interleaves its sessions by smallest simulated elapsed
    /// time (politeness-aware fairness); in [`FleetMode::SharedPool`] one
    /// driver thread rations the pool's global window across every
    /// session.
    pub fn run(self) -> FleetOutcome {
        let started = std::time::Instant::now();
        let (sites, shards) = match self.mode {
            FleetMode::PerSite => {
                let n = self.jobs.len();
                let workers = self.workers.clamp(1, n.max(1));

                // Deal jobs round-robin, remembering submission order.
                let mut buckets: Vec<Vec<(usize, FleetJob)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (i, job) in self.jobs.into_iter().enumerate() {
                    buckets[i % workers].push((i, job));
                }

                let mut indexed: Vec<(usize, SiteReport)> = Vec::with_capacity(n);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| scope.spawn(|| drive_bucket(bucket)))
                        .collect();
                    for h in handles {
                        indexed.extend(h.join().expect("fleet worker panicked"));
                    }
                });
                indexed.sort_by_key(|(i, _)| *i);
                (indexed.into_iter().map(|(_, r)| r).collect(), Vec::new())
            }
            FleetMode::SharedPool { max_in_flight } => {
                (drive_shared(self.jobs, max_in_flight), Vec::new())
            }
            FleetMode::Sharded { shards, max_in_flight } => {
                run_sharded(self.jobs, shards, max_in_flight, self.assignment)
            }
            FleetMode::Continuous { max_in_flight, refresh_epochs, refresh_per_epoch } => (
                drive_continuous(self.jobs, max_in_flight, refresh_epochs, refresh_per_epoch),
                Vec::new(),
            ),
        };

        let mut traffic = Traffic::default();
        let mut targets = 0u64;
        let mut abandoned = AbandonCounts::default();
        let mut mem = MemGauges::default();
        let mut refresh = RefreshStats::default();
        for report in &sites {
            if let Ok(o) = &report.outcome {
                traffic.absorb(&o.traffic);
                targets += o.targets_found();
                abandoned.merge(&o.abandoned);
                mem.merge(&o.mem);
                refresh.merge(&o.refresh);
            }
        }
        FleetOutcome {
            sites,
            traffic,
            targets,
            wall_secs: started.elapsed().as_secs_f64(),
            abandoned,
            mem,
            refresh,
            shards,
        }
    }
}

/// Everything a session borrows (server, oracle, strategy, config, root),
/// materialised so sessions can borrow from the driver's frame.
struct Prepared {
    index: usize,
    name: String,
    root: String,
    server: SharedServer,
    oracle: Option<SharedOracle>,
    strategy: Box<dyn Strategy>,
    cfg: CrawlConfig,
}

impl Prepared {
    fn from_job(index: usize, job: FleetJob) -> Prepared {
        Prepared {
            index,
            name: job.name,
            root: job.root,
            server: job.server,
            oracle: job.oracle,
            strategy: (job.strategy)(),
            cfg: job.cfg,
        }
    }
}

/// Assembles the per-site reports once every session ended.
fn collect_reports<'a>(
    sessions: Vec<Result<CrawlSession<'a>, ConfigError>>,
    names: Vec<(usize, String)>,
) -> Vec<(usize, SiteReport)> {
    sessions
        .into_iter()
        .zip(names)
        .map(|(s, (index, name))| {
            let outcome = s.map(|session| {
                debug_assert!(
                    session.finish_reason() != Some(FinishReason::Cancelled),
                    "fleet sessions run to natural completion"
                );
                session.finish()
            });
            (index, SiteReport { name, outcome })
        })
        .collect()
}

/// Drives one worker's share of the fleet: builds every session, then
/// repeatedly steps the unfinished session with the smallest simulated
/// elapsed time until all are done.
fn drive_bucket(bucket: Vec<(usize, FleetJob)>) -> Vec<(usize, SiteReport)> {
    let mut prepared: Vec<Prepared> =
        bucket.into_iter().map(|(index, job)| Prepared::from_job(index, job)).collect();
    let names: Vec<(usize, String)> = prepared.iter().map(|p| (p.index, p.name.clone())).collect();

    let mut sessions: Vec<Result<CrawlSession<'_>, ConfigError>> = prepared
        .iter_mut()
        .map(|p| {
            // One transport per site for the whole crawl: `new` builds the
            // job's `PipelinedTransport` (window and politeness from its
            // config) exactly as a standalone session would, so fleet and
            // solo runs cannot diverge. Jobs needing a custom transport
            // (retries, robots gates) go through
            // `CrawlSession::with_transport` instead.
            CrawlSession::new(
                p.server.as_ref(),
                p.oracle.as_ref().map(|o| o.as_ref() as &dyn Oracle),
                &p.root,
                p.strategy.as_mut(),
                &p.cfg,
            )
        })
        .collect();

    // Politeness-aware interleaving: always advance the session whose
    // simulated clock is furthest behind. Ties are broken by site
    // (submission) index — an explicit, stable order, so scheduling stays
    // deterministic even when several sites share one transport clock
    // value (common right after start, when every clock is 0).
    loop {
        let mut pick: Option<(usize, (f64, usize))> = None;
        for (k, s) in sessions.iter().enumerate() {
            let Ok(session) = s else { continue };
            if session.is_finished() {
                continue;
            }
            let key = (session.traffic().elapsed_secs, names[k].0);
            if pick.is_none_or(|(_, best)| key < best) {
                pick = Some((k, key));
            }
        }
        let Some((k, _)) = pick else { break };
        if let Ok(session) = &mut sessions[k] {
            session.step();
        }
    }

    collect_reports(sessions, names)
}

/// Builds one pool-handle session per prepared site. Pool site indexes
/// run `base..base + prepared.len()` — `base` is the number of handles
/// the pool has already issued (0 for the shared-pool mode's one-shot
/// pool; the running handle count for a sharded wave reusing its shard's
/// pool).
fn pool_sessions<'a>(
    pool: &'a SharedTransportPool,
    prepared: &'a mut [Prepared],
) -> Vec<Result<CrawlSession<'a>, ConfigError>> {
    prepared
        .iter_mut()
        .map(|p| {
            // One pool handle per site: the handle owns the site's
            // politeness shard and cost counters, the pool owns the global
            // window and clock. The handle's window (the pool's) wins over
            // the job's `max_in_flight`, as documented on
            // `CrawlSession::with_transport`.
            let handle = pool.handle(p.server.as_ref(), p.cfg.policy.clone(), p.cfg.politeness);
            CrawlSession::with_transport(
                Box::new(handle),
                p.oracle.as_ref().map(|o| o.as_ref() as &dyn Oracle),
                &p.root,
                p.strategy.as_mut(),
                &p.cfg,
            )
        })
        .collect()
}

/// The two-move shared-pool schedule (see the module docs), over sessions
/// whose pool site indexes are `base + k` for session `k`. Runs every
/// session to completion.
fn drive_pool_schedule(
    pool: &SharedTransportPool,
    sessions: &mut [Result<CrawlSession<'_>, ConfigError>],
    base: usize,
) {
    // `declined[k]`: session k was offered a slot and could not use it
    // (budget-blocked, or frontier dry pending its in-flight answers).
    // Only k's own completions can change that, so k stays out of the
    // refill rotation until its next drain.
    let mut declined = vec![false; sessions.len()];
    loop {
        // Refill: one slot at a time to the least-elapsed host (ties by
        // site index), so the site that has waited longest for a delivery
        // gets capacity first and no session can swallow the whole window.
        while pool.has_capacity() {
            let pick = sessions
                .iter()
                .enumerate()
                .filter(|(k, s)| {
                    !declined[*k] && s.as_ref().is_ok_and(|sess| !sess.is_finished())
                })
                .min_by(|(a, _), (b, _)| {
                    pool.site_elapsed(base + *a)
                        .total_cmp(&pool.site_elapsed(base + *b))
                        .then(a.cmp(b))
                })
                .map(|(k, _)| k);
            let Some(k) = pick else { break };
            let Ok(session) = &mut sessions[k] else { unreachable!("filtered above") };
            if !session.refill_one() && !session.is_finished() {
                declined[k] = true;
            }
        }
        // Drain: exactly the site owning the globally next completion, so
        // cross-site delivery order is the pool's deterministic order
        // (arrival, ties by site index) and the shared clock never jumps
        // past a pending arrival.
        let Some(site) = pool.next_completion_site() else {
            // Nothing in flight and nobody could submit: every live
            // session has finished (a session with an empty window either
            // submits or finishes during its refill offer).
            break;
        };
        let k = site - base;
        if let Ok(session) = &mut sessions[k] {
            session.drain_completions();
        }
        declined[k] = false;
    }
    debug_assert!(
        sessions.iter().all(|s| s.as_ref().map_or(true, |sess| sess.is_finished())),
        "shared-pool driver exited with live sessions"
    );
}

/// Drives the whole fleet through one [`SharedTransportPool`] on the
/// calling thread. See the module docs for the two-move schedule.
fn drive_shared(jobs: Vec<FleetJob>, max_in_flight: usize) -> Vec<SiteReport> {
    let pool = SharedTransportPool::new(max_in_flight);
    let mut prepared: Vec<Prepared> =
        jobs.into_iter().enumerate().map(|(index, job)| Prepared::from_job(index, job)).collect();
    let names: Vec<(usize, String)> = prepared.iter().map(|p| (p.index, p.name.clone())).collect();

    let mut sessions = pool_sessions(&pool, &mut prepared);
    drive_pool_schedule(&pool, &mut sessions, 0);

    collect_reports(sessions, names).into_iter().map(|(_, r)| r).collect()
}

/// [`FleetMode::Continuous`]: one shared pool, a full discovery pass,
/// then `refresh_epochs` rounds of `refresh_per_epoch` refreshes per
/// site. The refresh ring is each site's pages in first-fetch order (the
/// order the serve feed buffered them), holding the latest known body
/// hash so a refreshed page's changed/unchanged verdict compares against
/// what the store would actually be serving. Round-robin admission —
/// policy-driven selection lives in `sb-serve`, not here.
fn drive_continuous(
    jobs: Vec<FleetJob>,
    max_in_flight: usize,
    refresh_epochs: usize,
    refresh_per_epoch: usize,
) -> Vec<SiteReport> {
    let pool = SharedTransportPool::new(max_in_flight);
    let mut prepared: Vec<Prepared> = jobs
        .into_iter()
        .enumerate()
        .map(|(index, mut job)| {
            // The serving layer needs every fetched page buffered.
            job.cfg.serve_feed = true;
            Prepared::from_job(index, job)
        })
        .collect();
    let names: Vec<(usize, String)> = prepared.iter().map(|p| (p.index, p.name.clone())).collect();

    let mut sessions = pool_sessions(&pool, &mut prepared);
    drive_pool_schedule(&pool, &mut sessions, 0);

    // Per-site refresh rings: (url, latest body hash), first-fetch order.
    let mut rings: Vec<Vec<(String, u64)>> = Vec::with_capacity(sessions.len());
    let mut slots: Vec<HashMap<String, usize>> = Vec::with_capacity(sessions.len());
    for s in sessions.iter_mut() {
        let mut ring: Vec<(String, u64)> = Vec::new();
        let mut slot: HashMap<String, usize> = HashMap::new();
        if let Ok(session) = s {
            for page in session.take_refreshed() {
                match slot.get(&page.url) {
                    Some(&i) => ring[i].1 = page.body_hash,
                    None => {
                        slot.insert(page.url.clone(), ring.len());
                        ring.push((page.url, page.body_hash));
                    }
                }
            }
        }
        rings.push(ring);
        slots.push(slot);
    }
    let mut cursors = vec![0usize; rings.len()];

    for _ in 0..refresh_epochs {
        for (k, s) in sessions.iter_mut().enumerate() {
            let Ok(session) = s else { continue };
            if rings[k].is_empty() {
                continue;
            }
            // `queue_refresh` reopens the finished session; the next
            // schedule pass drives it back to completion.
            for _ in 0..refresh_per_epoch {
                let (url, hash) = &rings[k][cursors[k] % rings[k].len()];
                session.queue_refresh(url, *hash);
                cursors[k] += 1;
            }
        }
        drive_pool_schedule(&pool, &mut sessions, 0);
        for (k, s) in sessions.iter_mut().enumerate() {
            let Ok(session) = s else { continue };
            for page in session.take_refreshed() {
                match slots[k].get(&page.url) {
                    Some(&i) => rings[k][i].1 = page.body_hash,
                    None => {
                        // A refresh harvested a brand-new URL (evolved
                        // origin): it joins the ring.
                        slots[k].insert(page.url.clone(), rings[k].len());
                        rings[k].push((page.url, page.body_hash));
                    }
                }
            }
        }
    }

    collect_reports(sessions, names)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

/// Stable site → shard hash (FxHash over name then submission index):
/// deterministic across runs and shard counts, so drills and benches see
/// the same placement every time.
fn shard_of(index: usize, name: &str, shards: usize) -> usize {
    use std::hash::{BuildHasher, Hash, Hasher};
    let mut h = sb_webgraph::FxBuildHasher::default().build_hasher();
    name.hash(&mut h);
    index.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// The sharded fleet's shared work ledger: one backlog of pending
/// (submission index, job) pairs per shard. Shards pop their own backlog
/// from the front and steal from the *back* of the most-loaded backlog,
/// so a victim's imminent work is disturbed last.
type Ledger = Mutex<Vec<VecDeque<(usize, FleetJob)>>>;

/// Drives one shard: waves of at most `max_in_flight` sites through a
/// persistent per-shard [`SharedTransportPool`], stealing whole pending
/// sites from the most-loaded backlog when its own runs dry.
fn drive_shard(
    shard: usize,
    ledger: &Ledger,
    max_in_flight: usize,
) -> (Vec<(usize, SiteReport)>, ShardReport) {
    let pool = SharedTransportPool::new(max_in_flight);
    // A wave wider than the in-flight window could never add concurrency,
    // so cap it there: smaller waves mean more (steal-safe) boundaries.
    let cap = max_in_flight.max(1);
    let mut reports: Vec<(usize, SiteReport)> = Vec::new();
    let mut shard_report = ShardReport { sites: 0, stolen: 0, ..ShardReport::default() };
    // Pool site indexes keep counting across waves (one handle per driven
    // site); each wave's sessions start at the running total.
    let mut base = 0usize;

    loop {
        // Take the next wave under the ledger lock: own backlog first,
        // else steal up to half the most-loaded backlog (whole sites only
        // — pending jobs have no session and nothing in flight, so a
        // steal cannot split a crawl across pools).
        let wave: Vec<(usize, FleetJob)> = {
            let mut backlogs = ledger.lock();
            if !backlogs[shard].is_empty() {
                let take = cap.min(backlogs[shard].len());
                backlogs[shard].drain(..take).collect()
            } else {
                let victim = (0..backlogs.len())
                    .filter(|&s| s != shard && !backlogs[s].is_empty())
                    .max_by_key(|&s| (backlogs[s].len(), std::cmp::Reverse(s)));
                match victim {
                    None => break,
                    Some(v) => {
                        let take = cap.min(backlogs[v].len().div_ceil(2));
                        let at = backlogs[v].len() - take;
                        shard_report.stolen += take as u64;
                        backlogs[v].split_off(at).into()
                    }
                }
            }
        };

        let mut prepared: Vec<Prepared> =
            wave.into_iter().map(|(index, job)| Prepared::from_job(index, job)).collect();
        let names: Vec<(usize, String)> =
            prepared.iter().map(|p| (p.index, p.name.clone())).collect();
        let wave_len = prepared.len();

        let mut sessions = pool_sessions(&pool, &mut prepared);
        drive_pool_schedule(&pool, &mut sessions, base);
        base += wave_len;
        shard_report.sites += wave_len;

        for (index, report) in collect_reports(sessions, names) {
            if let Ok(o) = &report.outcome {
                shard_report.mem.merge(&o.mem);
                shard_report.abandoned.merge(&o.abandoned);
                shard_report.refresh.merge(&o.refresh);
            }
            reports.push((index, report));
        }
    }

    shard_report.sim_makespan_secs = pool.clock_secs();
    (reports, shard_report)
}

/// [`FleetMode::Sharded`]: hash sites onto `shards` backlogs, drive one
/// shard per thread, steal whole pending sites at wave boundaries. See
/// the module docs for why per-site results stay shard-count invariant.
fn run_sharded(
    jobs: Vec<FleetJob>,
    shards: usize,
    max_in_flight: usize,
    assignment: Option<Vec<usize>>,
) -> (Vec<SiteReport>, Vec<ShardReport>) {
    let shards = shards.max(1);
    let mut backlogs: Vec<VecDeque<(usize, FleetJob)>> = (0..shards).map(|_| VecDeque::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        let s = match &assignment {
            Some(a) => a.get(i).copied().unwrap_or(0) % shards,
            None => shard_of(i, &job.name, shards),
        };
        backlogs[s].push_back((i, job));
    }
    let ledger: Ledger = Mutex::new(backlogs);
    let ledger = &ledger;

    let mut indexed: Vec<(usize, SiteReport)> = Vec::new();
    let mut shard_reports: Vec<ShardReport> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| scope.spawn(move || drive_shard(shard, ledger, max_in_flight)))
            .collect();
        for h in handles {
            let (reports, shard_report) = h.join().expect("fleet shard panicked");
            indexed.extend(reports);
            shard_reports.push(shard_report);
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, r)| r).collect(), shard_reports)
}
