//! The resumable crawl session: Algorithms 3 and 4 as a step-driven,
//! **pipelined** API.
//!
//! [`CrawlSession`] holds every piece of crawl state the old one-shot
//! `crawl()` call buried inside its engine — the visited set `T ∪ F`
//! (interned), the budget counters, the redirect handler, early stopping —
//! and exposes it behind three verbs:
//!
//! * [`CrawlSession::step`] pumps the crawl once — drain transport
//!   completions, process each page (strategy feedback included), refill
//!   the in-flight window with cascade work and fresh selections — and
//!   returns a [`StepReport`];
//! * [`CrawlSession::run`] loops `step()` to completion and returns the
//!   classic [`CrawlOutcome`];
//! * [`CrawlSession::observe`] attaches [`CrawlObserver`]s that receive
//!   every typed [`CrawlEvent`] as it happens — tracing, progress bars and
//!   archivers all hang off this hook ([`TraceObserver`] is built in, so
//!   [`CrawlOutcome::trace`] keeps existing).
//!
//! ## The pipelined fetch boundary (PR 4)
//!
//! Fetching goes through the nonblocking [`Transport`]
//! (`sb_httpsim::transport`): the session submits GETs into a bounded
//! in-flight pool ([`CrawlConfig::max_in_flight`]) and processes
//! completions in the transport's deterministic arrival order, so
//! simulated transfer latency overlaps across requests while the
//! per-host politeness gate — enforced *at the transport*, not here —
//! keeps dispatches properly spaced. Refilling prioritises cascade work
//! (redirect continuations first, then immediately-fetch children) over
//! new strategy selections, which preserves Algorithm 4's processing
//! order. The one-feedback-per-selection invariant survives the window:
//! every pulled selection delivers exactly one of
//! `feedback`/`feedback_target`/`feedback_error`, with selections still in
//! flight when the session stops receiving `feedback_error`
//! ([`AbandonReason::SessionClosed`]).
//!
//! With `max_in_flight = 1` (the default) the pipeline degenerates to the
//! exact sequential engine: behaviour is frozen — `CrawlSession::run`
//! replays the seed engine byte-for-byte on the determinism property tests
//! (`crates/bench/tests/determinism.rs`), with one *knowing* exception —
//! the post-target trace point is amended in place instead of appended as
//! a duplicate (see [`TraceObserver`]).
//!
//! Holding a session between steps is what makes multi-site scheduling
//! possible: [`crate::fleet::Fleet`] interleaves many sessions on worker
//! threads, something the blocking call could never do. A session can
//! even run over a transport window it does not own (PR 5): built via
//! [`CrawlSession::with_transport`] on a shared-pool handle
//! (`sb_httpsim::SharedTransportPool`), the public
//! [`CrawlSession::refill_one`]/[`CrawlSession::drain_completions`] pair
//! lets an external driver ration the pool's global window across many
//! sessions and drain them in the pool's deterministic completion order.
//! Construction is validated ([`CrawlConfig::builder`], [`ConfigError`])
//! — an unparseable root or a zero budget is rejected before any request
//! is spent.

use crate::early_stop::{EarlyStop, EarlyStopConfig};
use crate::events::{
    AbandonCounts, AbandonReason, CrawlEvent, CrawlObserver, CrawlSnapshot, FinishReason,
    MemGauges, RefreshStats, TraceObserver,
};
use crate::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use crate::trace::CrawlTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sb_httpsim::transport::{PipelinedTransport, Request, RequestId, Transport};
use sb_httpsim::{Fetched, HttpServer, Politeness};
use sb_scale::VisitedSet;
use sb_webgraph::interner::UrlId;
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::url::{Url, UrlError};
use std::collections::VecDeque;

/// The crawl budget `B` of Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Stop after this many requests (GET + HEAD): the `ω ≡ 1` cost model.
    Requests(u64),
    /// Stop after this much received volume (bytes): the size cost model.
    VolumeBytes(u64),
    /// Crawl until the frontier is exhausted.
    Unlimited,
}

/// Ground-truth URL classes, for oracle strategies (Sec 4.3's `SB-ORACLE`,
/// `TP-OFF`'s first phase and `TRES`'s URL oracle).
pub trait Oracle: Sync {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass;
}

impl Oracle for sb_webgraph::Website {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass {
        match self.lookup(url) {
            Some(id) => self.true_class(id),
            None => sb_webgraph::UrlClass::Neither,
        }
    }
}

impl Oracle for sb_scale::StreamingSite {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass {
        use sb_webgraph::gen::SiteSource;
        match self.lookup(url) {
            Some(id) => self.true_class(id),
            None => sb_webgraph::UrlClass::Neither,
        }
    }
}

/// Session configuration. Build one with [`CrawlConfig::builder`] for
/// upfront validation, or as a struct literal (the pre-session API) when
/// the values are known-good constants.
pub struct CrawlConfig {
    pub budget: Budget,
    pub policy: MimePolicy,
    pub politeness: Politeness,
    pub seed: u64,
    pub early_stop: Option<EarlyStopConfig>,
    /// Keep the bodies of retrieved targets (Table 7 needs them).
    pub keep_target_bodies: bool,
    /// Hard cap on crawl steps (safety valve for tests).
    pub max_steps: Option<u64>,
    /// Optional URL admission filter, checked on every discovered link and
    /// redirect target (the root is exempt). `false` drops the URL before
    /// any request is spent on it — this is where robots.txt compliance
    /// plugs in (see [`robots_filter`]).
    pub url_filter: Option<UrlFilter>,
    /// Extra URLs fetched right after the root, before the strategy takes
    /// over — sitemap seeding (`sb_httpsim::fetch_sitemap_urls`). Off-site
    /// and filter-rejected entries are skipped; each seed costs its
    /// requests against the budget like any other fetch.
    pub seed_urls: Vec<String>,
    /// Requests the session may keep in flight at once (PR 4). `1` (the
    /// default) is the exact sequential engine; wider windows overlap
    /// simulated transfer latency within the politeness gate's spacing.
    /// A struct-literal `0` is clamped to `1` (like junk seed URLs, the
    /// unvalidated path is lenient); the validating builder rejects it
    /// with [`ConfigError::ZeroMaxInFlight`] instead.
    pub max_in_flight: usize,
    /// Crawl as this user agent under the site's robots.txt (PR 6). When
    /// set, the session's very first request fetches `/robots.txt` through
    /// the transport (charged against the budget like any other GET); a
    /// 200 answer is parsed and from then on disallowed URLs are dropped
    /// at link admission and a declared `Crawl-delay` is applied to the
    /// transport's politeness gate automatically — no manual
    /// [`sb_httpsim::transport::Transport::apply_crawl_delay`] call
    /// needed. Composes with [`CrawlConfig::url_filter`] (both must
    /// admit). `None` (the default) changes nothing.
    pub robots_agent: Option<String>,
    /// Visited-set compaction threshold (PR 7): the first this many
    /// discovered URLs are kept as full interner entries; URLs past the
    /// threshold are kept as 64-bit fingerprints + canonical text
    /// (`sb_scale::VisitedSet`), cutting per-URL memory several-fold on
    /// large crawls. `usize::MAX` (the default) never compacts and is
    /// bit-identical to the plain interner.
    pub compact_visited_threshold: usize,
    /// Feed a serving layer (PR 9): buffer every successfully fetched
    /// HTML page and target as a [`RefreshedPage`] (body shared, FNV-1a
    /// body hash precomputed) for [`CrawlSession::take_refreshed`] to
    /// drain into a snapshot store. The driver must drain periodically or
    /// the buffer grows with the crawl. Off (the default) buffers only
    /// explicit refresh fetches and changes nothing else.
    pub serve_feed: bool,
}

/// Boxed URL predicate for [`CrawlConfig::url_filter`].
pub type UrlFilter = Box<dyn Fn(&Url) -> bool + Send + Sync>;

/// Builds a [`CrawlConfig::url_filter`] that enforces a parsed robots.txt
/// for the given user agent.
///
/// ```
/// use sb_crawler::engine::{robots_filter, CrawlConfig};
/// use sb_httpsim::RobotsTxt;
///
/// let robots = RobotsTxt::parse("User-agent: *\nDisallow: /private/");
/// let cfg = CrawlConfig { url_filter: Some(robots_filter(robots, "sbcrawl")), ..Default::default() };
/// # let _ = cfg;
/// ```
pub fn robots_filter(robots: sb_httpsim::RobotsTxt, agent: &str) -> UrlFilter {
    let agent = agent.to_owned();
    Box::new(move |url: &Url| robots.allows(&agent, &url.path))
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            budget: Budget::Unlimited,
            policy: MimePolicy::default(),
            politeness: Politeness::default(),
            seed: 0,
            early_stop: None,
            keep_target_bodies: false,
            max_steps: None,
            url_filter: None,
            seed_urls: Vec::new(),
            max_in_flight: 1,
            robots_agent: None,
            compact_visited_threshold: usize::MAX,
            serve_feed: false,
        }
    }
}

impl CrawlConfig {
    /// A fluent, validating builder.
    pub fn builder() -> CrawlConfigBuilder {
        CrawlConfigBuilder { cfg: CrawlConfig::default() }
    }
}

/// What [`CrawlConfigBuilder::build`] or [`CrawlSession::new`] rejects
/// before any request is spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The crawl root is not an absolute http(s) URL.
    InvalidRoot { url: String, error: UrlError },
    /// A zero budget can never admit the root fetch.
    ZeroBudget,
    /// `max_steps == 0` can never admit the root fetch.
    ZeroMaxSteps,
    /// Politeness delay must be finite and ≥ 0; bandwidth must be > 0.
    InvalidPoliteness,
    /// A seed URL is not an absolute http(s) URL.
    InvalidSeedUrl { url: String, error: UrlError },
    /// `max_in_flight == 0` can never admit any fetch.
    ZeroMaxInFlight,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidRoot { url, error } => {
                write!(f, "crawl root {url:?} is not an absolute http(s) URL: {error}")
            }
            ConfigError::ZeroBudget => f.write_str("crawl budget is zero"),
            ConfigError::ZeroMaxSteps => f.write_str("max_steps is zero"),
            ConfigError::InvalidPoliteness => {
                f.write_str("politeness delay must be finite and ≥ 0, bandwidth > 0")
            }
            ConfigError::InvalidSeedUrl { url, error } => {
                write!(f, "seed URL {url:?} is not an absolute http(s) URL: {error}")
            }
            ConfigError::ZeroMaxInFlight => f.write_str("max_in_flight is zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`CrawlConfig`]; [`CrawlConfigBuilder::build`]
/// validates everything that does not need the root URL (the root is
/// validated by [`CrawlSession::new`]).
pub struct CrawlConfigBuilder {
    cfg: CrawlConfig,
}

impl CrawlConfigBuilder {
    pub fn budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    pub fn mime_policy(mut self, policy: MimePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    pub fn politeness(mut self, politeness: Politeness) -> Self {
        self.cfg.politeness = politeness;
        self
    }

    /// RNG seed shared by the engine and the strategy's frontier draws.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn early_stop(mut self, cfg: EarlyStopConfig) -> Self {
        self.cfg.early_stop = Some(cfg);
        self
    }

    pub fn keep_target_bodies(mut self, keep: bool) -> Self {
        self.cfg.keep_target_bodies = keep;
        self
    }

    pub fn max_steps(mut self, max: u64) -> Self {
        self.cfg.max_steps = Some(max);
        self
    }

    pub fn url_filter(mut self, filter: UrlFilter) -> Self {
        self.cfg.url_filter = Some(filter);
        self
    }

    /// In-flight request window (validated ≥ 1 at build).
    pub fn max_in_flight(mut self, window: usize) -> Self {
        self.cfg.max_in_flight = window;
        self
    }

    /// Crawl as this agent under the site's robots.txt (fetched, parsed
    /// and enforced automatically — see [`CrawlConfig::robots_agent`]).
    pub fn robots_agent(mut self, agent: impl Into<String>) -> Self {
        self.cfg.robots_agent = Some(agent.into());
        self
    }

    /// Keep full visited-set entries for the first `threshold` URLs and
    /// 64-bit fingerprints past it — see
    /// [`CrawlConfig::compact_visited_threshold`].
    pub fn compact_visited_threshold(mut self, threshold: usize) -> Self {
        self.cfg.compact_visited_threshold = threshold;
        self
    }

    /// Buffer every fetched page for a serving layer — see
    /// [`CrawlConfig::serve_feed`].
    pub fn serve_feed(mut self, on: bool) -> Self {
        self.cfg.serve_feed = on;
        self
    }

    /// Appends one seed URL (validated at [`CrawlConfigBuilder::build`]).
    pub fn seed_url(mut self, url: impl Into<String>) -> Self {
        self.cfg.seed_urls.push(url.into());
        self
    }

    /// Appends many seed URLs (validated at [`CrawlConfigBuilder::build`]).
    pub fn seed_urls(mut self, urls: impl IntoIterator<Item = String>) -> Self {
        self.cfg.seed_urls.extend(urls);
        self
    }

    pub fn build(self) -> Result<CrawlConfig, ConfigError> {
        let cfg = self.cfg;
        match cfg.budget {
            Budget::Requests(0) | Budget::VolumeBytes(0) => return Err(ConfigError::ZeroBudget),
            _ => {}
        }
        if cfg.max_steps == Some(0) {
            return Err(ConfigError::ZeroMaxSteps);
        }
        if cfg.max_in_flight == 0 {
            return Err(ConfigError::ZeroMaxInFlight);
        }
        let p = cfg.politeness;
        if !p.delay_secs.is_finite()
            || p.delay_secs < 0.0
            || !p.bytes_per_sec.is_finite()
            || p.bytes_per_sec <= 0.0
        {
            return Err(ConfigError::InvalidPoliteness);
        }
        for url in &cfg.seed_urls {
            if let Err(error) = Url::parse(url) {
                return Err(ConfigError::InvalidSeedUrl { url: url.clone(), error });
            }
        }
        Ok(cfg)
    }
}

/// A target retrieved during the crawl.
#[derive(Debug, Clone)]
pub struct RetrievedTarget {
    pub url: String,
    pub mime: String,
    /// Present only when [`CrawlConfig::keep_target_bodies`] is set.
    /// Shared bytes — cloning an outcome does not copy target payloads.
    pub body: Option<sb_httpsim::Body>,
}

/// One page delivered to the serving layer (PR 9): an explicit refresh
/// fetch, or — with [`CrawlConfig::serve_feed`] on — any successfully
/// fetched HTML page or target. The body is shared ([`sb_httpsim::Body`]
/// is an `Arc<[u8]>`), so buffering and committing into a snapshot store
/// never copies page bytes.
#[derive(Debug, Clone)]
pub struct RefreshedPage {
    pub url: String,
    pub status: u16,
    /// Normalised MIME type; `None` on failed refreshes.
    pub mime: Option<String>,
    /// Shared body bytes; empty on failed refreshes.
    pub body: sb_httpsim::Body,
    /// FNV-1a hash of the body — the change-detection currency, computed
    /// with the same constants as `sb_revisit::fnv64` so hashes from the
    /// recrawl harness and from sessions are interchangeable.
    pub body_hash: u64,
    /// True for an explicit [`CrawlSession::queue_refresh`] fetch; false
    /// for a discovery fetch buffered because `serve_feed` is on.
    pub refresh: bool,
    /// Refresh fetches only: the body hash differs from the prior hash
    /// handed to `queue_refresh`. Always true for discovery fetches (the
    /// first version of a page is news by definition).
    pub changed: bool,
}

/// FNV-1a (64-bit). Same constants as `sb_revisit::fnv64`, duplicated
/// here so `sb-crawler` does not depend on the revisit crate; the
/// `fnv64_matches_revisit` test in `crates/serve` pins the two equal.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a finished crawl reports.
pub struct CrawlOutcome {
    pub trace: CrawlTrace,
    pub targets: Vec<RetrievedTarget>,
    pub pages_crawled: u64,
    /// True when Sec 4.8 early stopping fired.
    pub stopped_early: bool,
    /// Step at which early stopping fired.
    pub early_stop_at: Option<u64>,
    /// True when the action space exploded (the θ = 0.95 OOM of Table 4).
    pub aborted_oom: bool,
    pub traffic: sb_httpsim::Traffic,
    /// Strategy-specific report (action statistics for the SB crawlers).
    pub report: crate::strategy::StrategyReport,
    /// Why the session stopped.
    pub finish_reason: FinishReason,
    /// Per-reason tally of abandoned fetches (PR 6) — the crawl's waste
    /// ledger: timeouts, exhausted retries, quarantined hosts, dead
    /// redirects.
    pub abandoned: AbandonCounts,
    /// Final memory gauges (PR 7/8): the visited-set and frontier
    /// footprint at the instant the session ended, so fleet drivers can
    /// aggregate a run's memory profile without observing every step.
    pub mem: MemGauges,
    /// Refresh ledger (PR 9): all zero unless the session re-admitted
    /// known URLs via [`CrawlSession::queue_refresh`].
    pub refresh: RefreshStats,
}

impl CrawlOutcome {
    pub fn targets_found(&self) -> u64 {
        self.targets.len() as u64
    }
}

/// What one [`CrawlSession::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Outer selections begun so far, this step included (the root and
    /// each admitted seed count as one each).
    pub steps: u64,
    /// GET requests delivered during this step.
    pub fetched: u64,
    /// Targets retrieved during this step.
    pub new_targets: u64,
    /// Cumulative requests (GET + HEAD) after this step.
    pub requests: u64,
    /// Requests still in the transport's pool after this step.
    pub in_flight: usize,
    /// `None` while the session can still advance; the finish reason once
    /// it cannot. A finishing step does no crawl work.
    pub finished: Option<FinishReason>,
    /// Cumulative per-reason abandonment tally after this step (PR 6).
    pub abandoned: AbandonCounts,
    /// Memory gauges after this step (PR 7): visited-set size and byte
    /// estimate, frontier length and spilled portion.
    pub mem: MemGauges,
    /// Cumulative refresh ledger after this step (PR 9).
    pub refresh: RefreshStats,
}

/// Phase of the session's outer loop (Algorithm 3's shape, unrolled so it
/// can pause between selections).
#[derive(Clone, Copy)]
enum Phase {
    /// The root fetch has not happened yet.
    Root,
    /// Seed URLs from index `.0` onward remain to be considered.
    Seeds(usize),
    /// The strategy drives selections.
    Steady,
    Done(FinishReason),
}

/// One unit of fetch work: an interned page plus whether its reward feeds
/// back into an outer selection, plus the redirect-chain budget left.
struct Job {
    id: UrlId,
    depth: u32,
    /// Feedback token of the outer selection; inner (immediately-retrieved)
    /// pages carry `None` — their rewards have no owning action.
    token: Option<u64>,
    /// Redirect hops this chain may still follow (`MAX_REDIRECTS` GETs
    /// total, exactly like the sequential chain loop).
    hops_left: u8,
    /// `Some(prior_body_hash)` marks a refresh fetch (PR 9): the answer
    /// is buffered for the serving layer and hash-compared against the
    /// prior version instead of re-counting targets or feeding the
    /// strategy a second observation for an already-counted page.
    refresh: Option<u64>,
}

impl Job {
    fn fresh(id: UrlId, depth: u32, token: Option<u64>) -> Job {
        Job { id, depth, token, hops_left: (MAX_REDIRECTS - 1) as u8, refresh: None }
    }
}

pub(crate) const MAX_REDIRECTS: usize = 5;

/// What one [`CrawlSession::pull_selection`] did.
enum Pull {
    /// A fetch was dispatched (into the window, or synchronously for an
    /// unparseable selection — either way budget was consumed).
    Dispatched,
    /// The pull consumed nothing fetchable (degenerate strategy answer);
    /// keep refilling.
    Skipped,
    /// Refilling must stop: the session finished, or the frontier is dry
    /// while completions are still outstanding.
    Stalled,
}

/// Fans one event out to the built-in trace observer plus every registered
/// observer. Lives outside `CrawlSession` so emission can borrow the
/// session's interner strings immutably while the observers are mutated.
struct ObserverHub<'a> {
    trace: TraceObserver,
    user: Vec<&'a mut dyn CrawlObserver>,
}

impl ObserverHub<'_> {
    #[inline]
    fn emit(&mut self, snap: &CrawlSnapshot, event: &CrawlEvent<'_>) {
        self.trace.on_event(event, snap);
        for obs in &mut self.user {
            obs.on_event(event, snap);
        }
    }
}

/// A paused, resumable crawl of one site. See the module docs.
pub struct CrawlSession<'a> {
    transport: Box<dyn Transport + 'a>,
    oracle: Option<&'a dyn Oracle>,
    cfg: &'a CrawlConfig,
    strategy: &'a mut dyn Strategy,
    hub: ObserverHub<'a>,
    root: Url,
    /// Canonical root string, kept for the `SessionStarted` event (the
    /// root is not interned until the first step).
    root_text: String,
    /// `T ∪ F` membership: every discovered URL is interned exactly once
    /// (one hash of the parsed `Url`, no string round-trips); the id keys
    /// everything downstream. Exact entries up to
    /// [`CrawlConfig::compact_visited_threshold`], fingerprints past it.
    visited: VisitedSet,
    /// Discovery depth per interned id (parallel to the interner).
    depths: Vec<u32>,
    targets: Vec<RetrievedTarget>,
    pages_crawled: u64,
    /// Crawl step `t` (pages entered into `T`), as in Algorithm 4.
    t: u64,
    /// Outer selections begun.
    steps: u64,
    early: Option<EarlyStop>,
    aborted_oom: bool,
    rng: StdRng,
    phase: Phase,
    /// Cascade work discovered but not yet submitted (FetchNow children, in
    /// Algorithm 4's FIFO order). Redirect continuations never queue here —
    /// they re-submit immediately, keeping their freed window slot.
    pending: VecDeque<Job>,
    /// Selections a batching strategy handed back that have not yet been
    /// submitted (PR 10): one ranking pass can fill the whole window, but
    /// each member still goes through the per-submission budget gates, so
    /// the tail of a batch waits here. Drained ahead of new pulls; members
    /// still buffered at shutdown drain as `feedback_error` — a pulled
    /// selection is owed exactly one observation whether or not it ever
    /// reached the wire.
    batch_buf: VecDeque<Selection>,
    /// Submitted work, parallel to the transport's pool (submission order).
    inflight: Vec<(RequestId, Job)>,
    /// Reused completion buffer (no per-poll allocation).
    poll_buf: Vec<(RequestId, Fetched)>,
    /// Per-reason abandonment tally (PR 6), kept in lockstep with every
    /// `CrawlEvent::Abandoned` emission.
    abandoned: AbandonCounts,
    /// Parsed robots.txt, when [`CrawlConfig::robots_agent`] is set and
    /// the fetch answered 200. Checked at every link admission.
    robots: Option<sb_httpsim::RobotsTxt>,
    /// Refresh selections awaiting a window slot (PR 9): (url, prior body
    /// hash), drained ahead of fresh discovery picks during refill.
    refresh_queue: VecDeque<(String, u64)>,
    /// Pages buffered for the serving layer, drained by
    /// [`CrawlSession::take_refreshed`].
    refreshed: Vec<RefreshedPage>,
    /// Cumulative refresh ledger (PR 9).
    refresh_stats: RefreshStats,
}

impl<'a> CrawlSession<'a> {
    /// Validates the root and builds a session over a fresh
    /// [`PipelinedTransport`] for `server` (window and politeness from
    /// `cfg`). No request is spent until the first [`CrawlSession::step`].
    pub fn new(
        server: &'a dyn HttpServer,
        oracle: Option<&'a dyn Oracle>,
        root_url: &str,
        strategy: &'a mut dyn Strategy,
        cfg: &'a CrawlConfig,
    ) -> Result<Self, ConfigError> {
        let transport: Box<dyn Transport + 'a> = Box::new(
            PipelinedTransport::new(server, cfg.policy.clone(), cfg.politeness)
                .with_window(cfg.max_in_flight.max(1)),
        );
        Self::with_transport(transport, oracle, root_url, strategy, cfg)
    }

    /// As [`CrawlSession::new`] over a caller-built [`Transport`] — custom
    /// retry policies, robots `Crawl-delay` gates, shared per-site
    /// transports ([`crate::fleet::Fleet`] uses this). The transport's own
    /// window wins over [`CrawlConfig::max_in_flight`].
    pub fn with_transport(
        transport: Box<dyn Transport + 'a>,
        oracle: Option<&'a dyn Oracle>,
        root_url: &str,
        strategy: &'a mut dyn Strategy,
        cfg: &'a CrawlConfig,
    ) -> Result<Self, ConfigError> {
        let root = Url::parse(root_url)
            .map_err(|error| ConfigError::InvalidRoot { url: root_url.to_owned(), error })?;
        let root_text = root.as_string();
        Ok(CrawlSession {
            transport,
            oracle,
            cfg,
            strategy,
            hub: ObserverHub { trace: TraceObserver::new(), user: Vec::new() },
            root,
            root_text,
            visited: VisitedSet::with_threshold(cfg.compact_visited_threshold),
            depths: Vec::new(),
            targets: Vec::new(),
            pages_crawled: 0,
            t: 0,
            steps: 0,
            early: cfg.early_stop.map(EarlyStop::new),
            aborted_oom: false,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc3a5_c85c_97cb_3127),
            phase: Phase::Root,
            pending: VecDeque::new(),
            batch_buf: VecDeque::new(),
            inflight: Vec::new(),
            poll_buf: Vec::new(),
            abandoned: AbandonCounts::default(),
            robots: None,
            refresh_queue: VecDeque::new(),
            refreshed: Vec::new(),
            refresh_stats: RefreshStats::default(),
        })
    }

    /// Registers an observer (fluent). Observers attached before the first
    /// step see the whole event stream, `SessionStarted` included.
    pub fn observe(mut self, observer: &'a mut dyn CrawlObserver) -> Self {
        self.hub.user.push(observer);
        self
    }

    /// The canonical root URL.
    pub fn root(&self) -> &Url {
        &self.root
    }

    /// Cost counters so far (delivered requests; in-flight work is charged
    /// at completion).
    pub fn traffic(&self) -> sb_httpsim::Traffic {
        self.transport.traffic()
    }

    /// Targets retrieved so far.
    pub fn targets_found(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Outer selections begun so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Pages fetched so far (GET attempts, redirect hops included).
    pub fn pages_crawled(&self) -> u64 {
        self.pages_crawled
    }

    /// Requests currently in the transport's pool.
    pub fn in_flight(&self) -> usize {
        self.transport.in_flight()
    }

    /// The per-request trace recorded so far.
    pub fn trace(&self) -> &CrawlTrace {
        self.hub.trace.trace()
    }

    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }

    /// The finish reason, once the session stopped.
    pub fn finish_reason(&self) -> Option<FinishReason> {
        match self.phase {
            Phase::Done(reason) => Some(reason),
            _ => None,
        }
    }

    fn snapshot(&self) -> CrawlSnapshot {
        CrawlSnapshot {
            traffic: self.transport.traffic(),
            targets: self.targets.len() as u64,
            steps: self.steps,
            mem: self.mem_gauges(),
        }
    }

    /// Memory gauges right now (PR 7): visited-set size and footprint
    /// estimate, frontier length and spilled portion.
    pub fn mem_gauges(&self) -> MemGauges {
        MemGauges {
            visited_urls: self.visited.len(),
            visited_bytes: self.visited.bytes_estimate(),
            visited_collisions: self.visited.collisions(),
            frontier_len: self.strategy.frontier_len(),
            frontier_spilled: self.strategy.frontier_spilled(),
        }
    }

    /// Pumps the crawl once: refill the in-flight window (cascade work
    /// first, then fresh selections — the root and admitted seeds count as
    /// selections), then drain and process the next batch of completions.
    /// With `max_in_flight = 1` one submission completes per pump, which
    /// reproduces the sequential engine's operation order exactly. On an
    /// already-finished (or just-finishing) session this is a no-op that
    /// reports the reason. When the transport is a shared-pool handle
    /// whose window is currently held by *other* sites, a step is a
    /// harmless no-op too — but prefer driving shared sessions through
    /// [`CrawlSession::refill_one`]/[`CrawlSession::drain_completions`]
    /// (as [`crate::fleet::FleetMode::SharedPool`] does) so the global
    /// window is rationed fairly.
    pub fn step(&mut self) -> StepReport {
        let before_gets = self.transport.traffic().get_requests;
        let before_targets = self.targets.len() as u64;
        if !self.is_finished() {
            self.pump();
        }
        StepReport {
            steps: self.steps,
            fetched: self.transport.traffic().get_requests - before_gets,
            new_targets: self.targets.len() as u64 - before_targets,
            requests: self.transport.traffic().requests(),
            in_flight: self.transport.in_flight(),
            finished: self.finish_reason(),
            abandoned: self.abandoned,
            mem: self.mem_gauges(),
            refresh: self.refresh_stats,
        }
    }

    /// Per-reason abandonment tally so far (PR 6).
    pub fn abandoned(&self) -> AbandonCounts {
        self.abandoned
    }

    /// Queues a known URL for a refresh fetch (PR 9). The fetch rides the
    /// normal window — politeness-gated, budget-charged, redirect-capped
    /// like any crawl fetch — but its answer goes to the serving layer
    /// ([`CrawlSession::take_refreshed`]) instead of re-counting targets
    /// or feeding the strategy: the page was already observed once at
    /// discovery, and one-feedback-per-selection stays intact.
    /// `prior_hash` is the FNV-1a hash of the version being served;
    /// change detection compares the refetched body against it.
    ///
    /// A session that already finished for a benign reason (frontier
    /// exhausted, max steps) is *reopened*: continuous serving re-admits
    /// work into a drained crawl. It finishes again — emitting a second
    /// `SessionFinished` — once the refresh queue and frontier drain; a
    /// budget-exhausted session re-finishes immediately and the queued
    /// refresh is dropped (visible as `scheduled > completed + failed`).
    pub fn queue_refresh(&mut self, url: &str, prior_hash: u64) {
        self.refresh_stats.scheduled += 1;
        self.refresh_queue.push_back((url.to_owned(), prior_hash));
        if let Phase::Done(_) = self.phase {
            self.phase = Phase::Steady;
        }
    }

    /// Drains the pages buffered for the serving layer: refresh answers,
    /// plus every fetched page when [`CrawlConfig::serve_feed`] is on.
    /// Bodies are shared — draining moves `Arc`s, not bytes.
    pub fn take_refreshed(&mut self) -> Vec<RefreshedPage> {
        std::mem::take(&mut self.refreshed)
    }

    /// Cumulative refresh ledger so far (PR 9).
    pub fn refresh_stats(&self) -> RefreshStats {
        self.refresh_stats
    }

    /// Stamps the staleness percentiles measured by the serving layer
    /// (age-at-read in origin epochs) into the session's
    /// [`RefreshStats`], so they ride [`StepReport`]/[`CrawlOutcome`]
    /// like every other refresh number. Sessions never measure staleness
    /// themselves — only the layer serving reads can.
    pub fn set_staleness(&mut self, p50: f64, p99: f64) {
        self.refresh_stats.staleness_p50 = p50;
        self.refresh_stats.staleness_p99 = p99;
    }

    fn pump(&mut self) {
        self.refill();
        if self.is_finished() {
            return;
        }
        if self.drain_completions() == 0 {
            if !self.transport.has_capacity() && self.transport.in_flight() == 0 {
                // A shared-pool handle whose global window is entirely held
                // by other sites: nothing to submit, nothing of ours to
                // drain. Yield — the pool's driver frees capacity by
                // draining the site that owns the next completion.
                return;
            }
            // Refill neither submitted nor finished while the window was
            // open and idle: unreachable by construction, but never spin.
            debug_assert!(false, "pump stalled with an idle transport");
            let snap = self.snapshot();
            self.hub.emit(&snap, &CrawlEvent::FrontierExhausted);
            self.finish_with(FinishReason::FrontierExhausted);
        }
    }

    /// Drains one transport poll batch and processes every delivered
    /// completion (redirect continuations re-submit, FetchNow children
    /// queue, feedback fires). Returns the number of completions
    /// processed — 0 when this session has nothing deliverable. Public as
    /// shared-pool plumbing: an external driver alternates
    /// [`CrawlSession::refill_one`] and this, in the pool's completion
    /// order ([`sb_httpsim::SharedTransportPool::next_completion_site`]).
    pub fn drain_completions(&mut self) -> usize {
        if self.is_finished() {
            return 0;
        }
        let mut batch = std::mem::take(&mut self.poll_buf);
        self.transport.poll_into(&mut batch);
        let delivered = batch.len();
        for (rid, f) in batch.drain(..) {
            let job = self.take_job(rid);
            self.process_completion(job, f);
        }
        self.poll_buf = batch;
        delivered
    }

    /// Removes the job matching a delivered request (submission order is
    /// preserved for the outstanding-feedback drain).
    fn take_job(&mut self, rid: RequestId) -> Job {
        let pos = self
            .inflight
            .iter()
            .position(|(id, _)| *id == rid)
            .expect("transport delivered an unknown request id");
        self.inflight.remove(pos).1
    }

    /// Fills the transport window: pending cascade work first (Algorithm
    /// 4's FIFO), then — once the cascade is drained — the next selection
    /// source: root fetch, admitted seeds, strategy picks. Mirrors the
    /// sequential engine's check order exactly: the stop checks run before
    /// every selection pull, while cascade submissions re-check only
    /// budget/OOM (as the cascade loop did).
    fn refill(&mut self) {
        self.refill_limit(usize::MAX);
    }

    /// Submits at most one request, respecting every refill rule (cascade
    /// priority, stop checks, budget blocking). Returns whether a fetch
    /// was dispatched. This is the shared-pool plumbing: an external
    /// driver ([`crate::fleet::FleetMode::SharedPool`]) rations the pool's
    /// *global* window one slot at a time across many sessions —
    /// least-elapsed-host first — instead of letting one session's
    /// [`CrawlSession::step`] swallow every free slot. A `false` return
    /// means this session cannot use a slot right now (finished, window
    /// full, budget-blocked, or frontier dry pending in-flight answers) —
    /// its state can change only after its own next
    /// [`CrawlSession::drain_completions`].
    pub fn refill_one(&mut self) -> bool {
        self.refill_limit(1) > 0
    }

    /// The refill loop behind [`CrawlSession::refill`] (no limit) and
    /// [`CrawlSession::refill_one`] (limit 1). Returns dispatched fetches
    /// (synchronous unparseable-selection fetches count — they consume
    /// budget like any dispatch, just not a window slot).
    fn refill_limit(&mut self, limit: usize) -> usize {
        let mut dispatched = 0usize;
        loop {
            if dispatched >= limit || self.is_finished() || !self.transport.has_capacity() {
                return dispatched;
            }
            if let Phase::Root = self.phase {
                let snap = self.snapshot();
                self.hub.emit(&snap, &CrawlEvent::SessionStarted { root: &self.root_text });
                self.fetch_robots();
                let root = self.root.clone();
                let root_id = self.intern_at_depth(&root, 0);
                self.phase = Phase::Seeds(0);
                self.steps += 1;
                if !(self.budget_exhausted() || self.aborted_oom) {
                    self.submit(Job::fresh(root_id, 0, None));
                    dispatched += 1;
                }
                continue;
            }
            if self.budget_exhausted() || self.aborted_oom {
                // Mid-cascade exhaustion drops the remaining queue, exactly
                // as the sequential cascade loop did; remaining seeds are
                // moot. The stop reason fires once the pipeline drains.
                self.pending.clear();
                if let Phase::Seeds(_) = self.phase {
                    self.phase = Phase::Steady;
                }
                if self.transport.in_flight() == 0 {
                    if let Some(reason) = self.stop_check() {
                        self.finish_with(reason);
                    }
                }
                return dispatched;
            }
            if self.budget_blocked() {
                // In-flight work already covers the remaining request or
                // volume budget; wait for delivery instead of overshooting.
                return dispatched;
            }
            if let Some(job) = self.pending.pop_front() {
                self.submit(job);
                dispatched += 1;
                continue;
            }
            if let Some((url, prior)) = self.refresh_queue.pop_front() {
                // Refresh selections go ahead of fresh discovery picks:
                // staleness is paid for in reader-visible age, discovery
                // only in coverage. An unparseable queued URL (caller bug)
                // is dropped as a failed refresh rather than fetched.
                let Ok(u) = Url::parse(&url) else {
                    self.refresh_stats.failed += 1;
                    continue;
                };
                let id = self.intern_at_depth(&u, 0);
                let depth = self.depths[id as usize];
                self.steps += 1;
                self.submit(Job {
                    id,
                    depth,
                    token: None,
                    hops_left: (MAX_REDIRECTS - 1) as u8,
                    refresh: Some(prior),
                });
                dispatched += 1;
                continue;
            }
            if let Some(sel) = self.batch_buf.pop_front() {
                // Tail of a previously ranked batch: already pulled from
                // the strategy, submitted here one per iteration so the
                // budget gates above run between members exactly as they
                // do between single pulls.
                match self.resolve_selection(sel) {
                    Pull::Dispatched => dispatched += 1,
                    Pull::Skipped => {}
                    Pull::Stalled => return dispatched,
                }
                continue;
            }
            match self.phase {
                Phase::Root => unreachable!("handled above"),
                Phase::Seeds(from) => match self.next_admissible_seed(from) {
                    Some((next_from, id)) => {
                        self.phase = Phase::Seeds(next_from);
                        self.steps += 1;
                        self.submit(Job::fresh(id, 1, None));
                        dispatched += 1;
                    }
                    None => {
                        self.phase = Phase::Steady;
                    }
                },
                Phase::Steady => {
                    let pull = if self.strategy.batch_selection() {
                        self.pull_selection_batch()
                    } else {
                        self.pull_selection()
                    };
                    match pull {
                        Pull::Dispatched => dispatched += 1,
                        Pull::Skipped => {}
                        Pull::Stalled => return dispatched,
                    }
                }
                Phase::Done(_) => return dispatched,
            }
        }
    }

    /// The [`CrawlConfig::robots_agent`] handshake (PR 6), run once before
    /// the root fetch: GET `/robots.txt` through the transport (a real,
    /// budget-charged request), parse a 200 answer, apply any declared
    /// `Crawl-delay` to the transport's politeness gate for the root host,
    /// and keep the rules for link admission. Any non-200 answer means no
    /// robots.txt: everything stays admitted, nothing is slowed.
    fn fetch_robots(&mut self) {
        let Some(agent) = self.cfg.robots_agent.clone() else { return };
        let robots_url = format!("{}://{}/robots.txt", self.root.scheme, self.root.host);
        let f = self.transport.fetch_now(&robots_url);
        if f.status != 200 {
            return;
        }
        let robots = sb_httpsim::RobotsTxt::parse(&String::from_utf8_lossy(&f.body));
        self.transport.apply_crawl_delay(&robots, &agent, &self.root.host);
        self.robots = Some(robots);
    }

    /// Link/seed/redirect admission (beyond the structural checks): the
    /// caller's [`CrawlConfig::url_filter`] AND the session's own robots
    /// rules must both admit the URL.
    fn admits(&self, url: &Url) -> bool {
        if self.cfg.url_filter.as_ref().is_some_and(|f| !f(url)) {
            return false;
        }
        match (&self.robots, &self.cfg.robots_agent) {
            (Some(robots), Some(agent)) => robots.allows(agent, &url.path),
            _ => true,
        }
    }

    /// One strategy pull: stop checks, then `next()`, then submission.
    /// [`Pull::Stalled`] means refilling must stop (finished, or the
    /// frontier is dry while completions are still outstanding).
    fn pull_selection(&mut self) -> Pull {
        if let Some(reason) = self.stop_check() {
            self.finish_with(reason);
            return Pull::Stalled;
        }
        let Some(sel) = self.strategy.next(&mut self.rng) else {
            if self.transport.in_flight() == 0 {
                let snap = self.snapshot();
                self.hub.emit(&snap, &CrawlEvent::FrontierExhausted);
                self.finish_with(FinishReason::FrontierExhausted);
            }
            // Otherwise in-flight pages may still discover links: the
            // strategy is asked again after the next drain.
            return Pull::Stalled;
        };
        self.resolve_selection(sel)
    }

    /// One batched strategy pull (PR 10): stop checks once, then one
    /// [`Strategy::select_batch`] sized to the window's free slots (capped
    /// by the remaining request budget, so a batch never pulls selections
    /// a [`Budget::Requests`] crawl could not submit). The members land in
    /// [`CrawlSession::batch_buf`]; the refill loop submits them one per
    /// iteration, re-checking the budget gates between members. At
    /// `max_in_flight = 1` the batch is a single selection and the
    /// behaviour — one stop check, one pull, one submission — matches
    /// [`CrawlSession::pull_selection`] exactly.
    fn pull_selection_batch(&mut self) -> Pull {
        if let Some(reason) = self.stop_check() {
            self.finish_with(reason);
            return Pull::Stalled;
        }
        let free = self
            .transport
            .max_in_flight()
            .saturating_sub(self.transport.in_flight())
            .max(1);
        let k = match self.cfg.budget {
            Budget::Requests(b) => {
                let headroom = b
                    .saturating_sub(self.transport.traffic().requests())
                    .saturating_sub(self.transport.in_flight() as u64);
                // `budget_blocked()` was false, so headroom ≥ 1.
                free.min(headroom.max(1).min(usize::MAX as u64) as usize)
            }
            _ => free,
        };
        let batch = self.strategy.select_batch(k, &mut self.rng);
        let snap = self.snapshot();
        self.hub
            .emit(&snap, &CrawlEvent::BatchSelected { requested: k, selected: batch.len() });
        if batch.is_empty() {
            if self.transport.in_flight() == 0 {
                let snap = self.snapshot();
                self.hub.emit(&snap, &CrawlEvent::FrontierExhausted);
                self.finish_with(FinishReason::FrontierExhausted);
            }
            return Pull::Stalled;
        }
        self.batch_buf.extend(batch);
        // Nothing submitted yet: the loop's next iterations drain the
        // buffer through the budget gates.
        Pull::Skipped
    }

    /// Submits one already-pulled selection, delivering the error
    /// observation itself when the selection cannot be fetched. Shared by
    /// the single-pull and batch paths; never returns [`Pull::Stalled`].
    fn resolve_selection(&mut self, Selection { url, token }: Selection) -> Pull {
        self.steps += 1;
        let id = match url {
            // Hot path: the id resolves without parsing or hashing.
            SelUrl::Id(id) if (id as usize) < self.depths.len() => id,
            SelUrl::Id(_) => {
                // An id the engine never handed out — a strategy bug.
                // Degrade like an error answer instead of panicking.
                debug_assert!(false, "strategy returned an unknown UrlId");
                self.strategy.feedback_error(token);
                return Pull::Skipped;
            }
            // Boundary path (oracle answer keys): parse + intern once.
            SelUrl::Text(s) => {
                let Ok(u) = Url::parse(&s) else {
                    // Seed parity: an unparseable selection still costs
                    // a (404-answered) fetch, so budgets advance and a
                    // re-offering strategy cannot spin the loop. Whatever
                    // the server answers, nothing classifiable can come
                    // back from a URL the engine cannot even parse — the
                    // selection is abandoned, and like every abandoned
                    // selection it delivers the error feedback (one
                    // observation per pull, no exceptions).
                    self.t += 1;
                    self.pages_crawled += 1;
                    let f = self.transport.fetch_now(&s);
                    let snap = self.snapshot();
                    self.hub.emit(
                        &snap,
                        &CrawlEvent::Fetched {
                            url: &s,
                            status: f.status,
                            mime: f.mime.as_deref(),
                            depth: 0,
                        },
                    );
                    self.strategy.feedback_error(token);
                    self.abandoned.record(AbandonReason::UnparseableSelection);
                    self.hub.emit(
                        &snap,
                        &CrawlEvent::Abandoned {
                            url: &s,
                            reason: AbandonReason::UnparseableSelection,
                        },
                    );
                    // A synchronous charged fetch: counts as a dispatch for
                    // the refill limit even though no window slot is held.
                    return Pull::Dispatched;
                };
                self.intern_at_depth(&u, 0)
            }
        };
        let depth = self.depths[id as usize];
        self.submit(Job::fresh(id, depth, Some(token)));
        Pull::Dispatched
    }

    /// Hands one job to the transport and records it as in flight.
    fn submit(&mut self, job: Job) {
        let rid = self.transport.submit(Request::get(self.visited.text(job.id)));
        let snap = self.snapshot();
        self.hub.emit(
            &snap,
            &CrawlEvent::Submitted {
                url: self.visited.text(job.id),
                in_flight: self.transport.in_flight(),
            },
        );
        self.inflight.push((rid, job));
    }

    /// The ordered stop checks of the outer loop. Order matters for replay
    /// fidelity: budget, OOM, `max_steps`, then the early-stop observation
    /// (which mutates the detector and must not run when an earlier check
    /// already fired).
    fn stop_check(&mut self) -> Option<FinishReason> {
        if self.budget_exhausted() {
            let tr = self.transport.traffic();
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::BudgetExhausted {
                    requests: tr.requests(),
                    total_bytes: tr.total_bytes(),
                },
            );
            return Some(FinishReason::BudgetExhausted);
        }
        if self.aborted_oom {
            return Some(FinishReason::ActionSpaceOverflow);
        }
        if let Some(max) = self.cfg.max_steps {
            if self.t >= max {
                return Some(FinishReason::MaxSteps);
            }
        }
        if let Some(es) = &mut self.early {
            if es.observe(self.t, self.targets.len() as f64) {
                let snap = self.snapshot();
                self.hub.emit(&snap, &CrawlEvent::EarlyStopped { step: self.t });
                return Some(FinishReason::EarlyStopped);
            }
        }
        None
    }

    fn finish_with(&mut self, reason: FinishReason) {
        // Work already dispatched is wire cost spent whether or not the
        // session reads the answers: drain the pool so the final traffic
        // (the paper's request/volume metrics) and clock stay honest. The
        // answers themselves are discarded — the jobs are abandoned below.
        // No-op when `max_in_flight == 1` (nothing in flight here).
        let mut buf = std::mem::take(&mut self.poll_buf);
        while self.transport.in_flight() > 0 {
            self.transport.poll_into(&mut buf);
            if buf.is_empty() {
                break;
            }
        }
        buf.clear();
        self.poll_buf = buf;
        // Work still in flight must not end silently: every outstanding
        // job gets a terminal `Abandoned` event (so observers can pair it
        // with its `Submitted`), and selections additionally deliver the
        // error observation — never a silent pull. Empty by construction
        // when `max_in_flight == 1`.
        let outstanding = std::mem::take(&mut self.inflight);
        for (_, job) in &outstanding {
            if let Some(token) = job.token {
                self.strategy.feedback_error(token);
            }
            if job.refresh.is_some() {
                self.refresh_stats.failed += 1;
            }
            self.abandoned.record(AbandonReason::SessionClosed);
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::Abandoned {
                    url: self.visited.text(job.id),
                    reason: AbandonReason::SessionClosed,
                },
            );
        }
        // Batch members pulled but never submitted (PR 10): same contract
        // as in-flight work — one error observation per pulled selection,
        // one terminal `Abandoned` each, never a silent pull.
        let buffered = std::mem::take(&mut self.batch_buf);
        for sel in &buffered {
            self.strategy.feedback_error(sel.token);
            self.abandoned.record(AbandonReason::SessionClosed);
            let url = match &sel.url {
                SelUrl::Id(id) if (*id as usize) < self.depths.len() => {
                    self.visited.text(*id).to_owned()
                }
                SelUrl::Id(_) => continue, // bogus id: nothing to name
                SelUrl::Text(s) => s.clone(),
            };
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::Abandoned { url: &url, reason: AbandonReason::SessionClosed },
            );
        }
        self.pending.clear();
        let snap = self.snapshot();
        self.hub.emit(&snap, &CrawlEvent::SessionFinished { reason });
        self.phase = Phase::Done(reason);
    }

    /// Loops [`CrawlSession::step`] to completion, then reports.
    pub fn run(mut self) -> CrawlOutcome {
        while !self.is_finished() {
            self.step();
        }
        self.finish()
    }

    /// Ends the session (cancelling it when it has not finished naturally)
    /// and assembles the [`CrawlOutcome`].
    pub fn finish(mut self) -> CrawlOutcome {
        if !self.is_finished() {
            self.finish_with(FinishReason::Cancelled);
        }
        let reason = self.finish_reason().expect("session finished");
        let mem = self.mem_gauges();
        CrawlOutcome {
            trace: self.hub.trace.into_trace(),
            targets: self.targets,
            pages_crawled: self.pages_crawled,
            stopped_early: reason == FinishReason::EarlyStopped,
            early_stop_at: self.early.as_ref().and_then(|e| e.triggered_at()),
            aborted_oom: self.aborted_oom,
            traffic: self.transport.traffic(),
            report: self.strategy.report(),
            finish_reason: reason,
            abandoned: self.abandoned,
            mem,
            refresh: self.refresh_stats,
        }
    }

    fn budget_exhausted(&self) -> bool {
        let traffic = self.transport.traffic();
        match self.cfg.budget {
            Budget::Requests(b) => traffic.requests() >= b,
            Budget::VolumeBytes(b) => traffic.total_bytes() >= b,
            Budget::Unlimited => false,
        }
    }

    /// In-flight work already counts against the remaining allowance (it
    /// will be charged on delivery), so the window must not overfill past
    /// the budget: under a request budget each outstanding request covers
    /// one remaining slot, and under a volume budget the outstanding wire
    /// bytes ([`Transport::in_flight_bytes`]) cover the remaining volume —
    /// without the latter, a 16-wide window could overshoot
    /// [`Budget::VolumeBytes`] by fifteen whole transfers the sequential
    /// engine would never have started. Always false at
    /// `max_in_flight = 1`, where nothing is in flight when this runs (the
    /// frozen replay is untouched).
    fn budget_blocked(&self) -> bool {
        match self.cfg.budget {
            Budget::Requests(b) => {
                self.transport.traffic().requests() + self.transport.in_flight() as u64 >= b
            }
            Budget::VolumeBytes(b) => {
                self.transport.traffic().total_bytes() + self.transport.in_flight_bytes() >= b
            }
            Budget::Unlimited => false,
        }
    }

    /// Finds the next seed URL that passes the admission checks (parseable,
    /// on-site, filter-admitted, unseen), interning it. Returns the index
    /// to resume from plus the interned id.
    fn next_admissible_seed(&mut self, from: usize) -> Option<(usize, UrlId)> {
        let cfg = self.cfg;
        for (offset, seed) in cfg.seed_urls[from.min(cfg.seed_urls.len())..].iter().enumerate() {
            let Ok(url) = Url::parse(seed) else { continue };
            if !url.same_site_as(&self.root) {
                continue;
            }
            if !self.admits(&url) {
                continue;
            }
            if self.visited.get(&url).is_some() {
                continue;
            }
            let id = self.intern_at_depth(&url, 1);
            return Some((from + offset + 1, id));
        }
        None
    }

    /// Interns `url`, recording `depth` if it is new. Existing ids keep
    /// their original discovery depth.
    fn intern_at_depth(&mut self, url: &Url, depth: u32) -> UrlId {
        let id = self.visited.intern(url);
        if id as usize == self.depths.len() {
            self.depths.push(depth);
        }
        id
    }

    /// A job ended without a class observation: the pull happened but
    /// nothing came back. Deliver the error feedback for outer selections —
    /// a selection must never be a silent pull (satellite of ISSUE 2) —
    /// and announce the abandonment.
    fn abandon(&mut self, job: &Job, id: UrlId, reason: AbandonReason) {
        if let Some(token) = job.token {
            self.strategy.feedback_error(token);
        }
        if job.refresh.is_some() {
            // A refresh that ends without a body bought no freshness.
            self.refresh_stats.failed += 1;
        }
        self.abandoned.record(reason);
        let snap = self.snapshot();
        self.hub.emit(&snap, &CrawlEvent::Abandoned { url: self.visited.text(id), reason });
    }

    /// Algorithm 4 for one delivered answer. Redirect chains continue by
    /// re-submitting immediately (the delivered request just freed a
    /// window slot, and the sequential chain loop ran without budget
    /// checks between hops); FetchNow children queue on `pending`.
    fn process_completion(&mut self, job: Job, f: Fetched) {
        let id = job.id;
        let snap = self.snapshot();
        self.hub.emit(
            &snap,
            &CrawlEvent::Completed {
                url: self.visited.text(id),
                status: f.status,
                in_flight: self.transport.in_flight(),
            },
        );
        self.t += 1;
        self.pages_crawled += 1;
        let snap = self.snapshot();
        self.hub.emit(
            &snap,
            &CrawlEvent::Fetched {
                url: self.visited.text(id),
                status: f.status,
                mime: f.mime.as_deref(),
                depth: job.depth,
            },
        );
        if f.status.is_redirect_status() {
            // 3xx: follow the Location if it is new, on-site and admitted.
            let Some(loc) = f.location.clone() else {
                return self.abandon(&job, id, AbandonReason::RedirectMissingLocation);
            };
            let Ok(next) = self.visited.base(id).join(&loc) else {
                return self.abandon(&job, id, AbandonReason::RedirectUnparseable);
            };
            if !next.same_site_as(&self.root) {
                return self.abandon(&job, id, AbandonReason::RedirectOffSite);
            }
            if !self.admits(&next) {
                return self.abandon(&job, id, AbandonReason::RedirectFiltered);
            }
            let next_id = match self.visited.get(&next) {
                // Already known elsewhere; don't crawl twice.
                Some(known) if known != id => {
                    return self.abandon(&job, id, AbandonReason::RedirectAlreadyKnown);
                }
                // Self-redirect: keep following until the chain bound.
                Some(known) => known,
                None => self.intern_at_depth(&next, job.depth),
            };
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::Redirected {
                    from: self.visited.text(id),
                    to: self.visited.text(next_id),
                },
            );
            if job.hops_left == 0 {
                return self.abandon(&job, next_id, AbandonReason::RedirectChainExhausted);
            }
            return self.submit(Job {
                id: next_id,
                depth: job.depth,
                token: job.token,
                hops_left: job.hops_left - 1,
                refresh: job.refresh,
            });
        }

        // Errors (4xx/5xx) yield nothing; the selection still consumed a
        // pull. Hazard-layer answers (synthetic timeout/quarantine
        // statuses, retried-then-failed 5xx) get their own reasons.
        if f.status >= 400 {
            if job.refresh.is_some() {
                // The serving layer needs the death certificate (404/410
                // feed the recrawl policies' `died` observations); the
                // `failed` tally is charged by `abandon` below.
                self.refreshed.push(RefreshedPage {
                    url: self.visited.text(id).to_owned(),
                    status: f.status,
                    mime: f.mime.clone(),
                    body: f.body.clone(),
                    body_hash: fnv64(&f.body),
                    refresh: true,
                    changed: false,
                });
            }
            return self.abandon(&job, id, AbandonReason::for_http_failure(f.status, f.attempts));
        }
        if f.interrupted {
            // Banned MIME type: transfer aborted (Algorithm 3).
            return self.abandon(&job, id, AbandonReason::Interrupted);
        }
        let Some(mime) = f.mime.clone() else {
            return self.abandon(&job, id, AbandonReason::MissingMime);
        };

        if self.cfg.policy.is_html_mime(&mime) {
            if let Some(prior) = job.refresh {
                // A refreshed page still harvests links — an evolved
                // origin's new URLs enter the frontier here, which is how
                // refresh and discovery interleave — but the strategy gets
                // no second class observation for an already-counted page.
                self.note_refreshed(id, f.status, &mime, f.body.clone(), prior);
                self.process_html(id, job.depth, &f.body);
                return;
            }
            self.strategy.on_fetched(id, self.visited.text(id), sb_webgraph::UrlClass::Html);
            let reward = self.process_html(id, job.depth, &f.body);
            if let Some(token) = job.token {
                self.strategy.feedback(token, reward);
            }
            if self.cfg.serve_feed {
                self.note_served(id, f.status, &mime, f.body);
            }
        } else if self.cfg.policy.is_target_mime(&mime) {
            // A target: tag its volume and keep it.
            self.transport.tag_target(f.wire_bytes);
            if let Some(prior) = job.refresh {
                // Refreshed target: tagged wire volume (it is target
                // payload), but not re-counted in `targets`.
                self.note_refreshed(id, f.status, &mime, f.body, prior);
                return;
            }
            self.strategy.on_fetched(id, self.visited.text(id), sb_webgraph::UrlClass::Target);
            if self.cfg.serve_feed {
                // Cheap: `Body` is an `Arc<[u8]>` pointer clone.
                self.note_served(id, f.status, &mime, f.body.clone());
            }
            self.targets.push(RetrievedTarget {
                url: self.visited.text(id).to_owned(),
                mime: mime.clone(),
                body: self.cfg.keep_target_bodies.then_some(f.body),
            });
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::TargetRetrieved {
                    url: self.visited.text(id),
                    mime: &mime,
                    ordinal: self.targets.len() as u64,
                },
            );
            if let Some(token) = job.token {
                // Algorithm 4 returns before the R_mean update for targets:
                // the pull happened but no reward observation follows.
                self.strategy.feedback_target(token);
            }
        }
        // Any other MIME type: "Neither", nothing to do.
    }

    /// Buffers a completed refresh fetch for the serving layer and settles
    /// its changed/unchanged verdict against the prior body hash.
    fn note_refreshed(
        &mut self,
        id: UrlId,
        status: u16,
        mime: &str,
        body: sb_httpsim::Body,
        prior: u64,
    ) {
        let hash = fnv64(&body);
        let changed = hash != prior;
        self.refresh_stats.completed += 1;
        if changed {
            self.refresh_stats.changed += 1;
        } else {
            self.refresh_stats.unchanged += 1;
        }
        self.refreshed.push(RefreshedPage {
            url: self.visited.text(id).to_owned(),
            status,
            mime: Some(mime.to_owned()),
            body,
            body_hash: hash,
            refresh: true,
            changed,
        });
    }

    /// Buffers a discovery fetch for the serving layer
    /// ([`CrawlConfig::serve_feed`]): the page's first served version.
    fn note_served(&mut self, id: UrlId, status: u16, mime: &str, body: sb_httpsim::Body) {
        let hash = fnv64(&body);
        self.refreshed.push(RefreshedPage {
            url: self.visited.text(id).to_owned(),
            status,
            mime: Some(mime.to_owned()),
            body,
            body_hash: hash,
            refresh: false,
            changed: true,
        });
    }

    /// Link extraction + per-link decisions; returns the page's reward
    /// (the number of new links to predicted targets, queued for fetch).
    fn process_html(&mut self, page_id: UrlId, page_depth: u32, body: &[u8]) -> f64 {
        // Zero-copy parse path (PR 3): the body is borrowed when it is
        // valid UTF-8 (the render cache guarantees it), and every extracted
        // link borrows `html` in turn — owned conversion happens only below,
        // at the interner boundary, for URLs that outlive the page.
        let html = sb_html::body_str(body);
        let links = sb_html::extract_links_with(&html, self.strategy.link_needs());
        // One clone of the parsed base per page (instead of a re-parse);
        // per link, membership is checked on the parsed `Url` itself, so
        // known links cost one hash and zero allocations.
        let base = self.visited.base(page_id);
        let mut reward = 0.0;
        let mut new_links = 0u32;
        for link in &links {
            let Ok(resolved) = base.join(&link.href) else { continue };
            // Only in-website links enter the graph (Sec 2.2).
            if !resolved.same_site_as(&self.root) {
                continue;
            }
            // u_new ∉ T ∪ F
            if self.visited.get(&resolved).is_some() {
                continue;
            }
            // Extension blocklist: skipped without any bookkeeping.
            if self.cfg.policy.has_blocked_extension(&resolved) {
                continue;
            }
            // URL admission filter (robots.txt etc.): dropped unrequested.
            if !self.admits(&resolved) {
                continue;
            }
            let id = self.intern_at_depth(&resolved, page_depth + 1);
            new_links += 1;
            let new_link = NewLink {
                id,
                url: &resolved,
                url_str: self.visited.text(id),
                html: link,
                source_depth: page_depth,
            };
            let mut services = Services {
                transport: &mut *self.transport,
                oracle: self.oracle,
                policy: &self.cfg.policy,
            };
            let decision = self.strategy.decide(&new_link, &mut services);
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::LinkDiscovered {
                    url: self.visited.text(id),
                    depth: page_depth + 1,
                    decision,
                },
            );
            match decision {
                // Enqueue/Skip need no bookkeeping: interning above already
                // recorded membership and depth.
                LinkDecision::Enqueue | LinkDecision::Skip => {}
                LinkDecision::FetchNow => {
                    reward += 1.0;
                    self.pending.push_back(Job::fresh(id, page_depth + 1, None));
                }
                LinkDecision::ActionSpaceFull => {
                    self.aborted_oom = true;
                    return reward;
                }
            }
        }
        let snap = self.snapshot();
        self.hub.emit(
            &snap,
            &CrawlEvent::PageProcessed { url: self.visited.text(page_id), new_links, reward },
        );
        reward
    }
}

trait StatusExt {
    fn is_redirect_status(&self) -> bool;
}

impl StatusExt for u16 {
    fn is_redirect_status(&self) -> bool {
        (300..400).contains(self)
    }
}
