//! The resumable crawl session: Algorithms 3 and 4 as a step-driven API.
//!
//! [`CrawlSession`] holds every piece of crawl state the old one-shot
//! `crawl()` call buried inside its engine — the visited set `T ∪ F`
//! (interned), the budget counters, the redirect handler, early stopping —
//! and exposes it behind three verbs:
//!
//! * [`CrawlSession::step`] advances exactly **one outer selection**
//!   (including its FetchNow cascade) and returns a [`StepReport`];
//! * [`CrawlSession::run`] loops `step()` to completion and returns the
//!   classic [`CrawlOutcome`];
//! * [`CrawlSession::observe`] attaches [`CrawlObserver`]s that receive
//!   every typed [`CrawlEvent`] as it happens — tracing, progress bars and
//!   archivers all hang off this hook ([`TraceObserver`] is built in, so
//!   [`CrawlOutcome::trace`] keeps existing).
//!
//! Holding a session between steps is what makes multi-site scheduling
//! possible: [`crate::fleet::Fleet`] interleaves many sessions on worker
//! threads, something the blocking call could never do. Construction is
//! validated ([`CrawlConfig::builder`], [`ConfigError`]) — an unparseable
//! root or a zero budget is rejected before any request is spent.
//!
//! Behaviour is frozen: `CrawlSession::run` replays the seed engine
//! byte-for-byte on the determinism property tests
//! (`crates/bench/tests/determinism.rs`), with one *knowing* exception —
//! the post-target trace point is amended in place instead of appended as
//! a duplicate (see [`TraceObserver`]).

use crate::early_stop::{EarlyStop, EarlyStopConfig};
use crate::events::{
    AbandonReason, CrawlEvent, CrawlObserver, CrawlSnapshot, FinishReason, TraceObserver,
};
use crate::strategy::{LinkDecision, NewLink, SelUrl, Selection, Services, Strategy};
use crate::trace::CrawlTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sb_httpsim::{Client, HttpServer, Politeness};
use sb_webgraph::interner::{UrlId, UrlInterner};
use sb_webgraph::mime::MimePolicy;
use sb_webgraph::url::{Url, UrlError};
use std::collections::VecDeque;

/// The crawl budget `B` of Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Stop after this many requests (GET + HEAD): the `ω ≡ 1` cost model.
    Requests(u64),
    /// Stop after this much received volume (bytes): the size cost model.
    VolumeBytes(u64),
    /// Crawl until the frontier is exhausted.
    Unlimited,
}

/// Ground-truth URL classes, for oracle strategies (Sec 4.3's `SB-ORACLE`,
/// `TP-OFF`'s first phase and `TRES`'s URL oracle).
pub trait Oracle: Sync {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass;
}

impl Oracle for sb_webgraph::Website {
    fn class_of(&self, url: &str) -> sb_webgraph::UrlClass {
        match self.lookup(url) {
            Some(id) => self.true_class(id),
            None => sb_webgraph::UrlClass::Neither,
        }
    }
}

/// Session configuration. Build one with [`CrawlConfig::builder`] for
/// upfront validation, or as a struct literal (the pre-session API) when
/// the values are known-good constants.
pub struct CrawlConfig {
    pub budget: Budget,
    pub policy: MimePolicy,
    pub politeness: Politeness,
    pub seed: u64,
    pub early_stop: Option<EarlyStopConfig>,
    /// Keep the bodies of retrieved targets (Table 7 needs them).
    pub keep_target_bodies: bool,
    /// Hard cap on crawl steps (safety valve for tests).
    pub max_steps: Option<u64>,
    /// Optional URL admission filter, checked on every discovered link and
    /// redirect target (the root is exempt). `false` drops the URL before
    /// any request is spent on it — this is where robots.txt compliance
    /// plugs in (see [`robots_filter`]).
    pub url_filter: Option<UrlFilter>,
    /// Extra URLs fetched right after the root, before the strategy takes
    /// over — sitemap seeding (`sb_httpsim::fetch_sitemap_urls`). Off-site
    /// and filter-rejected entries are skipped; each seed costs its
    /// requests against the budget like any other fetch.
    pub seed_urls: Vec<String>,
}

/// Boxed URL predicate for [`CrawlConfig::url_filter`].
pub type UrlFilter = Box<dyn Fn(&Url) -> bool + Send + Sync>;

/// Builds a [`CrawlConfig::url_filter`] that enforces a parsed robots.txt
/// for the given user agent.
///
/// ```
/// use sb_crawler::engine::{robots_filter, CrawlConfig};
/// use sb_httpsim::RobotsTxt;
///
/// let robots = RobotsTxt::parse("User-agent: *\nDisallow: /private/");
/// let cfg = CrawlConfig { url_filter: Some(robots_filter(robots, "sbcrawl")), ..Default::default() };
/// # let _ = cfg;
/// ```
pub fn robots_filter(robots: sb_httpsim::RobotsTxt, agent: &str) -> UrlFilter {
    let agent = agent.to_owned();
    Box::new(move |url: &Url| robots.allows(&agent, &url.path))
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            budget: Budget::Unlimited,
            policy: MimePolicy::default(),
            politeness: Politeness::default(),
            seed: 0,
            early_stop: None,
            keep_target_bodies: false,
            max_steps: None,
            url_filter: None,
            seed_urls: Vec::new(),
        }
    }
}

impl CrawlConfig {
    /// A fluent, validating builder.
    pub fn builder() -> CrawlConfigBuilder {
        CrawlConfigBuilder { cfg: CrawlConfig::default() }
    }
}

/// What [`CrawlConfigBuilder::build`] or [`CrawlSession::new`] rejects
/// before any request is spent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The crawl root is not an absolute http(s) URL.
    InvalidRoot { url: String, error: UrlError },
    /// A zero budget can never admit the root fetch.
    ZeroBudget,
    /// `max_steps == 0` can never admit the root fetch.
    ZeroMaxSteps,
    /// Politeness delay must be finite and ≥ 0; bandwidth must be > 0.
    InvalidPoliteness,
    /// A seed URL is not an absolute http(s) URL.
    InvalidSeedUrl { url: String, error: UrlError },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidRoot { url, error } => {
                write!(f, "crawl root {url:?} is not an absolute http(s) URL: {error}")
            }
            ConfigError::ZeroBudget => f.write_str("crawl budget is zero"),
            ConfigError::ZeroMaxSteps => f.write_str("max_steps is zero"),
            ConfigError::InvalidPoliteness => {
                f.write_str("politeness delay must be finite and ≥ 0, bandwidth > 0")
            }
            ConfigError::InvalidSeedUrl { url, error } => {
                write!(f, "seed URL {url:?} is not an absolute http(s) URL: {error}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for [`CrawlConfig`]; [`CrawlConfigBuilder::build`]
/// validates everything that does not need the root URL (the root is
/// validated by [`CrawlSession::new`]).
pub struct CrawlConfigBuilder {
    cfg: CrawlConfig,
}

impl CrawlConfigBuilder {
    pub fn budget(mut self, budget: Budget) -> Self {
        self.cfg.budget = budget;
        self
    }

    pub fn mime_policy(mut self, policy: MimePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    pub fn politeness(mut self, politeness: Politeness) -> Self {
        self.cfg.politeness = politeness;
        self
    }

    /// RNG seed shared by the engine and the strategy's frontier draws.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    pub fn early_stop(mut self, cfg: EarlyStopConfig) -> Self {
        self.cfg.early_stop = Some(cfg);
        self
    }

    pub fn keep_target_bodies(mut self, keep: bool) -> Self {
        self.cfg.keep_target_bodies = keep;
        self
    }

    pub fn max_steps(mut self, max: u64) -> Self {
        self.cfg.max_steps = Some(max);
        self
    }

    pub fn url_filter(mut self, filter: UrlFilter) -> Self {
        self.cfg.url_filter = Some(filter);
        self
    }

    /// Appends one seed URL (validated at [`CrawlConfigBuilder::build`]).
    pub fn seed_url(mut self, url: impl Into<String>) -> Self {
        self.cfg.seed_urls.push(url.into());
        self
    }

    /// Appends many seed URLs (validated at [`CrawlConfigBuilder::build`]).
    pub fn seed_urls(mut self, urls: impl IntoIterator<Item = String>) -> Self {
        self.cfg.seed_urls.extend(urls);
        self
    }

    pub fn build(self) -> Result<CrawlConfig, ConfigError> {
        let cfg = self.cfg;
        match cfg.budget {
            Budget::Requests(0) | Budget::VolumeBytes(0) => return Err(ConfigError::ZeroBudget),
            _ => {}
        }
        if cfg.max_steps == Some(0) {
            return Err(ConfigError::ZeroMaxSteps);
        }
        let p = cfg.politeness;
        if !p.delay_secs.is_finite()
            || p.delay_secs < 0.0
            || !p.bytes_per_sec.is_finite()
            || p.bytes_per_sec <= 0.0
        {
            return Err(ConfigError::InvalidPoliteness);
        }
        for url in &cfg.seed_urls {
            if let Err(error) = Url::parse(url) {
                return Err(ConfigError::InvalidSeedUrl { url: url.clone(), error });
            }
        }
        Ok(cfg)
    }
}

/// A target retrieved during the crawl.
#[derive(Debug, Clone)]
pub struct RetrievedTarget {
    pub url: String,
    pub mime: String,
    /// Present only when [`CrawlConfig::keep_target_bodies`] is set.
    /// Shared bytes — cloning an outcome does not copy target payloads.
    pub body: Option<sb_httpsim::Body>,
}

/// Everything a finished crawl reports.
pub struct CrawlOutcome {
    pub trace: CrawlTrace,
    pub targets: Vec<RetrievedTarget>,
    pub pages_crawled: u64,
    /// True when Sec 4.8 early stopping fired.
    pub stopped_early: bool,
    /// Step at which early stopping fired.
    pub early_stop_at: Option<u64>,
    /// True when the action space exploded (the θ = 0.95 OOM of Table 4).
    pub aborted_oom: bool,
    pub traffic: sb_httpsim::Traffic,
    /// Strategy-specific report (action statistics for the SB crawlers).
    pub report: crate::strategy::StrategyReport,
    /// Why the session stopped.
    pub finish_reason: FinishReason,
}

impl CrawlOutcome {
    pub fn targets_found(&self) -> u64 {
        self.targets.len() as u64
    }
}

/// What one [`CrawlSession::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepReport {
    /// Outer selections completed so far, this step included (the root and
    /// each admitted seed count as one each).
    pub steps: u64,
    /// GET requests issued during this step (its whole cascade).
    pub fetched: u64,
    /// Targets retrieved during this step.
    pub new_targets: u64,
    /// Cumulative requests (GET + HEAD) after this step.
    pub requests: u64,
    /// `None` while the session can still advance; the finish reason once
    /// it cannot. A finishing step does no crawl work.
    pub finished: Option<FinishReason>,
}

/// Phase of the session's outer loop (Algorithm 3's shape, unrolled so it
/// can pause between selections).
#[derive(Clone, Copy)]
enum Phase {
    /// The root fetch has not happened yet.
    Root,
    /// Seed URLs from index `.0` onward remain to be considered.
    Seeds(usize),
    /// The strategy drives selections.
    Steady,
    Done(FinishReason),
}

/// Work item of the per-step cascade: an interned page plus whether its
/// reward feeds back into the outer selection.
struct WorkItem {
    id: UrlId,
    depth: u32,
    /// Feedback token of the outer selection; inner (immediately-retrieved)
    /// pages carry `None` — their rewards have no owning action.
    token: Option<u64>,
}

pub(crate) const MAX_REDIRECTS: usize = 5;

/// Fans one event out to the built-in trace observer plus every registered
/// observer. Lives outside `CrawlSession` so emission can borrow the
/// session's interner strings immutably while the observers are mutated.
struct ObserverHub<'a> {
    trace: TraceObserver,
    user: Vec<&'a mut dyn CrawlObserver>,
}

impl ObserverHub<'_> {
    #[inline]
    fn emit(&mut self, snap: &CrawlSnapshot, event: &CrawlEvent<'_>) {
        self.trace.on_event(event, snap);
        for obs in &mut self.user {
            obs.on_event(event, snap);
        }
    }
}

/// A paused, resumable crawl of one site. See the module docs.
pub struct CrawlSession<'a> {
    client: Client<'a, dyn HttpServer + 'a>,
    oracle: Option<&'a dyn Oracle>,
    cfg: &'a CrawlConfig,
    strategy: &'a mut dyn Strategy,
    hub: ObserverHub<'a>,
    root: Url,
    /// Canonical root string, kept for the `SessionStarted` event (the
    /// root is not interned until the first step).
    root_text: String,
    /// `T ∪ F` membership: every discovered URL is interned exactly once
    /// (one hash of the parsed `Url`, no string round-trips); the id keys
    /// everything downstream.
    interner: UrlInterner,
    /// Discovery depth per interned id (parallel to the interner).
    depths: Vec<u32>,
    targets: Vec<RetrievedTarget>,
    pages_crawled: u64,
    /// Crawl step `t` (pages entered into `T`), as in Algorithm 4.
    t: u64,
    /// Outer selections completed.
    steps: u64,
    early: Option<EarlyStop>,
    aborted_oom: bool,
    rng: StdRng,
    phase: Phase,
}

impl<'a> CrawlSession<'a> {
    /// Validates the root and builds a session. No request is spent until
    /// the first [`CrawlSession::step`].
    pub fn new(
        server: &'a dyn HttpServer,
        oracle: Option<&'a dyn Oracle>,
        root_url: &str,
        strategy: &'a mut dyn Strategy,
        cfg: &'a CrawlConfig,
    ) -> Result<Self, ConfigError> {
        let root = Url::parse(root_url)
            .map_err(|error| ConfigError::InvalidRoot { url: root_url.to_owned(), error })?;
        let root_text = root.as_string();
        Ok(CrawlSession {
            client: Client::new(server, cfg.policy.clone()).with_politeness(cfg.politeness),
            oracle,
            cfg,
            strategy,
            hub: ObserverHub { trace: TraceObserver::new(), user: Vec::new() },
            root,
            root_text,
            interner: UrlInterner::new(),
            depths: Vec::new(),
            targets: Vec::new(),
            pages_crawled: 0,
            t: 0,
            steps: 0,
            early: cfg.early_stop.map(EarlyStop::new),
            aborted_oom: false,
            rng: StdRng::seed_from_u64(cfg.seed ^ 0xc3a5_c85c_97cb_3127),
            phase: Phase::Root,
        })
    }

    /// Registers an observer (fluent). Observers attached before the first
    /// step see the whole event stream, `SessionStarted` included.
    pub fn observe(mut self, observer: &'a mut dyn CrawlObserver) -> Self {
        self.hub.user.push(observer);
        self
    }

    /// The canonical root URL.
    pub fn root(&self) -> &Url {
        &self.root
    }

    /// Cost counters so far.
    pub fn traffic(&self) -> sb_httpsim::Traffic {
        self.client.traffic()
    }

    /// Targets retrieved so far.
    pub fn targets_found(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Outer selections completed so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Pages fetched so far (GET attempts, redirect hops included).
    pub fn pages_crawled(&self) -> u64 {
        self.pages_crawled
    }

    /// The per-request trace recorded so far.
    pub fn trace(&self) -> &CrawlTrace {
        self.hub.trace.trace()
    }

    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Done(_))
    }

    /// The finish reason, once the session stopped.
    pub fn finish_reason(&self) -> Option<FinishReason> {
        match self.phase {
            Phase::Done(reason) => Some(reason),
            _ => None,
        }
    }

    fn snapshot(&self) -> CrawlSnapshot {
        CrawlSnapshot {
            traffic: self.client.traffic(),
            targets: self.targets.len() as u64,
            steps: self.steps,
        }
    }

    /// Advances the crawl by exactly one outer selection — the root fetch,
    /// one admitted seed, or one strategy pick — including every
    /// immediately-fetched page of its cascade. On an already-finished (or
    /// just-finishing) session this is a no-op that reports the reason.
    pub fn step(&mut self) -> StepReport {
        let before_gets = self.client.traffic().get_requests;
        let before_targets = self.targets.len() as u64;
        loop {
            match self.phase {
                Phase::Root => {
                    let snap = self.snapshot();
                    self.hub.emit(&snap, &CrawlEvent::SessionStarted { root: &self.root_text });
                    let root = self.root.clone();
                    let root_id = self.intern_at_depth(&root, 0);
                    self.phase = Phase::Seeds(0);
                    self.process_cascade(WorkItem { id: root_id, depth: 0, token: None });
                    self.steps += 1;
                    break;
                }
                Phase::Seeds(from) => {
                    // The seed loop re-checks budget and OOM before every
                    // entry; once either trips, remaining seeds are moot.
                    if self.budget_exhausted() || self.aborted_oom {
                        self.phase = Phase::Steady;
                        continue;
                    }
                    match self.next_admissible_seed(from) {
                        Some((next_from, id)) => {
                            self.phase = Phase::Seeds(next_from);
                            self.process_cascade(WorkItem { id, depth: 1, token: None });
                            self.steps += 1;
                            break;
                        }
                        None => {
                            self.phase = Phase::Steady;
                            continue;
                        }
                    }
                }
                Phase::Steady => {
                    if self.steady_step() {
                        self.steps += 1;
                    }
                    break;
                }
                Phase::Done(_) => break,
            }
        }
        StepReport {
            steps: self.steps,
            fetched: self.client.traffic().get_requests - before_gets,
            new_targets: self.targets.len() as u64 - before_targets,
            requests: self.client.traffic().requests(),
            finished: self.finish_reason(),
        }
    }

    /// One steady-state outer iteration. Returns whether a selection was
    /// consumed (finishing checks consume none).
    fn steady_step(&mut self) -> bool {
        if let Some(reason) = self.stop_check() {
            self.finish_with(reason);
            return false;
        }
        let Some(Selection { url, token }) = self.strategy.next(&mut self.rng) else {
            let snap = self.snapshot();
            self.hub.emit(&snap, &CrawlEvent::FrontierExhausted);
            self.finish_with(FinishReason::FrontierExhausted);
            return false;
        };
        let id = match url {
            // Hot path: the id resolves without parsing or hashing.
            SelUrl::Id(id) if (id as usize) < self.depths.len() => id,
            SelUrl::Id(_) => {
                // An id the engine never handed out — a strategy bug.
                // Degrade like an error answer instead of panicking.
                debug_assert!(false, "strategy returned an unknown UrlId");
                self.strategy.feedback_error(token);
                return true;
            }
            // Boundary path (oracle answer keys): parse + intern once.
            SelUrl::Text(s) => {
                let Ok(u) = Url::parse(&s) else {
                    // Seed parity: an unparseable selection still costs
                    // a (404-answered) fetch, so budgets advance and a
                    // re-offering strategy cannot spin the loop. Whatever
                    // the server answers, nothing classifiable can come
                    // back from a URL the engine cannot even parse — the
                    // selection is abandoned, and like every abandoned
                    // selection it delivers the error feedback (one
                    // observation per pull, no exceptions).
                    self.t += 1;
                    self.pages_crawled += 1;
                    let f = self.client.get(&s);
                    let snap = self.snapshot();
                    self.hub.emit(
                        &snap,
                        &CrawlEvent::Fetched {
                            url: &s,
                            status: f.status,
                            mime: f.mime.as_deref(),
                            depth: 0,
                        },
                    );
                    self.strategy.feedback_error(token);
                    self.hub.emit(
                        &snap,
                        &CrawlEvent::Abandoned {
                            url: &s,
                            reason: AbandonReason::UnparseableSelection,
                        },
                    );
                    return true;
                };
                self.intern_at_depth(&u, 0)
            }
        };
        let depth = self.depths[id as usize];
        self.process_cascade(WorkItem { id, depth, token: Some(token) });
        true
    }

    /// The ordered stop checks of the outer loop. Order matters for replay
    /// fidelity: budget, OOM, `max_steps`, then the early-stop observation
    /// (which mutates the detector and must not run when an earlier check
    /// already fired).
    fn stop_check(&mut self) -> Option<FinishReason> {
        if self.budget_exhausted() {
            let tr = self.client.traffic();
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::BudgetExhausted {
                    requests: tr.requests(),
                    total_bytes: tr.total_bytes(),
                },
            );
            return Some(FinishReason::BudgetExhausted);
        }
        if self.aborted_oom {
            return Some(FinishReason::ActionSpaceOverflow);
        }
        if let Some(max) = self.cfg.max_steps {
            if self.t >= max {
                return Some(FinishReason::MaxSteps);
            }
        }
        if let Some(es) = &mut self.early {
            if es.observe(self.t, self.targets.len() as f64) {
                let snap = self.snapshot();
                self.hub.emit(&snap, &CrawlEvent::EarlyStopped { step: self.t });
                return Some(FinishReason::EarlyStopped);
            }
        }
        None
    }

    fn finish_with(&mut self, reason: FinishReason) {
        let snap = self.snapshot();
        self.hub.emit(&snap, &CrawlEvent::SessionFinished { reason });
        self.phase = Phase::Done(reason);
    }

    /// Loops [`CrawlSession::step`] to completion, then reports.
    pub fn run(mut self) -> CrawlOutcome {
        while !self.is_finished() {
            self.step();
        }
        self.finish()
    }

    /// Ends the session (cancelling it when it has not finished naturally)
    /// and assembles the [`CrawlOutcome`].
    pub fn finish(mut self) -> CrawlOutcome {
        if !self.is_finished() {
            self.finish_with(FinishReason::Cancelled);
        }
        let reason = self.finish_reason().expect("session finished");
        CrawlOutcome {
            trace: self.hub.trace.into_trace(),
            targets: self.targets,
            pages_crawled: self.pages_crawled,
            stopped_early: reason == FinishReason::EarlyStopped,
            early_stop_at: self.early.as_ref().and_then(|e| e.triggered_at()),
            aborted_oom: self.aborted_oom,
            traffic: self.client.traffic(),
            report: self.strategy.report(),
            finish_reason: reason,
        }
    }

    fn budget_exhausted(&self) -> bool {
        let traffic = self.client.traffic();
        match self.cfg.budget {
            Budget::Requests(b) => traffic.requests() >= b,
            Budget::VolumeBytes(b) => traffic.total_bytes() >= b,
            Budget::Unlimited => false,
        }
    }

    /// Finds the next seed URL that passes the admission checks (parseable,
    /// on-site, filter-admitted, unseen), interning it. Returns the index
    /// to resume from plus the interned id.
    fn next_admissible_seed(&mut self, from: usize) -> Option<(usize, UrlId)> {
        let cfg = self.cfg;
        for (offset, seed) in cfg.seed_urls[from.min(cfg.seed_urls.len())..].iter().enumerate() {
            let Ok(url) = Url::parse(seed) else { continue };
            if !url.same_site_as(&self.root) {
                continue;
            }
            if cfg.url_filter.as_ref().is_some_and(|f| !f(&url)) {
                continue;
            }
            if self.interner.get(&url).is_some() {
                continue;
            }
            let id = self.intern_at_depth(&url, 1);
            return Some((from + offset + 1, id));
        }
        None
    }

    /// Processes one selected page and, iteratively, every page the
    /// strategy asked to fetch immediately (Algorithm 4's recursion,
    /// flattened to survive arbitrarily deep target cascades).
    fn process_cascade(&mut self, first: WorkItem) {
        let mut queue: VecDeque<WorkItem> = VecDeque::new();
        queue.push_back(first);
        while let Some(item) = queue.pop_front() {
            if self.budget_exhausted() || self.aborted_oom {
                return;
            }
            self.process_one(item, &mut queue);
        }
    }

    /// Interns `url`, recording `depth` if it is new. Existing ids keep
    /// their original discovery depth.
    fn intern_at_depth(&mut self, url: &Url, depth: u32) -> UrlId {
        let id = self.interner.intern(url);
        if id as usize == self.depths.len() {
            self.depths.push(depth);
        }
        id
    }

    /// A work item ended without a class observation: the pull happened but
    /// nothing came back. Deliver the error feedback for outer selections —
    /// a selection must never be a silent pull (satellite of ISSUE 2) —
    /// and announce the abandonment.
    fn abandon(&mut self, item: &WorkItem, id: UrlId, reason: AbandonReason) {
        if let Some(token) = item.token {
            self.strategy.feedback_error(token);
        }
        let snap = self.snapshot();
        self.hub.emit(&snap, &CrawlEvent::Abandoned { url: self.interner.text(id), reason });
    }

    /// Algorithm 4 for a single URL.
    fn process_one(&mut self, item: WorkItem, queue: &mut VecDeque<WorkItem>) {
        // Follow redirects (3xx) up to a small chain bound. `id` is always
        // interned, so the canonical string and parsed form resolve without
        // any re-parse or re-stringify.
        let mut id = item.id;
        let mut fetched = None;
        for _ in 0..MAX_REDIRECTS {
            self.t += 1;
            self.pages_crawled += 1;
            let f = self.client.get(self.interner.text(id));
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::Fetched {
                    url: self.interner.text(id),
                    status: f.status,
                    mime: f.mime.as_deref(),
                    depth: item.depth,
                },
            );
            if !f.status.is_redirect_status() {
                fetched = Some((id, f));
                break;
            }
            // 3xx: follow the Location if it is new, on-site and admitted.
            let Some(loc) = f.location.clone() else {
                return self.abandon(&item, id, AbandonReason::RedirectMissingLocation);
            };
            let Ok(next) = self.interner.url(id).join(&loc) else {
                return self.abandon(&item, id, AbandonReason::RedirectUnparseable);
            };
            if !next.same_site_as(&self.root) {
                return self.abandon(&item, id, AbandonReason::RedirectOffSite);
            }
            if self.cfg.url_filter.as_ref().is_some_and(|f| !f(&next)) {
                return self.abandon(&item, id, AbandonReason::RedirectFiltered);
            }
            let next_id = match self.interner.get(&next) {
                // Already known elsewhere; don't crawl twice.
                Some(known) if known != id => {
                    return self.abandon(&item, id, AbandonReason::RedirectAlreadyKnown);
                }
                // Self-redirect: keep following until the chain bound.
                Some(known) => known,
                None => self.intern_at_depth(&next, item.depth),
            };
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::Redirected {
                    from: self.interner.text(id),
                    to: self.interner.text(next_id),
                },
            );
            id = next_id;
        }
        let Some((id, f)) = fetched else {
            return self.abandon(&item, id, AbandonReason::RedirectChainExhausted);
        };

        // Errors (4xx/5xx) yield nothing; the selection still consumed a pull.
        if f.status >= 400 {
            return self.abandon(&item, id, AbandonReason::HttpError(f.status));
        }
        if f.interrupted {
            // Banned MIME type: transfer aborted (Algorithm 3).
            return self.abandon(&item, id, AbandonReason::Interrupted);
        }
        let Some(mime) = f.mime.clone() else {
            return self.abandon(&item, id, AbandonReason::MissingMime);
        };

        if self.cfg.policy.is_html_mime(&mime) {
            self.strategy.on_fetched(id, self.interner.text(id), sb_webgraph::UrlClass::Html);
            let reward = self.process_html(id, item.depth, &f.body, queue);
            if let Some(token) = item.token {
                self.strategy.feedback(token, reward);
            }
        } else if self.cfg.policy.is_target_mime(&mime) {
            // A target: tag its volume and keep it.
            self.client.tag_target(f.wire_bytes);
            self.strategy.on_fetched(id, self.interner.text(id), sb_webgraph::UrlClass::Target);
            self.targets.push(RetrievedTarget {
                url: self.interner.text(id).to_owned(),
                mime: mime.clone(),
                body: self.cfg.keep_target_bodies.then_some(f.body),
            });
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::TargetRetrieved {
                    url: self.interner.text(id),
                    mime: &mime,
                    ordinal: self.targets.len() as u64,
                },
            );
            if let Some(token) = item.token {
                // Algorithm 4 returns before the R_mean update for targets:
                // the pull happened but no reward observation follows.
                self.strategy.feedback_target(token);
            }
        }
        // Any other MIME type: "Neither", nothing to do.
    }

    /// Link extraction + per-link decisions; returns the page's reward
    /// (the number of new links to predicted targets, retrieved at once).
    fn process_html(
        &mut self,
        page_id: UrlId,
        page_depth: u32,
        body: &[u8],
        queue: &mut VecDeque<WorkItem>,
    ) -> f64 {
        // Zero-copy parse path (PR 3): the body is borrowed when it is
        // valid UTF-8 (the render cache guarantees it), and every extracted
        // link borrows `html` in turn — owned conversion happens only below,
        // at the interner boundary, for URLs that outlive the page.
        let html = sb_html::body_str(body);
        let links = sb_html::extract_links_with(&html, self.strategy.link_needs());
        // One clone of the parsed base per page (instead of a re-parse);
        // per link, membership is checked on the parsed `Url` itself, so
        // known links cost one hash and zero allocations.
        let base = self.interner.url(page_id).clone();
        let mut reward = 0.0;
        let mut new_links = 0u32;
        for link in &links {
            let Ok(resolved) = base.join(&link.href) else { continue };
            // Only in-website links enter the graph (Sec 2.2).
            if !resolved.same_site_as(&self.root) {
                continue;
            }
            // u_new ∉ T ∪ F
            if self.interner.get(&resolved).is_some() {
                continue;
            }
            // Extension blocklist: skipped without any bookkeeping.
            if self.cfg.policy.has_blocked_extension(&resolved) {
                continue;
            }
            // URL admission filter (robots.txt etc.): dropped unrequested.
            if self.cfg.url_filter.as_ref().is_some_and(|f| !f(&resolved)) {
                continue;
            }
            let id = self.intern_at_depth(&resolved, page_depth + 1);
            new_links += 1;
            let new_link = NewLink {
                id,
                url: &resolved,
                url_str: self.interner.text(id),
                html: link,
                source_depth: page_depth,
            };
            let mut services = Services {
                client: &mut self.client,
                oracle: self.oracle,
                policy: &self.cfg.policy,
            };
            let decision = self.strategy.decide(&new_link, &mut services);
            let snap = self.snapshot();
            self.hub.emit(
                &snap,
                &CrawlEvent::LinkDiscovered {
                    url: self.interner.text(id),
                    depth: page_depth + 1,
                    decision,
                },
            );
            match decision {
                // Enqueue/Skip need no bookkeeping: interning above already
                // recorded membership and depth.
                LinkDecision::Enqueue | LinkDecision::Skip => {}
                LinkDecision::FetchNow => {
                    reward += 1.0;
                    queue.push_back(WorkItem { id, depth: page_depth + 1, token: None });
                }
                LinkDecision::ActionSpaceFull => {
                    self.aborted_oom = true;
                    return reward;
                }
            }
        }
        let snap = self.snapshot();
        self.hub.emit(
            &snap,
            &CrawlEvent::PageProcessed { url: self.interner.text(page_id), new_links, reward },
        );
        reward
    }
}

trait StatusExt {
    fn is_redirect_status(&self) -> bool;
}

impl StatusExt for u16 {
    fn is_redirect_status(&self) -> bool {
        (300..400).contains(self)
    }
}
