//! Typed crawl events and the observer interface.
//!
//! A [`crate::session::CrawlSession`] narrates its progress as a stream of
//! [`CrawlEvent`]s: every GET, redirect hop, link decision, retrieved
//! target and termination cause is announced to every registered
//! [`CrawlObserver`] the moment it happens, together with a
//! [`CrawlSnapshot`] of the cost counters at that instant. Nothing in the
//! engine is hardwired to a particular consumer any more: the per-request
//! [`CrawlTrace`] that every table and figure of Sec 4 is derived from is
//! itself just one observer ([`TraceObserver`]), and callers can attach
//! progress bars, loggers, archivers or live dashboards without touching
//! the engine.
//!
//! Events borrow their URL strings from the session's interner — observing
//! a crawl allocates nothing on the hot path. Observers that need to keep
//! an event's data beyond the callback must copy it out.

use crate::strategy::LinkDecision;
use crate::trace::{CrawlTrace, TracePoint};
use sb_httpsim::Traffic;

/// Why a selected (or immediately-fetched) page was abandoned without a
/// class observation: the request budget was spent but nothing came back
/// that the strategy could learn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbandonReason {
    /// The redirect chain was still redirecting after `MAX_REDIRECTS` hops.
    RedirectChainExhausted,
    /// A 3xx answer carried no `Location` header.
    RedirectMissingLocation,
    /// The `Location` did not resolve to an absolute http(s) URL.
    RedirectUnparseable,
    /// The redirect target left the website boundary (Sec 2.2).
    RedirectOffSite,
    /// The redirect target was rejected by [`crate::session::CrawlConfig::url_filter`].
    RedirectFiltered,
    /// The redirect target was already in `T ∪ F` under another id.
    RedirectAlreadyKnown,
    /// The server answered 4xx/5xx.
    HttpError(u16),
    /// The strategy selected a string that is not an absolute http(s) URL;
    /// the fetch was still charged (seed parity) but nothing can come back.
    UnparseableSelection,
    /// The transfer was aborted on a block-listed MIME type (Algorithm 3).
    Interrupted,
    /// The 2xx answer carried no Content-Type to classify.
    MissingMime,
    /// The session finished (budget, early stop, cancellation) while the
    /// request was still in flight; its selection received
    /// [`crate::strategy::Strategy::feedback_error`] so the pull is not
    /// silent. Only reachable with `max_in_flight > 1`.
    SessionClosed,
    /// The transport's simulated request timeout elapsed before the
    /// transfer finished (PR 6, synthetic status
    /// [`sb_httpsim::STATUS_TIMEOUT`]). The partial transfer was charged.
    Timeout,
    /// Every retry the transport's [`sb_httpsim::RetryPolicy`] allowed was
    /// spent and the last answer was still a retryable failure (5xx/429).
    /// Each attempt was charged.
    RetriesExhausted,
    /// The transport's per-host circuit breaker had quarantined the host
    /// (PR 6, synthetic status [`sb_httpsim::STATUS_QUARANTINED`]); the
    /// request never reached the origin and cost nothing.
    HostQuarantined,
}

impl AbandonReason {
    /// Maps a final transport answer to its abandon reason. Synthetic
    /// hazard statuses ([`sb_httpsim::STATUS_TIMEOUT`],
    /// [`sb_httpsim::STATUS_QUARANTINED`]) take precedence; a retryable
    /// failure that the transport re-dispatched at least once is
    /// [`AbandonReason::RetriesExhausted`]; anything else is a plain
    /// [`AbandonReason::HttpError`].
    pub(crate) fn for_http_failure(status: u16, attempts: u32) -> AbandonReason {
        match status {
            sb_httpsim::STATUS_TIMEOUT => AbandonReason::Timeout,
            sb_httpsim::STATUS_QUARANTINED => AbandonReason::HostQuarantined,
            s if attempts > 1 && ((500..600).contains(&s) || s == 429) => {
                AbandonReason::RetriesExhausted
            }
            s => AbandonReason::HttpError(s),
        }
    }
}

/// Per-reason tally of [`CrawlEvent::Abandoned`] emissions (PR 6). A small
/// `Copy` struct rather than a map so it can ride inside the step/outcome
/// reports without allocation; rare structural reasons share the
/// `other` bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbandonCounts {
    /// [`AbandonReason::HttpError`] — plain 4xx/5xx with no retry story.
    pub http_error: u64,
    /// [`AbandonReason::Timeout`].
    pub timeout: u64,
    /// [`AbandonReason::RetriesExhausted`].
    pub retries_exhausted: u64,
    /// [`AbandonReason::HostQuarantined`].
    pub quarantined: u64,
    /// Any `Redirect*` reason (exhausted chains, loops, bad `Location`s).
    pub redirect: u64,
    /// [`AbandonReason::SessionClosed`] — in-flight work drained at finish.
    pub session_closed: u64,
    /// Everything else (interrupted transfers, missing MIME, unparseable
    /// selections).
    pub other: u64,
}

impl AbandonCounts {
    /// Tallies one abandonment.
    pub(crate) fn record(&mut self, reason: AbandonReason) {
        match reason {
            AbandonReason::HttpError(_) => self.http_error += 1,
            AbandonReason::Timeout => self.timeout += 1,
            AbandonReason::RetriesExhausted => self.retries_exhausted += 1,
            AbandonReason::HostQuarantined => self.quarantined += 1,
            AbandonReason::RedirectChainExhausted
            | AbandonReason::RedirectMissingLocation
            | AbandonReason::RedirectUnparseable
            | AbandonReason::RedirectOffSite
            | AbandonReason::RedirectFiltered
            | AbandonReason::RedirectAlreadyKnown => self.redirect += 1,
            AbandonReason::SessionClosed => self.session_closed += 1,
            AbandonReason::UnparseableSelection
            | AbandonReason::Interrupted
            | AbandonReason::MissingMime => self.other += 1,
        }
    }

    /// Total abandonments across every bucket.
    pub fn total(&self) -> u64 {
        self.http_error
            + self.timeout
            + self.retries_exhausted
            + self.quarantined
            + self.redirect
            + self.session_closed
            + self.other
    }

    /// Element-wise sum, for fleet-level aggregation.
    pub fn merge(&mut self, other: &AbandonCounts) {
        self.http_error += other.http_error;
        self.timeout += other.timeout;
        self.retries_exhausted += other.retries_exhausted;
        self.quarantined += other.quarantined;
        self.redirect += other.redirect;
        self.session_closed += other.session_closed;
        self.other += other.other;
    }
}

/// Why a session stopped stepping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// The strategy's frontier ran dry: the site is fully crawled.
    FrontierExhausted,
    /// The crawl budget `B` of Algorithm 3 is spent.
    BudgetExhausted,
    /// Sec 4.8 early stopping fired.
    EarlyStopped,
    /// The [`crate::session::CrawlConfig::max_steps`] safety valve fired.
    MaxSteps,
    /// The action space exploded (Table 4's θ = 0.95 OOM).
    ActionSpaceOverflow,
    /// The caller finished the session before any natural end.
    Cancelled,
}

/// What one crawl announces while it runs. Emitted in strict happens-after
/// order: an event is dispatched only after the work it describes is done
/// and charged, so the accompanying [`CrawlSnapshot`] already includes it.
#[derive(Debug, Clone, PartialEq)]
pub enum CrawlEvent<'e> {
    /// First event of every session, before any request.
    SessionStarted { root: &'e str },
    /// A GET entered the transport's in-flight pool (PR 4). `in_flight`
    /// counts outstanding requests, this one included — the session's own
    /// requests only, even when the transport is a shared-pool handle
    /// whose window spans the whole fleet (PR 5).
    Submitted { url: &'e str, in_flight: usize },
    /// A batching strategy ranked its frontier and handed back a batch
    /// (PR 10): `requested` is the window the session asked to fill,
    /// `selected` how many selections came back (fewer means the frontier
    /// ran dry mid-batch; 0 is the batched [`FrontierExhausted`] probe).
    /// Each selection's `Submitted` follows as budget gates allow.
    ///
    /// [`FrontierExhausted`]: CrawlEvent::FrontierExhausted
    BatchSelected { requested: usize, selected: usize },
    /// The transport delivered a finished GET; the matching [`Fetched`]
    /// (and its processing) follow immediately. `in_flight` counts the
    /// requests still outstanding.
    ///
    /// [`Fetched`]: CrawlEvent::Fetched
    Completed { url: &'e str, status: u16, in_flight: usize },
    /// A GET completed (any status — redirect hops and errors included).
    Fetched { url: &'e str, status: u16, mime: Option<&'e str>, depth: u32 },
    /// A 3xx `Location` was admitted and will be followed.
    Redirected { from: &'e str, to: &'e str },
    /// A fetch cascade entry ended without a class observation; when the
    /// page was the outer selection, its token received
    /// [`crate::strategy::Strategy::feedback_error`].
    Abandoned { url: &'e str, reason: AbandonReason },
    /// A new on-site, unseen, unblocked link was routed by the strategy.
    LinkDiscovered { url: &'e str, depth: u32, decision: LinkDecision },
    /// Link extraction + routing finished for a fetched HTML page.
    /// `reward` is the page's Algorithm 4 reward (immediately-fetched
    /// predicted targets).
    PageProcessed { url: &'e str, new_links: u32, reward: f64 },
    /// A target was retrieved and its volume tagged. `ordinal` counts
    /// targets from 1.
    TargetRetrieved { url: &'e str, mime: &'e str, ordinal: u64 },
    /// Sec 4.8 early stopping fired at crawl step `step`.
    EarlyStopped { step: u64 },
    /// The budget check failed; no further selection will run.
    BudgetExhausted { requests: u64, total_bytes: u64 },
    /// The strategy returned `None`: nothing left to crawl.
    FrontierExhausted,
    /// Last event of every finished session.
    SessionFinished { reason: FinishReason },
}

/// Cost counters at the instant an event is dispatched (the event's work
/// already included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrawlSnapshot {
    pub traffic: Traffic,
    /// Targets retrieved so far.
    pub targets: u64,
    /// Outer selections begun so far (the root and each admitted seed
    /// count as one; under a pipelined window a selection counts when it
    /// is submitted, not when its answer lands).
    pub steps: u64,
    /// Memory gauges at this instant (PR 7).
    pub mem: MemGauges,
}

/// Memory-footprint gauges of the session's growing structures, reported
/// on every [`CrawlSnapshot`] and [`crate::session::StepReport`] so
/// bounded-memory crawls can *observe* that they are bounded instead of
/// trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemGauges {
    /// Distinct URLs in the visited set (`T ∪ F` membership).
    pub visited_urls: usize,
    /// Estimated heap bytes held by the visited set (exact interner
    /// entries + compact fingerprint entries).
    pub visited_bytes: u64,
    /// Fingerprint collisions absorbed by the visited set's exact escape
    /// hatch (0 in pure-exact mode).
    pub visited_collisions: u64,
    /// Frontier length, spilled portion included.
    pub frontier_len: usize,
    /// URLs of the frontier currently parked in the spill arena (0 for
    /// unbounded frontiers).
    pub frontier_spilled: usize,
}

impl MemGauges {
    /// Sums another site's gauges into this one — the fleet-level
    /// aggregation (PR 8): each field is an additive footprint, so the sum
    /// over a shard's (or the whole fleet's) sessions is the combined
    /// memory held at the instant those sessions were gauged.
    pub fn merge(&mut self, other: &MemGauges) {
        self.visited_urls += other.visited_urls;
        self.visited_bytes += other.visited_bytes;
        self.visited_collisions += other.visited_collisions;
        self.frontier_len += other.frontier_len;
        self.frontier_spilled += other.frontier_spilled;
    }
}

/// Refresh ledger of a continuous crawl-and-serve session (PR 9): how
/// many already-fetched URLs were re-admitted through the window
/// ([`crate::session::CrawlSession::queue_refresh`]), what came back, and
/// the staleness the serving layer measured while the crawl ran. Rides
/// [`crate::session::StepReport`]/[`crate::session::CrawlOutcome`]/
/// [`crate::fleet::FleetOutcome`] and merges per shard like
/// [`MemGauges`]. All zero when no refresh was ever queued, so one-shot
/// crawls report exactly what they did before.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RefreshStats {
    /// Refresh selections queued (whether or not they dispatched — a
    /// budget-exhausted session drops queued refreshes, and the gap
    /// between `scheduled` and `completed + failed` is that drop count).
    pub scheduled: u64,
    /// Refresh fetches that delivered a usable body.
    pub completed: u64,
    /// Completed refreshes whose body hash matched the prior version.
    pub unchanged: u64,
    /// Completed refreshes whose body hash differed from the prior
    /// version (the fetch bought actual freshness).
    pub changed: u64,
    /// Refresh fetches that ended without a body: HTTP errors (the page
    /// died, or the host misbehaved), dead redirect chains, interrupted
    /// transfers, session shutdown.
    pub failed: u64,
    /// Median age-at-read observed by the serving layer, in origin
    /// epochs (0.0 when no read load ran). Stamped by the serve runtime
    /// via [`crate::session::CrawlSession::set_staleness`].
    ///
    /// **Merge semantics (pinned):** after [`RefreshStats::merge`] this is
    /// the *worst per-shard* median — an upper bound on the fleet's true
    /// p50, **not** a merged percentile (percentiles do not compose from
    /// summaries; merging the underlying age samples would be required).
    /// Consumers comparing against an SLA get the conservative answer;
    /// consumers wanting a true fleet percentile must aggregate samples
    /// themselves.
    pub staleness_p50: f64,
    /// 99th-percentile age-at-read, in origin epochs — the freshness-SLA
    /// headline number. Same merge semantics as
    /// [`RefreshStats::staleness_p50`]: worst shard, upper bound.
    pub staleness_p99: f64,
}

impl RefreshStats {
    /// Folds another session's ledger into this one: counters add;
    /// staleness percentiles take the *worst* (maximum) of the two — a
    /// fleet meets an SLA only if every member does, so the conservative
    /// merge is the honest aggregate. The result is an **upper bound** on
    /// the fleet percentile, not the percentile of the pooled samples
    /// (see [`RefreshStats::staleness_p50`]); the merge test below pins
    /// this so a refactor cannot silently reinterpret the fields.
    pub fn merge(&mut self, other: &RefreshStats) {
        self.scheduled += other.scheduled;
        self.completed += other.completed;
        self.unchanged += other.unchanged;
        self.changed += other.changed;
        self.failed += other.failed;
        self.staleness_p50 = self.staleness_p50.max(other.staleness_p50);
        self.staleness_p99 = self.staleness_p99.max(other.staleness_p99);
    }

    /// Refreshes that went through the window, successful or not.
    pub fn attempted(&self) -> u64 {
        self.completed + self.failed
    }
}

/// A crawl progress consumer. Registered with
/// [`crate::session::CrawlSession::observe`]; every event of the session is
/// delivered in order, on the thread driving the session.
pub trait CrawlObserver {
    fn on_event(&mut self, event: &CrawlEvent<'_>, snap: &CrawlSnapshot);
}

/// [`CrawlTrace`] recording, reimplemented as an observer: one
/// [`TracePoint`] after every GET and every processed HTML page, with the
/// point *amended in place* (not duplicated) when target-volume tagging
/// re-attributes the bytes of the request it describes.
#[derive(Debug, Default)]
pub struct TraceObserver {
    trace: CrawlTrace,
}

impl TraceObserver {
    pub fn new() -> Self {
        TraceObserver::default()
    }

    pub fn trace(&self) -> &CrawlTrace {
        &self.trace
    }

    pub fn into_trace(self) -> CrawlTrace {
        self.trace
    }

    fn point(snap: &CrawlSnapshot) -> TracePoint {
        TracePoint {
            requests: snap.traffic.requests(),
            head_requests: snap.traffic.head_requests,
            target_bytes: snap.traffic.target_bytes,
            non_target_bytes: snap.traffic.non_target_bytes,
            targets: snap.targets,
            elapsed_secs: snap.traffic.elapsed_secs,
        }
    }
}

impl CrawlObserver for TraceObserver {
    fn on_event(&mut self, event: &CrawlEvent<'_>, snap: &CrawlSnapshot) {
        match event {
            CrawlEvent::Fetched { .. } | CrawlEvent::PageProcessed { .. } => {
                self.trace.push(Self::point(snap));
            }
            // The GET that fetched the target already pushed a point at this
            // request count; re-record it with the re-attributed volume
            // instead of appending a duplicate.
            CrawlEvent::TargetRetrieved { .. } => {
                self.trace.amend_last(Self::point(snap));
            }
            _ => {}
        }
    }
}

/// An observer that collects owned copies of every event — handy for tests
/// and debugging (event ordering assertions), too allocation-happy for
/// production observation.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<OwnedEvent>,
}

/// An owned, lifetime-free copy of a [`CrawlEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEvent {
    SessionStarted { root: String },
    Submitted { url: String, in_flight: usize },
    BatchSelected { requested: usize, selected: usize },
    Completed { url: String, status: u16, in_flight: usize },
    Fetched { url: String, status: u16, mime: Option<String>, depth: u32 },
    Redirected { from: String, to: String },
    Abandoned { url: String, reason: AbandonReason },
    LinkDiscovered { url: String, depth: u32, decision: LinkDecision },
    PageProcessed { url: String, new_links: u32, reward: f64 },
    TargetRetrieved { url: String, mime: String, ordinal: u64 },
    EarlyStopped { step: u64 },
    BudgetExhausted { requests: u64, total_bytes: u64 },
    FrontierExhausted,
    SessionFinished { reason: FinishReason },
}

impl From<&CrawlEvent<'_>> for OwnedEvent {
    fn from(e: &CrawlEvent<'_>) -> OwnedEvent {
        match *e {
            CrawlEvent::SessionStarted { root } => {
                OwnedEvent::SessionStarted { root: root.to_owned() }
            }
            CrawlEvent::Submitted { url, in_flight } => {
                OwnedEvent::Submitted { url: url.to_owned(), in_flight }
            }
            CrawlEvent::BatchSelected { requested, selected } => {
                OwnedEvent::BatchSelected { requested, selected }
            }
            CrawlEvent::Completed { url, status, in_flight } => {
                OwnedEvent::Completed { url: url.to_owned(), status, in_flight }
            }
            CrawlEvent::Fetched { url, status, mime, depth } => OwnedEvent::Fetched {
                url: url.to_owned(),
                status,
                mime: mime.map(str::to_owned),
                depth,
            },
            CrawlEvent::Redirected { from, to } => {
                OwnedEvent::Redirected { from: from.to_owned(), to: to.to_owned() }
            }
            CrawlEvent::Abandoned { url, reason } => {
                OwnedEvent::Abandoned { url: url.to_owned(), reason }
            }
            CrawlEvent::LinkDiscovered { url, depth, decision } => {
                OwnedEvent::LinkDiscovered { url: url.to_owned(), depth, decision }
            }
            CrawlEvent::PageProcessed { url, new_links, reward } => {
                OwnedEvent::PageProcessed { url: url.to_owned(), new_links, reward }
            }
            CrawlEvent::TargetRetrieved { url, mime, ordinal } => {
                OwnedEvent::TargetRetrieved { url: url.to_owned(), mime: mime.to_owned(), ordinal }
            }
            CrawlEvent::EarlyStopped { step } => OwnedEvent::EarlyStopped { step },
            CrawlEvent::BudgetExhausted { requests, total_bytes } => {
                OwnedEvent::BudgetExhausted { requests, total_bytes }
            }
            CrawlEvent::FrontierExhausted => OwnedEvent::FrontierExhausted,
            CrawlEvent::SessionFinished { reason } => OwnedEvent::SessionFinished { reason },
        }
    }
}

impl EventLog {
    pub fn new() -> Self {
        EventLog::default()
    }

    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl CrawlObserver for EventLog {
    fn on_event(&mut self, event: &CrawlEvent<'_>, _snap: &CrawlSnapshot) {
        self.events.push(OwnedEvent::from(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins [`RefreshStats::merge`]: counters add, percentiles take the
    /// worst shard (an SLA upper bound) — NOT a merged percentile. If a
    /// refactor changes either half, this test is the tripwire.
    #[test]
    fn refresh_merge_adds_counters_and_takes_worst_shard_percentiles() {
        let mut a = RefreshStats {
            scheduled: 10,
            completed: 7,
            unchanged: 4,
            changed: 3,
            failed: 2,
            staleness_p50: 1.5,
            staleness_p99: 6.0,
        };
        let b = RefreshStats {
            scheduled: 5,
            completed: 4,
            unchanged: 1,
            changed: 3,
            failed: 1,
            staleness_p50: 2.5,
            staleness_p99: 4.0,
        };
        a.merge(&b);
        assert_eq!(a.scheduled, 15);
        assert_eq!(a.completed, 11);
        assert_eq!(a.unchanged, 5);
        assert_eq!(a.changed, 6);
        assert_eq!(a.failed, 3);
        // Worst shard per percentile — p50 from `b`, p99 from `a`. A true
        // pooled p50 over (say) equal read volumes would land between the
        // two; the documented contract is the max.
        assert_eq!(a.staleness_p50, 2.5);
        assert_eq!(a.staleness_p99, 6.0);
        assert_eq!(a.attempted(), 14);
    }

    /// Merging a zero ledger (a session that never refreshed) is the
    /// identity — one-shot crawls cannot perturb a fleet aggregate.
    #[test]
    fn refresh_merge_with_default_is_identity() {
        let mut a = RefreshStats {
            scheduled: 3,
            completed: 2,
            unchanged: 1,
            changed: 1,
            failed: 1,
            staleness_p50: 0.5,
            staleness_p99: 2.0,
        };
        let before = a;
        a.merge(&RefreshStats::default());
        assert_eq!(a, before);
    }
}
