//! Early stopping (Sec 4.8).
//!
//! Every ν iterations the crawler computes the slope
//! `σ = (y_t − y_{t−ν}) / ν` of the target-discovery curve and folds it into
//! an exponential moving average `μ ← γ·σ + (1 − γ)·μ`. If μ stays below a
//! threshold ε for κ consecutive slopes (κ·ν iterations), the crawl stops.
//! Paper defaults: ν = 1000, ε = 0.2, γ = 0.05, κ = 15.

/// Early-stopping parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopConfig {
    /// Slope sampling period ν, in crawl iterations.
    pub nu: u64,
    /// Slope threshold ε.
    pub epsilon: f64,
    /// EMA decay γ.
    pub gamma: f64,
    /// Consecutive low-μ slopes required, κ.
    pub kappa: u32,
}

impl Default for EarlyStopConfig {
    fn default() -> Self {
        EarlyStopConfig { nu: 1000, epsilon: 0.2, gamma: 0.05, kappa: 15 }
    }
}

impl EarlyStopConfig {
    /// Scales ν to a reduced-size site so the κ·ν stopping horizon keeps the
    /// same proportion of the site as at paper scale.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.nu = ((self.nu as f64 * factor).round() as u64).max(10);
        self
    }
}

/// The early-stopping monitor.
#[derive(Debug, Clone)]
pub struct EarlyStop {
    cfg: EarlyStopConfig,
    mu: f64,
    last_y: f64,
    low_streak: u32,
    checks: u64,
    /// Last iteration folded into the EMA: a pipelined session can run the
    /// stop check several times at one crawl step (one per selection pulled
    /// while refilling the window); each slope must count once.
    last_t: Option<u64>,
    triggered_at: Option<u64>,
}

impl EarlyStop {
    pub fn new(cfg: EarlyStopConfig) -> Self {
        // μ starts at ε so a crawl cannot stop before the first real slopes
        // arrive (the paper's mechanism needs κ·ν iterations minimum).
        EarlyStop {
            mu: cfg.epsilon,
            cfg,
            last_y: 0.0,
            low_streak: 0,
            checks: 0,
            last_t: None,
            triggered_at: None,
        }
    }

    pub fn config(&self) -> &EarlyStopConfig {
        &self.cfg
    }

    /// Current EMA of the slope.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Step `t` just finished with `y` targets retrieved so far. Returns
    /// true when the crawl should stop.
    pub fn observe(&mut self, t: u64, y: f64) -> bool {
        if self.triggered_at.is_some() {
            return true;
        }
        if t == 0 || !t.is_multiple_of(self.cfg.nu) || self.last_t == Some(t) {
            return false;
        }
        self.last_t = Some(t);
        let sigma = (y - self.last_y) / self.cfg.nu as f64;
        self.last_y = y;
        self.mu = self.cfg.gamma * sigma + (1.0 - self.cfg.gamma) * self.mu;
        self.checks += 1;
        if self.mu < self.cfg.epsilon {
            self.low_streak += 1;
        } else {
            self.low_streak = 0;
        }
        if self.low_streak >= self.cfg.kappa {
            self.triggered_at = Some(t);
            return true;
        }
        false
    }

    /// Iteration at which stopping triggered, if it did.
    pub fn triggered_at(&self) -> Option<u64> {
        self.triggered_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nu: u64, kappa: u32) -> EarlyStopConfig {
        EarlyStopConfig { nu, epsilon: 0.2, gamma: 0.05, kappa }
    }

    #[test]
    fn stops_on_exhausted_discovery() {
        let mut es = EarlyStop::new(cfg(10, 5));
        let mut stopped = None;
        // 60 steps of strong discovery, then nothing.
        let mut y = 0.0;
        for t in 1..=2000u64 {
            if t <= 60 {
                y += 5.0;
            }
            if es.observe(t, y) {
                stopped = Some(t);
                break;
            }
        }
        let t = stopped.expect("must stop once discovery dries up");
        assert!(t > 60, "not before discovery ends");
        assert_eq!(es.triggered_at(), Some(t));
    }

    #[test]
    fn never_stops_on_continuous_discovery() {
        let mut es = EarlyStop::new(cfg(10, 5));
        let mut y = 0.0;
        for t in 1..=5000u64 {
            y += 1.0; // slope 1.0 ≫ ε = 0.2 forever
            assert!(!es.observe(t, y), "stopped at t={t} despite steady discovery");
        }
    }

    #[test]
    fn needs_kappa_consecutive_low_slopes() {
        let mut es = EarlyStop::new(cfg(10, 3));
        let mut y = 0.0;
        let mut t = 0u64;
        // Two dry periods of 2 checks each, separated by a burst: no stop.
        for phase in 0..2 {
            let _ = phase;
            for _ in 0..20 {
                t += 1;
                assert!(!es.observe(t, y));
            }
            y += 100.0; // burst resets the streak
            t += 1;
            assert!(!es.observe(t, y));
        }
        // Now a real drought: the EMA must first decay below ε (the bursts
        // pushed μ up), then hold a 3-check streak.
        let mut stopped = false;
        for _ in 0..600 {
            t += 1;
            if es.observe(t, y) {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn no_trigger_before_kappa_nu_iterations() {
        let es_cfg = cfg(10, 5);
        let mut es = EarlyStop::new(es_cfg);
        // Even with zero discovery from the start, stopping needs ≥ κ·ν.
        let mut first_stop = None;
        for t in 1..=1000u64 {
            if es.observe(t, 0.0) {
                first_stop = Some(t);
                break;
            }
        }
        let t = first_stop.unwrap();
        assert!(t >= u64::from(es_cfg.kappa) * es_cfg.nu, "stopped too early at {t}");
    }

    #[test]
    fn scaled_nu() {
        let c = EarlyStopConfig::default().scaled(0.02);
        assert_eq!(c.nu, 20);
        let tiny = EarlyStopConfig::default().scaled(1e-9);
        assert_eq!(tiny.nu, 10, "ν is floored");
    }

    #[test]
    fn sticky_after_trigger() {
        let mut es = EarlyStop::new(cfg(5, 2));
        let mut t = 0;
        while !es.observe(t, 0.0) {
            t += 1;
            assert!(t < 10_000);
        }
        assert!(es.observe(t + 1, 1e9), "trigger must be sticky");
    }
}
