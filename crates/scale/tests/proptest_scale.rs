//! Property pins for the memory-bounded structures: the streaming site is
//! byte-identical to the eager one on arbitrary layouts, the spillable
//! frontier pops in exactly the unbounded order for arbitrary spill
//! thresholds, and the fingerprint visited set assigns exactly the
//! interner's ids for arbitrary thresholds.

use proptest::prelude::*;
use sb_scale::{stream_site, SpillBacking, SpillConfig, SpillQueue, VisitedSet};
use sb_webgraph::gen::{build_site, SiteSource, SiteSpec};
use sb_webgraph::url::Url;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streaming site is observationally identical to the eager one on
    /// arbitrary spec knobs: same graph, same URLs, and byte-identical
    /// rendered pages — even with a render cache far too small to hold the
    /// site.
    #[test]
    fn streaming_site_is_byte_identical(
        n in 60usize..220,
        tf in 0.05f64..0.5,
        err in 0.0f64..0.2,
        ext in 0.0f64..0.8,
        seed in 0u64..300,
    ) {
        let mut spec = SiteSpec::demo(n);
        spec.target_frac = tf;
        spec.error_frac = err;
        spec.extensionless = ext;
        let eager = build_site(&spec, seed);
        let lazy = stream_site(&spec, seed).with_render_cache_budget(4 << 10);

        prop_assert_eq!(lazy.n_pages(), SiteSource::n_pages(&eager));
        prop_assert_eq!(lazy.root(), SiteSource::root(&eager));
        for id in 0..lazy.n_pages() as u32 {
            prop_assert_eq!(lazy.url(id), SiteSource::url(&eager, id));
            prop_assert_eq!(lazy.kind(id), SiteSource::kind(&eager, id));
            prop_assert_eq!(lazy.out_links(id), SiteSource::out_links(&eager, id));
            prop_assert_eq!(
                lazy.content_length(id),
                SiteSource::content_length(&eager, id),
                "content-length of page {}", id
            );
            match lazy.kind(id) {
                sb_webgraph::gen::PageKind::Html(_) => prop_assert_eq!(
                    &lazy.rendered(id)[..],
                    &SiteSource::rendered(&eager, id)[..],
                    "body of page {}", id
                ),
                sb_webgraph::gen::PageKind::Target { .. } => prop_assert_eq!(
                    &lazy.target_payload(id)[..],
                    &SiteSource::target_payload(&eager, id)[..],
                    "payload of page {}", id
                ),
                _ => {}
            }
        }
        // Omniscient views agree too (targets, classes, depths).
        prop_assert_eq!(lazy.target_urls(), SiteSource::target_urls(&eager));
        prop_assert_eq!(lazy.source_depths(), SiteSource::source_depths(&eager));
    }

    /// FIFO discipline: for arbitrary interleavings of pushes and pops and
    /// an arbitrary (possibly tiny) spill threshold, `SpillQueue` pops in
    /// exactly `VecDeque` order.
    #[test]
    fn spill_queue_fifo_order_exact(
        ops in proptest::collection::vec(0u8..=9, 1..400),
        mem_cap in 1usize..48,
        disk in any::<bool>(),
    ) {
        let backing = if disk { SpillBacking::Disk } else { SpillBacking::Memory };
        let mut q = SpillQueue::with_config(SpillConfig::bounded(mem_cap, backing));
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            if op >= 3 {
                // Weighted toward pushes so spills actually happen.
                for _ in 0..op {
                    q.push_back(next);
                    model.push_back(next);
                    next += 1;
                }
            } else if op == 0 {
                prop_assert_eq!(q.pop_front(), model.pop_front());
            } else {
                prop_assert_eq!(q.len(), model.len());
            }
        }
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(q.pop_front(), Some(want));
        }
        prop_assert!(q.is_empty());
    }

    /// LIFO discipline: same exactness for `pop_back` (DFS frontiers).
    #[test]
    fn spill_queue_lifo_order_exact(
        ops in proptest::collection::vec(0u8..=9, 1..400),
        mem_cap in 1usize..48,
        disk in any::<bool>(),
    ) {
        let backing = if disk { SpillBacking::Disk } else { SpillBacking::Memory };
        let mut q = SpillQueue::with_config(SpillConfig::bounded(mem_cap, backing));
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            if op >= 3 {
                for _ in 0..op {
                    q.push_back(next);
                    model.push_back(next);
                    next += 1;
                }
            } else {
                prop_assert_eq!(q.pop_back(), model.pop_back());
            }
        }
        while let Some(want) = model.pop_back() {
            prop_assert_eq!(q.pop_back(), Some(want));
        }
        prop_assert!(q.is_empty());
    }

    /// The visited set assigns exactly the same dense ids as a pure-exact
    /// set for arbitrary URL batches and arbitrary compaction thresholds,
    /// and resolves every URL back to the same text.
    #[test]
    fn visited_set_ids_invariant_under_threshold(
        hosts in proptest::collection::vec("[a-z]{1,6}\\.[a-z]{2,4}", 1..8),
        paths in proptest::collection::vec("(/[a-z0-9._-]{1,8}){1,3}", 8..60),
        threshold in 0usize..40,
    ) {
        let urls: Vec<Url> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let h = &hosts[i % hosts.len()];
                Url::parse(&format!("https://{h}{p}")).expect("constructed valid")
            })
            .collect();
        let mut exact = VisitedSet::exact();
        let mut compact = VisitedSet::with_threshold(threshold);
        for u in &urls {
            prop_assert_eq!(compact.intern(u), exact.intern(u));
        }
        for u in &urls {
            prop_assert_eq!(compact.get(u), exact.get(u));
        }
        prop_assert_eq!(compact.len(), exact.len());
        for id in 0..exact.len() as u32 {
            prop_assert_eq!(compact.text(id), exact.text(id));
            prop_assert_eq!(compact.base(id), exact.base(id));
        }
    }
}
